//! CDN replica selection (§7.1): a client must pick one of five replicas
//! without probing them. Compare picking by iNano's predictions against
//! random choice, and show what the ground truth says each would cost.
//!
//! Run with: `cargo run --release --example cdn_replica_selection`

use inano::apps::tcp_model::transfer_time_secs;
use inano::core::{PathPredictor, PredictorConfig};
use inano::demo::DemoWorld;
use inano::model::rng::rng_for;
use rand::seq::SliceRandom;
use std::sync::Arc;

fn main() {
    let world = DemoWorld::new(2);
    let oracle = world.oracle(0);
    let predictor = PathPredictor::new(Arc::new(world.atlas.clone()), PredictorConfig::full());
    let mut rng = rng_for(2, "example-cdn");

    let hosts = world.sample_hosts(12);
    let client = hosts[0];
    let mut replicas = hosts[1..].to_vec();
    replicas.shuffle(&mut rng);
    replicas.truncate(5);

    let client_info = world.net.host(client);
    println!(
        "client {} picks among 5 replicas (1.5MB file):\n",
        client_info.ip
    );
    println!(
        "{:<16} {:>12} {:>10} {:>14}",
        "replica", "pred RTT", "pred loss", "actual DL time"
    );

    let mut best_pred: Option<(inano::model::HostId, f64)> = None;
    for &r in &replicas {
        let rinfo = world.net.host(r);
        let pred = predictor.predict(client_info.prefix, rinfo.prefix).ok();
        let (rtt_s, loss_s, score) = match &pred {
            Some(p) => {
                // Pick by predicted PFTK throughput (latency + loss).
                let thr = inano::apps::tcp_model::pftk_throughput(p.rtt, p.loss);
                (format!("{}", p.rtt), format!("{}", p.loss), Some(thr))
            }
            None => ("?".into(), "?".into(), None),
        };
        let actual = oracle
            .rtt(client, r)
            .zip(oracle.round_trip_loss(client, r))
            .map(|(rtt, loss)| transfer_time_secs(1_500_000.0, rtt, loss));
        println!(
            "{:<16} {:>12} {:>10} {:>13}",
            rinfo.ip.to_string(),
            rtt_s,
            loss_s,
            actual.map_or("unreachable".into(), |t| format!("{t:.2}s")),
        );
        if let Some(thr) = score {
            if best_pred.is_none_or(|(_, b)| thr > b) {
                best_pred = Some((r, thr));
            }
        }
    }

    if let Some((pick, _)) = best_pred {
        let t_pick = oracle
            .rtt(client, pick)
            .zip(oracle.round_trip_loss(client, pick))
            .map(|(rtt, loss)| transfer_time_secs(1_500_000.0, rtt, loss))
            .unwrap_or(f64::NAN);
        let t_rand: f64 = replicas
            .iter()
            .filter_map(|&r| {
                oracle
                    .rtt(client, r)
                    .zip(oracle.round_trip_loss(client, r))
                    .map(|(rtt, loss)| transfer_time_secs(1_500_000.0, rtt, loss))
            })
            .sum::<f64>()
            / replicas.len() as f64;
        println!("\niNano's pick downloads in {t_pick:.2}s; a random pick averages {t_rand:.2}s");
    }
}
