//! Quickstart: the iNano pipeline end to end in one file.
//!
//! 1. Generate a small synthetic Internet (stand-in for the real one).
//! 2. Run a measurement day (traceroutes from vantage points + end-host
//!    agents, BGP feeds, loss probes) and build the compact atlas.
//! 3. Bootstrap an iNano client from the encoded atlas and ask it for
//!    path, latency and loss predictions between two arbitrary hosts.
//!
//! Run with: `cargo run --release --example quickstart`

use inano::core::client::StaticSource;
use inano::core::{INanoClient, PredictorConfig};
use inano::demo::DemoWorld;

fn main() {
    println!("building a synthetic Internet + one measurement day...");
    let world = DemoWorld::new(1);
    println!("  {}", world.net.summary());

    // Encode the atlas exactly as the distribution side would ship it.
    let (bytes, sizes) = inano::atlas::codec::encode(&world.atlas);
    println!(
        "atlas: {} entries, {:.1} KB encoded ({} links, {} 3-tuples, {} preferences)",
        world.atlas.total_entries(),
        bytes.len() as f64 / 1e3,
        world.atlas.links.len(),
        world.atlas.tuples.len(),
        world.atlas.prefs.len(),
    );
    let _ = sizes;

    // A client fetches the atlas (here from memory; `inano::swarm`
    // provides a swarming source and `inano::net` a wire-level mirror
    // source) and serves queries locally.
    let mut source = inano::core::BlobSource::new(StaticSource {
        full: bytes,
        deltas: vec![],
    });
    let client =
        INanoClient::bootstrap(&mut source, PredictorConfig::full()).expect("atlas decodes");
    println!("client bootstrapped at day {}", client.day());

    // Predict between two arbitrary end-hosts.
    let hosts = world.sample_hosts(2);
    let (a, b) = (world.net.host(hosts[0]), world.net.host(hosts[1]));
    println!("\nquery: {} ({}) -> {} ({})", a.ip, a.asn, b.ip, b.asn);
    match client.query(a.ip, b.ip) {
        Ok(p) => {
            println!("  forward AS path : {:?}", p.fwd_as_path);
            println!("  reverse AS path : {:?}", p.rev_as_path);
            println!("  predicted RTT   : {}", p.rtt);
            println!("  predicted loss  : {}", p.loss);
            println!(
                "  forward clusters: {} PoP-level hops",
                p.fwd_clusters.len()
            );
        }
        Err(e) => println!("  no prediction: {e}"),
    }

    // Compare against the ground truth the simulation knows.
    let oracle = world.oracle(0);
    if let (Some(rtt), Some(loss)) = (
        oracle.rtt(hosts[0], hosts[1]),
        oracle.round_trip_loss(hosts[0], hosts[1]),
    ) {
        println!("  actual RTT      : {rtt}");
        println!("  actual loss     : {loss}");
    }
}
