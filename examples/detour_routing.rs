//! Detouring around failures (§7.3): when the direct path breaks, ask
//! iNano for detour hosts whose predicted paths are maximally disjoint
//! from the (predicted) direct path, and try them in order.
//!
//! Run with: `cargo run --release --example detour_routing`

use inano::apps::detour::rank_detours;
use inano::core::{PathPredictor, PredictorConfig};
use inano::demo::DemoWorld;
use inano::model::rng::rng_for;
use inano::routing::{FailureScenario, RoutingOracle};
use std::sync::Arc;

fn main() {
    let world = DemoWorld::new(4);
    let baseline = world.oracle(0);
    let predictor = PathPredictor::new(Arc::new(world.atlas.clone()), PredictorConfig::full());
    let mut rng = rng_for(4, "example-detour");

    let hosts = world.sample_hosts(16);
    let src = hosts[0];
    let dst_prefix = world.net.host(hosts[1]).prefix;
    let src_prefix = world.net.host(src).prefix;

    // Break a transit PoP on the direct path.
    let direct = baseline
        .host_to_prefix(src, dst_prefix)
        .expect("baseline path exists");
    println!(
        "direct path: {:?} ({} PoP hops)",
        direct.as_path,
        direct.pops.len()
    );
    let Some(failure) = FailureScenario::transit_outage_on_path(&world.net, &direct.pops, &mut rng)
    else {
        println!("path too short to break mid-transit — rerun with another seed");
        return;
    };
    println!("injected failure: {}", failure.description);
    let broken = RoutingOracle::with_failures(&world.net, world.churn.day_state(0), &failure);

    if broken.host_to_prefix(src, dst_prefix).is_some() {
        println!("routing healed around the failure by itself (multi-homed transit)");
        return;
    }
    println!("direct path is DOWN; trying detours\n");

    // Candidates: the other sample hosts.
    let candidates: Vec<_> = hosts[2..]
        .iter()
        .map(|&h| world.net.host(h).prefix)
        .collect();
    let ranked = rank_detours(&predictor, src_prefix, dst_prefix, &candidates, 5);

    for (i, &detour) in ranked.iter().enumerate() {
        let relay = world
            .net
            .hosts
            .iter()
            .find(|h| h.prefix == detour)
            .map(|h| h.id)
            .expect("detour prefix has a host");
        let leg1 = broken.host_to_prefix(src, detour).is_some();
        let leg2 = broken.host_to_prefix(relay, dst_prefix).is_some();
        let verdict = if leg1 && leg2 {
            "WORKS"
        } else if !leg1 {
            "src->detour down"
        } else {
            "detour->dst down"
        };
        println!("detour #{}: via {} -> {verdict}", i + 1, detour);
        if leg1 && leg2 {
            return;
        }
    }
    println!("no detour within budget recovered the path");
}
