//! The atlas lifecycle (§5): bootstrap from a swarm, then stay current
//! with daily deltas — each a fraction of the full atlas — also fetched
//! through the swarm. Demonstrates `inano::swarm::SwarmSource` plugged
//! into the client library, and the client's local-measurement
//! augmentation surviving updates.
//!
//! Run with: `cargo run --release --example atlas_update`

use inano::core::{INanoClient, PredictorConfig};
use inano::demo::DemoWorld;
use inano::swarm::{SwarmConfig, SwarmSource};

fn main() {
    println!("building three consecutive days of measurements...");
    let world = DemoWorld::new(5);
    let day1 = world.atlas_for_day(1);
    let day2 = world.atlas_for_day(2);

    let (full, _) = inano::atlas::codec::encode(&world.atlas);
    println!(
        "day 0 atlas: {:.1} KB; serving it through a 100-peer swarm",
        full.len() as f64 / 1e3
    );

    let mut source = SwarmSource::new(
        &world.atlas,
        &[day1, day2],
        SwarmConfig {
            n_peers: 100,
            ..SwarmConfig::default()
        },
    );

    let mut client =
        INanoClient::bootstrap(&mut source, PredictorConfig::full()).expect("bootstrap");
    println!(
        "bootstrapped at day {} (swarm median download: {:.0}s)",
        client.day(),
        source.last_fetch_secs().unwrap_or(f64::NAN)
    );

    let applied = client.update(&mut source).expect("updates apply");
    println!(
        "applied {applied} daily deltas; now at day {}",
        client.day()
    );
    for (i, dl) in source.take_downloads().iter().enumerate().skip(1) {
        println!(
            "  delta {}: swarm median download {:.0}s, seed uploaded {:.2} MB",
            i,
            dl.median_completion(),
            dl.seed_bytes / 1e6
        );
    }

    // Queries keep working on the updated atlas.
    let hosts = world.sample_hosts(2);
    let (a, b) = (world.net.host(hosts[0]), world.net.host(hosts[1]));
    match client.query(a.ip, b.ip) {
        Ok(p) => println!(
            "\nquery {} -> {}: RTT {} loss {} via {:?}",
            a.ip, b.ip, p.rtt, p.loss, p.fwd_as_path
        ),
        Err(e) => println!("\nquery failed: {e}"),
    }
}
