//! The network front end end to end: start a `NetServer` hosting TWO
//! independent atlas shards behind one loopback listener, talk to it
//! with `NetClient` — ping, shard listing, per-shard query batches and
//! epoch metadata — then land a daily delta on shard 0 and watch
//! remote clients see the new epoch there and *only* there.
//!
//! Run with: `cargo run --release --example net_quickstart`
//!
//! (For a long-lived server use the `inano-serve` binary — e.g.
//! `inano-serve --ring 16 --ring 24` for this same two-shard shape;
//! this example is the same stack in one process.)

use inano::net::demo::{ring_atlas, ring_ip, ring_predictor_config, ring_shortcut_delta};
use inano::net::{NetClient, NetServer, ServerConfig};
use inano::service::{RegistryConfig, ShardId, ShardRegistry, ShardSpec};
use std::sync::Arc;

fn main() {
    // Two shards, two different ring worlds: shard 0 is what every
    // shard-unaware client talks to; shard 1 is a second atlas
    // generation served by the same process.
    let rings = [16u32, 24u32];
    let registry = Arc::new(
        ShardRegistry::build(
            rings
                .iter()
                .enumerate()
                .map(|(i, &n)| ShardSpec {
                    id: ShardId(i as u16),
                    atlas: Arc::new(ring_atlas(n, 0)),
                    predictor: ring_predictor_config(),
                })
                .collect(),
            RegistryConfig::default(),
        )
        .expect("build the registry"),
    );
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServerConfig::default(),
    )
    .expect("bind an ephemeral loopback port");
    println!("server on {}", server.local_addr());

    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    client.ping().expect("ping");
    for info in client.shards().expect("list shards") {
        println!(
            "  shard {}: epoch {}, day {}",
            info.shard, info.epoch, info.day
        );
    }

    // Shard-unaware calls keep their old meaning: they land on shard 0.
    let far = rings[0] / 2;
    let pairs = [(ring_ip(0), ring_ip(far))];
    let path = client.query_batch(&pairs).expect("batch")[0]
        .clone()
        .expect("ring pairs are routable")
        .into_predicted();
    println!(
        "shard 0: {:?} -> {:?}: {} cluster hops, rtt {:.2} ms",
        pairs[0].0,
        pairs[0].1,
        path.fwd_clusters.len(),
        path.rtt.ms()
    );

    // The same addresses mean different things on shard 1 — it is a
    // different (bigger) world with its own routes.
    let far1 = rings[1] / 2;
    let on_shard1 = client
        .query_batch_on(ShardId(1), &[(ring_ip(0), ring_ip(far1))])
        .expect("batch on shard 1")[0]
        .clone()
        .expect("routable on shard 1")
        .into_predicted();
    println!(
        "shard 1: {:?} -> {:?}: {} cluster hops",
        ring_ip(0),
        ring_ip(far1),
        on_shard1.fwd_clusters.len()
    );

    // A daily delta lands on shard 0 only; remote queries never stop,
    // and shard 1's epoch does not move.
    registry
        .apply_delta(ShardId(0), &ring_shortcut_delta(rings[0], 0))
        .expect("delta applies");
    let (epoch0, day0) = client.epoch().expect("epoch");
    let (epoch1, day1) = client.epoch_on(ShardId(1)).expect("epoch on shard 1");
    let after = client.query_batch(&pairs).expect("batch")[0]
        .clone()
        .expect("still routable")
        .into_predicted();
    println!(
        "after the swap: shard 0 at epoch {epoch0}, day {day0} \
         ({:?} -> {:?} is now {} hops — the new shortcut); \
         shard 1 untouched at epoch {epoch1}, day {day1}",
        pairs[0].0,
        pairs[0].1,
        after.fwd_clusters.len()
    );

    let stats = client.stats().expect("stats");
    println!(
        "shard 0 served {} queries, cache hit rate {:.2}",
        stats.queries, stats.cache_hit_rate
    );

    // Any server is also an atlas *mirror*: fetch shard 1's atlas over
    // the wire (chunked + checksummed) and stand up a second engine
    // from it — `MirrorSource` is an `AtlasSource` like any other.
    // (`inano-serve --mirror ADDR` is this loop as a binary.)
    let mut upstream = inano::net::MirrorSource::connect(server.local_addr(), ShardId(1))
        .expect("connect a mirror source");
    let mirrored = inano::service::QueryEngine::bootstrap(
        &mut upstream,
        inano::service::ServiceConfig {
            predictor: ring_predictor_config(),
            ..inano::service::ServiceConfig::default()
        },
    )
    .expect("bootstrap an engine over the wire");
    let origin_tag = registry.export(ShardId(1)).expect("export").epoch_tag;
    println!(
        "mirrored shard 1 over the wire: day {}, epoch tag {:#018x} (origin tag {:#018x}, {})",
        mirrored.day(),
        mirrored.export().epoch_tag,
        origin_tag,
        if mirrored.export().epoch_tag == origin_tag {
            "identical"
        } else {
            "DIVERGED?!"
        },
    );

    server.shutdown();
    registry.shutdown();
    mirrored.shutdown();
    println!("clean shutdown");
}
