//! The network front end end to end: start a `NetServer` over a demo
//! ring world on an ephemeral loopback port, talk to it with
//! `NetClient` — ping, a query batch, a resolution, epoch metadata —
//! then land a daily delta on the live engine and watch remote clients
//! see the new epoch.
//!
//! Run with: `cargo run --release --example net_quickstart`
//!
//! (For a long-lived server use the `inano-serve` binary; this example
//! is the same stack in one process.)

use inano::net::demo::{ring_atlas, ring_ip, ring_predictor_config, ring_shortcut_delta};
use inano::net::{NetClient, NetServer, ServerConfig};
use inano::service::{QueryEngine, ServiceConfig};
use std::sync::Arc;

fn main() {
    let ring = 16u32;
    let engine = Arc::new(QueryEngine::new(
        Arc::new(ring_atlas(ring, 0)),
        ServiceConfig {
            predictor: ring_predictor_config(),
            ..ServiceConfig::default()
        },
    ));
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&engine), ServerConfig::default())
        .expect("bind an ephemeral loopback port");
    println!("server on {}", server.local_addr());

    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    client.ping().expect("ping");
    let (epoch, day) = client.epoch().expect("epoch");
    println!("connected; serving epoch {epoch}, day {day}");

    let far = ring / 2;
    let pairs = [(ring_ip(0), ring_ip(far)), (ring_ip(3), ring_ip(11))];
    for (i, result) in client
        .query_batch(&pairs)
        .expect("batch")
        .into_iter()
        .enumerate()
    {
        let path = result.expect("ring pairs are routable").into_predicted();
        println!(
            "  {:?} -> {:?}: {} cluster hops, rtt {:.2} ms",
            pairs[i].0,
            pairs[i].1,
            path.fwd_clusters.len(),
            path.rtt.ms()
        );
    }
    let resolution = client.resolve(ring_ip(far)).expect("resolve");
    println!(
        "resolve({:?}): prefix pfx{}, cluster cl{}",
        ring_ip(far),
        resolution.prefix,
        resolution.cluster
    );

    // A daily delta lands on the live engine; remote queries never
    // stop, and the next batch is served from the new generation.
    engine
        .apply_delta(&ring_shortcut_delta(ring, 0))
        .expect("delta applies");
    let (epoch, day) = client.epoch().expect("epoch");
    let after = client.query_batch(&pairs[..1]).expect("batch")[0]
        .clone()
        .expect("still routable")
        .into_predicted();
    println!(
        "after the swap: epoch {epoch}, day {day}; {:?} -> {:?} is now {} hops (the new shortcut)",
        pairs[0].0,
        pairs[0].1,
        after.fwd_clusters.len()
    );

    let stats = client.stats().expect("stats");
    println!(
        "server served {} queries, cache hit rate {:.2}",
        stats.queries, stats.cache_hit_rate
    );
    server.shutdown();
    engine.shutdown();
    println!("clean shutdown");
}
