//! VoIP relay selection (§7.2): two NATed endpoints must call through a
//! relay; iNano picks the relays with the lowest predicted loss, then
//! latency, and the call quality is scored with the mean opinion score.
//!
//! Run with: `cargo run --release --example voip_relay`

use inano::apps::voip::{call_quality, pick_relay, RelayStrategy};
use inano::core::{PathPredictor, PredictorConfig};
use inano::demo::DemoWorld;
use inano::model::rng::rng_for;
use std::sync::Arc;

fn main() {
    let world = DemoWorld::new(3);
    let oracle = world.oracle(0);
    let predictor = PathPredictor::new(Arc::new(world.atlas.clone()), PredictorConfig::full());
    let mut rng = rng_for(3, "example-voip");

    let hosts = world.sample_hosts(20);
    let (src, dst) = (hosts[0], hosts[1]);
    let candidates = hosts[2..].to_vec();

    println!(
        "call {} -> {} via a relay ({} candidates)\n",
        world.net.host(src).ip,
        world.net.host(dst).ip,
        candidates.len()
    );
    println!(
        "{:<16} {:<16} {:>10} {:>10} {:>7}",
        "strategy", "relay", "loss", "rtt", "MOS"
    );
    for strategy in RelayStrategy::all() {
        let Some(relay) = pick_relay(
            strategy,
            &oracle,
            &predictor,
            src,
            dst,
            &candidates,
            &mut rng,
        ) else {
            println!("{:<16} (none)", strategy.name());
            continue;
        };
        match call_quality(&oracle, src, relay, dst) {
            Some(call) => println!(
                "{:<16} {:<16} {:>10} {:>10} {:>7.2}",
                strategy.name(),
                world.net.host(relay).ip.to_string(),
                call.loss.to_string(),
                call.rtt.to_string(),
                call.mos
            ),
            None => println!("{:<16} relay unreachable", strategy.name()),
        }
    }
    println!("\n(higher MOS is better; 4.0+ is toll quality)");
}
