//! The serving layer end to end: bootstrap the concurrent query engine
//! through the dissemination swarm, hammer it from several client
//! threads, and land a daily delta mid-load — queries never stop, and
//! every query issued after the swap sees the new day.
//!
//! Run with: `cargo run --release --example service_engine`

use inano::demo::DemoWorld;
use inano::model::Ipv4;
use inano::service::{QueryEngine, ServiceConfig};
use inano::swarm::{SwarmConfig, SwarmSource};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn main() {
    println!("building a demo world and two days of measurements...");
    let world = DemoWorld::new(5);
    let day1 = world.atlas_for_day(1);
    let mut source = SwarmSource::new(
        &world.atlas,
        &[day1],
        SwarmConfig {
            n_peers: 100,
            ..SwarmConfig::default()
        },
    );

    let engine = Arc::new(
        QueryEngine::bootstrap(&mut source, ServiceConfig::default()).expect("bootstrap via swarm"),
    );
    println!(
        "engine up at day {} with {} workers (swarm median download {:.0}s)",
        engine.day(),
        engine.stats().workers,
        source.last_fetch_secs().unwrap_or(f64::NAN)
    );

    // A client population asking about a fixed set of popular pairs.
    let hosts = world.sample_hosts(24);
    let ips: Vec<Ipv4> = hosts.iter().map(|&h| world.net.host(h).ip).collect();
    let pairs: Vec<(Ipv4, Ipv4)> = ips
        .iter()
        .flat_map(|&s| ips.iter().filter(move |&&d| d != s).map(move |&d| (s, d)))
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let pairs = pairs.clone();
            thread::spawn(move || {
                let mut ok = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    ok += engine
                        .query_batch(&pairs)
                        .into_iter()
                        .filter(Result::is_ok)
                        .count() as u64;
                }
                ok
            })
        })
        .collect();

    thread::sleep(Duration::from_millis(150));
    let applied = engine.update(&mut source).expect("daily delta applies");
    println!(
        "applied {applied} delta(s) under load; now serving day {}",
        engine.day()
    );
    thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::Relaxed);
    let answered: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();

    let stats = engine.stats();
    println!(
        "\n{answered} routable answers; engine saw {} queries at {:.0} qps",
        stats.queries, stats.qps
    );
    println!(
        "latency p50 {}us p99 {}us; cache hit rate {:.1}% ({} evictions); epoch {}",
        stats.p50_us,
        stats.p99_us,
        stats.cache_hit_rate * 100.0,
        stats.cache_evictions,
        stats.epoch
    );
}
