//! Property-based tests on the prediction engine over randomly generated
//! (but structurally valid) atlases: predictions are deterministic,
//! well-formed, and respect the structural invariants the search
//! guarantees by construction.

use inano::atlas::{Atlas, LinkAnnotation, Plane};
use inano::core::{PathPredictor, PredictorConfig};
use inano::model::{Asn, ClusterId, Ipv4, LatencyMs, Prefix, PrefixId};
use proptest::prelude::*;
use std::sync::Arc;

// A random connected-ish atlas: clusters 0..n on a ring plus random
// chords, each cluster its own AS, one prefix per cluster.
prop_compose! {
    fn arb_routed_atlas()(
        n in 4usize..20,
        chords in proptest::collection::vec((0u32..20, 0u32..20), 0..15),
        lat in 0.5f64..30.0,
    ) -> Atlas {
        let mut a = Atlas::default();
        let n = n as u32;
        let add = |a: &mut Atlas, x: u32, y: u32| {
            if x == y { return; }
            a.links.insert(
                (ClusterId::new(x), ClusterId::new(y)),
                LinkAnnotation { latency: Some(LatencyMs::new(lat)), plane: Plane::TO_DST },
            );
            a.links.insert(
                (ClusterId::new(y), ClusterId::new(x)),
                LinkAnnotation { latency: Some(LatencyMs::new(lat)), plane: Plane::TO_DST },
            );
        };
        for i in 0..n {
            add(&mut a, i, (i + 1) % n);
        }
        for (x, y) in chords {
            add(&mut a, x % n, y % n);
        }
        for c in 0..n {
            a.cluster_as.insert(ClusterId::new(c), Asn::new(c));
            a.as_degree.insert(Asn::new(c), 2);
            let pid = PrefixId::new(c);
            a.prefix_cluster.insert(pid, ClusterId::new(c));
            a.prefix_as.insert(
                pid,
                (Prefix::new(Ipv4(c << 16), 16), Asn::new(c)),
            );
        }
        a
    }
}

fn tuple_free_config() -> PredictorConfig {
    // Tuples would block everything on an atlas with no observed routes.
    let mut cfg = PredictorConfig::full();
    cfg.use_tuples = false;
    cfg.use_prefs = false;
    cfg.use_providers = false;
    cfg.use_from_src = false;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn predictions_are_deterministic(atlas in arb_routed_atlas()) {
        let atlas = Arc::new(atlas);
        let p1 = PathPredictor::new(Arc::clone(&atlas), tuple_free_config());
        let p2 = PathPredictor::new(Arc::clone(&atlas), tuple_free_config());
        let n = atlas.prefix_cluster.len() as u32;
        for s in 0..n.min(6) {
            for d in 0..n.min(6) {
                if s == d { continue; }
                let a = p1.predict_forward(PrefixId::new(s), PrefixId::new(d)).ok();
                let b = p2.predict_forward(PrefixId::new(s), PrefixId::new(d)).ok();
                prop_assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn predicted_paths_are_wellformed(atlas in arb_routed_atlas()) {
        let atlas = Arc::new(atlas);
        let p = PathPredictor::new(Arc::clone(&atlas), tuple_free_config());
        let n = atlas.prefix_cluster.len() as u32;
        for s in 0..n.min(8) {
            for d in 0..n.min(8) {
                if s == d { continue; }
                let Ok(path) = p.predict_forward(PrefixId::new(s), PrefixId::new(d)) else {
                    continue;
                };
                // Endpoints are right.
                prop_assert_eq!(path.first(), Some(&ClusterId::new(s)));
                prop_assert_eq!(path.last(), Some(&ClusterId::new(d)));
                // Every consecutive pair is an atlas link (in one of the
                // two directions — reversed traversal is legal).
                for w in path.windows(2) {
                    let fwd = atlas.links.contains_key(&(w[0], w[1]));
                    let rev = atlas.links.contains_key(&(w[1], w[0]));
                    prop_assert!(fwd || rev, "phantom link {:?}", w);
                }
                // No cluster repeats (simple path on a ring+chords graph).
                let mut seen = std::collections::HashSet::new();
                for c in &path {
                    prop_assert!(seen.insert(*c), "loop through {c}");
                }
                // Latency estimate is positive and finite.
                let l = p.latency_of(&path);
                prop_assert!(l.ms() > 0.0 && l.ms().is_finite());
            }
        }
    }

    #[test]
    fn ring_paths_take_the_short_way(n in 5usize..16) {
        // Pure ring, no chords: the predictor must take the shorter arc
        // (fewer AS hops == fewer clusters here).
        let mut atlas = Atlas::default();
        let n = n as u32;
        for i in 0..n {
            let j = (i + 1) % n;
            for (x, y) in [(i, j), (j, i)] {
                atlas.links.insert(
                    (ClusterId::new(x), ClusterId::new(y)),
                    LinkAnnotation { latency: Some(LatencyMs::new(1.0)), plane: Plane::TO_DST },
                );
            }
            atlas.cluster_as.insert(ClusterId::new(i), Asn::new(i));
            atlas.prefix_cluster.insert(PrefixId::new(i), ClusterId::new(i));
            atlas.prefix_as.insert(
                PrefixId::new(i),
                (Prefix::new(Ipv4(i << 16), 16), Asn::new(i)),
            );
        }
        let p = PathPredictor::new(Arc::new(atlas), tuple_free_config());
        for d in 1..n {
            let path = p.predict_forward(PrefixId::new(0), PrefixId::new(d)).unwrap();
            let clockwise = d as usize + 1;
            let counter = (n - d) as usize + 1;
            prop_assert_eq!(path.len(), clockwise.min(counter));
        }
    }
}
