//! Cross-crate integration: the full pipeline from synthetic Internet to
//! client queries, exercised at demo scale.

use inano::atlas::{codec, AtlasDelta};
use inano::core::client::StaticSource;
use inano::core::{BlobSource, INanoClient, PathPredictor, PredictorConfig};
use inano::demo::DemoWorld;
use inano::model::{AsPath, Asn};
use std::sync::Arc;

fn world() -> DemoWorld {
    DemoWorld::new(11)
}

#[test]
fn full_model_beats_graph_baseline() {
    let w = world();
    let oracle = w.oracle(0);
    let atlas = Arc::new(w.atlas.clone());
    let graph = PathPredictor::new(Arc::clone(&atlas), PredictorConfig::graph());
    let full = PathPredictor::new(Arc::clone(&atlas), PredictorConfig::full());

    // Validation pairs: agents to random prefixes (excluding their atlas
    // dests is handled by sampling distinct prefixes).
    let mut graph_right = 0;
    let mut full_right = 0;
    let mut total = 0;
    for (i, &src) in w.vps.agents.iter().take(10).enumerate() {
        let sp = w.net.host(src).prefix;
        for j in 0..30 {
            let dst = w.net.prefixes[(i * 53 + j * 17) % w.net.prefixes.len()].id;
            if w.net.prefix(dst).is_infrastructure || dst == sp {
                continue;
            }
            let Some(truth) = oracle.host_to_prefix(src, dst) else {
                continue;
            };
            total += 1;
            let score = |p: &PathPredictor| -> bool {
                p.predict_forward(sp, dst)
                    .map(|f| p.as_path_of(&f, dst) == truth.as_path)
                    .unwrap_or(false)
            };
            graph_right += usize::from(score(&graph));
            full_right += usize::from(score(&full));
        }
    }
    assert!(total > 100, "need a real sample, got {total}");
    assert!(
        full_right > graph_right,
        "full iNano ({full_right}/{total}) must beat GRAPH ({graph_right}/{total})"
    );
}

#[test]
fn predictions_match_ground_truth_shape() {
    let w = world();
    let oracle = w.oracle(0);
    let predictor = PathPredictor::new(Arc::new(w.atlas.clone()), PredictorConfig::full());
    let hosts = w.sample_hosts(8);
    let mut compared = 0;
    for &a in &hosts {
        for &b in &hosts {
            if a == b {
                continue;
            }
            let (pa, pb) = (w.net.host(a).prefix, w.net.host(b).prefix);
            let (Ok(pred), Some(truth)) = (predictor.predict(pa, pb), oracle.rtt(a, b)) else {
                continue;
            };
            compared += 1;
            // Predicted RTT within a generous factor of truth (link
            // inference + path errors, but the same order of magnitude).
            assert!(
                pred.rtt.ms() < truth.ms() * 4.0 + 100.0,
                "prediction {} vs truth {} way off",
                pred.rtt,
                truth
            );
            // Paths start at the source's AS and end at the target's.
            assert_eq!(pred.fwd_as_path.first(), Some(w.net.host(a).asn));
            assert_eq!(pred.fwd_as_path.last(), Some(w.net.host(b).asn));
        }
    }
    assert!(compared > 20, "too few comparable pairs: {compared}");
}

#[test]
fn atlas_roundtrip_preserves_predictions() {
    let w = world();
    let (bytes, _) = codec::encode(&w.atlas);
    let decoded = codec::decode(&bytes).expect("decodes");
    let p1 = PathPredictor::new(Arc::new(codec::quantise(&w.atlas)), PredictorConfig::full());
    let p2 = PathPredictor::new(Arc::new(decoded), PredictorConfig::full());
    let hosts = w.sample_hosts(6);
    for &a in &hosts {
        for &b in &hosts {
            if a == b {
                continue;
            }
            let (pa, pb) = (w.net.host(a).prefix, w.net.host(b).prefix);
            let r1 = p1.predict(pa, pb).ok().map(|p| p.fwd_clusters);
            let r2 = p2.predict(pa, pb).ok().map(|p| p.fwd_clusters);
            assert_eq!(r1, r2, "encode/decode changed a prediction");
        }
    }
}

#[test]
fn client_daily_update_flow() {
    let w = world();
    let day1 = w.atlas_for_day(1);
    let (full, _) = codec::encode(&w.atlas);
    let delta = AtlasDelta::between(&w.atlas, &day1);
    let (l, s, t) = delta.entry_counts();
    assert!(l + s + t > 0, "consecutive days should differ somewhere");
    let (delta_bytes, _) = delta.encode();
    // The §6.2.3 claim at our scale: the delta is much smaller than the
    // full atlas.
    assert!(
        delta_bytes.len() * 2 < full.len(),
        "delta {} vs full {}",
        delta_bytes.len(),
        full.len()
    );

    let mut src = BlobSource::new(StaticSource {
        full,
        deltas: vec![delta_bytes],
    });
    let mut client = INanoClient::bootstrap(&mut src, PredictorConfig::full()).unwrap();
    assert_eq!(client.day(), 0);
    assert_eq!(client.update(&mut src).unwrap(), 1);
    assert_eq!(client.day(), 1);
    // The updated client answers queries.
    let hosts = w.sample_hosts(2);
    let (a, b) = (w.net.host(hosts[0]), w.net.host(hosts[1]));
    assert!(client.query(a.ip, b.ip).is_ok());
}

#[test]
fn as_paths_collapse_and_terminate_correctly() {
    let w = world();
    let predictor = PathPredictor::new(Arc::new(w.atlas.clone()), PredictorConfig::full());
    let hosts = w.sample_hosts(5);
    for &a in &hosts {
        let sp = w.net.host(a).prefix;
        for p in w.net.prefixes.iter().take(40) {
            if p.is_infrastructure || p.id == sp {
                continue;
            }
            if let Ok(fwd) = predictor.predict_forward(sp, p.id) {
                let ap: AsPath = predictor.as_path_of(&fwd, p.id);
                // No immediate duplicates (AsPath collapses them) and the
                // origin terminates the path.
                assert_eq!(ap.last(), Some(p.origin));
                let slice = ap.as_slice();
                for win in slice.windows(2) {
                    assert_ne!(win[0], win[1]);
                }
                let _: Vec<Asn> = slice.to_vec();
            }
        }
    }
}
