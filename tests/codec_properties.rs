//! Property-based tests on the atlas codec and delta machinery: for any
//! atlas (not just measured ones), encode→decode is the identity after
//! quantisation, and deltas reconstruct the daily datasets exactly.

use inano::atlas::{codec, Atlas, AtlasDelta, LinkAnnotation, Plane, Triple};
use inano::model::{Asn, ClusterId, Ipv4, LatencyMs, LossRate, Prefix, PrefixId};
use proptest::prelude::*;

fn arb_plane() -> impl Strategy<Value = Plane> {
    (any::<bool>(), any::<bool>()).prop_map(|(t, f)| Plane {
        to_dst: t || !f, // at least one plane set
        from_src: f,
    })
}

fn arb_link() -> impl Strategy<Value = ((ClusterId, ClusterId), LinkAnnotation)> {
    (
        0u32..500,
        0u32..500,
        proptest::option::of(0.0f64..1000.0),
        arb_plane(),
    )
        .prop_map(|(a, b, lat, plane)| {
            (
                (ClusterId::new(a), ClusterId::new(b)),
                LinkAnnotation {
                    latency: lat.map(LatencyMs::new),
                    plane,
                },
            )
        })
}

prop_compose! {
    fn arb_atlas()(
        day in 0u32..400,
        links in proptest::collection::vec(arb_link(), 0..60),
        loss in proptest::collection::vec((0u32..500, 0u32..500, 0.0f64..0.5), 0..20),
        tuples in proptest::collection::vec((0u32..200, 0u32..200, 0u32..200), 0..40),
        prefs in proptest::collection::vec((0u32..200, 0u32..200, 0u32..200), 0..20),
        prefixes in proptest::collection::vec((0u32..300, 0u8..25, 0u32..200), 0..30),
        degrees in proptest::collection::vec((0u32..200, 0u32..1000), 0..30),
    ) -> Atlas {
        let mut a = Atlas { day, ..Atlas::default() };
        for (k, ann) in links {
            a.links.insert(k, ann);
            a.cluster_as.insert(k.0, Asn::new(k.0.raw() % 97));
            a.cluster_as.insert(k.1, Asn::new(k.1.raw() % 97));
        }
        for (x, y, l) in loss {
            let key = (ClusterId::new(x), ClusterId::new(y));
            if a.links.contains_key(&key) {
                a.loss.insert(key, LossRate::new(l));
            }
        }
        for (x, y, z) in tuples {
            a.tuples.insert(Triple::canonical(Asn::new(x), Asn::new(y), Asn::new(z)));
        }
        for (x, y, z) in prefs {
            if y != z {
                a.prefs.insert((Asn::new(x), Asn::new(y), Asn::new(z)));
            }
        }
        for (i, (addr, len, origin)) in prefixes.into_iter().enumerate() {
            let pid = PrefixId::new(i as u32);
            a.prefix_as.insert(
                pid,
                (Prefix::new(Ipv4(addr << 8), 8 + len), Asn::new(origin)),
            );
            a.prefix_cluster.insert(pid, ClusterId::new(addr % 500));
        }
        for (asn, d) in degrees {
            a.as_degree.insert(Asn::new(asn), d);
        }
        a
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codec_roundtrip_is_identity_after_quantise(atlas in arb_atlas()) {
        let q = codec::quantise(&atlas);
        let (bytes, sizes) = codec::encode(&q);
        prop_assert!(sizes.total() <= bytes.len());
        let d = codec::decode(&bytes).expect("decode");
        prop_assert_eq!(&q.links, &d.links);
        prop_assert_eq!(&q.loss, &d.loss);
        prop_assert_eq!(&q.prefix_cluster, &d.prefix_cluster);
        prop_assert_eq!(&q.prefix_as, &d.prefix_as);
        prop_assert_eq!(&q.as_degree, &d.as_degree);
        prop_assert_eq!(&q.tuples, &d.tuples);
        prop_assert_eq!(&q.prefs, &d.prefs);
        prop_assert_eq!(q.day, d.day);
    }

    #[test]
    fn delta_apply_reconstructs_daily_datasets(a in arb_atlas(), b in arb_atlas()) {
        let mut b = b;
        b.day = a.day.wrapping_add(1);
        let delta = AtlasDelta::between(&a, &b);
        let rebuilt = delta.apply(&a).expect("apply");
        let qb = codec::quantise(&b);
        prop_assert_eq!(&rebuilt.links, &qb.links);
        prop_assert_eq!(&rebuilt.loss, &qb.loss);
        prop_assert_eq!(&rebuilt.tuples, &qb.tuples);
    }

    #[test]
    fn delta_encode_roundtrip(a in arb_atlas(), b in arb_atlas()) {
        let mut b = b;
        b.day = a.day.wrapping_add(1);
        let delta = AtlasDelta::between(&a, &b);
        let (bytes, _) = delta.encode();
        let decoded = AtlasDelta::decode(&bytes).expect("delta decode");
        let r1 = delta.apply(&a).unwrap();
        let r2 = decoded.apply(&a).unwrap();
        prop_assert_eq!(r1.links, r2.links);
        prop_assert_eq!(r1.loss, r2.loss);
        prop_assert_eq!(r1.tuples, r2.tuples);
    }

    #[test]
    fn truncated_atlases_never_panic(atlas in arb_atlas(), cut in 0usize..200) {
        let (bytes, _) = codec::encode(&atlas);
        let cut = cut.min(bytes.len());
        // Must error or succeed, never panic.
        let _ = codec::decode(&bytes[..cut]);
    }
}
