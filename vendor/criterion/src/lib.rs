//! Offline stand-in for `criterion`: times each `bench_function` over a
//! fixed number of timed iterations after a short warm-up and prints
//! mean/min per iteration. No statistics engine, no HTML reports — just
//! enough to keep `cargo bench` meaningful offline.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup; the stand-in runs setup once per
/// iteration regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 60 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            samples: Vec::new(),
        };
        routine(&mut bencher);
        let total: Duration = bencher.samples.iter().sum();
        let n = bencher.samples.len().max(1) as u32;
        let mean = total / n;
        let min = bencher.samples.iter().min().copied().unwrap_or_default();
        println!(
            "bench {name:<40} mean {:>12?}  min {:>12?}  ({} iters)",
            mean, min, n
        );
        self
    }
}

pub struct Bencher {
    iters: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: a few untimed runs.
        for _ in 0..3.min(self.iters) {
            std_black_box(f());
        }
        for _ in 0..self.iters {
            let start = Instant::now();
            std_black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..3.min(self.iters) {
            std_black_box(routine(setup()));
        }
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn routine(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = routine
    }

    criterion_group!(plain, routine);

    #[test]
    fn groups_run() {
        benches();
        plain();
    }
}
