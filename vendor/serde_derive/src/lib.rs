//! Offline stand-in for `serde_derive`, written directly against
//! `proc_macro` (no syn/quote available offline). Supports exactly the
//! shapes this workspace derives on:
//!
//! * structs with named fields,
//! * tuple structs,
//! * unit structs,
//! * enums whose variants are all unit variants (serialised as their
//!   name).
//!
//! Generics and data-carrying enum variants are rejected with a
//! `compile_error!` so unsupported uses fail loudly at the derive site.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we learned about the item under the derive.
enum Item {
    Named { name: String, fields: Vec<String> },
    Tuple { name: String, arity: usize },
    Unit { name: String },
    UnitEnum { name: String, variants: Vec<String> },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let item = match parse(input) {
        Ok(item) => item,
        Err(msg) => return error(&msg),
    };
    let code = if serialize {
        gen_serialize(&item)
    } else {
        let name = match &item {
            Item::Named { name, .. }
            | Item::Tuple { name, .. }
            | Item::Unit { name }
            | Item::UnitEnum { name, .. } => name,
        };
        format!("impl serde::Deserialize for {name} {{}}")
    };
    code.parse().expect("derive emitted invalid Rust")
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Named { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(String::from({f:?}), serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Object(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::Tuple { name, arity: 1 } => format!(
            "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                     serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::Tuple { name, arity } => {
            let entries: Vec<String> = (0..*arity)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Array(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::Unit { name } => format!(
            "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{ serde::Value::Null }}\n\
             }}"
        ),
        Item::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?}"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Str(String::from(match self {{ {} }}))\n\
                     }}\n\
                 }}",
                arms.join(", ")
            )
        }
    }
}

/// Parse the derive input far enough to know name + shape.
fn parse(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attrs_and_vis(&tokens, &mut pos);

    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected struct or enum, found {other:?}")),
    };
    pos += 1;

    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    pos += 1;

    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stand-in derive: generic type {name} not supported"
        ));
    }

    if kind == "struct" {
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Named {
                name,
                fields: named_fields(g.stream())?,
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::Tuple {
                    name,
                    arity: tuple_arity(g.stream()),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::Unit { name }),
            other => Err(format!("unsupported struct body: {other:?}")),
        }
    } else {
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::UnitEnum {
                variants: unit_variants(g.stream(), &name)?,
                name,
            }),
            other => Err(format!("unsupported enum body: {other:?}")),
        }
    }
}

/// Advance past `#[...]` attributes (incl. doc comments) and `pub` /
/// `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(
                    tokens.get(*pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *pos += 1;
                }
            }
            _ => return,
        }
    }
}

/// Field names of a braced struct body.
fn named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => return Err(format!("expected ':' after {name}, found {other:?}")),
        }
        fields.push(name);
        skip_type(&tokens, &mut pos);
    }
    Ok(fields)
}

/// Consume a type up to (and including) the next top-level `,`,
/// tracking `<`/`>` nesting so generic-argument commas don't split.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    *pos += 1;
                    return;
                }
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Count fields of a tuple-struct body.
fn tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        arity += 1;
        skip_type(&tokens, &mut pos);
    }
    arity
}

/// Variant names of an all-unit enum; data variants are an error.
fn unit_variants(stream: TokenStream, enum_name: &str) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde stand-in derive: {enum_name}::{name} carries data, only unit \
                     variants are supported"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: consume until the next comma.
                pos += 1;
                skip_type(&tokens, &mut pos);
            }
            None => {}
            other => return Err(format!("unexpected token in enum body: {other:?}")),
        }
        variants.push(name);
    }
    Ok(variants)
}
