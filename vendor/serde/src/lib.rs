//! Offline stand-in for `serde`: [`Serialize`] renders a value into a
//! small JSON [`Value`] tree (consumed by the `serde_json` stand-in);
//! [`Deserialize`] is a marker — nothing in this workspace deserialises
//! through serde, but the derives must compile.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

pub use serde_derive::{Deserialize, Serialize};

/// A minimal JSON value model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Render as a JSON object key: bare strings stay bare, everything
    /// else uses its compact rendering (maps with non-string keys are
    /// tolerated, as serde_json does for integer keys).
    pub fn to_key(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            other => other.render_compact(),
        }
    }

    fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialise; `indent = Some(width)` pretty-prints.
    pub fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    // Match serde_json: integral floats keep a ".0".
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        out.push_str(&format!("{f:.1}"));
                    } else {
                        out.push_str(&f.to_string());
                    }
                } else {
                    // serde_json refuses non-finite floats; rendering
                    // null keeps report output usable instead.
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(out, s),
            Value::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                })
            }
            Value::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    write_json_string(out, &fields[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    fields[i].1.write(out, indent, d);
                })
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into the JSON value model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Marker: the type participates in `#[derive(Deserialize)]`.
pub trait Deserialize {}

macro_rules! impl_int {
    (signed $($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {}
    )*};
    (unsigned $($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {}
    )*};
}

impl_int!(signed i8, i16, i32, i64, isize);
impl_int!(unsigned u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for f64 {}
impl Deserialize for f32 {}
impl Deserialize for bool {}
impl Deserialize for String {}
impl Deserialize for char {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {}
    };
}

impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort by rendered key.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value().to_key(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K: Deserialize, V: Deserialize, S> Deserialize for HashMap<K, V, S> {}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_value().to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize, V: Deserialize> Deserialize for BTreeMap<K, V> {}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by_key(|a| a.render_compact());
        Value::Array(items)
    }
}

impl<T: Deserialize, S> Deserialize for HashSet<T, S> {}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for BTreeSet<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(1u32.to_value().render_compact(), "1");
        assert_eq!((-3i32).to_value().render_compact(), "-3");
        assert_eq!(true.to_value().render_compact(), "true");
        assert_eq!(2.5f64.to_value().render_compact(), "2.5");
        assert_eq!(2.0f64.to_value().render_compact(), "2.0");
        assert_eq!("a\"b".to_value().render_compact(), "\"a\\\"b\"");
    }

    #[test]
    fn containers_render() {
        let v = vec![(1u32, 2u32), (3, 4)];
        assert_eq!(v.to_value().render_compact(), "[[1,2],[3,4]]");
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        assert_eq!(m.to_value().render_compact(), "{\"a\":1,\"b\":2}");
        assert_eq!(Option::<u32>::None.to_value().render_compact(), "null");
    }

    #[test]
    fn hashmap_output_is_sorted() {
        let mut m = HashMap::new();
        for i in 0..20u32 {
            m.insert(i, i);
        }
        let a = m.to_value().render_compact();
        let b = m.to_value().render_compact();
        assert_eq!(a, b);
    }
}
