//! Offline stand-in for `proptest`: deterministic random generation
//! behind the same macro/Strategy surface, without shrinking. A failing
//! case reports the case number; re-running reproduces it because the
//! RNG seed is derived from the test name.

use std::ops::{Range, RangeInclusive};

/// Deterministic test RNG (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn uniform(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values (no shrinking in the stand-in).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// `.prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy built from a closure (used by `prop_compose!`).
pub struct FnStrategy<F>(pub F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Whole-domain generation (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.uniform(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.uniform(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + rng.uniform(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of(strategy)`: `None` one time in four, like
    /// upstream's default weighting.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.uniform(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Runner configuration (only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                let run = |rng: &mut $crate::TestRng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)*
                    $body
                };
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    run(&mut rng)
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest stand-in: {} failed at case {}/{}",
                        stringify!($name), case + 1, cfg.cases,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_compose {
    ($vis:vis fn $name:ident($($outer:tt)*)($($arg:ident in $strat:expr),* $(,)?) -> $ret:ty $body:block) => {
        $vis fn $name($($outer)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy(move |rng: &mut $crate::TestRng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)*
                $body
            })
        }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    prop_compose! {
        fn pair()(a in 0u32..10, b in 0u32..10) -> (u32, u32) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..9, y in 0usize..4, f in 0.5f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 4);
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn composed_and_collections(p in pair(), v in crate::collection::vec(0u8..5, 0..7)) {
            prop_assert!(p.0 < 10 && p.1 < 10);
            prop_assert!(v.len() < 7);
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn maps_and_options(o in crate::option::of(1u32..3), b in any::<bool>().prop_map(|x| !x)) {
            if let Some(x) = o {
                prop_assert!(x == 1 || x == 2);
            }
            let _ = b;
        }
    }
}
