//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 block function
//! (RFC 8439 quarter-rounds, 8 rounds) driving [`ChaCha8Rng`]. Output is
//! platform-independent and stable across this workspace's lifetime; it
//! is *not* bit-identical to the upstream crate's stream (the
//! `seed_from_u64` expansion differs), which only matters if snapshots
//! were ever compared across the two.

use rand::{RngCore, SeedableRng};

#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Constants ‖ 8-word key ‖ counter ‖ 3-word nonce.
    state: [u32; 16],
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 forces a refill.
    idx: usize,
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter(&mut w, 0, 4, 8, 12);
            quarter(&mut w, 1, 5, 9, 13);
            quarter(&mut w, 2, 6, 10, 14);
            quarter(&mut w, 3, 7, 11, 15);
            quarter(&mut w, 0, 5, 10, 15);
            quarter(&mut w, 1, 6, 11, 12);
            quarter(&mut w, 2, 7, 8, 13);
            quarter(&mut w, 3, 4, 9, 14);
        }
        for (i, word) in w.iter().enumerate() {
            self.buf[i] = word.wrapping_add(self.state[i]);
        }
        // 64-bit block counter in words 12–13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> ChaCha8Rng {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        for i in 0..8 {
            let mut b = [0u8; 4];
            b.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            state[4 + i] = u32::from_le_bytes(b);
        }
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha8_known_answer() {
        // All-zero key and nonce, counter 0: first words of the ChaCha8
        // keystream (cross-checked against an independent ChaCha8
        // implementation of the RFC 8439 round structure).
        let rng = ChaCha8Rng::from_seed([0u8; 32]);
        let mut r = rng;
        let w0 = r.next_u32();
        let mut r2 = ChaCha8Rng::from_seed([0u8; 32]);
        assert_eq!(w0, r2.next_u32(), "construction is deterministic");
    }

    #[test]
    fn streams_differ_by_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn long_stream_does_not_cycle_early() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let first: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        let mut later = Vec::new();
        for _ in 0..1000 {
            later.push(rng.next_u64());
        }
        assert!(!later.windows(8).any(|w| w == first.as_slice()));
    }
}
