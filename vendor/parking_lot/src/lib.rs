//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! primitives exposing the poison-free `lock()` / `read()` / `write()`
//! API. A poisoned lock (a panic while held) aborts via panic, which is
//! the same observable behaviour parking_lot's non-poisoning locks give
//! a correctly-written program.

use std::sync;
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
