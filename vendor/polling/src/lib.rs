//! Offline stand-in for the `polling` crate: a safe, oneshot
//! readiness-polling API over raw Linux `epoll` syscalls.
//!
//! The subset mirrors the upstream surface the workspace consumes:
//! [`Poller::new`], [`Poller::add`] (unsafe, as upstream — the caller
//! guarantees the source outlives its registration), [`Poller::modify`],
//! [`Poller::delete`], [`Poller::wait`] and [`Poller::notify`], with
//! [`Event`]/[`Events`] value types. As in upstream, registrations are
//! **oneshot**: once an event for a key is delivered, that key is
//! disarmed until re-armed with `modify`. This makes missed-wakeup bugs
//! structurally impossible — every delivery is explicitly re-requested —
//! at the cost of one `epoll_ctl` per delivered event.
//!
//! `notify` is the cross-thread wakeup: any thread may call it to make
//! a concurrent (or the next) `wait` return early. It is implemented
//! with a nonblocking self-pipe registered under a reserved key that
//! `wait` drains and never reports, so user keys keep the full `usize`
//! range below `usize::MAX`.
//!
//! The syscall layer binds `epoll_create1`/`epoll_ctl`/`epoll_wait` and
//! `pipe2` directly via `extern "C"` against the C runtime that every
//! Linux Rust binary already links — no external crate, matching the
//! rest of `vendor/`'s no-dependency rule. Error/hangup conditions
//! (`EPOLLERR`/`EPOLLHUP`/`EPOLLRDHUP`) are folded into reported
//! readability *and* writability so the owner attempts I/O and observes
//! the failure, the standard readiness-API convention.

use std::io;
use std::os::fd::AsRawFd;
use std::os::raw::c_int;
use std::time::{Duration, Instant};

// ---- raw syscall surface -------------------------------------------

#[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

// On every non-x86 Linux ABI `struct epoll_event` has natural alignment.
#[cfg(not(any(target_arch = "x86_64", target_arch = "x86")))]
#[repr(C)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLONESHOT: u32 = 1 << 30;
const O_NONBLOCK: c_int = 0o4000;
const O_CLOEXEC: c_int = 0o2000000;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

// ---- public value types --------------------------------------------

/// The key this poller reserves for its internal notify pipe; user
/// registrations must stay below it.
const NOTIFY_KEY: usize = usize::MAX;

/// Interest in (or delivery of) readiness on one registered source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier echoed back on delivery. Must be less
    /// than `usize::MAX` (reserved for the poller's own wakeup pipe).
    pub key: usize,
    pub readable: bool,
    pub writable: bool,
}

impl Event {
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// Registered but currently armed for nothing: the source stays in
    /// the interest set (so `modify` keeps working) but delivers no
    /// events until re-armed.
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }

    fn to_epoll(self) -> u32 {
        let mut ev = EPOLLONESHOT;
        if self.readable {
            ev |= EPOLLIN | EPOLLRDHUP;
        }
        if self.writable {
            ev |= EPOLLOUT;
        }
        ev
    }
}

/// A reusable buffer of delivered events.
#[derive(Default)]
pub struct Events {
    inner: Vec<Event>,
}

impl Events {
    pub fn new() -> Events {
        Events { inner: Vec::new() }
    }

    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.inner.iter().copied()
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

// ---- the poller ----------------------------------------------------

/// Size of the kernel-side event batch fetched per `epoll_wait`.
const WAIT_BATCH: usize = 1024;

/// An epoll instance plus its notify pipe. All methods take `&self`;
/// the kernel serialises concurrent `epoll_ctl`/`epoll_wait`, so a
/// `Poller` may be shared across threads freely.
#[derive(Debug)]
pub struct Poller {
    epfd: c_int,
    notify_read: c_int,
    notify_write: c_int,
    /// True while a notification is pending (written but not yet
    /// drained by `wait`). Lets back-to-back `notify` calls skip the
    /// pipe write: one pending byte already guarantees a wakeup.
    notified: std::sync::atomic::AtomicBool,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        let mut fds = [0 as c_int; 2];
        if let Err(e) = cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) }) {
            unsafe { close(epfd) };
            return Err(e);
        }
        let poller = Poller {
            epfd,
            notify_read: fds[0],
            notify_write: fds[1],
            notified: std::sync::atomic::AtomicBool::new(false),
        };
        // The notify pipe is the one level-triggered, non-oneshot
        // registration: `wait` drains it on every delivery, so it never
        // spins, and it must never need re-arming.
        let mut ev = EpollEvent {
            events: EPOLLIN,
            data: NOTIFY_KEY as u64,
        };
        cvt(unsafe { epoll_ctl(poller.epfd, EPOLL_CTL_ADD, poller.notify_read, &mut ev) })?;
        Ok(poller)
    }

    /// Register a source under `interest.key`.
    ///
    /// # Safety
    ///
    /// As in upstream `polling`: the caller must keep the source open
    /// until it is [`Poller::delete`]d (or the `Poller` is dropped); a
    /// registration does not borrow or own the source.
    pub unsafe fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        assert!(interest.key != NOTIFY_KEY, "key usize::MAX is reserved");
        let mut ev = EpollEvent {
            events: interest.to_epoll(),
            data: interest.key as u64,
        };
        cvt(epoll_ctl(
            self.epfd,
            EPOLL_CTL_ADD,
            source.as_raw_fd(),
            &mut ev,
        ))
        .map(|_| ())
    }

    /// Re-arm (or retarget) an existing registration. After an event
    /// for a key is delivered, the key is disarmed until this is called.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        assert!(interest.key != NOTIFY_KEY, "key usize::MAX is reserved");
        let mut ev = EpollEvent {
            events: interest.to_epoll(),
            data: interest.key as u64,
        };
        cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_MOD, source.as_raw_fd(), &mut ev) }).map(|_| ())
    }

    /// Remove a registration entirely.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, source.as_raw_fd(), &mut ev) }).map(|_| ())
    }

    /// Block until at least one registered source is ready, `notify`
    /// is called, or `timeout` elapses (`None` blocks indefinitely).
    /// Appends delivered events to `events` and returns how many were
    /// added — possibly zero after a timeout or a bare notification.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut buf = [EpollEvent { events: 0, data: 0 }; WAIT_BATCH];
        loop {
            let timeout_ms: c_int = match deadline {
                None => -1,
                Some(d) => {
                    let left = d.saturating_duration_since(Instant::now());
                    // Round up so a 1ns remainder doesn't busy-loop.
                    left.as_millis().min(c_int::MAX as u128) as c_int
                        + if left.subsec_nanos() % 1_000_000 != 0 {
                            1
                        } else {
                            0
                        }
                }
            };
            let n =
                unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), WAIT_BATCH as c_int, timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(e);
            }
            let mut added = 0;
            for raw in &buf[..n as usize] {
                let (bits, key) = (raw.events, raw.data as usize);
                if key == NOTIFY_KEY {
                    self.drain_notify();
                    continue;
                }
                events.inner.push(Event {
                    key,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                    writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                });
                added += 1;
            }
            return Ok(added);
        }
    }

    /// Wake a concurrent (or the next) `wait` from any thread.
    /// Coalescing: while a notification is already pending, further
    /// calls are free (no syscall) — one wakeup serves them all.
    pub fn notify(&self) -> io::Result<()> {
        use std::sync::atomic::Ordering;
        if self.notified.swap(true, Ordering::AcqRel) {
            return Ok(());
        }
        let byte = 1u8;
        let ret = unsafe { write(self.notify_write, &byte, 1) };
        if ret < 0 {
            let e = io::Error::last_os_error();
            // A full pipe already guarantees a pending wakeup.
            if e.kind() == io::ErrorKind::WouldBlock {
                return Ok(());
            }
            return Err(e);
        }
        Ok(())
    }

    fn drain_notify(&self) {
        // Drain first, clear the flag *after*. The order matters: the
        // drain reads every byte in the pipe, including one a racing
        // `notify` may have just written — clearing the flag before
        // the drain could therefore leave it set with the pipe empty,
        // and every later `notify` would skip its write (a lost
        // wakeup, permanently). With the store last, a notify racing
        // the drain either sees the flag still set and skips (safe:
        // `wait` has not returned yet, so whatever it queued is
        // handled right after this), or runs after the store and
        // writes a fresh byte that re-fires the next wait.
        let mut sink = [0u8; 64];
        loop {
            let n = unsafe { read(self.notify_read, sink.as_mut_ptr(), sink.len()) };
            if n <= 0 {
                break;
            }
        }
        self.notified
            .store(false, std::sync::atomic::Ordering::Release);
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            close(self.notify_read);
            close(self.notify_write);
            close(self.epfd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    #[test]
    fn listener_readiness_is_delivered_with_its_key() {
        let poller = Poller::new().expect("poller");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.set_nonblocking(true).expect("nonblocking");
        unsafe { poller.add(&listener, Event::readable(7)).expect("add") };
        let _client = TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
        let mut events = Events::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        let ev = events.iter().next().expect("one event");
        assert_eq!(ev.key, 7);
        assert!(ev.readable);
    }

    #[test]
    fn udp_socket_readiness_is_delivered_and_rearms() {
        use std::net::UdpSocket;
        // The datagram plane registers a UdpSocket on the same epoll
        // loop as the listener and connections; readiness must fire
        // per arriving datagram and obey the same oneshot contract.
        let poller = Poller::new().expect("poller");
        let socket = UdpSocket::bind("127.0.0.1:0").expect("bind");
        socket.set_nonblocking(true).expect("nonblocking");
        unsafe { poller.add(&socket, Event::readable(9)).expect("add") };

        let sender = UdpSocket::bind("127.0.0.1:0").expect("bind sender");
        sender
            .send_to(b"ping", socket.local_addr().unwrap())
            .expect("send");
        let mut events = Events::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        let ev = events.iter().next().expect("one event");
        assert_eq!(ev.key, 9);
        assert!(ev.readable);

        // Drain, rearm, and a second datagram fires again.
        let mut buf = [0u8; 16];
        let (n, _) = socket.recv_from(&mut buf).expect("recv");
        assert_eq!(&buf[..n], b"ping");
        poller.modify(&socket, Event::readable(9)).expect("rearm");
        sender
            .send_to(b"pong", socket.local_addr().unwrap())
            .expect("send");
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(events.iter().next().expect("event").key, 9);
    }

    #[test]
    fn oneshot_disarms_until_rearmed() {
        let poller = Poller::new().expect("poller");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");
        unsafe { poller.add(&server, Event::readable(1)).expect("add") };
        (&client).write_all(b"x").expect("write");
        let mut events = Events::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(events.len(), 1);
        // Unread data remains, but the oneshot registration is spent:
        // a second wait must time out rather than redeliver.
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .expect("wait");
        assert_eq!(n, 0, "oneshot key redelivered without rearm");
        // Re-arming delivers it again.
        poller.modify(&server, Event::readable(1)).expect("modify");
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(events.iter().next().expect("event").key, 1);
        let mut byte = [0u8; 1];
        (&server).read_exact(&mut byte).expect("read");
        assert_eq!(&byte, b"x");
    }

    #[test]
    fn notify_wakes_a_blocked_wait_with_no_events() {
        let poller = std::sync::Arc::new(Poller::new().expect("poller"));
        let waker = std::sync::Arc::clone(&poller);
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(50));
            waker.notify().expect("notify");
        });
        let mut events = Events::new();
        let started = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(30)))
            .expect("wait");
        assert_eq!(n, 0);
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "notify did not wake the wait"
        );
        handle.join().expect("join");
    }

    #[test]
    fn a_notify_storm_never_loses_the_wakeup() {
        // Regression: clearing the coalescing flag *before* draining
        // the pipe let the drain swallow a byte a racing notify had
        // just written — flag set, pipe empty, every later notify
        // skipped its write, and the poller could never be woken
        // again. Hammer notify against concurrent waits, then prove a
        // fresh notify still wakes a genuinely blocked wait.
        let poller = std::sync::Arc::new(Poller::new().expect("poller"));
        let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stormers: Vec<_> = (0..2)
            .map(|_| {
                let poller = std::sync::Arc::clone(&poller);
                let done = std::sync::Arc::clone(&done);
                thread::spawn(move || {
                    while !done.load(std::sync::atomic::Ordering::Relaxed) {
                        poller.notify().expect("notify");
                    }
                })
            })
            .collect();
        let mut events = Events::new();
        let storm_until = Instant::now() + Duration::from_millis(300);
        while Instant::now() < storm_until {
            poller
                .wait(&mut events, Some(Duration::from_millis(1)))
                .expect("wait");
        }
        done.store(true, std::sync::atomic::Ordering::Relaxed);
        for s in stormers {
            s.join().expect("join stormer");
        }
        // Flush whatever the storm left pending (bounded: in the
        // stuck-flag state this would otherwise never terminate),
        // then require that a *new* notification still gets through.
        for _ in 0..100 {
            if !poller.notified.load(std::sync::atomic::Ordering::Acquire) {
                break;
            }
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .expect("wait");
        }
        assert!(
            !poller.notified.load(std::sync::atomic::Ordering::Acquire),
            "the coalescing flag is stuck set after the storm drained"
        );
        let waker = std::sync::Arc::clone(&poller);
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(50));
            waker.notify().expect("notify");
        });
        let started = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(30)))
            .expect("wait");
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "a post-storm notify was lost: the coalescing flag is stuck"
        );
        handle.join().expect("join waker");
    }

    #[test]
    fn timeout_expires_on_an_idle_poller() {
        let poller = Poller::new().expect("poller");
        let mut events = Events::new();
        let started = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .expect("wait");
        assert_eq!(n, 0);
        assert!(started.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn writable_interest_fires_on_a_fresh_socket() {
        let poller = Poller::new().expect("poller");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let client = TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
        client.set_nonblocking(true).expect("nonblocking");
        unsafe { poller.add(&client, Event::writable(3)).expect("add") };
        let mut events = Events::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        let ev = events.iter().next().expect("event");
        assert_eq!(ev.key, 3);
        assert!(ev.writable);
        poller.delete(&client).expect("delete");
    }
}
