//! Offline stand-in for `rand` 0.8: `RngCore` / `SeedableRng` /
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`) plus
//! [`seq::SliceRandom`] (`shuffle`, `choose`) — the exact subset the
//! workspace consumes. Integer ranges use the widening-multiply method
//! (Lemire) so the bias is at most 2^-64; floats use the half-open
//! 53-bit mantissa construction.

use std::ops::{Range, RangeInclusive};

/// The raw generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, as in rand 0.8: a fixed-size byte seed plus a
/// convenience `seed_from_u64` that expands the word with splitmix64.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut s).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types samplable uniformly over their whole domain (`Rng::gen`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)`, 53 significant bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range shapes accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` by widening multiply with one
/// rejection round (Lemire's method, simplified).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let wide = (x as u128) * (span as u128);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// The user-facing sampling interface, blanket-implemented for every
/// generator.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::RngCore;

    /// `shuffle` / `choose` on slices.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, downward.
            for i in (1..self.len()).rev() {
                let j = super::uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256**-style generator (stand-in for
    /// `rand::rngs::SmallRng`).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5..=5usize);
            assert_eq!(w, 5);
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_expectation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
