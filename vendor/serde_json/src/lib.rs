//! Offline stand-in for `serde_json`: renders any `serde::Serialize`
//! (the stand-in trait) to compact or pretty JSON text.

use std::fmt;

pub use serde::Value;

/// Mirrors `serde_json::Error` shape-wise; rendering through the
/// stand-in value model cannot actually fail.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().write(&mut out, None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().write(&mut out, Some(2), 0);
    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u32, 2];
        assert_eq!(super::to_string(&v).unwrap(), "[1,2]");
        assert_eq!(super::to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }
}
