//! A ready-made small world for examples and integration tests: a
//! synthetic Internet, one measured day, and its atlas — everything the
//! iNano client needs, in a few seconds of CPU.

use inano_atlas::{build_atlas, Atlas, AtlasConfig};
use inano_measure::{
    run_campaign, CampaignConfig, Clustering, ClusteringConfig, MeasurementDay, VantagePoints,
};
use inano_model::rng::rng_for;
use inano_model::HostId;
use inano_routing::RoutingOracle;
use inano_topology::{build_internet, ChurnModel, Internet, TopologyConfig};

/// A small but complete world.
pub struct DemoWorld {
    pub net: Internet,
    pub churn: ChurnModel,
    pub clustering: Clustering,
    pub vps: VantagePoints,
    pub day0: MeasurementDay,
    pub atlas: Atlas,
}

impl DemoWorld {
    /// Build the demo world from a seed (deterministic; ~1-2 s).
    pub fn new(seed: u64) -> DemoWorld {
        let mut topo = TopologyConfig::scaled(0.15);
        topo.seed = seed;
        let net = build_internet(&topo).expect("valid config");
        let churn = ChurnModel::new(&net);
        let clustering = Clustering::derive(
            &net,
            &ClusteringConfig {
                seed,
                ..ClusteringConfig::default()
            },
        );
        let vps = VantagePoints::choose(&net, 20, 30, &mut rng_for(seed, "demo-vps"));
        let oracle = RoutingOracle::new(&net, churn.day_state(0));
        let day0 = run_campaign(
            &oracle,
            &clustering,
            &vps,
            &CampaignConfig {
                seed,
                traceroutes_per_agent: 40,
                ..CampaignConfig::default()
            },
        );
        let atlas = build_atlas(&net, &clustering, &day0, &AtlasConfig::default());
        DemoWorld {
            net,
            churn,
            clustering,
            vps,
            day0,
            atlas,
        }
    }

    /// The routing oracle for a day.
    pub fn oracle(&self, day: u32) -> RoutingOracle<'_> {
        RoutingOracle::new(&self.net, self.churn.day_state(day))
    }

    /// The atlas of a later day (for delta/update flows).
    pub fn atlas_for_day(&self, day: u32) -> Atlas {
        let oracle = self.oracle(day);
        let md = run_campaign(
            &oracle,
            &self.clustering,
            &self.vps,
            &CampaignConfig {
                seed: self.net.cfg.seed,
                traceroutes_per_agent: 40,
                ..CampaignConfig::default()
            },
        );
        build_atlas(&self.net, &self.clustering, &md, &AtlasConfig::default())
    }

    /// A couple of end-hosts that run the iNano library in examples.
    pub fn sample_hosts(&self, n: usize) -> Vec<HostId> {
        self.vps.agents.iter().take(n).copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_world_builds() {
        let w = DemoWorld::new(7);
        assert!(!w.atlas.links.is_empty());
        assert!(w.sample_hosts(4).len() == 4);
    }
}
