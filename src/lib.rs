//! # iNano — iPlane Nano, reproduced in Rust
//!
//! A full reproduction of *"iPlane Nano: Path Prediction for Peer-to-Peer
//! Applications"* (Madhyastha, Katz-Bassett, Anderson, Krishnamurthy,
//! Venkataramani — NSDI 2009): a lightweight library that predicts
//! PoP-level routes, latencies and loss rates between arbitrary Internet
//! end-hosts from a compact (megabytes, not gigabytes) link-level atlas.
//!
//! The workspace contains everything the paper's system needs, built from
//! scratch:
//!
//! | crate | role |
//! |---|---|
//! | [`model`] | shared vocabulary (ids, prefixes, metrics, paths, RNG) |
//! | [`topology`] | synthetic Internet generator with ground-truth policies |
//! | [`routing`] | BGP-style policy-routing oracle (the "real" Internet) |
//! | [`measure`] | traceroute/ping/loss simulation, clustering, BGP feeds |
//! | [`atlas`] | the compact atlas: datasets, builder, codec, daily deltas |
//! | [`core`] | **the paper's contribution**: the route/latency/loss predictor |
//! | [`coords`] | Vivaldi network-coordinates baseline |
//! | [`paths`] | iPlane path composition, improved composition, RouteScope |
//! | [`apps`] | CDN, VoIP and detour-routing case studies |
//! | [`swarm`] | atlas dissemination swarm simulation |
//! | [`service`] | concurrent, hot-swappable query engine over [`core`] |
//! | [`net`] | wire protocol, TCP server (`inano-serve`) and client over [`service`] |
//!
//! Start with `examples/quickstart.rs`; DESIGN.md documents the
//! architecture and every substitution made for the paper's
//! infrastructure; EXPERIMENTS.md records paper-vs-measured results for
//! every table and figure.

pub use inano_apps as apps;
pub use inano_atlas as atlas;
pub use inano_coords as coords;
pub use inano_core as core;
pub use inano_measure as measure;
pub use inano_model as model;
pub use inano_net as net;
pub use inano_paths as paths;
pub use inano_routing as routing;
pub use inano_service as service;
pub use inano_swarm as swarm;
pub use inano_topology as topology;

pub mod demo;
