//! iPlane's atlas of measured *paths* — the representation iNano set out
//! to shrink. Stored paths keep their per-hop RTTs so segment latencies
//! can be estimated by RTT subtraction (with exactly the asymmetric-
//! reply-path error the paper discusses in §6.3.2).

use inano_measure::{Clustering, MeasurementDay, Traceroute};
use inano_model::{ClusterId, HostId, PrefixId};
use inano_topology::Internet;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One measured cluster-level path with hop RTTs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StoredPath {
    pub src: HostId,
    pub src_cluster: ClusterId,
    pub dst_prefix: PrefixId,
    /// Cluster sequence, source cluster first (gaps skipped).
    pub clusters: Vec<ClusterId>,
    /// Measured RTT from the source to each cluster in `clusters`
    /// (`None` for the source itself and unmeasured hops).
    pub rtts: Vec<Option<f64>>,
    /// RTT to the destination host.
    pub dest_rtt: Option<f64>,
}

/// The path-level atlas: measured paths indexed by destination prefix and
/// by source cluster.
#[derive(Clone, Debug, Default)]
pub struct PathAtlas {
    pub paths: Vec<StoredPath>,
    pub by_dst: HashMap<PrefixId, Vec<usize>>,
    pub by_src_cluster: HashMap<ClusterId, Vec<usize>>,
}

impl PathAtlas {
    /// Build from a measurement day (both VP and end-host traceroutes).
    pub fn build(net: &Internet, clustering: &Clustering, day: &MeasurementDay) -> PathAtlas {
        let mut atlas = PathAtlas::default();
        for tr in day.all_traceroutes() {
            if !tr.reached {
                continue;
            }
            if let Some(p) = stored_path(net, clustering, tr) {
                let idx = atlas.paths.len();
                atlas.by_dst.entry(p.dst_prefix).or_default().push(idx);
                atlas
                    .by_src_cluster
                    .entry(p.src_cluster)
                    .or_default()
                    .push(idx);
                atlas.paths.push(p);
            }
        }
        atlas
    }

    /// Paths out of a source cluster.
    pub fn from_cluster(&self, c: ClusterId) -> impl Iterator<Item = &StoredPath> {
        self.by_src_cluster
            .get(&c)
            .into_iter()
            .flatten()
            .map(move |&i| &self.paths[i])
    }

    /// Paths into a destination prefix.
    pub fn to_prefix(&self, p: PrefixId) -> impl Iterator<Item = &StoredPath> {
        self.by_dst
            .get(&p)
            .into_iter()
            .flatten()
            .map(move |&i| &self.paths[i])
    }

    /// Storage accounting for the iNano-vs-iPlane size comparison:
    /// (total path-hop entries, encoded bytes). Encoding: varint cluster
    /// ids + quantised RTTs, comparable to the link-atlas codec.
    pub fn storage_size(&self) -> (usize, usize) {
        let mut entries = 0usize;
        let mut bytes = 0usize;
        for p in &self.paths {
            entries += p.clusters.len();
            bytes += 6; // src cluster + dst prefix headers
            for (c, r) in p.clusters.iter().zip(&p.rtts) {
                bytes += varint_len(c.raw() as u64);
                bytes += match r {
                    Some(ms) => varint_len((ms * 10.0) as u64),
                    None => 1,
                };
            }
        }
        (entries, bytes)
    }
}

fn varint_len(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).max(1).div_ceil(7)
}

/// Convert a traceroute into a stored path (the source cluster is known
/// to the measuring host; unresponsive hops are dropped).
fn stored_path(net: &Internet, clustering: &Clustering, tr: &Traceroute) -> Option<StoredPath> {
    let src_cluster = clustering.cluster_of_pop(net.prefix(net.host(tr.src).prefix).home_pop);
    let mut clusters = vec![src_cluster];
    let mut rtts: Vec<Option<f64>> = vec![None];
    let n = tr.hops.len();
    for (i, hop) in tr.hops.iter().enumerate() {
        if i + 1 == n {
            break; // destination host hop
        }
        let Some(ip) = hop.ip else { continue };
        let Some(c) = clustering.cluster_of_ip(net, ip) else {
            continue;
        };
        if clusters.last() == Some(&c) {
            continue;
        }
        clusters.push(c);
        rtts.push(hop.rtt_ms);
    }
    Some(StoredPath {
        src: tr.src,
        src_cluster,
        dst_prefix: tr.dst_prefix,
        clusters,
        rtts,
        dest_rtt: tr.dest_rtt_ms(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_measure::{run_campaign, CampaignConfig, ClusteringConfig, VantagePoints};
    use inano_model::rng::rng_for;
    use inano_routing::RoutingOracle;
    use inano_topology::{build_internet, DayState, TopologyConfig};

    fn build(seed: u64) -> (Internet, Clustering, MeasurementDay) {
        let net = build_internet(&TopologyConfig::tiny(seed)).unwrap();
        let clustering = Clustering::derive(&net, &ClusteringConfig::default());
        let vps = VantagePoints::choose(&net, 8, 8, &mut rng_for(seed, "vp"));
        let oracle = RoutingOracle::new(&net, DayState::default());
        let day = run_campaign(
            &oracle,
            &clustering,
            &vps,
            &CampaignConfig {
                traceroutes_per_agent: 10,
                ..CampaignConfig::default()
            },
        );
        (net, clustering, day)
    }

    #[test]
    fn atlas_indexes_are_consistent() {
        let (net, clustering, day) = build(201);
        let pa = PathAtlas::build(&net, &clustering, &day);
        assert!(!pa.paths.is_empty());
        for (pfx, idxs) in &pa.by_dst {
            for &i in idxs {
                assert_eq!(pa.paths[i].dst_prefix, *pfx);
            }
        }
        for (c, idxs) in &pa.by_src_cluster {
            for &i in idxs {
                assert_eq!(pa.paths[i].src_cluster, *c);
            }
        }
    }

    #[test]
    fn paths_start_at_source_cluster() {
        let (net, clustering, day) = build(202);
        let pa = PathAtlas::build(&net, &clustering, &day);
        for p in pa.paths.iter().take(200) {
            assert_eq!(p.clusters[0], p.src_cluster);
            assert_eq!(p.clusters.len(), p.rtts.len());
        }
    }

    #[test]
    fn path_atlas_much_larger_than_link_atlas() {
        // The size claim at our scale: the path atlas must be much larger
        // than the link atlas built from the same measurements.
        let (net, clustering, day) = build(203);
        let pa = PathAtlas::build(&net, &clustering, &day);
        let (entries, bytes) = pa.storage_size();
        let link_atlas = inano_atlas::build_atlas(
            &net,
            &clustering,
            &day,
            &inano_atlas::AtlasConfig::default(),
        );
        let (link_bytes, _) = inano_atlas::codec::encode(&link_atlas);
        assert!(entries > link_atlas.links.len() * 3);
        assert!(
            bytes > link_bytes.len(),
            "path atlas {bytes}B vs link atlas {}B",
            link_bytes.len()
        );
    }
}
