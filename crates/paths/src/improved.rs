//! "Improved path-based": iPlane's composition with iNano's checks bolted
//! on (§6.3.1): "When two path segments are being spliced together, we
//! check whether the sequence of ASes prior to, at, and after the point
//! of intersection exists in our database of 3-tuples. We also ensure
//! that AS preferences are enforced when multiple candidate intersections
//! pass the 3-tuple check." In the paper this lifts path composition
//! from 70% to 81% exact AS paths — the best predictor evaluated.

use crate::composition::{ComposedPath, PathComposer};
use inano_atlas::Atlas;
use inano_model::{Asn, ClusterId, ModelError, PrefixId};

/// Path composition + 3-tuple splice check + preference arbitration.
pub struct ImprovedComposer<'a> {
    pub inner: PathComposer<'a>,
    pub tuple_min_degree: u32,
}

impl<'a> ImprovedComposer<'a> {
    pub fn new(inner: PathComposer<'a>) -> Self {
        ImprovedComposer {
            inner,
            tuple_min_degree: 5,
        }
    }

    /// Predict with splice filtering and preference arbitration.
    pub fn predict_forward(
        &self,
        src_cluster: ClusterId,
        dst_prefix: PrefixId,
    ) -> Result<ComposedPath, ModelError> {
        let atlas = self.inner.atlas;
        let mut cands = self.inner.candidate_compositions(src_cluster, dst_prefix);
        // 3-tuple check on every AS triple of the composed path (the
        // splice point is where violations appear; checking the whole
        // path subsumes it).
        cands.retain(|c| self.passes_tuples(atlas, &c.clusters));
        if cands.is_empty() {
            // Fall back to unfiltered composition rather than failing:
            // iPlane always answers; the checks only arbitrate.
            return self.inner.predict_forward(src_cluster, dst_prefix);
        }
        // Baseline quality order first (earliest splice, then latency);
        // preferences arbitrate only among the equally-good candidates,
        // as the paper enforces them "when multiple candidate
        // intersections pass the 3-tuple check".
        cands.sort_by(|a, b| {
            (a.splice_at, a.latency.ms())
                .partial_cmp(&(b.splice_at, b.latency.ms()))
                .unwrap()
        });
        let best_splice = cands[0].splice_at;
        let mut pool: Vec<ComposedPath> = cands
            .into_iter()
            .filter(|c| c.splice_at == best_splice)
            .collect();
        pool.truncate(8);
        let best = pool
            .into_iter()
            .reduce(|a, b| self.arbitrate(atlas, a, b))
            .expect("non-empty");
        Ok(best)
    }

    fn passes_tuples(&self, atlas: &Atlas, clusters: &[ClusterId]) -> bool {
        let ases: Vec<Asn> = {
            let mut v: Vec<Asn> = clusters
                .iter()
                .filter_map(|c| atlas.as_of_cluster(*c))
                .collect();
            v.dedup();
            v
        };
        for w in ases.windows(3) {
            if atlas.degree(w[1]) > self.tuple_min_degree && !atlas.has_triple(w[0], w[1], w[2]) {
                return false;
            }
        }
        true
    }

    /// Pick between two candidates: observed preference at the first AS
    /// where they diverge, then earliest splice, then latency.
    fn arbitrate(&self, atlas: &Atlas, a: ComposedPath, b: ComposedPath) -> ComposedPath {
        let asa = as_seq(atlas, &a.clusters);
        let asb = as_seq(atlas, &b.clusters);
        for i in 0..asa.len().min(asb.len()).saturating_sub(1) {
            if asa[i] == asb[i] && asa[i + 1] != asb[i + 1] {
                if atlas.prefers(asa[i], asa[i + 1], asb[i + 1]) {
                    return a;
                }
                if atlas.prefers(asa[i], asb[i + 1], asa[i + 1]) {
                    return b;
                }
                break;
            }
        }
        if (a.splice_at, a.latency.ms()) <= (b.splice_at, b.latency.ms()) {
            a
        } else {
            b
        }
    }
}

fn as_seq(atlas: &Atlas, clusters: &[ClusterId]) -> Vec<Asn> {
    let mut v: Vec<Asn> = clusters
        .iter()
        .filter_map(|c| atlas.as_of_cluster(*c))
        .collect();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path_atlas::{PathAtlas, StoredPath};
    use inano_atlas::Triple;
    use inano_model::HostId;

    fn sp(src_cluster: u32, dst: u32, clusters: &[u32], rtts: &[f64]) -> StoredPath {
        StoredPath {
            src: HostId::new(0),
            src_cluster: ClusterId::new(src_cluster),
            dst_prefix: PrefixId::new(dst),
            clusters: clusters.iter().map(|&c| ClusterId::new(c)).collect(),
            rtts: std::iter::once(None)
                .chain(rtts.iter().map(|&r| Some(r)))
                .collect(),
            dest_rtt: rtts.last().map(|&r| r + 2.0),
        }
    }

    fn pa(paths: Vec<StoredPath>) -> PathAtlas {
        let mut atlas = PathAtlas::default();
        for p in paths {
            let idx = atlas.paths.len();
            atlas.by_dst.entry(p.dst_prefix).or_default().push(idx);
            atlas
                .by_src_cluster
                .entry(p.src_cluster)
                .or_default()
                .push(idx);
            atlas.paths.push(p);
        }
        atlas
    }

    fn atlas_with_ases(n: u32) -> Atlas {
        let mut a = Atlas::default();
        for c in 0..=n {
            a.cluster_as.insert(ClusterId::new(c), Asn::new(c));
            a.as_degree.insert(Asn::new(c), 10);
        }
        a
    }

    #[test]
    fn tuple_check_rejects_bad_splice() {
        // Two compositions from cluster 1 to prefix 77: via cluster 2
        // (earlier splice) and via cluster 3. Only the via-3 triples are
        // observed; plain composition would pick via-2.
        let paths = pa(vec![
            sp(1, 50, &[1, 2, 9], &[5.0, 20.0]),
            sp(8, 77, &[8, 2, 6, 7], &[4.0, 9.0, 14.0]),
            sp(1, 51, &[1, 3, 9], &[5.0, 20.0]),
            sp(8, 77, &[8, 3, 7], &[4.0, 14.0]),
        ]);
        let mut atlas = atlas_with_ases(10);
        for (a, b, c) in [(1u32, 3u32, 7u32), (3, 7, 77)] {
            atlas
                .tuples
                .insert(Triple::canonical(Asn::new(a), Asn::new(b), Asn::new(c)));
        }
        // Plain composition picks the via-2 splice.
        let plain = PathComposer::new(&paths, &atlas);
        let p = plain
            .predict_forward(ClusterId::new(1), PrefixId::new(77))
            .unwrap();
        assert!(p.clusters.contains(&ClusterId::new(2)));
        // Improved composition rejects it (triple (1,2,6) unobserved).
        let improved = ImprovedComposer::new(PathComposer::new(&paths, &atlas));
        let q = improved
            .predict_forward(ClusterId::new(1), PrefixId::new(77))
            .unwrap();
        assert!(q.clusters.contains(&ClusterId::new(3)), "{:?}", q.clusters);
    }

    #[test]
    fn falls_back_when_everything_filtered() {
        let paths = pa(vec![
            sp(1, 50, &[1, 2, 9], &[5.0, 20.0]),
            sp(8, 77, &[8, 2, 7], &[4.0, 14.0]),
        ]);
        let atlas = atlas_with_ases(10); // no tuples at all observed
        let improved = ImprovedComposer::new(PathComposer::new(&paths, &atlas));
        // All candidates fail the check, but prediction still answers.
        assert!(improved
            .predict_forward(ClusterId::new(1), PrefixId::new(77))
            .is_ok());
    }

    #[test]
    fn preferences_arbitrate_between_valid_candidates() {
        let paths = pa(vec![
            sp(1, 50, &[1, 2, 9], &[5.0, 20.0]),
            sp(8, 77, &[8, 2, 7], &[4.0, 14.0]),
            sp(1, 51, &[1, 3, 9], &[5.0, 20.0]),
            sp(8, 77, &[8, 3, 7], &[4.0, 14.0]),
        ]);
        let mut atlas = atlas_with_ases(10);
        for (a, b, c) in [(1u32, 2u32, 7u32), (2, 7, 77), (1, 3, 7), (3, 7, 77)] {
            atlas
                .tuples
                .insert(Triple::canonical(Asn::new(a), Asn::new(b), Asn::new(c)));
        }
        // AS1 prefers 3 over 2.
        atlas.prefs.insert((Asn::new(1), Asn::new(3), Asn::new(2)));
        let improved = ImprovedComposer::new(PathComposer::new(&paths, &atlas));
        let q = improved
            .predict_forward(ClusterId::new(1), PrefixId::new(77))
            .unwrap();
        assert!(q.clusters.contains(&ClusterId::new(3)));
    }
}
