//! RouteScope (Mao et al. [32]): AS-path inference from the AS-level
//! graph alone — "computes the set of shortest AS paths determined to be
//! valley-free between the AS of src and the AS of dst". For iNano's
//! problem setting a single path is required, so "we choose one path at
//! random from the set of paths returned" (§6.3.1).

use inano_atlas::Atlas;
use inano_model::rng::DeterministicRng;
use inano_model::{AsPath, Asn, Relationship};
use rand::Rng;
use std::collections::{HashMap, VecDeque};

/// The RouteScope predictor: valley-free BFS over the observed AS graph
/// with inferred relationships.
pub struct RouteScope {
    /// AS adjacency with inferred relationships.
    adj: HashMap<Asn, Vec<(Asn, Relationship)>>,
}

/// Node state in the up/down BFS: (AS, has the path already gone down or
/// crossed a peering?).
type State = (Asn, bool);

impl RouteScope {
    /// Build from the atlas (observed AS adjacency + inferred rels).
    pub fn new(atlas: &Atlas) -> RouteScope {
        let mut adj: HashMap<Asn, Vec<(Asn, Relationship)>> = HashMap::new();
        let mut seen: HashMap<(Asn, Asn), ()> = HashMap::new();
        // AS-level adjacency from the link dataset.
        let mut note = |a: Asn, b: Asn, adj: &mut HashMap<Asn, Vec<(Asn, Relationship)>>| {
            if a == b || seen.insert((a, b), ()).is_some() {
                return;
            }
            let rel = atlas
                .inferred_rels
                .get(&(a, b))
                .copied()
                .unwrap_or(Relationship::Peer);
            adj.entry(a).or_default().push((b, rel));
        };
        for &(x, y) in atlas.links.keys() {
            let (Some(a), Some(b)) = (atlas.as_of_cluster(x), atlas.as_of_cluster(y)) else {
                continue;
            };
            note(a, b, &mut adj);
            note(b, a, &mut adj);
        }
        RouteScope { adj }
    }

    /// All shortest valley-free AS paths from `src` to `dst`, up to a cap
    /// (the path *set* can be exponential; RouteScope samples from it).
    pub fn shortest_valley_free(&self, src: Asn, dst: Asn, cap: usize) -> Vec<AsPath> {
        if src == dst {
            return vec![AsPath::new([src])];
        }
        // BFS over (AS, down?) states from the source; a state goes
        // "down" after traversing a peer or customer edge and may then
        // only continue through customer edges.
        let mut dist: HashMap<State, u32> = HashMap::new();
        let mut preds: HashMap<State, Vec<State>> = HashMap::new();
        let start: State = (src, false);
        dist.insert(start, 0);
        let mut q = VecDeque::from([start]);
        let mut best: Option<u32> = None;
        while let Some(st) = q.pop_front() {
            let d = dist[&st];
            if let Some(b) = best {
                if d >= b {
                    continue;
                }
            }
            let (asn, down) = st;
            for &(next, rel) in self.adj.get(&asn).into_iter().flatten() {
                let nstate: Option<State> = match rel {
                    Relationship::Provider if !down => Some((next, false)),
                    Relationship::Peer if !down => Some((next, true)),
                    Relationship::Customer => Some((next, true)),
                    Relationship::Sibling => Some((next, down)),
                    _ => None,
                };
                let Some(ns) = nstate else { continue };
                let nd = d + 1;
                match dist.get(&ns) {
                    None => {
                        dist.insert(ns, nd);
                        preds.insert(ns, vec![st]);
                        if ns.0 == dst {
                            best = Some(best.map_or(nd, |b: u32| b.min(nd)));
                        } else {
                            q.push_back(ns);
                        }
                    }
                    Some(&existing) if existing == nd => {
                        preds.get_mut(&ns).expect("pred entry").push(st);
                    }
                    _ => {}
                }
            }
        }

        // Enumerate paths backward from both destination states.
        let mut out: Vec<AsPath> = Vec::new();
        let target_len = match best {
            Some(b) => b,
            None => return out,
        };
        for end_down in [false, true] {
            let end: State = (dst, end_down);
            if dist.get(&end) != Some(&target_len) {
                continue;
            }
            let mut stack: Vec<(State, Vec<Asn>)> = vec![(end, vec![dst])];
            while let Some((st, path)) = stack.pop() {
                if out.len() >= cap {
                    return out;
                }
                if st == start {
                    let mut p = path.clone();
                    p.reverse();
                    out.push(AsPath::new(p));
                    continue;
                }
                for &prev in preds.get(&st).into_iter().flatten() {
                    let mut p = path.clone();
                    p.push(prev.0);
                    stack.push((prev, p));
                }
            }
        }
        out
    }

    /// The RouteScope answer used in Figure 5: one of the shortest
    /// valley-free paths, chosen uniformly at random.
    pub fn predict(&self, src: Asn, dst: Asn, rng: &mut DeterministicRng) -> Option<AsPath> {
        let set = self.shortest_valley_free(src, dst, 64);
        if set.is_empty() {
            return None;
        }
        let idx = rng.gen_range(0..set.len());
        Some(set[idx].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_atlas::{Atlas, LinkAnnotation, Plane};
    use inano_model::rng::rng_for;
    use inano_model::ClusterId;

    /// Build an atlas whose AS graph is given by (a, b, rel-of-a-to-b).
    fn atlas_of(edges: &[(u32, u32, Relationship)]) -> Atlas {
        let mut a = Atlas::default();
        for (i, &(x, y, rel)) in edges.iter().enumerate() {
            // One cluster per AS, one link per edge.
            let (cx, cy) = (ClusterId::new(x), ClusterId::new(y));
            a.links.insert(
                (cx, cy),
                LinkAnnotation {
                    latency: None,
                    plane: Plane::TO_DST,
                },
            );
            a.cluster_as.insert(cx, Asn::new(x));
            a.cluster_as.insert(cy, Asn::new(y));
            a.inferred_rels.insert((Asn::new(x), Asn::new(y)), rel);
            a.inferred_rels
                .insert((Asn::new(y), Asn::new(x)), rel.reverse());
            let _ = i;
        }
        a
    }

    #[test]
    fn finds_valley_free_shortest_path() {
        use Relationship::*;
        // 1 —cust→ 2 (provider), 2 peers 3, 3 —prov→ 4 (customer).
        let atlas = atlas_of(&[
            (1, 2, Provider), // 2 is 1's provider
            (2, 3, Peer),
            (3, 4, Customer), // 4 is 3's customer
        ]);
        let rs = RouteScope::new(&atlas);
        let paths = rs.shortest_valley_free(Asn::new(1), Asn::new(4), 10);
        assert_eq!(paths.len(), 1);
        assert_eq!(
            paths[0].as_slice(),
            &[Asn::new(1), Asn::new(2), Asn::new(3), Asn::new(4)]
        );
    }

    #[test]
    fn rejects_valley_paths() {
        use Relationship::*;
        // 1 —prov→ 2 (2 is customer), then 2 —prov?— no: path through a
        // customer back up to a provider is a valley: 1→2 (customer),
        // 2→3 (provider) must be rejected.
        let atlas = atlas_of(&[
            (1, 2, Customer), // 2 is 1's customer
            (2, 3, Provider), // 3 is 2's provider
        ]);
        let rs = RouteScope::new(&atlas);
        let paths = rs.shortest_valley_free(Asn::new(1), Asn::new(3), 10);
        assert!(paths.is_empty(), "valley must be rejected: {paths:?}");
    }

    #[test]
    fn multiple_shortest_paths_enumerated() {
        use Relationship::*;
        // Diamond: 1's providers 2 and 3, both providers of... both have
        // customer 4.
        let atlas = atlas_of(&[
            (1, 2, Provider),
            (1, 3, Provider),
            (2, 4, Customer),
            (3, 4, Customer),
        ]);
        let rs = RouteScope::new(&atlas);
        let paths = rs.shortest_valley_free(Asn::new(1), Asn::new(4), 10);
        assert_eq!(paths.len(), 2);
        let mut rng = rng_for(1, "rs");
        let p = rs.predict(Asn::new(1), Asn::new(4), &mut rng).unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn at_most_one_peer_crossing() {
        use Relationship::*;
        // 1 peers 2, 2 peers 3: a two-peering path is not valley-free.
        let atlas = atlas_of(&[(1, 2, Peer), (2, 3, Peer)]);
        let rs = RouteScope::new(&atlas);
        let paths = rs.shortest_valley_free(Asn::new(1), Asn::new(3), 10);
        assert!(paths.is_empty());
    }

    #[test]
    fn same_as_is_trivial() {
        let atlas = atlas_of(&[]);
        let rs = RouteScope::new(&atlas);
        let p = rs.shortest_valley_free(Asn::new(5), Asn::new(5), 10);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].len(), 1);
    }
}
