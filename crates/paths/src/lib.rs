//! # inano-paths
//!
//! The *path-level* prediction baselines the paper compares against:
//!
//! * [`path_atlas`] + [`composition`] — iPlane's path-composition
//!   technique ([30]): keep the full set of measured paths, answer a
//!   query by splicing a path out of the source with an intersecting
//!   path into the destination. Accurate, but the atlas is two orders of
//!   magnitude larger than iNano's link atlas (§6.1, §8.3).
//! * [`improved`] — path composition *plus* iNano's 3-tuple and
//!   preference checks at the splice point, the strongest predictor in
//!   Figure 5 (81% in the paper).
//! * [`routescope`] — Mao et al.'s AS-graph shortest-valley-free-path
//!   predictor ([32]), the only prior art predicting AS paths from a
//!   graph; Figure 5's weakest line.

pub mod composition;
pub mod improved;
pub mod path_atlas;
pub mod routescope;

pub use composition::PathComposer;
pub use improved::ImprovedComposer;
pub use path_atlas::{PathAtlas, StoredPath};
pub use routescope::RouteScope;
