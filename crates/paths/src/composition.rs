//! iPlane's path-composition predictor ([30], §3 of the iNano paper):
//! "To predict the path from a source to a destination, the path
//! composition technique composes two path segments that intersect with
//! each other. The first segment is from a path out from the source...
//! The second segment is from a path measured from one of iPlane's
//! vantage points to the destination's prefix."

use crate::path_atlas::{PathAtlas, StoredPath};
use inano_atlas::Atlas;
use inano_model::{AsPath, ClusterId, LatencyMs, LossRate, ModelError, PrefixId};
use std::collections::HashMap;

/// A composed prediction.
#[derive(Clone, Debug)]
pub struct ComposedPath {
    pub clusters: Vec<ClusterId>,
    /// One-way latency estimate from RTT subtraction on the two segments.
    pub latency: LatencyMs,
    /// Index of the intersection on the source path (diagnostics).
    pub splice_at: usize,
}

/// The iPlane-style composer. Holds the path atlas plus the link atlas
/// (for loss annotations and AS mapping — iPlane has the same link-level
/// measurements available).
pub struct PathComposer<'a> {
    pub paths: &'a PathAtlas,
    pub atlas: &'a Atlas,
}

impl<'a> PathComposer<'a> {
    pub fn new(paths: &'a PathAtlas, atlas: &'a Atlas) -> Self {
        PathComposer { paths, atlas }
    }

    /// Predict the one-way path from `src_cluster` (with `src_prefix`'s
    /// own measured paths forming the out-segments) to `dst_prefix`.
    pub fn predict_forward(
        &self,
        src_cluster: ClusterId,
        dst_prefix: PrefixId,
    ) -> Result<ComposedPath, ModelError> {
        let candidates = self.candidate_compositions(src_cluster, dst_prefix);
        candidates
            .into_iter()
            .min_by(|a, b| {
                (a.splice_at, a.latency.ms())
                    .partial_cmp(&(b.splice_at, b.latency.ms()))
                    .unwrap()
            })
            .ok_or_else(|| {
                ModelError::NoPath(format!(
                    "no intersecting segments {src_cluster} → {dst_prefix}"
                ))
            })
    }

    /// All valid compositions of a source segment with a destination
    /// segment (shared by the improved composer, which filters them).
    pub fn candidate_compositions(
        &self,
        src_cluster: ClusterId,
        dst_prefix: PrefixId,
    ) -> Vec<ComposedPath> {
        let mut out = Vec::new();
        // Direct hit: a measured path from this very cluster to the
        // destination prefix dominates any composition.
        for p2 in self.paths.to_prefix(dst_prefix) {
            if p2.src_cluster == src_cluster {
                out.push(ComposedPath {
                    clusters: p2.clusters.clone(),
                    latency: LatencyMs::new(p2.dest_rtt.unwrap_or(0.0) / 2.0),
                    splice_at: 0,
                });
            }
        }

        for p2 in self.paths.to_prefix(dst_prefix) {
            // Positions of each cluster on p2.
            let pos: HashMap<ClusterId, usize> = p2
                .clusters
                .iter()
                .enumerate()
                .map(|(i, &c)| (c, i))
                .collect();
            for p1 in self.paths.from_cluster(src_cluster) {
                // Earliest intersection of p1 with p2.
                for (i, c) in p1.clusters.iter().enumerate() {
                    if let Some(&j) = pos.get(c) {
                        if let Some(cp) = compose(p1, i, p2, j) {
                            out.push(cp);
                        }
                        break;
                    }
                }
            }
        }
        out
    }

    /// AS-level view of a composed path.
    pub fn as_path_of(&self, clusters: &[ClusterId], dst_prefix: PrefixId) -> AsPath {
        let mut ases: Vec<_> = clusters
            .iter()
            .filter_map(|c| self.atlas.as_of_cluster(*c))
            .collect();
        if let Some(&(_, origin)) = self.atlas.prefix_as.get(&dst_prefix) {
            ases.push(origin);
        }
        AsPath::new(ases)
    }

    /// Loss estimate along a composed path (same link-loss dataset iNano
    /// composes; iPlane has the equivalent measurements).
    pub fn loss_of(&self, clusters: &[ClusterId]) -> LossRate {
        LossRate::compose_all(clusters.windows(2).map(|w| {
            self.atlas
                .loss
                .get(&(w[0], w[1]))
                .copied()
                .unwrap_or(LossRate::ZERO)
        }))
    }

    /// Bidirectional RTT estimate: forward + reverse composition.
    pub fn predict_rtt(
        &self,
        src_cluster: ClusterId,
        src_prefix: PrefixId,
        dst_cluster: ClusterId,
        dst_prefix: PrefixId,
    ) -> Result<LatencyMs, ModelError> {
        let fwd = self.predict_forward(src_cluster, dst_prefix)?;
        let rev = self.predict_forward(dst_cluster, src_prefix)?;
        Ok(fwd.latency + rev.latency)
    }
}

/// Splice `p1[..=i]` with `p2[j..]`, estimating the one-way latency by
/// RTT subtraction: half of `RTT(p1, i)` for the head plus half of
/// `RTT(p2, dst) − RTT(p2, j)` for the tail (§6.3.2: "our latency
/// estimates for path segments are obtained by just subtracting RTTs
/// measured in traceroutes" — with all the asymmetry error that implies).
fn compose(p1: &StoredPath, i: usize, p2: &StoredPath, j: usize) -> Option<ComposedPath> {
    let mut clusters = p1.clusters[..=i].to_vec();
    clusters.extend_from_slice(&p2.clusters[j + 1..]);

    let head_rtt = if i == 0 { Some(0.0) } else { p1.rtts[i] };
    let head = head_rtt? / 2.0;
    let tail_end = p2.dest_rtt?;
    let tail_start = if j == 0 { 0.0 } else { p2.rtts[j]? };
    let tail = ((tail_end - tail_start) / 2.0).max(0.0);
    Some(ComposedPath {
        clusters,
        latency: LatencyMs::new(head + tail),
        splice_at: i,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_model::{Asn, HostId};

    fn sp(src_cluster: u32, dst: u32, clusters: &[u32], rtts: &[f64]) -> StoredPath {
        StoredPath {
            src: HostId::new(0),
            src_cluster: ClusterId::new(src_cluster),
            dst_prefix: PrefixId::new(dst),
            clusters: clusters.iter().map(|&c| ClusterId::new(c)).collect(),
            rtts: std::iter::once(None)
                .chain(rtts.iter().map(|&r| Some(r)))
                .collect(),
            dest_rtt: rtts.last().map(|&r| r + 2.0),
        }
    }

    fn atlas_with_ases(n: u32) -> Atlas {
        let mut a = Atlas::default();
        for c in 0..=n {
            a.cluster_as.insert(ClusterId::new(c), Asn::new(c));
        }
        a
    }

    fn pa(paths: Vec<StoredPath>) -> PathAtlas {
        let mut atlas = PathAtlas::default();
        for p in paths {
            let idx = atlas.paths.len();
            atlas.by_dst.entry(p.dst_prefix).or_default().push(idx);
            atlas
                .by_src_cluster
                .entry(p.src_cluster)
                .or_default()
                .push(idx);
            atlas.paths.push(p);
        }
        atlas
    }

    #[test]
    fn composes_intersecting_segments() {
        // p1: 1→2→3 (out of source cluster 1), p2: 9→2→5 (to prefix 77).
        // Intersection at cluster 2: predicted 1→2→5.
        let paths = pa(vec![
            sp(1, 50, &[1, 2, 3], &[10.0, 20.0]),
            sp(9, 77, &[9, 2, 5], &[8.0, 30.0]),
        ]);
        let atlas = atlas_with_ases(10);
        let comp = PathComposer::new(&paths, &atlas);
        let r = comp
            .predict_forward(ClusterId::new(1), PrefixId::new(77))
            .unwrap();
        let got: Vec<u32> = r.clusters.iter().map(|c| c.raw()).collect();
        assert_eq!(got, vec![1, 2, 5]);
        // Latency: head 10/2 + tail (32 - 8)/2 = 5 + 12 = 17.
        assert!((r.latency.ms() - 17.0).abs() < 1e-9);
    }

    #[test]
    fn direct_measurement_wins() {
        let paths = pa(vec![
            sp(1, 77, &[1, 4, 5], &[6.0, 12.0]),
            sp(9, 77, &[9, 4, 5], &[8.0, 30.0]),
            sp(1, 50, &[1, 4, 8], &[6.0, 40.0]),
        ]);
        let atlas = atlas_with_ases(10);
        let comp = PathComposer::new(&paths, &atlas);
        let r = comp
            .predict_forward(ClusterId::new(1), PrefixId::new(77))
            .unwrap();
        let got: Vec<u32> = r.clusters.iter().map(|c| c.raw()).collect();
        assert_eq!(got, vec![1, 4, 5], "own measured path dominates");
        assert_eq!(r.splice_at, 0);
    }

    #[test]
    fn no_intersection_is_no_path() {
        let paths = pa(vec![
            sp(1, 50, &[1, 2], &[10.0]),
            sp(9, 77, &[9, 5], &[8.0]),
        ]);
        let atlas = atlas_with_ases(10);
        let comp = PathComposer::new(&paths, &atlas);
        assert!(comp
            .predict_forward(ClusterId::new(1), PrefixId::new(77))
            .is_err());
    }

    #[test]
    fn as_path_terminates_at_origin() {
        let paths = pa(vec![]);
        let mut atlas = atlas_with_ases(5);
        atlas.prefix_as.insert(
            PrefixId::new(7),
            (
                inano_model::Prefix::new(inano_model::Ipv4(0), 24),
                Asn::new(42),
            ),
        );
        let comp = PathComposer::new(&paths, &atlas);
        let ap = comp.as_path_of(&[ClusterId::new(1), ClusterId::new(2)], PrefixId::new(7));
        assert_eq!(ap.last(), Some(Asn::new(42)));
    }
}
