//! Criterion microbenchmarks for the prediction engine: the costs a
//! client pays — graph construction at bootstrap, a cold
//! destination-rooted search, and warm (cached-search) queries — for
//! both the full iNano model and the GRAPH baseline. These back the
//! paper's "lightweight library" claim (§2: lookups must be local and
//! cheap) with numbers.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use inano_bench::{Scenario, ScenarioConfig};
use inano_core::{PathPredictor, PredictorConfig};
use inano_model::PrefixId;
use std::hint::black_box;
use std::sync::Arc;

fn bench_prediction(c: &mut Criterion) {
    // A small scenario keeps bench wall-time sane; per-query costs scale
    // near-linearly in atlas links.
    let sc = Scenario::build(ScenarioConfig::test(77));
    let atlas = Arc::new(sc.atlas.clone());
    let prefixes: Vec<PrefixId> = sc.atlas.prefix_cluster.keys().copied().collect();
    let n = prefixes.len();
    assert!(n > 10);

    c.bench_function("graph_construction_full", |b| {
        b.iter(|| {
            black_box(PathPredictor::new(
                Arc::clone(&atlas),
                PredictorConfig::full(),
            ))
        })
    });

    c.bench_function("cold_search_per_destination", |b| {
        let mut i = 0usize;
        b.iter_batched(
            || PathPredictor::new(Arc::clone(&atlas), PredictorConfig::full()),
            |p| {
                i = (i + 7) % n;
                let _ = black_box(p.predict_forward(prefixes[i], prefixes[(i + 3) % n]));
            },
            BatchSize::SmallInput,
        )
    });

    let warm = PathPredictor::new(Arc::clone(&atlas), PredictorConfig::full());
    for d in 0..8 {
        let _ = warm.predict_forward(prefixes[d], prefixes[(d + 1) % n]);
    }
    c.bench_function("warm_query_full", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 8;
            let _ = black_box(warm.predict_forward(prefixes[(i + 11) % n], prefixes[i]));
        })
    });

    let graph_mode = PathPredictor::new(Arc::clone(&atlas), PredictorConfig::graph());
    for d in 0..8 {
        let _ = graph_mode.predict_forward(prefixes[d], prefixes[(d + 1) % n]);
    }
    c.bench_function("warm_query_graph_baseline", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 8;
            let _ = black_box(graph_mode.predict_forward(prefixes[(i + 11) % n], prefixes[i]));
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_prediction
}
criterion_main!(benches);
