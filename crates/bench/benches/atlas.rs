//! Criterion microbenchmarks for the atlas pipeline: building the atlas
//! from a measurement day, encoding/decoding it (what a client does at
//! bootstrap), and computing/applying daily deltas (what server and
//! client do every day).

use criterion::{criterion_group, criterion_main, Criterion};
use inano_atlas::{build_atlas, codec, AtlasConfig, AtlasDelta};
use inano_bench::{Scenario, ScenarioConfig};
use std::hint::black_box;

fn bench_atlas(c: &mut Criterion) {
    let sc = Scenario::build(ScenarioConfig::test(78));
    let (day1, atlas1) = sc.atlas_for_day(1);
    let _ = day1;
    let (bytes, _) = codec::encode(&sc.atlas);

    c.bench_function("build_atlas_from_measurement_day", |b| {
        b.iter(|| {
            black_box(build_atlas(
                &sc.net,
                &sc.clustering,
                &sc.day0,
                &AtlasConfig::default(),
            ))
        })
    });

    c.bench_function("encode_atlas", |b| {
        b.iter(|| black_box(codec::encode(&sc.atlas)))
    });

    c.bench_function("decode_atlas", |b| {
        b.iter(|| black_box(codec::decode(&bytes).expect("decodes")))
    });

    c.bench_function("delta_between_days", |b| {
        b.iter(|| black_box(AtlasDelta::between(&sc.atlas, &atlas1)))
    });

    let delta = AtlasDelta::between(&sc.atlas, &atlas1);
    c.bench_function("delta_apply", |b| {
        b.iter(|| black_box(delta.apply(&sc.atlas).expect("applies")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_atlas
}
criterion_main!(benches);
