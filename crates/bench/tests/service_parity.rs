//! Serving-layer parity on a *measured* atlas with the full iNano model
//! (providers on): the scenario builder populates per-prefix provider
//! refinements, so this covers the cache-soundness hole a synthetic
//! ring atlas cannot — prefixes sharing a cluster but searching
//! differently must bypass the cluster-keyed cache, and every cached
//! answer must equal a fresh `PathPredictor::query`.

use inano_bench::{Scenario, ScenarioConfig};
use inano_core::{PathPredictor, PredictorConfig};
use inano_model::Ipv4;
use inano_service::{QueryEngine, ServiceConfig};
use std::sync::Arc;

#[test]
fn engine_matches_fresh_predictor_with_providers_enabled() {
    let sc = Scenario::build(ScenarioConfig::test(123));
    assert!(
        !sc.atlas.prefix_providers.is_empty(),
        "scenario must exercise per-prefix provider refinements"
    );
    let atlas = Arc::new(sc.atlas.clone());
    let fresh = PathPredictor::new(Arc::clone(&atlas), PredictorConfig::full());
    let engine = QueryEngine::new(
        Arc::clone(&atlas),
        ServiceConfig {
            workers: 4,
            predictor: PredictorConfig::full(),
            ..ServiceConfig::default()
        },
    );

    // Deterministic sample: one IP per prefix, ordered by id, limited
    // to prefixes whose cluster the atlas has links for (routable at
    // all) — a few refined-provider prefixes (cache-bypass path) mixed
    // with plain ones (cache path).
    let linked: std::collections::HashSet<_> =
        sc.atlas.links.keys().flat_map(|&(a, b)| [a, b]).collect();
    let mut prefixes: Vec<_> = sc.atlas.prefix_as.iter().collect();
    prefixes.sort_by_key(|(pid, _)| **pid);
    let ips: Vec<(bool, Ipv4)> = prefixes
        .iter()
        .filter(|(pid, _)| {
            sc.atlas
                .prefix_cluster
                .get(*pid)
                .is_some_and(|c| linked.contains(c))
        })
        .map(|(pid, (prefix, _))| (sc.atlas.prefix_providers.contains_key(pid), prefix.nth(1)))
        .collect();
    let refined_sample = ips.iter().filter(|(r, _)| *r).take(8);
    let plain_sample = ips.iter().filter(|(r, _)| !*r).take(16);
    let sample: Vec<Ipv4> = refined_sample
        .chain(plain_sample)
        .map(|&(_, ip)| ip)
        .collect();
    assert!(
        ips.iter().filter(|(r, _)| !*r).count() > 4,
        "sample needs cacheable prefixes"
    );
    assert!(sample.len() > 8);

    let mut compared = 0usize;
    // Two passes: pass 2 hits the cache wherever pass 1 populated it.
    for _pass in 0..2 {
        for &s in &sample {
            for &d in &sample {
                if s == d {
                    continue;
                }
                match (engine.query(s, d), fresh.query(s, d)) {
                    (Ok(got), Ok(want)) => {
                        assert_eq!(got.fwd_clusters, want.fwd_clusters, "{s} -> {d}");
                        assert_eq!(got.rev_clusters, want.rev_clusters, "{s} -> {d}");
                        assert_eq!(got.fwd_as_path, want.fwd_as_path, "{s} -> {d}");
                        assert!((got.rtt.ms() - want.rtt.ms()).abs() < 1e-12, "{s} -> {d}");
                        compared += 1;
                    }
                    (Err(_), Err(_)) => {}
                    (got, want) => panic!(
                        "engine/fresh disagree for {s} -> {d}: engine ok={}, fresh ok={}",
                        got.is_ok(),
                        want.is_ok()
                    ),
                }
            }
        }
    }
    assert!(compared > 0, "sample must contain routable pairs");
    let stats = engine.stats();
    assert!(
        stats.cache_hits > 0,
        "pass 2 must see cache hits: {stats:?}"
    );
}
