//! # inano-bench
//!
//! The experiment harness: scenario construction (synthetic Internet →
//! measurement campaign → atlas), validation-set machinery, and output
//! formatting shared by the per-figure binaries in `src/bin/`.
//!
//! Each paper table/figure has a binary: `tab2_atlas`, `fig4_path_stationarity`,
//! `fig5_as_accuracy`, `fig6_latency_error`, `fig7_rank_closest`,
//! `fig8_loss_error`, `fig9_cdn`, `fig10_voip`, `fig11_detour`,
//! `scale_vps`, `loss_stationarity`, and `run_all` to regenerate
//! everything.

pub mod eval;
pub mod report;
pub mod scenario;

pub use eval::{validation_set, ValidationPath};
pub use scenario::{Scenario, ScenarioConfig};
