//! Validation-set machinery (§6.3): held-out source/destination pairs
//! with their ground-truth paths and measured properties.
//!
//! Validation sources are end-host agents: their daily traceroutes are in
//! the atlas's `FROM_SRC` plane (as §6.3 does with "100 other randomly
//! chosen traceroutes from this source"), but the validation destinations
//! are disjoint from the destinations those atlas traceroutes probed, and
//! the `TO_DST` plane never saw these sources at all.

use crate::scenario::Scenario;
use inano_model::rng::rng_for;
use inano_model::{AsPath, ClusterId, HostId, LatencyMs, LossRate, PrefixId};
use inano_routing::RoutingOracle;
use rand::seq::SliceRandom;
use std::collections::HashSet;

/// One validation pair with its ground truth.
#[derive(Clone, Debug)]
pub struct ValidationPath {
    pub src_host: HostId,
    pub src_prefix: PrefixId,
    pub dst_prefix: PrefixId,
    /// Ground-truth forward AS path.
    pub true_as_path: AsPath,
    /// Ground-truth forward cluster path (through the same clustering the
    /// predictor uses).
    pub true_clusters: Vec<ClusterId>,
    /// Ground-truth RTT (fwd + reverse).
    pub true_rtt: LatencyMs,
    /// Ground-truth round-trip loss.
    pub true_loss: LossRate,
}

/// Build the validation set: `n_sources` agent hosts × up to `per_source`
/// destination prefixes each (excluding destinations the agent already
/// probed for the atlas, unreachable destinations, and AS-loop paths, as
/// §6.3 discards them).
pub fn validation_set(
    sc: &Scenario,
    oracle: &RoutingOracle<'_>,
    n_sources: usize,
    per_source: usize,
) -> Vec<ValidationPath> {
    let net = &sc.net;
    let mut rng = rng_for(sc.cfg.seed, "validation-set");

    // Destinations each agent probed for the atlas (excluded from eval).
    let mut probed: HashSet<(HostId, PrefixId)> = HashSet::new();
    for tr in &sc.day0.agent_traceroutes {
        probed.insert((tr.src, tr.dst_prefix));
    }

    let mut sources: Vec<HostId> = sc.vps.agents.clone();
    sources.shuffle(&mut rng);
    sources.truncate(n_sources);

    let all_dests: Vec<PrefixId> = net.edge_prefixes().map(|p| p.id).collect();
    let mut out = Vec::new();
    for &src in &sources {
        let src_prefix = net.host(src).prefix;
        let mut dests = all_dests.clone();
        dests.shuffle(&mut rng);
        let mut taken = 0;
        for &d in &dests {
            if taken >= per_source {
                break;
            }
            if d == src_prefix || probed.contains(&(src, d)) {
                continue;
            }
            let Some(fwd) = oracle.host_to_prefix(src, d) else {
                continue; // unreachable: discarded like the paper does
            };
            if fwd.as_path.has_loop() {
                continue;
            }
            let dst_pop = *fwd.pops.last().unwrap();
            let Some(rev) = oracle.path_to_prefix(dst_pop, src_prefix) else {
                continue;
            };
            out.push(ValidationPath {
                src_host: src,
                src_prefix,
                dst_prefix: d,
                true_as_path: fwd.as_path.clone(),
                true_clusters: sc.clustering.pops_to_clusters(&fwd.pops),
                true_rtt: fwd.latency + rev.latency,
                true_loss: fwd.loss.compose(rev.loss),
            });
            taken += 1;
        }
    }
    out
}

/// Train a Vivaldi system over a host population using simulated pings
/// against the oracle. Returns the system plus the HostId → node-index
/// mapping.
pub fn train_vivaldi(
    sc: &Scenario,
    oracle: &RoutingOracle<'_>,
    hosts: &[HostId],
    rounds: usize,
) -> (
    inano_coords::VivaldiSystem,
    std::collections::HashMap<HostId, usize>,
) {
    use inano_measure::ping::ping;
    use inano_measure::traceroute::ProbeNoise;
    let index: std::collections::HashMap<HostId, usize> =
        hosts.iter().enumerate().map(|(i, &h)| (h, i)).collect();
    let cfg = inano_coords::VivaldiConfig {
        rounds,
        seed: sc.cfg.seed,
        ..inano_coords::VivaldiConfig::default()
    };
    let noise = ProbeNoise::default();
    let sys = inano_coords::VivaldiSystem::run(hosts.len(), &cfg, |i, j, rng| {
        ping(oracle, hosts[i], hosts[j], &noise, rng).map(|l| l.ms())
    });
    (sys, index)
}

/// Fraction of validation paths for which at least one ground-truth
/// inter-cluster link is missing from the atlas (§6.3.1 measured 7%,
/// bounding achievable accuracy).
pub fn atlas_coverage_gap(sc: &Scenario, paths: &[ValidationPath]) -> f64 {
    if paths.is_empty() {
        return 0.0;
    }
    let missing = paths
        .iter()
        .filter(|p| {
            p.true_clusters
                .windows(2)
                .any(|w| !sc.atlas.links.contains_key(&(w[0], w[1])))
        })
        .count();
    missing as f64 / paths.len() as f64
}
