//! Ablation: the two magic numbers in iNano's empirical checks.
//!
//! * the 3-tuple check's middle-AS degree threshold (5 in §4.3.2 — edge
//!   ASes are exempt because "visibility into ASes at the edge is
//!   limited");
//! * the preference dominance factor (3× in §4.3.3 — below it, a
//!   preference pair is considered "wavering" load-balance noise and
//!   dropped).
//!
//! Sweeps both and reports exact-AS-path accuracy and the dataset sizes
//! they induce, justifying the defaults.

use inano_atlas::{build_atlas, AtlasConfig};
use inano_bench::report::{emit, pct};
use inano_bench::{eval, Scenario, ScenarioConfig};
use inano_core::{PathPredictor, PredictorConfig};
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct Row {
    knob: String,
    value: f64,
    exact_as_path: f64,
    dataset_entries: usize,
}

fn main() {
    let sc = Scenario::build(ScenarioConfig::experiment(42));
    eprintln!("scenario: {}", sc.summary());
    let oracle = sc.oracle(0);
    let paths = eval::validation_set(&sc, &oracle, 20, 60);
    eprintln!("validation set: {} paths", paths.len());

    let score = |predictor: &PathPredictor| -> f64 {
        let mut exact = 0usize;
        for p in &paths {
            if let Ok(fwd) = predictor.predict_forward(p.src_prefix, p.dst_prefix) {
                if predictor.as_path_of(&fwd, p.dst_prefix) == p.true_as_path {
                    exact += 1;
                }
            }
        }
        exact as f64 / paths.len() as f64
    };

    let mut rows: Vec<Row> = Vec::new();
    let mut text = String::from("== Ablation: tuple degree threshold & preference dominance ==\n");

    // --- sweep the tuple degree threshold (atlas fixed) ---
    let atlas = Arc::new(sc.atlas.clone());
    text.push_str("\ntuple_min_degree sweep (default 5; large = check no one):\n");
    for thr in [2u32, 5, 10, 25, 1000] {
        let mut cfg = PredictorConfig::full();
        cfg.tuple_min_degree = thr;
        let p = PathPredictor::new(Arc::clone(&atlas), cfg);
        let acc = score(&p);
        text.push_str(&format!("  threshold {thr:>5}: exact {}\n", pct(acc)));
        rows.push(Row {
            knob: "tuple_min_degree".into(),
            value: thr as f64,
            exact_as_path: acc,
            dataset_entries: sc.atlas.tuples.len(),
        });
    }

    // --- sweep the preference dominance factor (atlas rebuilt) ---
    text.push_str("\npref_dominance sweep (default 3x; low values admit wavering pairs):\n");
    for dom in [1.5f64, 3.0, 5.0, 10.0] {
        let acfg = AtlasConfig {
            pref_dominance: dom,
            ..AtlasConfig::default()
        };
        let atlas_d = Arc::new(build_atlas(&sc.net, &sc.clustering, &sc.day0, &acfg));
        let n_prefs = atlas_d.prefs.len();
        let p = PathPredictor::new(atlas_d, PredictorConfig::full());
        let acc = score(&p);
        text.push_str(&format!(
            "  dominance {dom:>4}x: exact {} ({n_prefs} preferences kept)\n",
            pct(acc)
        ));
        rows.push(Row {
            knob: "pref_dominance".into(),
            value: dom,
            exact_as_path: acc,
            dataset_entries: n_prefs,
        });
    }

    text.push_str(
        "\n(expected: accuracy peaks near the paper's defaults — checking low-degree \
         edges over-filters, admitting 1x preferences imports load-balancer noise)\n",
    );
    emit("abl_tuple_threshold", &text, &rows);
}
