//! Figure 10: VoIP relay selection. Paper setup: 119 hosts, 1200 random
//! (src, dst) pairs, every other host a candidate relay; iNano picks the
//! 10 lowest-predicted-loss relays then the lowest-latency among them.
//! Headline: paths via iNano-chosen relays see far less loss than
//! closest-to-src / closest-to-dst / random.

use inano_apps::voip::{call_quality, pick_relay, RelayStrategy};
use inano_bench::report::emit;
use inano_bench::{Scenario, ScenarioConfig};
use inano_core::{PathPredictor, PredictorConfig};
use inano_model::rng::rng_for;
use inano_model::stats::Ecdf;
use inano_model::HostId;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct Out {
    strategy: String,
    median_loss: f64,
    p90_loss: f64,
    frac_lossy: f64,
    mean_mos: f64,
    calls: usize,
}

fn main() {
    let sc = Scenario::build(ScenarioConfig::experiment(42));
    eprintln!("scenario: {}", sc.summary());
    let oracle = sc.oracle(0);
    let mut rng = rng_for(sc.cfg.seed, "fig10");

    // 119 end-hosts as in the paper (agents: they have FROM_SRC links).
    let hosts: Vec<HostId> = sc.vps.agents.iter().take(119).copied().collect();
    let n_calls = 400; // paper used 1200 over 119 hosts; scaled down

    let atlas = Arc::new(sc.atlas.clone());
    let predictor = PathPredictor::new(Arc::clone(&atlas), PredictorConfig::full());

    let mut pairs = Vec::with_capacity(n_calls);
    while pairs.len() < n_calls {
        let a = hosts[rng.gen_range(0..hosts.len())];
        let b = hosts[rng.gen_range(0..hosts.len())];
        if a != b {
            pairs.push((a, b));
        }
    }

    let mut text = String::from("== Figure 10: VoIP relay selection ==\n");
    text.push_str(&format!(
        "{:<16} {:>12} {:>10} {:>10} {:>9}\n",
        "strategy", "median loss", "p90 loss", "% lossy", "mean MOS"
    ));
    let mut outs = Vec::new();
    for strategy in RelayStrategy::all() {
        let mut losses = Vec::new();
        let mut moss = Vec::new();
        for &(src, dst) in &pairs {
            // Candidate relays: all hosts except the endpoints (paper);
            // sample 40 for speed.
            let mut cands: Vec<HostId> = hosts
                .iter()
                .copied()
                .filter(|&h| h != src && h != dst)
                .collect();
            cands.shuffle(&mut rng);
            cands.truncate(40);
            let Some(relay) = pick_relay(strategy, &oracle, &predictor, src, dst, &cands, &mut rng)
            else {
                continue;
            };
            if let Some(call) = call_quality(&oracle, src, relay, dst) {
                losses.push(call.loss.rate());
                moss.push(call.mos);
            }
        }
        if losses.is_empty() {
            continue;
        }
        let e = Ecdf::new(losses);
        let mos_mean = moss.iter().sum::<f64>() / moss.len() as f64;
        text.push_str(&format!(
            "{:<16} {:>11.2}% {:>9.2}% {:>9.1}% {:>9.2}\n",
            strategy.name(),
            e.median() * 100.0,
            e.quantile(0.9) * 100.0,
            e.fraction_at_least(0.001) * 100.0,
            mos_mean
        ));
        outs.push(Out {
            strategy: strategy.name().to_string(),
            median_loss: e.median(),
            p90_loss: e.quantile(0.9),
            frac_lossy: e.fraction_at_least(0.001),
            mean_mos: mos_mean,
            calls: e.len(),
        });
    }
    text.push_str("\n(paper: relays chosen by iNano see significantly less packet loss)\n");
    emit("fig10_voip", &text, &outs);
}
