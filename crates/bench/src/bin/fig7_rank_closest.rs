//! Figure 7: predicting the 10 closest destinations (by actual RTT) out
//! of each source's 100 validation destinations. The metric is the size
//! of the intersection between the predicted and actual top-10 sets.
//! Paper: iNano ≈ path composition ≫ Vivaldi.

use inano_bench::report::emit;
use inano_bench::{eval, Scenario, ScenarioConfig};
use inano_core::{PathPredictor, PredictorConfig};
use inano_model::stats::Ecdf;
use inano_model::PrefixId;
use inano_paths::{PathAtlas, PathComposer};
use serde::Serialize;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

const TOP_N: usize = 10;

#[derive(Serialize)]
struct Out {
    mean_overlap: Vec<(String, f64)>,
    sources: usize,
}

fn main() {
    let sc = Scenario::build(ScenarioConfig::experiment(42));
    eprintln!("scenario: {}", sc.summary());
    let oracle = sc.oracle(0);
    let paths = eval::validation_set(&sc, &oracle, 37, 100);

    // Group validation paths by source.
    let mut by_src: HashMap<inano_model::HostId, Vec<&eval::ValidationPath>> = HashMap::new();
    for p in &paths {
        by_src.entry(p.src_host).or_default().push(p);
    }

    let atlas = Arc::new(sc.atlas.clone());
    let predictor = PathPredictor::new(Arc::clone(&atlas), PredictorConfig::full());
    let path_atlas = PathAtlas::build(&sc.net, &sc.clustering, &sc.day0);
    let composer = PathComposer::new(&path_atlas, &atlas);

    // Vivaldi over every endpoint.
    let mut hosts: Vec<inano_model::HostId> = by_src.keys().copied().collect();
    let mut dst_host_of: HashMap<PrefixId, inano_model::HostId> = HashMap::new();
    for p in &paths {
        if let Some(h) = sc.net.hosts.iter().find(|h| h.prefix == p.dst_prefix) {
            dst_host_of.insert(p.dst_prefix, h.id);
            hosts.push(h.id);
        }
    }
    hosts.sort();
    hosts.dedup();
    let (vivaldi, vidx) = eval::train_vivaldi(&sc, &oracle, &hosts, 80);

    let mut overlap_inano = Vec::new();
    let mut overlap_viv = Vec::new();
    let mut overlap_comp = Vec::new();

    for (src, ps) in &by_src {
        if ps.len() < TOP_N * 2 {
            continue; // need enough candidates for a meaningful top-10
        }
        let actual_top: HashSet<PrefixId> = top_n_by(ps, |p| p.true_rtt.ms());
        let src_prefix = ps[0].src_prefix;

        // iNano ranking.
        let scored: Vec<(&eval::ValidationPath, f64)> = ps
            .iter()
            .filter_map(|p| {
                predictor
                    .predict(src_prefix, p.dst_prefix)
                    .ok()
                    .map(|pr| (*p, pr.rtt.ms()))
            })
            .collect();
        overlap_inano.push(overlap(&scored, &actual_top));

        // Vivaldi ranking.
        let scored: Vec<(&eval::ValidationPath, f64)> = ps
            .iter()
            .filter_map(|p| {
                let dh = dst_host_of.get(&p.dst_prefix)?;
                Some((*p, vivaldi.estimate(vidx[src], vidx[dh]).ms()))
            })
            .collect();
        overlap_viv.push(overlap(&scored, &actual_top));

        // Path composition ranking.
        let scored: Vec<(&eval::ValidationPath, f64)> = ps
            .iter()
            .filter_map(|p| {
                let s = *sc.atlas.prefix_cluster.get(&src_prefix)?;
                let d = *sc.atlas.prefix_cluster.get(&p.dst_prefix)?;
                let rtt = composer.predict_rtt(s, src_prefix, d, p.dst_prefix).ok()?;
                Some((*p, rtt.ms()))
            })
            .collect();
        overlap_comp.push(overlap(&scored, &actual_top));
    }

    let series = [
        ("iNano", Ecdf::new(overlap_inano)),
        ("Vivaldi", Ecdf::new(overlap_viv)),
        ("path composition", Ecdf::new(overlap_comp)),
    ];
    let mut text =
        String::from("== Figure 7: overlap of predicted vs actual 10 closest (of ~100) ==\n");
    let mut means = Vec::new();
    for (name, e) in &series {
        if e.is_empty() {
            continue;
        }
        text.push_str(&format!(
            "{name:<18} mean {:.2} / 10, median {:.0}, p10 {:.0}\n",
            e.mean(),
            e.median(),
            e.quantile(0.1)
        ));
        means.push((name.to_string(), e.mean()));
    }
    text.push_str("(paper: iNano ≈ path-based ≫ Vivaldi)\n");
    let out = Out {
        mean_overlap: means,
        sources: by_src.len(),
    };
    emit("fig7_rank_closest", &text, &out);
}

fn top_n_by<F: Fn(&eval::ValidationPath) -> f64>(
    ps: &[&eval::ValidationPath],
    key: F,
) -> HashSet<PrefixId> {
    let mut v: Vec<&&eval::ValidationPath> = ps.iter().collect();
    v.sort_by(|a, b| key(a).partial_cmp(&key(b)).unwrap());
    v.iter().take(TOP_N).map(|p| p.dst_prefix).collect()
}

fn overlap(scored: &[(&eval::ValidationPath, f64)], actual: &HashSet<PrefixId>) -> f64 {
    let mut v: Vec<&(&eval::ValidationPath, f64)> = scored.iter().collect();
    v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    v.iter()
        .take(TOP_N)
        .filter(|(p, _)| actual.contains(&p.dst_prefix))
        .count() as f64
}
