//! Figure 4: similarity of PoP-level paths across consecutive days.
//!
//! Paper: comparing each (vantage point, destination) path on day d with
//! the same path on day d+1, 91% of paths have similarity ≥ 0.75, 68%
//! ≥ 0.9, and 50% are identical (similarity = |∩| / |∪| over the sets of
//! clusters, 0.05-wide bins).

use inano_bench::report::emit;
use inano_bench::{Scenario, ScenarioConfig};
use inano_model::path::path_similarity;
use inano_model::stats::Histogram;
use inano_model::ClusterPath;
use inano_paths::PathAtlas;
use serde::Serialize;
use std::collections::HashMap;

#[derive(Serialize)]
struct Out {
    bins: Vec<(f64, f64)>,
    frac_ge_075: f64,
    frac_ge_09: f64,
    frac_identical: f64,
    pairs: usize,
}

fn main() {
    let sc = Scenario::build(ScenarioConfig::experiment(42));
    eprintln!("scenario: {}", sc.summary());

    let (day1, _) = sc.atlas_for_day(1);
    let pa0 = PathAtlas::build(&sc.net, &sc.clustering, &sc.day0);
    let pa1 = PathAtlas::build(&sc.net, &sc.clustering, &day1);

    // Match (src host, dst prefix) pairs present on both days.
    let mut day1_paths: HashMap<(inano_model::HostId, inano_model::PrefixId), &Vec<_>> =
        HashMap::new();
    for p in &pa1.paths {
        day1_paths.insert((p.src, p.dst_prefix), &p.clusters);
    }

    let mut hist = Histogram::new(0.0, 1.0, 20);
    let mut ge075 = 0u64;
    let mut ge09 = 0u64;
    let mut ident = 0u64;
    let mut pairs = 0u64;
    for p in &pa0.paths {
        let Some(other) = day1_paths.get(&(p.src, p.dst_prefix)) else {
            continue;
        };
        let a = ClusterPath::new(p.clusters.clone());
        let b = ClusterPath::new((*other).clone());
        let s = path_similarity(&a, &b);
        hist.add(s);
        pairs += 1;
        if s >= 0.75 {
            ge075 += 1;
        }
        if s >= 0.9 {
            ge09 += 1;
        }
        if (s - 1.0).abs() < 1e-12 {
            ident += 1;
        }
    }

    let frac = |n: u64| n as f64 / pairs.max(1) as f64;
    let out = Out {
        bins: hist.fractions(),
        frac_ge_075: frac(ge075),
        frac_ge_09: frac(ge09),
        frac_identical: frac(ident),
        pairs: pairs as usize,
    };

    let mut text = String::from("== Figure 4: PoP-level path similarity across days ==\n");
    text.push_str(&format!("paths compared: {pairs}\n"));
    text.push_str(&format!(
        "similarity >= 0.75: {:.1}%   (paper: 91%)\n",
        out.frac_ge_075 * 100.0
    ));
    text.push_str(&format!(
        "similarity >= 0.90: {:.1}%   (paper: 68%)\n",
        out.frac_ge_09 * 100.0
    ));
    text.push_str(&format!(
        "identical:          {:.1}%   (paper: 50%)\n",
        out.frac_identical * 100.0
    ));
    text.push_str("\nhistogram (bin lower edge, fraction):\n");
    for (edge, f) in &out.bins {
        if *f > 0.0005 {
            text.push_str(&format!("  {edge:.2}  {:.3}\n", f));
        }
    }
    emit("fig4_path_stationarity", &text, &out);
}
