//! `fleet_sim`: a whole mirror fleet in one process, driven over the
//! real wire protocol, with scripted failures and the event journal as
//! the assertion instrument.
//!
//! The harness spawns an origin plus an N-deep tree of mirrors (each a
//! real [`NetServer`] with its own refresh loop, exactly the
//! `inano-serve --mirror` logic), points hundreds of client workers at
//! the fleet with a zipf destination mix and diurnal pacing, and then
//! injects faults:
//!
//! * `kill-restart` — a leaf mirror's server is shut down, a delta
//!   lands at the origin while it is dark, and the server is rebound;
//!   recovery is the first `generation_swap` the restarted node
//!   journals after the kill.
//! * `chain-break` — a mirror's refresh is stalled while the origin
//!   applies more than [`DELTA_LOG_CAP`] deltas, so the bridging delta
//!   falls off the retained chain; recovery is the `full_resync` the
//!   victim journals once its refresh resumes.
//! * `hostile` — a pipeliner floods the origin with unacknowledged
//!   batches past the in-flight cap; recovery is the journal's
//!   `overload_start` → `overload_end` episode width.
//!
//! A scraper thread drains every server's journal on an interval
//! (`NetClient::events` with a per-server cursor, reset when a node
//! restarts onto a fresh journal) and merges the streams by
//! `(t_ms, seq)` into one fleet timeline. Ring overwrites between
//! scrapes are *counted* (`events_lost`), never silently skipped.
//!
//! The contract line is one `BENCH` JSON record: the merged timeline,
//! one recovery latency per injected fault, and the query-failure
//! split — failures inside an injected fault window are expected,
//! failures outside must be zero.
//!
//! `--idle-peers N` parks `N` extra connections across the fleet that
//! never send a byte — the §5 reality that most of a mirror's peers
//! are idle most of the time — so every fault above is injected and
//! recovered *through* a crowd of registrations, not on a quiet
//! server.
//!
//! `--udp-clients N` opens every node's datagram plane and adds `N`
//! [`UdpQuerier`] workers with the same query mix — so faults are
//! also recovered *through* the retry-and-rebind path of clients
//! that hold no connection at all.
//!
//! Usage: `fleet_sim [--mirrors N] [--depth D] [--clients C]
//!         [--ring N] [--refresh-ms MS] [--scrape-ms MS]
//!         [--faults kill-restart,chain-break,hostile] [--seed S]
//!         [--idle-peers N] [--udp-clients N]`

use inano_atlas::{Atlas, AtlasDelta, LinkAnnotation, Plane};
use inano_core::{AtlasReader, AtlasSource};
use inano_model::{ClusterId, Ipv4, LatencyMs};
use inano_net::cli::arg;
use inano_net::demo::{ring_atlas, ring_ip, ring_predictor_config};
use inano_net::{MirrorSource, NetClient, NetServer, ServerConfig, UdpQuerier, UdpRetry};
use inano_obs::{now_ms, Event, EventKind};
use inano_service::{QueryEngine, ServiceConfig, ShardId, DELTA_LOG_CAP};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// The day-`day` world: the demo ring plus, from day 1 on, a 0 ↔ n/2
/// shortcut whose latency drifts a little every day — so every
/// consecutive-day delta is non-empty and the origin can publish an
/// arbitrarily long chain of them.
fn sim_atlas(n: u32, day: u32) -> Atlas {
    let mut a = ring_atlas(n, day);
    if day > 0 {
        let far = n / 2;
        for (x, y) in [(0, far), (far, 0)] {
            a.links.insert(
                (ClusterId::new(x), ClusterId::new(y)),
                LinkAnnotation {
                    latency: Some(LatencyMs::new(0.5 + day as f64 * 0.001)),
                    plane: Plane::TO_DST,
                },
            );
        }
    }
    a
}

/// Publish the `day → day+1` delta at the origin; returns the new day.
fn push_delta(origin: &QueryEngine, ring: u32, day: u32) -> u32 {
    let delta = AtlasDelta::between(&sim_atlas(ring, day), &sim_atlas(ring, day + 1));
    origin
        .apply_delta(&delta)
        .unwrap_or_else(|e| panic!("origin applies day-{day} delta: {e}"))
}

fn sim_service_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        chunk: 16,
        predictor: ring_predictor_config(),
        ..ServiceConfig::default()
    }
}

/// Low in-flight cap so the hostile pipeliner reliably trips the
/// overload path; normal workers are synchronous (one in flight).
/// `idle_headroom` widens the admission gate for the `--idle-peers`
/// crowd parked on this node. With `udp` the node also opens an
/// ephemeral datagram socket (rate limit off: every datagram client
/// in this harness shares 127.0.0.1, so the per-source bucket would
/// see one giant "source").
fn sim_server_config(idle_headroom: usize, udp: bool) -> ServerConfig {
    ServerConfig {
        max_conns: 512 + idle_headroom,
        max_inflight: 32,
        udp: udp.then(|| "127.0.0.1:0".parse().expect("literal addr")),
        udp_rate: 0,
        ..ServerConfig::default()
    }
}

/// State every thread shares: current node addresses (they change on
/// restart), worker counters, and the fault-window gate that decides
/// whether a query failure is expected.
struct Shared {
    /// `addrs[0]` is the origin, `addrs[1 + m]` is mirror `m`.
    addrs: Vec<Mutex<String>>,
    /// Datagram-plane addresses, same indexing; empty strings when
    /// the run has no `--udp-clients`.
    udp_addrs: Vec<Mutex<String>>,
    labels: Vec<String>,
    stop: AtomicBool,
    /// > 0 while an injected fault window is open.
    fault_open: AtomicU64,
    served: AtomicU64,
    failed_outside: AtomicU64,
    failed_inside: AtomicU64,
    /// Cumulative zipf weights over destination clusters.
    zipf_cum: Vec<f64>,
}

impl Shared {
    fn note_failure(&self) {
        if self.fault_open.load(Ordering::Relaxed) > 0 {
            self.failed_inside.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed_outside.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A datagram call spans its whole retry budget, so a failure is
    /// attributed to a fault window open at *either* end of the call
    /// — a kill mid-retry is still the fault's doing even if the
    /// window closed before the last attempt gave up.
    fn note_failure_spanning(&self, open_at_start: bool) {
        if open_at_start || self.fault_open.load(Ordering::Relaxed) > 0 {
            self.failed_inside.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed_outside.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn addr(&self, node: usize) -> String {
        self.addrs[node].lock().expect("addr table").clone()
    }

    fn udp_addr(&self, node: usize) -> String {
        self.udp_addrs[node].lock().expect("udp addr table").clone()
    }
}

fn zipf_cum(n: u32, exponent: f64) -> Vec<f64> {
    let mut total = 0.0;
    (0..n)
        .map(|r| {
            total += 1.0 / ((r + 1) as f64).powf(exponent);
            total
        })
        .collect()
}

/// One zipf-ranked destination cluster.
fn pick_zipf(cum: &[f64], rng: &mut SmallRng) -> u32 {
    let x = rng.gen_range(0.0..*cum.last().expect("non-empty zipf table"));
    cum.partition_point(|&c| c <= x) as u32
}

/// A worker batch: uniform sources, zipf destinations.
fn batch(rng: &mut SmallRng, ring: u32, cum: &[f64]) -> Vec<(Ipv4, Ipv4)> {
    (0..8)
        .map(|_| {
            let dst = pick_zipf(cum, rng);
            let mut src = rng.gen_range(0..ring);
            if src == dst {
                src = (src + 1) % ring;
            }
            (ring_ip(src), ring_ip(dst))
        })
        .collect()
}

/// One client worker: pinned to a node, zipf query mix, diurnal
/// pacing, reconnects through fault windows.
fn worker_loop(i: usize, ring: u32, seed: u64, diurnal_ms: u64, shared: Arc<Shared>) {
    let node = i % shared.addrs.len();
    let mut rng = SmallRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let started = Instant::now();
    'outer: while !shared.stop.load(Ordering::Relaxed) {
        let mut client = match NetClient::connect(shared.addr(node)) {
            Ok(c) => c,
            Err(_) => {
                // Node down (kill window) or restarting: retry.
                thread::sleep(Duration::from_millis(25));
                continue;
            }
        };
        loop {
            if shared.stop.load(Ordering::Relaxed) {
                break 'outer;
            }
            let pairs = batch(&mut rng, ring, &shared.zipf_cum);
            match client.query_batch(&pairs) {
                Ok(results) => {
                    for r in results {
                        match r {
                            Ok(_) => {
                                shared.served.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => shared.note_failure(),
                        }
                    }
                }
                Err(_) => {
                    // Connection-level failure (killed server, shed
                    // load): classify and rebuild the connection.
                    shared.note_failure();
                    break;
                }
            }
            // Diurnal pacing: the inter-batch gap swings over a short
            // "day", so load peaks and troughs like §5's client mix.
            let phase =
                (started.elapsed().as_millis() as u64 % diurnal_ms) as f64 / diurnal_ms as f64;
            let us = 300.0 * (1.0 + 0.9 * (std::f64::consts::TAU * phase).sin());
            thread::sleep(Duration::from_micros(us.max(1.0) as u64));
        }
    }
}

/// Retry policy of the fleet's datagram workers — tight, so a killed
/// node surfaces as a failed call in well under a second instead of
/// the stock multi-second budget blurring failures past the fault
/// window.
const UDP_WORKER_RETRY: UdpRetry = UdpRetry {
    timeout: Duration::from_millis(100),
    max_timeout: Duration::from_millis(400),
    attempts: 3,
};

/// Worst case for one failed datagram call under [`UDP_WORKER_RETRY`]
/// (the summed reply windows: 100 + 200 + 400 ms). A call issued just
/// *before* an injection can take this long to give up, so fault
/// windows must stay open this much longer before failures are
/// classified as unexpected.
const UDP_WORKER_FAIL_MS: u64 = 100 + 200 + 400;

/// One datagram client worker: the same zipf mix and diurnal pacing
/// as [`worker_loop`], carried one `QueryBatch` per datagram by a
/// [`UdpQuerier`] pinned to a node's `--udp` socket. A failed call
/// (retry budget exhausted — the node is dark or rebound elsewhere)
/// re-resolves the node's current datagram address, which is how a
/// restarted server's fresh ephemeral port is picked up.
fn udp_worker_loop(i: usize, ring: u32, seed: u64, diurnal_ms: u64, shared: Arc<Shared>) {
    let node = i % shared.addrs.len();
    let mut rng = SmallRng::seed_from_u64(
        seed ^ 0xD474_6172 ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    let started = Instant::now();
    'outer: while !shared.stop.load(Ordering::Relaxed) {
        let mut querier = match UdpQuerier::connect(shared.udp_addr(node)) {
            Ok(q) => q,
            Err(_) => {
                thread::sleep(Duration::from_millis(25));
                continue;
            }
        };
        querier.set_retry(UDP_WORKER_RETRY);
        loop {
            if shared.stop.load(Ordering::Relaxed) {
                break 'outer;
            }
            let open_at_start = shared.fault_open.load(Ordering::Relaxed) > 0;
            let pairs = batch(&mut rng, ring, &shared.zipf_cum);
            match querier.query_batch(&pairs) {
                Ok(results) => {
                    for r in results {
                        match r {
                            Ok(_) => {
                                shared.served.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => shared.note_failure(),
                        }
                    }
                }
                Err(_) => {
                    shared.note_failure_spanning(open_at_start);
                    break; // re-resolve the node's datagram address
                }
            }
            let phase =
                (started.elapsed().as_millis() as u64 % diurnal_ms) as f64 / diurnal_ms as f64;
            let us = 300.0 * (1.0 + 0.9 * (std::f64::consts::TAU * phase).sin());
            thread::sleep(Duration::from_micros(us.max(1.0) as u64));
        }
    }
}

/// The `inano-serve --mirror` refresh loop, in-harness: pull deltas
/// from the upstream node every tick, bridge broken chains with a full
/// resync, rebuild the upstream connection on any failure. `paused`
/// simulates the process being dark while its server is killed.
fn refresh_loop(
    engine: Arc<QueryEngine>,
    upstream_node: usize,
    refresh_ms: u64,
    paused: Arc<AtomicBool>,
    shared: Arc<Shared>,
) {
    let mut source: Option<MirrorSource> = None;
    loop {
        thread::sleep(Duration::from_millis(refresh_ms));
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        if paused.load(Ordering::Relaxed) {
            continue;
        }
        if source.is_none() {
            source = MirrorSource::connect(shared.addr(upstream_node), ShardId::DEFAULT).ok();
        }
        let Some(src) = source.as_mut() else { continue };
        match engine.update(src) {
            Ok(0) => {
                // Idle tick — unless the upstream's head moved without
                // a bridging delta: refetch the full atlas.
                match src.head() {
                    Ok(head) if head.epoch_tag != engine.export().epoch_tag => {
                        match AtlasReader::default().fetch_full(src) {
                            Ok((_, bytes)) => match inano_atlas::codec::decode(&bytes) {
                                Ok(atlas) => {
                                    engine.replace_atlas(Arc::new(atlas));
                                }
                                Err(_) => source = None,
                            },
                            Err(_) => source = None,
                        }
                    }
                    Ok(_) => {}
                    Err(_) => source = None,
                }
            }
            Ok(_) => {}
            Err(_) => source = None,
        }
    }
}

/// Poll `node`'s journal (over the wire, like any remote observer)
/// until an event of `kind` stamped at or after `after_ms` appears.
fn await_event(
    shared: &Shared,
    node: usize,
    kind: EventKind,
    after_ms: u64,
    timeout: Duration,
) -> Option<Event> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Ok(mut c) = NetClient::connect(shared.addr(node)) {
            if let Ok(page) = c.events(0) {
                if let Some(e) = page
                    .events
                    .iter()
                    .filter(|e| e.kind == kind && e.t_ms >= after_ms)
                    .min_by_key(|e| (e.t_ms, e.seq))
                {
                    return Some(e.clone());
                }
            }
        }
        if Instant::now() >= deadline {
            return None;
        }
        thread::sleep(Duration::from_millis(25));
    }
}

/// The journal scraper: one cursor per server, reset when the node
/// restarts onto a fresh journal (new address = new ring), merging all
/// streams into one timeline. Runs one final pass after stop so the
/// post-fault tail is captured.
#[allow(clippy::type_complexity)]
fn scraper_loop(
    shared: Arc<Shared>,
    scrape_stop: Arc<AtomicBool>,
    scrape_ms: u64,
    timeline: Arc<Mutex<Vec<(String, Event)>>>,
    events_lost: Arc<AtomicU64>,
) {
    let n = shared.addrs.len();
    let mut cursors: Vec<(String, u64)> = (0..n).map(|i| (shared.addr(i), 0)).collect();
    loop {
        let final_pass = scrape_stop.load(Ordering::Relaxed);
        for (i, cursor) in cursors.iter_mut().enumerate() {
            let addr = shared.addr(i);
            if addr != cursor.0 {
                *cursor = (addr.clone(), 0);
            }
            let Ok(mut client) = NetClient::connect(&addr) else {
                continue; // node dark mid-fault; next tick catches up
            };
            let Ok(page) = client.events(cursor.1) else {
                continue;
            };
            events_lost.fetch_add(page.lost, Ordering::Relaxed);
            cursor.1 = page.next_seq;
            let mut tl = timeline.lock().expect("timeline");
            let label = &shared.labels[i];
            tl.extend(page.events.into_iter().map(|e| (label.clone(), e)));
        }
        if final_pass {
            return;
        }
        thread::sleep(Duration::from_millis(scrape_ms));
    }
}

fn main() {
    let mirrors: usize = arg("--mirrors", 3);
    let depth: usize = arg("--depth", 2);
    let clients: usize = arg("--clients", 200);
    let ring: u32 = arg("--ring", 24);
    let refresh_ms: u64 = arg("--refresh-ms", 100);
    let scrape_ms: u64 = arg("--scrape-ms", 200);
    let diurnal_ms: u64 = arg("--diurnal-ms", 1000);
    let seed: u64 = arg("--seed", 42);
    let idle_peers: usize = arg("--idle-peers", 0);
    let udp_clients: usize = arg("--udp-clients", 0);
    let faults_arg: String = arg("--faults", "kill-restart,chain-break,hostile".to_string());
    let faults: Vec<String> = faults_arg
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    for f in &faults {
        assert!(
            matches!(f.as_str(), "kill-restart" | "chain-break" | "hostile"),
            "unknown fault {f:?} (want kill-restart, chain-break or hostile)"
        );
    }
    assert!(mirrors >= 1, "--mirrors must be at least 1");
    assert!(depth >= 1, "--depth must be at least 1");

    // Idle peers are spread round-robin over the fleet; both socket
    // ends live in this one process, so budget descriptors for both.
    let idle_per_node = idle_peers.div_ceil(mirrors + 1);
    if idle_peers > 0 {
        let need = (2 * idle_peers + 2 * clients + 1024) as u64;
        let have = inano_net::raise_nofile_limit(need);
        assert!(
            have >= need,
            "--idle-peers {idle_peers} needs {need} file descriptors, limit is {have}"
        );
    }

    // ---- build the fleet: origin first, then mirrors in index order
    // (every parent has a lower index, so each hop can bootstrap over
    // the wire from an already-live node).
    let breadth = mirrors.div_ceil(depth);
    let parent_of = |m: usize| if m < breadth { 0 } else { m - breadth + 1 };

    let udp = udp_clients > 0;
    let mut engines: Vec<Arc<QueryEngine>> = Vec::with_capacity(mirrors + 1);
    let mut servers: Vec<Option<NetServer>> = Vec::with_capacity(mirrors + 1);
    let mut addrs: Vec<Mutex<String>> = Vec::with_capacity(mirrors + 1);
    let mut udp_addrs: Vec<Mutex<String>> = Vec::with_capacity(mirrors + 1);
    let mut labels: Vec<String> = Vec::with_capacity(mirrors + 1);
    let udp_addr_of =
        |s: &NetServer| Mutex::new(s.udp_addr().map(|a| a.to_string()).unwrap_or_default());

    let origin_engine = Arc::new(QueryEngine::new(
        Arc::new(sim_atlas(ring, 0)),
        sim_service_config(),
    ));
    let origin = NetServer::bind_single(
        "127.0.0.1:0",
        Arc::clone(&origin_engine),
        sim_server_config(idle_per_node, udp),
    )
    .expect("bind origin");
    addrs.push(Mutex::new(origin.local_addr().to_string()));
    udp_addrs.push(udp_addr_of(&origin));
    labels.push("origin".to_string());
    engines.push(origin_engine);
    servers.push(Some(origin));

    for m in 0..mirrors {
        let parent = parent_of(m);
        let parent_addr = addrs[parent].lock().expect("addr table").clone();
        let mut source = MirrorSource::connect(&parent_addr, ShardId::DEFAULT)
            .unwrap_or_else(|e| panic!("m{m}: connect upstream {parent_addr}: {e}"));
        let engine = Arc::new(
            QueryEngine::bootstrap(&mut source, sim_service_config())
                .unwrap_or_else(|e| panic!("m{m}: bootstrap from {parent_addr}: {e}")),
        );
        let server = NetServer::bind_single(
            "127.0.0.1:0",
            Arc::clone(&engine),
            sim_server_config(idle_per_node, udp),
        )
        .unwrap_or_else(|e| panic!("m{m}: bind: {e}"));
        eprintln!(
            "m{m}: mirroring node {} ({parent_addr}) at {}",
            labels[parent],
            server.local_addr()
        );
        addrs.push(Mutex::new(server.local_addr().to_string()));
        udp_addrs.push(udp_addr_of(&server));
        labels.push(format!("m{m}"));
        engines.push(engine);
        servers.push(Some(server));
    }

    let shared = Arc::new(Shared {
        addrs,
        udp_addrs,
        labels,
        stop: AtomicBool::new(false),
        fault_open: AtomicU64::new(0),
        served: AtomicU64::new(0),
        failed_outside: AtomicU64::new(0),
        failed_inside: AtomicU64::new(0),
        zipf_cum: zipf_cum(ring, 1.1),
    });

    // ---- refresh loops (one per mirror) + journal scraper + workers.
    let pauses: Vec<Arc<AtomicBool>> = (0..mirrors)
        .map(|_| Arc::new(AtomicBool::new(false)))
        .collect();
    let mut threads = Vec::new();
    for m in 0..mirrors {
        let engine = Arc::clone(&engines[m + 1]);
        let paused = Arc::clone(&pauses[m]);
        let shared = Arc::clone(&shared);
        let upstream = parent_of(m);
        threads.push(
            thread::Builder::new()
                .name(format!("refresh-m{m}"))
                .spawn(move || refresh_loop(engine, upstream, refresh_ms, paused, shared))
                .expect("spawn refresh loop"),
        );
    }
    let timeline = Arc::new(Mutex::new(Vec::new()));
    let events_lost = Arc::new(AtomicU64::new(0));
    let scrape_stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let shared = Arc::clone(&shared);
        let stop = Arc::clone(&scrape_stop);
        let timeline = Arc::clone(&timeline);
        let lost = Arc::clone(&events_lost);
        thread::Builder::new()
            .name("scraper".into())
            .spawn(move || scraper_loop(shared, stop, scrape_ms, timeline, lost))
            .expect("spawn scraper")
    };
    for i in 0..clients {
        let shared = Arc::clone(&shared);
        threads.push(
            thread::Builder::new()
                .name(format!("worker-{i}"))
                .spawn(move || worker_loop(i, ring, seed, diurnal_ms, shared))
                .expect("spawn worker"),
        );
    }
    for i in 0..udp_clients {
        let shared = Arc::clone(&shared);
        threads.push(
            thread::Builder::new()
                .name(format!("udp-worker-{i}"))
                .spawn(move || udp_worker_loop(i, ring, seed, diurnal_ms, shared))
                .expect("spawn udp worker"),
        );
    }

    // Park the idle-peer crowd: round-robin over the fleet, never a
    // byte sent. Held to the end of the run, so every fault below is
    // injected through these registrations. (Peers parked on the
    // kill-restart victim die with it and stay dead — real idle peers
    // would only notice at their next request.)
    let mut idle_crowd: Vec<std::net::TcpStream> = Vec::with_capacity(idle_peers);
    for i in 0..idle_peers {
        let node = i % shared.addrs.len();
        // Pacing: stay under each server's listen backlog.
        if i > 0 && i % 256 == 0 {
            thread::sleep(Duration::from_millis(5));
        }
        match std::net::TcpStream::connect(shared.addr(node)) {
            Ok(s) => idle_crowd.push(s),
            Err(e) => panic!("idle peer {i} refused by {}: {e}", shared.labels[node]),
        }
    }
    if idle_peers > 0 {
        eprintln!(
            "idle peers: {} parked across {} nodes",
            idle_crowd.len(),
            shared.addrs.len()
        );
    }

    // Warm up: let every worker connect and the fleet serve steadily.
    thread::sleep(Duration::from_millis(400));

    // ---- the fault script, one injection at a time.
    let recovery_timeout = Duration::from_secs(20);
    let mut origin_day = 0u32;
    let mut fault_records = Vec::new();
    let started = Instant::now();
    for fault in &faults {
        match fault.as_str() {
            // Kill a leaf mirror's server, land a delta while it is
            // dark, rebind, and time kill → first generation_swap.
            "kill-restart" => {
                let victim = mirrors; // node index of the last mirror (a leaf)
                let label = shared.labels[victim].clone();
                let fault_t = now_ms();
                shared.fault_open.fetch_add(1, Ordering::SeqCst);
                pauses[victim - 1].store(true, Ordering::SeqCst);
                let server = servers[victim].take().expect("victim server is live");
                server.shutdown();
                drop(server);
                eprintln!("fault kill-restart: {label} is dark");
                origin_day = push_delta(&engines[0], ring, origin_day);
                thread::sleep(Duration::from_millis(300));
                let server = NetServer::bind_single(
                    "127.0.0.1:0",
                    Arc::clone(&engines[victim]),
                    sim_server_config(idle_per_node, udp),
                )
                .expect("rebind the killed mirror");
                *shared.addrs[victim].lock().expect("addr table") = server.local_addr().to_string();
                *shared.udp_addrs[victim].lock().expect("udp addr table") =
                    server.udp_addr().map(|a| a.to_string()).unwrap_or_default();
                eprintln!(
                    "fault kill-restart: {label} back at {}",
                    server.local_addr()
                );
                servers[victim] = Some(server);
                pauses[victim - 1].store(false, Ordering::SeqCst);
                let ev = await_event(
                    &shared,
                    victim,
                    EventKind::GenerationSwap,
                    fault_t,
                    recovery_timeout,
                );
                // Let stragglers on the old socket surface inside the
                // window before it closes — datagram callers may
                // still be burning their retry budget.
                thread::sleep(Duration::from_millis(
                    200 + if udp { UDP_WORKER_FAIL_MS } else { 0 },
                ));
                shared.fault_open.fetch_sub(1, Ordering::SeqCst);
                record_fault(&mut fault_records, "kill-restart", &label, fault_t, ev);
            }
            // Stall a mirror's refresh while the origin publishes more
            // deltas than it retains, then time resume → full_resync.
            "chain-break" => {
                let victim = 1; // node index of mirror 0
                let label = shared.labels[victim].clone();
                pauses[victim - 1].store(true, Ordering::SeqCst);
                // Let an in-flight refresh tick drain before breaking
                // the chain under it.
                thread::sleep(Duration::from_millis(refresh_ms * 2));
                eprintln!(
                    "fault chain-break: {label} stalled; origin publishes {} deltas",
                    DELTA_LOG_CAP + 2
                );
                for _ in 0..DELTA_LOG_CAP + 2 {
                    origin_day = push_delta(&engines[0], ring, origin_day);
                }
                let fault_t = now_ms();
                pauses[victim - 1].store(false, Ordering::SeqCst);
                let ev = await_event(
                    &shared,
                    victim,
                    EventKind::FullResync,
                    fault_t,
                    recovery_timeout,
                );
                record_fault(&mut fault_records, "chain-break", &label, fault_t, ev);
            }
            // Flood the origin with unacknowledged batches past the
            // in-flight cap; the episode width is the recovery.
            "hostile" => {
                let label = shared.labels[0].clone();
                let fault_t = now_ms();
                shared.fault_open.fetch_add(1, Ordering::SeqCst);
                eprintln!("fault hostile: pipelining past the in-flight cap at {label}");
                let flood: Vec<(Ipv4, Ipv4)> = (0..ring)
                    .flat_map(|s| [(ring_ip(s), ring_ip((s + 1) % ring))])
                    .collect();
                let mut pipeliner =
                    NetClient::connect(shared.addr(0)).expect("hostile pipeliner connects");
                let depth = sim_server_config(0, false).max_inflight * 8;
                let mut submitted = 0usize;
                for _ in 0..depth {
                    if pipeliner.submit_batch(&flood).is_err() {
                        break; // server hung up on us: mission accomplished
                    }
                    submitted += 1;
                }
                for _ in 0..submitted {
                    if pipeliner.recv().is_err() {
                        break;
                    }
                }
                drop(pipeliner);
                let start = await_event(
                    &shared,
                    0,
                    EventKind::OverloadStart,
                    fault_t,
                    recovery_timeout,
                );
                let ev = start.as_ref().and_then(|s| {
                    await_event(&shared, 0, EventKind::OverloadEnd, s.t_ms, recovery_timeout)
                });
                thread::sleep(Duration::from_millis(
                    200 + if udp { UDP_WORKER_FAIL_MS } else { 0 },
                ));
                shared.fault_open.fetch_sub(1, Ordering::SeqCst);
                let episode_start = start.map(|s| s.t_ms).unwrap_or(fault_t);
                record_fault(&mut fault_records, "hostile", &label, episode_start, ev);
            }
            _ => unreachable!("validated above"),
        }
        // Steady-state gap between injections.
        thread::sleep(Duration::from_millis(300));
    }

    // ---- drain: steady tail, then stop workers, then one final
    // scrape pass (servers still up), then tear the fleet down.
    thread::sleep(Duration::from_millis(400));
    shared.stop.store(true, Ordering::SeqCst);
    for t in threads {
        let _ = t.join();
    }
    scrape_stop.store(true, Ordering::SeqCst);
    let _ = scraper.join();
    let duration_ms = started.elapsed().as_millis() as u64;
    drop(idle_crowd);
    for s in servers.iter().flatten() {
        s.shutdown();
    }

    // ---- merge and report.
    let mut merged = timeline.lock().expect("timeline").clone();
    merged.sort_by(|(na, a), (nb, b)| (a.t_ms, a.seq, na).cmp(&(b.t_ms, b.seq, nb)));
    let conn_events = merged
        .iter()
        .filter(|(_, e)| matches!(e.kind, EventKind::ConnAccepted | EventKind::ConnClosed))
        .count();
    let timeline_json: Vec<String> = merged
        .iter()
        .filter(|(_, e)| !matches!(e.kind, EventKind::ConnAccepted | EventKind::ConnClosed))
        .map(|(node, e)| {
            format!(
                "{{\"node\":{},\"seq\":{},\"t_ms\":{},\"kind\":{},\"detail\":{}}}",
                json_str(node),
                e.seq,
                e.t_ms,
                json_str(e.kind.name()),
                json_str(&e.detail)
            )
        })
        .collect();
    // The contract line: exactly one JSON record on stdout.
    println!(
        "{{\"bench\":\"fleet_sim\",\"ring\":{ring},\"mirrors\":{mirrors},\"depth\":{depth},\
         \"clients\":{clients},\"idle_peers\":{idle_peers},\"udp_clients\":{udp_clients},\
         \"duration_ms\":{duration_ms},\"origin_day\":{origin_day},\
         \"queries\":{},\"failed_queries\":{},\"failed_in_fault_windows\":{},\
         \"events\":{},\"conn_events\":{conn_events},\"events_lost\":{},\
         \"faults\":[{}],\"timeline\":[{}]}}",
        shared.served.load(Ordering::Relaxed),
        shared.failed_outside.load(Ordering::Relaxed),
        shared.failed_inside.load(Ordering::Relaxed),
        merged.len(),
        events_lost.load(Ordering::Relaxed),
        fault_records.join(","),
        timeline_json.join(","),
    );
}

/// A JSON string literal (quotes, backslashes and control bytes
/// escaped) — journal details may quote upstream error messages.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One per-fault result row: the recovery latency is event-to-event
/// (injection timestamp to the journal event that proves recovery),
/// or -1 if the fleet never journaled recovery inside the timeout.
fn record_fault(out: &mut Vec<String>, fault: &str, node: &str, fault_t: u64, ev: Option<Event>) {
    let recovery_ms: i64 = ev
        .as_ref()
        .map(|e| e.t_ms.saturating_sub(fault_t) as i64)
        .unwrap_or(-1);
    let recovered_by = ev
        .as_ref()
        .map(|e| json_str(e.kind.name()))
        .unwrap_or_else(|| "null".to_string());
    eprintln!(
        "fault {fault}: node={node} recovery_ms={recovery_ms} via={}",
        ev.as_ref().map(|e| e.kind.name()).unwrap_or("timeout"),
    );
    out.push(format!(
        "{{\"fault\":{},\"node\":{},\"injected_t_ms\":{fault_t},\"recovery_ms\":{recovery_ms},\
         \"recovered_by\":{recovered_by}}}",
        json_str(fault),
        json_str(node),
    ));
}
