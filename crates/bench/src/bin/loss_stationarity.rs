//! §6.2.2: stationarity of packet loss. Paper: probing paths from 201
//! nodes to 5000 prefixes with 100 ICMP probes, 66% of lossy paths were
//! still lossy 6 hours later; 53% after 12 hours; steady at 53% after
//! 24 hours.

use inano_bench::report::emit;
use inano_bench::{Scenario, ScenarioConfig};
use inano_measure::lossprobe::measure_path_loss;
use inano_model::rng::rng_for;
use inano_model::{HostId, PrefixId};
use inano_routing::RoutingOracle;
use inano_topology::loss::LossProcess;
use rand::seq::SliceRandom;
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    hours: u32,
    still_lossy: f64,
    lossy_at_t0: usize,
}

fn main() {
    let sc = Scenario::build(ScenarioConfig::experiment(42));
    eprintln!("scenario: {}", sc.summary());
    let mut rng = rng_for(sc.cfg.seed, "loss-stationarity");

    // Simulate 5 six-hour epochs of the loss process (0h..24h).
    let process = LossProcess::simulate(&sc.net, 5);

    // Probe pairs: VPs to random prefixes.
    let probers: Vec<HostId> = sc.vps.infra.clone();
    let mut dests: Vec<PrefixId> = sc.net.edge_prefixes().map(|p| p.id).collect();
    dests.shuffle(&mut rng);
    dests.truncate(60);

    // Measure at epoch 0; re-measure at 6h (epoch 1), 12h (2), 24h (4).
    let mut lossy_at_t0: Vec<(HostId, PrefixId)> = Vec::new();
    {
        let mut net0 = sc.net.clone();
        process.apply_epoch(&mut net0, 0);
        let oracle = RoutingOracle::new(&net0, sc.churn.day_state(0));
        for &src in &probers {
            for &d in &dests {
                if let Some(l) = measure_path_loss(&oracle, src, d, 100, &mut rng) {
                    if l.is_lossy() {
                        lossy_at_t0.push((src, d));
                    }
                }
            }
        }
    }
    eprintln!("lossy paths at t0: {}", lossy_at_t0.len());

    let mut outs = Vec::new();
    let mut text = String::from("== §6.2.2: loss stationarity ==\n");
    text.push_str(&format!("lossy paths at t0: {}\n\n", lossy_at_t0.len()));
    text.push_str(&format!(
        "{:>7} {:>14} {:>10}\n",
        "hours", "still lossy", "paper"
    ));
    for (hours, epoch, paper) in [(6u32, 1usize, "66%"), (12, 2, "53%"), (24, 4, "53%")] {
        let mut net = sc.net.clone();
        process.apply_epoch(&mut net, epoch);
        let oracle = RoutingOracle::new(&net, sc.churn.day_state(0));
        let mut still = 0usize;
        for &(src, d) in &lossy_at_t0 {
            if let Some(l) = measure_path_loss(&oracle, src, d, 100, &mut rng) {
                if l.is_lossy() {
                    still += 1;
                }
            }
        }
        let frac = still as f64 / lossy_at_t0.len().max(1) as f64;
        text.push_str(&format!(
            "{hours:>7} {:>13.1}% {:>10}\n",
            frac * 100.0,
            paper
        ));
        outs.push(Out {
            hours,
            still_lossy: frac,
            lossy_at_t0: lossy_at_t0.len(),
        });
    }
    emit("loss_stationarity", &text, &outs);
}
