//! Figure 6: accuracy of latency (RTT) estimates to arbitrary
//! destinations — iNano vs Vivaldi vs iPlane path composition.
//!
//! Paper: median error 6ms (composition) < 11ms (iNano) < 20ms
//! (Vivaldi); the order *reverses* in the tail, where Vivaldi's bounded
//! coordinates beat both structural estimators whose mispredictions can
//! be arbitrarily wrong.

use inano_bench::report::{cdf_rows, emit};
use inano_bench::{eval, Scenario, ScenarioConfig};
use inano_core::{PathPredictor, PredictorConfig};
use inano_model::stats::Ecdf;
use inano_paths::{PathAtlas, PathComposer};
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct Out {
    medians: Vec<(String, f64)>,
    p90: Vec<(String, f64)>,
    samples: usize,
}

fn main() {
    let sc = Scenario::build(ScenarioConfig::experiment(42));
    eprintln!("scenario: {}", sc.summary());
    let oracle = sc.oracle(0);
    let paths = eval::validation_set(&sc, &oracle, 37, 100);
    eprintln!("validation set: {} paths", paths.len());

    // iNano.
    let atlas = Arc::new(sc.atlas.clone());
    let predictor = PathPredictor::new(Arc::clone(&atlas), PredictorConfig::full());

    // Path composition.
    let path_atlas = PathAtlas::build(&sc.net, &sc.clustering, &sc.day0);
    let composer = PathComposer::new(&path_atlas, &atlas);

    // Vivaldi over all validation endpoints (sources + destination hosts).
    let mut hosts: Vec<inano_model::HostId> = paths.iter().map(|p| p.src_host).collect();
    let mut dst_hosts = Vec::new();
    for p in &paths {
        // One host per prefix in our topology.
        if let Some(h) = sc
            .net
            .hosts
            .iter()
            .find(|h| h.prefix == p.dst_prefix)
            .map(|h| h.id)
        {
            dst_hosts.push((p.dst_prefix, h));
        }
    }
    hosts.extend(dst_hosts.iter().map(|&(_, h)| h));
    hosts.sort();
    hosts.dedup();
    eprintln!("training Vivaldi over {} hosts", hosts.len());
    let (vivaldi, vidx) = eval::train_vivaldi(&sc, &oracle, &hosts, 80);
    let dst_host_of: std::collections::HashMap<_, _> = dst_hosts.into_iter().collect();

    let mut err_inano = Vec::new();
    let mut err_viv = Vec::new();
    let mut err_comp = Vec::new();
    for p in &paths {
        let truth = p.true_rtt.ms();
        if let Ok(pred) = predictor.predict(p.src_prefix, p.dst_prefix) {
            err_inano.push((pred.rtt.ms() - truth).abs());
        }
        if let Some(&dh) = dst_host_of.get(&p.dst_prefix) {
            let (i, j) = (vidx[&p.src_host], vidx[&dh]);
            err_viv.push((vivaldi.estimate(i, j).ms() - truth).abs());
        }
        if let (Some(&sc_cl), Some(&dc_cl)) = (
            sc.atlas.prefix_cluster.get(&p.src_prefix),
            sc.atlas.prefix_cluster.get(&p.dst_prefix),
        ) {
            if let Ok(rtt) = composer.predict_rtt(sc_cl, p.src_prefix, dc_cl, p.dst_prefix) {
                err_comp.push((rtt.ms() - truth).abs());
            }
        }
    }

    let series = [
        ("iNano", Ecdf::new(err_inano)),
        ("Vivaldi", Ecdf::new(err_viv)),
        ("path composition", Ecdf::new(err_comp)),
    ];
    let mut text = String::from("== Figure 6: RTT estimation error (ms) ==\n");
    let mut medians = Vec::new();
    let mut p90 = Vec::new();
    for (name, e) in &series {
        if e.is_empty() {
            text.push_str(&format!("{name}: no samples\n"));
            continue;
        }
        text.push_str(&cdf_rows(name, e));
        medians.push((name.to_string(), e.median()));
        p90.push((name.to_string(), e.quantile(0.9)));
    }
    text.push_str("\nmedians (paper: composition 6ms < iNano 11ms < Vivaldi 20ms):\n");
    for (n, m) in &medians {
        text.push_str(&format!("  {n:<18} {m:.1} ms\n"));
    }
    text.push_str("p90 (paper: order reverses in the tail):\n");
    for (n, m) in &p90 {
        text.push_str(&format!("  {n:<18} {m:.1} ms\n"));
    }
    let out = Out {
        medians,
        p90,
        samples: paths.len(),
    };
    emit("fig6_latency_error", &text, &out);
}
