//! Figure 5: AS-path prediction accuracy as each iNano component is
//! added to GRAPH, vs RouteScope and iPlane-style path composition.
//!
//! Paper numbers (for shape comparison): RouteScope < GRAPH (31%) →
//! +asym → +tuples → +prefs → +providers (70%) ≈ path composition (70%)
//! < improved composition (81%); iNano also beats the baselines on AS
//! path *length* accuracy. §6.3.1 additionally reports that 7% of
//! validation paths have a link missing from the atlas.

use inano_bench::report::{emit, pct};
use inano_bench::{eval, Scenario, ScenarioConfig};
use inano_core::{PathPredictor, PredictorConfig};
use inano_model::rng::rng_for;
use inano_paths::{ImprovedComposer, PathAtlas, PathComposer, RouteScope};
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct Row {
    model: String,
    exact_as_path: f64,
    correct_length: f64,
    predicted: usize,
    total: usize,
}

fn main() {
    let seed = 42;
    let sc = Scenario::build(ScenarioConfig::experiment(seed));
    eprintln!("scenario: {}", sc.summary());

    let oracle = sc.oracle(0);
    let paths = eval::validation_set(&sc, &oracle, 37, 100);
    eprintln!("validation set: {} paths", paths.len());
    let gap = eval::atlas_coverage_gap(&sc, &paths);

    let atlas = Arc::new(sc.atlas.clone());
    let mut rows: Vec<Row> = Vec::new();

    // --- RouteScope baseline ---
    {
        let rs = RouteScope::new(&atlas);
        let mut rng = rng_for(seed, "routescope");
        let mut exact = 0;
        let mut len_ok = 0;
        let mut predicted = 0;
        for p in &paths {
            let src_as = sc.net.host(p.src_host).asn;
            let dst_as = sc.net.prefix(p.dst_prefix).origin;
            let Some(pred) = rs.predict(src_as, dst_as, &mut rng) else {
                continue;
            };
            predicted += 1;
            if pred == p.true_as_path {
                exact += 1;
            }
            if pred.len() == p.true_as_path.len() {
                len_ok += 1;
            }
        }
        rows.push(Row {
            model: "RouteScope".into(),
            exact_as_path: exact as f64 / paths.len() as f64,
            correct_length: len_ok as f64 / paths.len() as f64,
            predicted,
            total: paths.len(),
        });
    }

    // --- the GRAPH → iNano ladder ---
    for (name, cfg) in PredictorConfig::ladder() {
        let predictor = PathPredictor::new(Arc::clone(&atlas), cfg);
        let mut exact = 0usize;
        let mut len_ok = 0usize;
        let mut predicted = 0usize;
        for p in &paths {
            let Ok(fwd) = predictor.predict_forward(p.src_prefix, p.dst_prefix) else {
                continue;
            };
            predicted += 1;
            let as_path = predictor.as_path_of(&fwd, p.dst_prefix);
            if as_path == p.true_as_path {
                exact += 1;
            }
            if as_path.len() == p.true_as_path.len() {
                len_ok += 1;
            }
        }
        rows.push(Row {
            model: name.to_string(),
            exact_as_path: exact as f64 / paths.len() as f64,
            correct_length: len_ok as f64 / paths.len() as f64,
            predicted,
            total: paths.len(),
        });
    }

    // --- iPlane path composition and its improved variant ---
    let path_atlas = PathAtlas::build(&sc.net, &sc.clustering, &sc.day0);
    let composer = PathComposer::new(&path_atlas, &atlas);
    let improved = ImprovedComposer::new(PathComposer::new(&path_atlas, &atlas));
    for (name, f) in [
        (
            "path composition",
            Box::new(|src, dst| composer.predict_forward(src, dst))
                as Box<dyn Fn(_, _) -> Result<inano_paths::composition::ComposedPath, _>>,
        ),
        (
            "improved composition",
            Box::new(|src, dst| improved.predict_forward(src, dst)),
        ),
    ] {
        let mut exact = 0;
        let mut len_ok = 0;
        let mut predicted = 0;
        for p in &paths {
            let Some(&src_cluster) = sc.atlas.prefix_cluster.get(&p.src_prefix) else {
                continue;
            };
            let Ok(c) = f(src_cluster, p.dst_prefix) else {
                continue;
            };
            predicted += 1;
            let as_path = composer.as_path_of(&c.clusters, p.dst_prefix);
            if as_path == p.true_as_path {
                exact += 1;
            }
            if as_path.len() == p.true_as_path.len() {
                len_ok += 1;
            }
        }
        rows.push(Row {
            model: name.into(),
            exact_as_path: exact as f64 / paths.len() as f64,
            correct_length: len_ok as f64 / paths.len() as f64,
            predicted,
            total: paths.len(),
        });
    }

    let mut text = String::from("== Figure 5: AS path prediction accuracy ==\n");
    text.push_str(&format!(
        "{:<22} {:>12} {:>12} {:>12}\n",
        "model", "exact path", "exact length", "predicted"
    ));
    for r in &rows {
        text.push_str(&format!(
            "{:<22} {:>12} {:>12} {:>9}/{}\n",
            r.model,
            pct(r.exact_as_path),
            pct(r.correct_length),
            r.predicted,
            r.total
        ));
    }
    text.push_str(&format!(
        "\natlas coverage gap (paths with a missing link): {} (paper: 7%)\n",
        pct(gap)
    ));
    emit("fig5_as_accuracy", &text, &rows);
}
