//! `fleet_scrape`: poll several `inano-serve` instances, merge their
//! per-shard engine counters into one fleet-wide view, and emit it as a
//! single BENCH JSON line.
//!
//! The merge is exact, not approximate: `StatsReply` ships each
//! engine's raw log₂ latency buckets, and `ServiceStats::aggregate`
//! sums those bucket vectors element-wise before recomputing p50/p99 —
//! merging histograms, where averaging per-server percentiles would be
//! statistically meaningless.
//!
//! With `--interval MS` the scraper becomes a time-series poller over
//! the protocol-v4 `Metrics` frame: every tick it pulls each server's
//! unified [`MetricsDump`], merges them (counters sum, histograms sum
//! element-wise, gauges take the fleet max) and appends one sample —
//! fleet queries, deltas applied, full resyncs, and the *fleet lag*
//! (max minus min serving day across every scraped shard, the spread a
//! mid-run delta swap opens and a mirror refresh closes). Each tick
//! also drains every server's event journal (`Events` since the
//! per-server cursor from the previous tick) and merges the new events
//! into the sample by `(t_ms, seq)`; entries a server's bounded ring
//! dropped between ticks are *counted* — the journal's `lost`
//! accounting — and surface as `events_lost`, never silently skipped.
//! The samples ship as one `fleet_timeseries` BENCH JSON line.
//!
//! Usage: `fleet_scrape --connect ADDR [--connect ADDR]...
//!         [--interval MS [--ticks T]]`
//!
//! [`MetricsDump`]: inano_obs::MetricsDump

use inano_net::cli::{arg, repeated};
use inano_net::NetClient;
use inano_obs::MetricsDump;
use inano_service::{ServiceStats, ShardId};
use std::time::{Duration, Instant};

/// One merged-fleet sample.
struct Tick {
    t_ms: u64,
    queries: u64,
    deltas_applied: u64,
    full_resyncs: u64,
    fleet_lag_days: u64,
    /// New journal events merged across the fleet this tick.
    events: u64,
    /// Ring entries dropped fleet-wide before this tick's scrape could
    /// read them (cumulative across the run).
    events_lost: u64,
}

/// The serving-day spread across every shard of every dump: 0 when the
/// whole fleet serves the same generation, positive while a swap at
/// the origin has not yet propagated to every mirror.
fn fleet_lag_days(dumps: &[MetricsDump]) -> u64 {
    let mut min_day = u64::MAX;
    let mut max_day = 0u64;
    for dump in dumps {
        for (name, value) in &dump.entries {
            if name.starts_with("shard") && name.ends_with(".day") && !name.contains(".mirror.") {
                if let inano_obs::MetricValue::Gauge(day) = value {
                    min_day = min_day.min(*day);
                    max_day = max_day.max(*day);
                }
            }
        }
    }
    if min_day == u64::MAX {
        0
    } else {
        max_day - min_day
    }
}

/// Poll every server's metrics dump once; panics carry the failing
/// address so a dead fleet member is nameable from the error alone.
fn scrape(clients: &mut [(String, NetClient)]) -> Vec<MetricsDump> {
    clients
        .iter_mut()
        .map(|(addr, client)| {
            client
                .metrics()
                .unwrap_or_else(|e| panic!("metrics scrape of {addr}: {e}"))
        })
        .collect()
}

fn timeseries(targets: &[(String, String)], interval_ms: u64, ticks: usize) {
    // Per-server state: the address (for error messages), the client,
    // and the event-journal cursor — the `next_seq` of the last page,
    // so each tick only pulls events the previous tick hasn't seen.
    let mut clients: Vec<(String, NetClient)> = targets
        .iter()
        .map(|(_, addr)| {
            let client =
                NetClient::connect(addr).unwrap_or_else(|e| panic!("connect to {addr}: {e}"));
            (addr.clone(), client)
        })
        .collect();
    let mut cursors: Vec<u64> = vec![0; clients.len()];
    let started = Instant::now();
    let mut samples: Vec<Tick> = Vec::with_capacity(ticks);
    let mut events_lost_total = 0u64;
    for tick in 0..ticks {
        if tick > 0 {
            std::thread::sleep(Duration::from_millis(interval_ms));
        }
        let dumps = scrape(&mut clients);
        let lag = fleet_lag_days(&dumps);
        let merged = MetricsDump::merged(dumps.iter());
        // Drain each server's journal since its cursor, then merge the
        // new events into one fleet-ordered slice. A non-zero `lost`
        // means the server's ring overwrote entries between ticks —
        // report the gap, don't pretend the timeline is complete.
        let mut new_events: Vec<(String, inano_obs::Event)> = Vec::new();
        for (i, (addr, client)) in clients.iter_mut().enumerate() {
            let page = client
                .events(cursors[i])
                .unwrap_or_else(|e| panic!("events scrape of {addr}: {e}"));
            events_lost_total += page.lost;
            cursors[i] = page.next_seq;
            new_events.extend(page.events.into_iter().map(|e| (addr.clone(), e)));
        }
        new_events.sort_by_key(|(_, e)| (e.t_ms, e.seq));
        for (addr, e) in &new_events {
            eprintln!(
                "  event {addr} seq={} t_ms={} {} {}",
                e.seq,
                e.t_ms,
                e.kind.name(),
                e.detail
            );
        }
        let sample = Tick {
            t_ms: started.elapsed().as_millis() as u64,
            queries: merged.counter_sum(".queries"),
            deltas_applied: merged.counter_sum(".mirror.deltas_applied"),
            full_resyncs: merged.counter_sum(".mirror.full_resyncs"),
            fleet_lag_days: lag,
            events: new_events.len() as u64,
            events_lost: events_lost_total,
        };
        eprintln!(
            "tick {tick}: t={}ms queries={} deltas_applied={} full_resyncs={} fleet_lag_days={} \
             events={} events_lost={}",
            sample.t_ms,
            sample.queries,
            sample.deltas_applied,
            sample.full_resyncs,
            sample.fleet_lag_days,
            sample.events,
            sample.events_lost
        );
        samples.push(sample);
    }
    // Counters merged from per-server dumps must never go backwards
    // tick over tick; a false here means a server restarted mid-run
    // (or the merge is broken) and the series is not comparable.
    let monotone = samples
        .windows(2)
        .all(|w| w[1].queries >= w[0].queries && w[1].deltas_applied >= w[0].deltas_applied);
    let rendered: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "{{\"t_ms\":{},\"queries\":{},\"deltas_applied\":{},\"full_resyncs\":{},\
                 \"fleet_lag_days\":{},\"events\":{},\"events_lost\":{}}}",
                s.t_ms,
                s.queries,
                s.deltas_applied,
                s.full_resyncs,
                s.fleet_lag_days,
                s.events,
                s.events_lost
            )
        })
        .collect();
    // The contract line: exactly one JSON record on stdout.
    println!(
        "{{\"bench\":\"fleet_timeseries\",\"servers\":{},\"interval_ms\":{interval_ms},\
         \"monotone\":{monotone},\"events_lost\":{events_lost_total},\"ticks\":[{}]}}",
        clients.len(),
        rendered.join(","),
    );
}

fn one_shot(targets: &[(String, String)]) {
    let mut parts: Vec<ServiceStats> = Vec::new();
    let mut servers = 0usize;
    for (_, addr) in targets {
        let mut client =
            NetClient::connect(addr).unwrap_or_else(|e| panic!("connect to {addr}: {e}"));
        let shards = client
            .shards()
            .unwrap_or_else(|e| panic!("list shards of {addr}: {e}"));
        servers += 1;
        for info in shards {
            let stats = client
                .stats_on(ShardId(info.shard))
                .unwrap_or_else(|e| panic!("stats of {addr} shard {}: {e}", info.shard));
            eprintln!(
                "{addr} shard {}: {} queries, epoch {}, day {}, p99 {}us",
                info.shard, stats.queries, stats.epoch, stats.day, stats.p99_us
            );
            parts.push(stats.to_service_stats());
        }
    }

    let fleet = ServiceStats::aggregate(parts.iter());
    // The contract line: exactly one JSON record on stdout.
    println!(
        "{{\"bench\":\"fleet_scrape\",\"servers\":{servers},\"shards\":{},\"queries\":{},\
         \"errors\":{},\"qps\":{:.1},\"p50_us\":{},\"p99_us\":{},\"cache_hit\":{:.4},\
         \"swaps\":{},\"epoch\":{},\"day\":{},\"workers\":{}}}",
        parts.len(),
        fleet.queries,
        fleet.errors,
        fleet.qps,
        fleet.p50_us,
        fleet.p99_us,
        fleet.cache_hit_rate,
        fleet.swaps,
        fleet.epoch,
        fleet.day,
        fleet.workers,
    );
}

fn main() {
    let targets = repeated(&["--connect"]);
    if targets.is_empty() {
        eprintln!(
            "usage: fleet_scrape --connect ADDR [--connect ADDR]... [--interval MS [--ticks T]]"
        );
        std::process::exit(2);
    }
    let interval_ms: u64 = arg("--interval", 0);
    if interval_ms > 0 {
        let ticks: usize = arg("--ticks", 5);
        timeseries(&targets, interval_ms, ticks.max(1));
    } else {
        one_shot(&targets);
    }
}
