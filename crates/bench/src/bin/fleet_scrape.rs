//! `fleet_scrape`: poll several `inano-serve` instances, merge their
//! per-shard engine counters into one fleet-wide view, and emit it as a
//! single BENCH JSON line.
//!
//! The merge is exact, not approximate: `StatsReply` ships each
//! engine's raw log₂ latency buckets, and `ServiceStats::aggregate`
//! sums those bucket vectors element-wise before recomputing p50/p99 —
//! merging histograms, where averaging per-server percentiles would be
//! statistically meaningless.
//!
//! Usage: `fleet_scrape --connect ADDR [--connect ADDR]...`

use inano_net::cli::repeated;
use inano_net::NetClient;
use inano_service::{ServiceStats, ShardId};

fn main() {
    let targets = repeated(&["--connect"]);
    if targets.is_empty() {
        eprintln!("usage: fleet_scrape --connect ADDR [--connect ADDR]...");
        std::process::exit(2);
    }

    let mut parts: Vec<ServiceStats> = Vec::new();
    let mut servers = 0usize;
    for (_, addr) in &targets {
        let mut client =
            NetClient::connect(addr).unwrap_or_else(|e| panic!("connect to {addr}: {e}"));
        let shards = client
            .shards()
            .unwrap_or_else(|e| panic!("list shards of {addr}: {e}"));
        servers += 1;
        for info in shards {
            let stats = client
                .stats_on(ShardId(info.shard))
                .unwrap_or_else(|e| panic!("stats of {addr} shard {}: {e}", info.shard));
            eprintln!(
                "{addr} shard {}: {} queries, epoch {}, day {}, p99 {}us",
                info.shard, stats.queries, stats.epoch, stats.day, stats.p99_us
            );
            parts.push(stats.to_service_stats());
        }
    }

    let fleet = ServiceStats::aggregate(parts.iter());
    // The contract line: exactly one JSON record on stdout.
    println!(
        "{{\"bench\":\"fleet_scrape\",\"servers\":{servers},\"shards\":{},\"queries\":{},\
         \"errors\":{},\"qps\":{:.1},\"p50_us\":{},\"p99_us\":{},\"cache_hit\":{:.4},\
         \"swaps\":{},\"epoch\":{},\"day\":{},\"workers\":{}}}",
        parts.len(),
        fleet.queries,
        fleet.errors,
        fleet.qps,
        fleet.p50_us,
        fleet.p99_us,
        fleet.cache_hit_rate,
        fleet.swaps,
        fleet.epoch,
        fleet.day,
        fleet.workers,
    );
}
