//! `net_throughput`: load-generate the `inano-net` wire protocol end
//! to end — real TCP sockets, pipelined `QueryBatch` frames — and
//! report the numbers as a single BENCH JSON line.
//!
//! Three modes:
//!
//! * **in-process** (default): builds a scenario atlas, starts a
//!   `NetServer` over `--shards N` independent shards (all serving the
//!   scenario's day-0 atlas) on an ephemeral loopback port, drives it
//!   from `--clients` threads round-robined across the shards, and
//!   lands the day-1 delta on *shard 0 only* once half the load has
//!   been issued — so the reported qps includes a hot swap under full
//!   remote load, and the run asserts both that the post-swap epoch is
//!   visible over the wire and that no other shard's epoch moved.
//! * **`--connect ADDR`**: drives an external server started
//!   separately (e.g. `inano-serve --ring 64 --ring 64`); `--ring N`
//!   tells the loadgen the remote rings' size so it can generate
//!   routable pairs, and `--shards` how many ring shards to spread the
//!   clients over (each shard's epoch is probed before the run). No
//!   swap is asserted (the loadgen does not own the remote engines).
//! * **`--connections N`** (conn soak): the event-loop scaling probe.
//!   Starts an in-process ring-world server sized for `N` peers,
//!   opens and *holds* `N` idle connections, then runs the pipelined
//!   active load through the crowd — measuring what tens of thousands
//!   of registered-but-quiet peers cost the connections that are
//!   actually talking. Reports one `"bench":"conn_soak"` JSON record
//!   (connections held, active-load qps/percentiles, zero-error
//!   assertion, the server's accept-retry counter) instead of the
//!   `net_throughput` record. The server ends all live in this one
//!   process (the loop under test); the idle *client* ends live in
//!   spawned `--hold` holder subprocesses, each under its own
//!   `RLIMIT_NOFILE` — so the server process's descriptor cap, not
//!   the loadgen's, is what bounds a run. Raises its own soft limit
//!   toward the hard cap as needed.
//!
//! Latency percentiles are client-observed *request* (batch)
//! round-trip times; `batch` and `depth` in the JSON record say how
//! much work one request carries and how many were kept in flight.
//!
//! * **`--udp`**: the datagram-plane counterpart. Starts an
//!   in-process ring-world server with the UDP plane enabled (or
//!   drives an external one's datagram address via `--connect`) and
//!   issues synchronous one-datagram-per-request `QueryBatch` calls
//!   from `--clients` [`UdpQuerier`]s. Batches default smaller (64
//!   pairs) because the *reply* must fit one datagram. Reports a
//!   `"transport":"udp"` `net_throughput` record with retry counters
//!   (`resends`, `stale_replies`), so TCP-vs-datagram cost per query
//!   is tracked side by side in `BENCH_net_throughput.json`.
//!
//! Usage: `net_throughput [--queries N] [--clients C] [--batch B]
//!         [--depth D] [--workers W] [--shards S]
//!         [--scale test|experiment] [--connect ADDR] [--ring N]
//!         [--connections N] [--udp]`

use inano_atlas::AtlasDelta;
use inano_bench::{Scenario, ScenarioConfig};
use inano_core::{PathPredictor, PredictorConfig};
use inano_model::rng::rng_for;
use inano_model::Ipv4;
use inano_net::cli::{arg, flag};
use inano_net::demo::{ring_atlas, ring_ip, ring_predictor_config};
use inano_net::{raise_nofile_limit, Frame, NetClient, NetServer, ServerConfig, UdpQuerier};
use inano_service::{
    QueryEngine, RegistryConfig, ServiceConfig, ShardId, ShardRegistry, ShardSpec,
};
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Draw `n` scenario pairs — sources uniform, destinations zipf(s=1.0)
/// by prefix rank — validated routable against scratch predictors for
/// *both* days, so percentiles measure real predictions and the run
/// can assert zero faults across the swap (a pair the day-1 delta
/// unroutes would otherwise fail legitimately mid-run).
fn scenario_pairs(sc: &Scenario, day1: &inano_atlas::Atlas, n: usize) -> Vec<(Ipv4, Ipv4)> {
    let mut by_prefix: Vec<_> = sc
        .atlas
        .prefix_as
        .iter()
        .map(|(&pid, &(prefix, _))| (pid, prefix.nth(1)))
        .collect();
    by_prefix.sort_by_key(|&(pid, _)| pid);
    let ips: Vec<Ipv4> = by_prefix.into_iter().map(|(_, ip)| ip).collect();
    assert!(ips.len() > 2, "scenario must expose prefixes to query");

    let weights: Vec<f64> = (0..ips.len()).map(|r| 1.0 / (r as f64 + 1.0)).collect();
    let cumulative: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w;
            Some(*acc)
        })
        .collect();
    let total_weight = *cumulative.last().unwrap();

    let scratch0 = PathPredictor::new(Arc::new(sc.atlas.clone()), PredictorConfig::full());
    let scratch1 = PathPredictor::new(Arc::new(day1.clone()), PredictorConfig::full());
    let mut routable_memo: std::collections::HashMap<(Ipv4, Ipv4), bool> =
        std::collections::HashMap::new();
    let mut rng = rng_for(99, "net-throughput-load");
    let mut rejected = 0usize;
    let mut pairs: Vec<(Ipv4, Ipv4)> = Vec::with_capacity(n);
    while pairs.len() < n && rejected < n * 20 {
        let src = ips[rng.gen_range(0..ips.len())];
        let pick = rng.gen_range(0.0..total_weight);
        let dst = ips[cumulative.partition_point(|&c| c < pick).min(ips.len() - 1)];
        let ok = *routable_memo.entry((src, dst)).or_insert_with(|| {
            scratch0.query(src, dst).is_ok() && scratch1.query(src, dst).is_ok()
        });
        if ok {
            pairs.push((src, dst));
        } else {
            rejected += 1;
        }
    }
    assert!(
        pairs.len() == n,
        "atlas too sparse: only {} of {n} requested pairs routable",
        pairs.len(),
    );
    pairs
}

/// Uniform pairs over an `inano-serve --ring N` world.
fn ring_pairs(ring: u32, n: usize) -> Vec<(Ipv4, Ipv4)> {
    assert!(ring >= 3, "--ring must be at least 3");
    let mut rng = rng_for(99, "net-throughput-ring");
    (0..n)
        .map(|_| {
            let s = rng.gen_range(0..ring);
            let d = (s + rng.gen_range(1..ring)) % ring;
            (ring_ip(s), ring_ip(d))
        })
        .collect()
}

struct ClientTally {
    served: u64,
    faults: u64,
    /// Whole requests refused by the server's per-connection
    /// in-flight cap (typed `Overloaded`) — possible whenever
    /// `--depth` exceeds the server's `max_inflight`.
    rejected: u64,
    /// Per-request (batch) round-trip times, microseconds.
    request_us: Vec<u64>,
}

/// Drive one connection: keep `depth` batches in flight, submit the
/// next on every receive.
fn drive(
    addr: std::net::SocketAddr,
    shard: ShardId,
    pairs: &[(Ipv4, Ipv4)],
    batch: usize,
    depth: usize,
    issued_total: &AtomicU64,
) -> ClientTally {
    let mut client = NetClient::connect(addr).expect("connect to server");
    let chunks: Vec<&[(Ipv4, Ipv4)]> = pairs.chunks(batch).collect();
    let mut tally = ClientTally {
        served: 0,
        faults: 0,
        rejected: 0,
        request_us: Vec::with_capacity(chunks.len()),
    };
    let mut in_flight: std::collections::VecDeque<(u64, usize, Instant)> =
        std::collections::VecDeque::with_capacity(depth);
    let mut next = 0usize;
    while next < chunks.len() || !in_flight.is_empty() {
        while next < chunks.len() && in_flight.len() < depth {
            let id = client
                .submit_batch_on(shard, chunks[next])
                .expect("submit batch");
            issued_total.fetch_add(chunks[next].len() as u64, Ordering::Relaxed);
            in_flight.push_back((id, next, Instant::now()));
            next += 1;
        }
        let (got_id, frame) = client.recv().expect("receive reply");
        let (want_id, chunk_idx, t0) = in_flight.pop_front().expect("a reply implies a request");
        assert_eq!(got_id, want_id, "pipelined replies arrive in order");
        match frame {
            Frame::PathBatch { results } => {
                // Only genuinely served requests enter the latency
                // percentiles; an instant Overloaded rejection did no
                // engine work and would skew them low.
                tally.request_us.push(t0.elapsed().as_micros() as u64);
                assert_eq!(results.len(), chunks[chunk_idx].len());
                for (k, r) in results.into_iter().enumerate() {
                    match r {
                        Ok(_) => tally.served += 1,
                        Err(fault) => {
                            if tally.faults < 3 {
                                let (s, d) = chunks[chunk_idx][k];
                                eprintln!("fault on {s:?} -> {d:?}: {fault}");
                            }
                            tally.faults += 1;
                        }
                    }
                }
            }
            // The server's in-flight cap answers excess pipelined
            // requests with a typed rejection; count it, don't die —
            // the loadgen may legitimately be configured to outrun it.
            Frame::Error { fault } if fault.code == inano_model::ErrorCode::Overloaded => {
                tally.rejected += 1;
            }
            Frame::Error { fault } => panic!("batch-level fault: {fault}"),
            other => panic!("unexpected reply {other:?}"),
        }
    }
    tally
}

/// How many idle connections one holder subprocess carries. Sized
/// well under typical `RLIMIT_NOFILE` hard caps so the holders are
/// never the binding constraint — the server process is.
const HOLDER_CONNS: usize = 9_000;

/// How many connects may be in flight (granted to holders but not yet
/// accepted) at once. Kept under the server's widened listen backlog
/// so the crowd never overflows it into SYN-retransmit stalls.
const CONNECT_WINDOW: usize = 2_048;

/// The hidden `--hold N --connect ADDR` mode `run_conn_soak` spawns:
/// open idle connections against `addr` as credit lines arrive on
/// stdin (each line is a count to add), report `held N retries R` on
/// stdout once the total is reached, then hold every socket open
/// until stdin closes. A subprocess exists purely for its own
/// `RLIMIT_NOFILE`: the per-process descriptor cap binds each side of
/// a socket separately, so moving the client ends out of the server's
/// process roughly doubles the connections one soak can hold.
fn run_idle_holder(n_conns: usize, addr: std::net::SocketAddr) -> ! {
    let need = (n_conns + 64) as u64;
    let have = raise_nofile_limit(need);
    assert!(have >= need, "holder needs {need} fds, limit is {have}");
    let mut idles: Vec<std::net::TcpStream> = Vec::with_capacity(n_conns);
    let mut retries = 0u64;
    let stdin = std::io::stdin();
    let mut line = String::new();
    while idles.len() < n_conns {
        line.clear();
        let got = stdin.read_line(&mut line).expect("read credit line");
        assert!(got > 0, "soak parent hung up mid-open");
        let credit: usize = line.trim().parse().expect("credit line is a count");
        for _ in 0..credit.min(n_conns - idles.len()) {
            loop {
                match std::net::TcpStream::connect(addr) {
                    Ok(s) => {
                        idles.push(s);
                        break;
                    }
                    Err(e) => {
                        retries += 1;
                        assert!(retries <= 10_000, "connection storm not absorbed: {e}");
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                }
            }
        }
    }
    println!("held {} retries {retries}", idles.len());
    use std::io::Write as _;
    std::io::stdout().flush().expect("flush");
    // Hold the crowd until the parent closes our stdin.
    line.clear();
    let _ = stdin.read_line(&mut line);
    std::process::exit(0);
}

/// The `--connections N` soak: hold `n_conns` idle connections on an
/// in-process ring-world server, run the active load through the
/// crowd, and report the cost of the quiet majority as one
/// `"bench":"conn_soak"` JSON record. The idle client ends live in
/// `--hold` subprocesses (see [`run_idle_holder`]); the server ends
/// all live here, which is what makes the event loop the thing being
/// measured. Exits the process when done.
fn run_conn_soak(
    n_conns: usize,
    n_queries: usize,
    clients: usize,
    batch: usize,
    depth: usize,
    ring: u32,
) -> ! {
    // This process holds the server side of every idle connection,
    // both sides of the loadgen connections, and the holder pipes.
    let holders = n_conns.div_ceil(HOLDER_CONNS);
    let need = (n_conns + 2 * clients + 4 * holders + 256) as u64;
    let have = raise_nofile_limit(need);
    assert!(
        have >= need,
        "need {need} file descriptors for {n_conns} held connections but \
         RLIMIT_NOFILE stops at {have}; lower --connections or raise the hard limit"
    );

    let engine = Arc::new(QueryEngine::new(
        Arc::new(ring_atlas(ring, 0)),
        ServiceConfig {
            predictor: ring_predictor_config(),
            ..ServiceConfig::default()
        },
    ));
    let server = NetServer::bind_single(
        "127.0.0.1:0",
        engine,
        ServerConfig {
            max_conns: n_conns + clients + 16,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback server");
    let addr = server.local_addr();
    eprintln!("conn soak: server on {addr}, raising to {n_conns} idle connections");

    // Spawn the holders and feed them connect credits, pacing against
    // the server's registration count: outrunning the loop would just
    // overflow the listen backlog and turn into SYN-retransmit stalls.
    let t_open = Instant::now();
    let exe = std::env::current_exe().expect("own path");
    let mut children: Vec<std::process::Child> = Vec::with_capacity(holders);
    let mut quota: Vec<usize> = Vec::with_capacity(holders);
    for h in 0..holders {
        let share = (n_conns / holders) + usize::from(h < n_conns % holders);
        let child = std::process::Command::new(&exe)
            .arg("--hold")
            .arg(share.to_string())
            .arg("--connect")
            .arg(addr.to_string())
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn idle holder");
        children.push(child);
        quota.push(share);
    }
    let mut granted: Vec<usize> = vec![0; holders];
    let mut next = 0usize;
    let open_deadline = Instant::now() + std::time::Duration::from_secs(600);
    while granted.iter().sum::<usize>() < n_conns {
        assert!(
            Instant::now() < open_deadline,
            "holders stalled: {} of {n_conns} registered",
            server.counters().active
        );
        let outstanding = granted.iter().sum::<usize>() - server.counters().active;
        if outstanding >= CONNECT_WINDOW {
            std::thread::sleep(std::time::Duration::from_millis(2));
            continue;
        }
        // Round-robin a credit to the next holder with quota left.
        if granted[next] < quota[next] {
            let grant = 512.min(quota[next] - granted[next]);
            use std::io::Write as _;
            writeln!(
                children[next].stdin.as_mut().expect("holder stdin"),
                "{grant}"
            )
            .expect("grant credit");
            granted[next] += grant;
        }
        next = (next + 1) % holders;
    }
    // Every held socket must be *registered*, not just accepted.
    while server.counters().active < n_conns {
        assert!(
            Instant::now() < open_deadline,
            "registrations stalled at {} of {n_conns}",
            server.counters().active
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    // Each holder confirms its full crowd and reports its retry count.
    let mut connect_retries = 0u64;
    for child in &mut children {
        use std::io::BufRead as _;
        let mut line = String::new();
        std::io::BufReader::new(child.stdout.as_mut().expect("holder stdout"))
            .read_line(&mut line)
            .expect("holder report");
        let words: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(words.first(), Some(&"held"), "holder said {line:?}");
        connect_retries += words[3].parse::<u64>().expect("retry count");
    }
    let open_secs = t_open.elapsed().as_secs_f64();
    eprintln!(
        "conn soak: {n_conns} idle connections registered in {open_secs:.1}s \
         across {holders} holder processes ({connect_retries} connect retries); \
         running active load"
    );

    // The active load: the same pipelined driver the throughput bench
    // uses, through the same event loop now carrying the crowd.
    let pairs = ring_pairs(ring, n_queries);
    let shares: Vec<Vec<(Ipv4, Ipv4)>> = (0..clients)
        .map(|c| pairs.iter().skip(c).step_by(clients).copied().collect())
        .collect();
    let issued_total = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = shares
            .iter()
            .map(|share| {
                let issued_total = Arc::clone(&issued_total);
                scope.spawn(move || {
                    drive(addr, ShardId::DEFAULT, share, batch, depth, &issued_total)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();

    let served: u64 = tallies.iter().map(|t| t.served).sum();
    let faults: u64 = tallies.iter().map(|t| t.faults).sum();
    let rejected: u64 = tallies.iter().map(|t| t.rejected).sum();
    let mut request_us: Vec<u64> = tallies.iter().flat_map(|t| t.request_us.clone()).collect();
    request_us.sort_unstable();
    let qps = (served + faults) as f64 / elapsed;
    let p50 = quantile(&request_us, 0.50);
    let p99 = quantile(&request_us, 0.99);

    let counters = server.counters();
    assert_eq!(faults, 0, "no query may fail through the idle crowd");
    assert_eq!(
        counters.rejected, 0,
        "a correctly sized soak server refuses no one"
    );
    assert!(
        counters.active >= n_conns,
        "idle connections must survive the active load: {} of {} left",
        counters.active,
        n_conns
    );
    let accept_retries = match server
        .metrics()
        .dump()
        .entries
        .into_iter()
        .find(|(n, _)| n == "srv.accept_retries")
    {
        Some((_, inano_obs::MetricValue::Counter(v))) => v,
        other => panic!("srv.accept_retries missing from dump: {other:?}"),
    };

    eprintln!(
        "conn soak: {n_conns} idle + {clients} active connections, served {served} \
         queries in {elapsed:.2}s: {qps:.0} qps, request p50 {p50}us / p99 {p99}us \
         ({rejected} rejected, {accept_retries} accept retries)",
    );

    // Hang up on the holders (closing stdin releases each crowd),
    // then stop the server.
    for mut child in children {
        drop(child.stdin.take());
        let _ = child.wait();
    }
    server.shutdown();
    server.registry().shutdown();

    // The contract line: exactly one JSON record on stdout.
    println!(
        "{{\"bench\":\"conn_soak\",\"connections\":{n_conns},\"qps\":{qps:.1},\
         \"p50_us\":{p50},\"p99_us\":{p99},\"queries\":{},\"errors\":{faults},\
         \"clients\":{clients},\"batch\":{batch},\"depth\":{depth},\
         \"open_secs\":{open_secs:.1},\"connect_retries\":{connect_retries},\
         \"accept_retries\":{accept_retries},\"rejected\":{rejected}}}",
        served + faults,
    );
    std::process::exit(0);
}

/// The `--udp` mode: the same ring-world query load, carried one
/// datagram per request by [`UdpQuerier`]s instead of pipelined TCP.
/// No `--depth` — the datagram client is strictly
/// request-reply — so the comparison against the TCP record is
/// per-query *cost*, not peak pipelined throughput. Exits when done.
fn run_udp(n_queries: usize, clients: usize, batch: usize, ring: u32, connect: String) -> ! {
    let mut server: Option<NetServer> = None;
    let addr = if connect.is_empty() {
        let engine = Arc::new(QueryEngine::new(
            Arc::new(ring_atlas(ring, 0)),
            ServiceConfig {
                predictor: ring_predictor_config(),
                ..ServiceConfig::default()
            },
        ));
        let srv = NetServer::bind_single(
            "127.0.0.1:0",
            engine,
            ServerConfig {
                udp: Some("127.0.0.1:0".parse().unwrap()),
                // The loadgen is one source flooding on purpose; the
                // per-source shed would only measure itself.
                udp_rate: 0,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback server");
        let addr = srv.udp_addr().expect("udp plane enabled");
        eprintln!("in-process server, datagram plane on {addr}");
        server = Some(srv);
        addr
    } else {
        let addr = connect.parse().expect("--connect ADDR must be ip:port");
        eprintln!("driving external datagram plane {addr} (ring {ring})");
        addr
    };

    let pairs = ring_pairs(ring, n_queries);
    let shares: Vec<Vec<(Ipv4, Ipv4)>> = (0..clients)
        .map(|c| pairs.iter().skip(c).step_by(clients).copied().collect())
        .collect();

    struct UdpTally {
        served: u64,
        errors: u64,
        resends: u64,
        stale_replies: u64,
        request_us: Vec<u64>,
    }
    let t0 = Instant::now();
    let tallies: Vec<UdpTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = shares
            .iter()
            .map(|share| {
                scope.spawn(move || {
                    let mut q = UdpQuerier::connect(addr).expect("bind udp querier");
                    let mut tally = UdpTally {
                        served: 0,
                        errors: 0,
                        resends: 0,
                        stale_replies: 0,
                        request_us: Vec::with_capacity(share.len() / batch + 1),
                    };
                    for chunk in share.chunks(batch) {
                        let t = Instant::now();
                        match q.query_batch(chunk) {
                            Ok(results) => {
                                tally.request_us.push(t.elapsed().as_micros() as u64);
                                for r in results {
                                    match r {
                                        Ok(_) => tally.served += 1,
                                        Err(fault) => {
                                            if tally.errors < 3 {
                                                eprintln!("per-pair fault: {fault}");
                                            }
                                            tally.errors += 1;
                                        }
                                    }
                                }
                            }
                            Err(e) => {
                                if tally.errors < 3 {
                                    eprintln!("datagram request failed: {e}");
                                }
                                tally.errors += chunk.len() as u64;
                            }
                        }
                    }
                    tally.resends = q.resends();
                    tally.stale_replies = q.stale_replies();
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();

    let served: u64 = tallies.iter().map(|t| t.served).sum();
    let errors: u64 = tallies.iter().map(|t| t.errors).sum();
    let resends: u64 = tallies.iter().map(|t| t.resends).sum();
    let stale: u64 = tallies.iter().map(|t| t.stale_replies).sum();
    let mut request_us: Vec<u64> = tallies.iter().flat_map(|t| t.request_us.clone()).collect();
    request_us.sort_unstable();
    let qps = (served + errors) as f64 / elapsed;
    let p50 = quantile(&request_us, 0.50);
    let p99 = quantile(&request_us, 0.99);

    if let Some(srv) = &server {
        // The plane's own accounting must have seen the load.
        let datagrams_in = match srv
            .metrics()
            .dump()
            .entries
            .into_iter()
            .find(|(n, _)| n == "srv.udp.datagrams_in")
        {
            Some((_, inano_obs::MetricValue::Counter(v))) => v,
            other => panic!("srv.udp.datagrams_in missing from dump: {other:?}"),
        };
        assert!(
            datagrams_in >= request_us.len() as u64,
            "server counted {datagrams_in} datagrams for {} answered requests",
            request_us.len()
        );
        srv.shutdown();
        srv.registry().shutdown();
    }

    eprintln!(
        "served {served} queries ({errors} errors) in {elapsed:.2}s over {clients} \
         datagram clients: {qps:.0} qps, request p50 {p50}us / p99 {p99}us \
         (batch {batch}, {resends} resends, {stale} stale replies discarded)",
    );
    println!(
        "{{\"bench\":\"net_throughput\",\"transport\":\"udp\",\"qps\":{qps:.1},\
         \"p50_us\":{p50},\"p99_us\":{p99},\"queries\":{},\"errors\":{errors},\
         \"clients\":{clients},\"batch\":{batch},\"ring\":{ring},\
         \"resends\":{resends},\"stale_replies\":{stale}}}",
        served + errors,
    );
    std::process::exit(0);
}

fn quantile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64 * q).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

fn main() {
    let udp: bool = flag("--udp");
    let n_queries: usize = arg("--queries", 200_000);
    let clients: usize = arg("--clients", 4);
    // Datagram replies must fit one datagram, so UDP batches default
    // far smaller than the pipelined TCP sweet spot.
    let batch: usize = arg("--batch", if udp { 64 } else { 512 });
    let depth: usize = arg("--depth", 4);
    let workers: usize = arg("--workers", 0); // 0 = ServiceConfig default
    let shards: usize = arg("--shards", 1);
    let scale: String = arg("--scale", "test".to_string());
    let connect: String = arg("--connect", String::new());
    let ring: u32 = arg("--ring", 64);
    let connections: usize = arg("--connections", 0);
    assert!(clients >= 1 && batch >= 1 && depth >= 1);
    assert!(
        (1..=u16::MAX as usize).contains(&shards),
        "--shards must be 1..=65535"
    );
    let hold: usize = arg("--hold", 0);
    if hold > 0 {
        let addr = connect.parse().expect("--hold needs --connect ip:port");
        run_idle_holder(hold, addr);
    }
    if connections > 0 {
        assert!(connect.is_empty(), "--connections is an in-process mode");
        run_conn_soak(connections, n_queries, clients, batch, depth, ring);
    }
    if udp {
        run_udp(n_queries, clients, batch, ring, connect);
    }

    // An owned server (in-process mode) plus the delta to land on it
    // mid-run; --connect mode drives a remote instead.
    let mut server: Option<NetServer> = None;
    let mut delta: Option<AtlasDelta> = None;
    let (addr, pairs) = if connect.is_empty() {
        let sc = Scenario::build(match scale.as_str() {
            "experiment" => ScenarioConfig::experiment(99),
            _ => ScenarioConfig::test(99),
        });
        eprintln!("scenario: {}", sc.summary());
        let (_, atlas1) = sc.atlas_for_day(1);
        let d = AtlasDelta::between(&sc.atlas, &atlas1);
        // Validate against the atlas the delta *produces* (deltas
        // quantise), which is what the engine serves post-swap.
        let atlas1_applied = d.apply(&sc.atlas).expect("delta applies to day 0");
        delta = Some(d);
        let pairs = scenario_pairs(&sc, &atlas1_applied, n_queries);

        // Every shard serves the scenario's day-0 atlas, sized by the
        // registry's own budget split — so a `--shards N` run measures
        // exactly the configuration a real N-shard inano-serve would
        // deploy (workers *and* cache divided, not just workers).
        let mut total_workers = if workers > 0 {
            workers
        } else {
            ServiceConfig::default().workers
        };
        total_workers = total_workers.max(4);
        let atlas0 = Arc::new(sc.atlas.clone());
        let specs = (0..shards)
            .map(|s| ShardSpec {
                id: ShardId(s as u16),
                atlas: Arc::clone(&atlas0),
                predictor: PredictorConfig::full(),
            })
            .collect();
        let reg_cfg = RegistryConfig {
            total_workers,
            ..RegistryConfig::default()
        };
        let registry =
            Arc::new(ShardRegistry::build(specs, reg_cfg).expect("build shard registry"));
        let srv = NetServer::bind("127.0.0.1:0", registry, ServerConfig::default())
            .expect("bind loopback server");
        let addr = srv.local_addr();
        eprintln!("in-process server on {addr} ({shards} shard(s))");
        server = Some(srv);
        (addr, pairs)
    } else {
        let addr = connect.parse().expect("--connect ADDR must be ip:port");
        eprintln!("driving external server {addr} (ring {ring}, {shards} shard(s))");
        // Every requested shard must exist and answer epoch before the
        // clocks start; a missing shard fails here, not mid-run.
        let mut probe = NetClient::connect(addr).expect("probe connect");
        for s in 0..shards {
            probe
                .epoch_on(ShardId(s as u16))
                .unwrap_or_else(|e| panic!("shard {s} not served at {addr}: {e}"));
        }
        (addr, ring_pairs(ring, n_queries))
    };

    // Split the pair stream across client threads.
    let shares: Vec<Vec<(Ipv4, Ipv4)>> = (0..clients)
        .map(|c| {
            pairs
                .iter()
                .skip(c)
                .step_by(clients)
                .copied()
                .collect::<Vec<_>>()
        })
        .collect();
    let issued_total = Arc::new(AtomicU64::new(0));

    // In-process: land the day-1 delta on shard 0 only once half the
    // load is issued, from its own thread, so the swap genuinely
    // overlaps remote batches in flight — on the swapped shard and on
    // every shard that must *not* notice.
    let swap_thread = server.as_ref().map(|srv| {
        let registry = Arc::clone(srv.registry());
        let delta = delta.take().expect("in-process mode built a delta");
        let issued = Arc::clone(&issued_total);
        let trigger = (n_queries / 2) as u64;
        std::thread::spawn(move || {
            while issued.load(Ordering::Relaxed) < trigger {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            let t0 = Instant::now();
            let day = registry
                .apply_delta(ShardId(0), &delta)
                .expect("delta applies");
            eprintln!(
                "hot swap of shard 0 to day {day} in {:.1} ms, {} queries issued",
                t0.elapsed().as_secs_f64() * 1e3,
                issued.load(Ordering::Relaxed),
            );
        })
    });

    let t0 = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = shares
            .iter()
            .enumerate()
            .map(|(c, share)| {
                let issued_total = Arc::clone(&issued_total);
                let shard = ShardId((c % shards) as u16);
                scope.spawn(move || drive(addr, shard, share, batch, depth, &issued_total))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();
    if let Some(h) = swap_thread {
        h.join().expect("swap thread");
    }

    let served: u64 = tallies.iter().map(|t| t.served).sum();
    let faults: u64 = tallies.iter().map(|t| t.faults).sum();
    let rejected: u64 = tallies.iter().map(|t| t.rejected).sum();
    let mut request_us: Vec<u64> = tallies.iter().flat_map(|t| t.request_us.clone()).collect();
    request_us.sort_unstable();
    let qps = (served + faults) as f64 / elapsed;
    let p50 = quantile(&request_us, 0.50);
    let p99 = quantile(&request_us, 0.99);

    let mut swaps = 0u64;
    let mut epoch = 0u64;
    if let Some(srv) = &server {
        // The swap must be visible over the wire: a fresh client sees
        // the bumped epoch and the day-1 atlas on shard 0 — and *only*
        // on shard 0; every other shard still serves epoch 0, day 0.
        let mut probe = NetClient::connect(addr).expect("probe connect");
        let (e, day) = probe.epoch().expect("epoch over the wire");
        assert_eq!(e, 1, "post-swap epoch visible to remote clients");
        assert_eq!(day, 1, "post-swap day visible to remote clients");
        let listed = probe.shards().expect("shard listing over the wire");
        assert_eq!(listed.len(), shards, "server hosts the requested shards");
        for info in &listed {
            if info.shard == 0 {
                assert_eq!((info.epoch, info.day), (1, 1));
            } else {
                assert_eq!(
                    (info.epoch, info.day),
                    (0, 0),
                    "shard {} must not see shard 0's delta",
                    info.shard
                );
            }
        }
        let stats = probe.stats().expect("stats over the wire");
        assert!(stats.swaps >= 1, "the mid-load swap must have happened");
        assert_eq!(faults, 0, "no query may fail on any shard across the swap");
        swaps = stats.swaps;
        epoch = e;
        eprintln!(
            "shard 0 counters: {} queries, cache hit rate {:.3}, epoch {}, day {}",
            stats.queries, stats.cache_hit_rate, stats.epoch, stats.day
        );
        // Protocol-v4 observability, exercised under the load it just
        // measured: the unified dump's per-shard query counters must
        // agree exactly with what the loadgen issued, and a traced
        // call returns its stage breakdown.
        let dump = probe.metrics().expect("metrics dump over the wire");
        assert_eq!(
            dump.counter_sum(".queries"),
            served + faults,
            "the metrics dump accounts for every query issued"
        );
        let (reply, t) = probe.call_traced(&Frame::Ping).expect("traced ping");
        assert!(matches!(reply, Frame::Pong), "traced ping answers Pong");
        eprintln!(
            "traced ping: decode {}us, queue {}us, engine {}us, encode {}us",
            t.decode_us, t.queue_us, t.engine_us, t.encode_us
        );
        // Dropping the threshold to 0 logs the next request whatever
        // its latency — the drain below proves the ring is live.
        srv.slow_log().set_threshold_us(0);
        probe
            .query_batch(&pairs[..pairs.len().min(8)])
            .expect("slow-log probe batch");
        let slow = srv.slow_log().drain();
        assert!(!slow.is_empty(), "a zero threshold logs every request");
        eprintln!(
            "slow-log: {} entr{} drained, slowest {}us ({})",
            slow.len(),
            if slow.len() == 1 { "y" } else { "ies" },
            slow[0].latency_us,
            slow[0].what
        );
        srv.shutdown();
        srv.registry().shutdown();
    }

    eprintln!(
        "served {served} queries ({faults} faults, {rejected} requests rejected by the \
         in-flight cap) in {elapsed:.2}s over {clients} \
         connections: {qps:.0} qps, request p50 {p50}us / p99 {p99}us \
         (batch {batch}, depth {depth})",
    );

    // The contract line: exactly one JSON record on stdout.
    println!(
        "{{\"bench\":\"net_throughput\",\"transport\":\"tcp\",\"qps\":{qps:.1},\
         \"p50_us\":{p50},\"p99_us\":{p99},\
         \"queries\":{},\"errors\":{faults},\"clients\":{clients},\"batch\":{batch},\
         \"depth\":{depth},\"shards\":{shards},\"rejected\":{rejected},\
         \"swaps\":{swaps},\"epoch\":{epoch}}}",
        served + faults,
    );
}
