//! `net_throughput`: load-generate the `inano-net` wire protocol end
//! to end — real TCP sockets, pipelined `QueryBatch` frames — and
//! report the numbers as a single BENCH JSON line.
//!
//! Two modes:
//!
//! * **in-process** (default): builds a scenario atlas, starts a
//!   `NetServer` on an ephemeral loopback port, drives it from
//!   `--clients` threads, and lands the day-1 delta on the live engine
//!   once half the load has been issued — so the reported qps includes
//!   a hot swap under full remote load, and the run asserts that the
//!   post-swap epoch is visible over the wire.
//! * **`--connect ADDR`**: drives an external server started
//!   separately (e.g. `inano-serve --ring 64`); `--ring N` tells the
//!   loadgen the remote ring's size so it can generate routable pairs.
//!   No swap is asserted (the loadgen does not own the remote engine).
//!
//! Latency percentiles are client-observed *request* (batch)
//! round-trip times; `batch` and `depth` in the JSON record say how
//! much work one request carries and how many were kept in flight.
//!
//! Usage: `net_throughput [--queries N] [--clients C] [--batch B]
//!         [--depth D] [--workers W] [--scale test|experiment]
//!         [--connect ADDR] [--ring N]`

use inano_atlas::AtlasDelta;
use inano_bench::{Scenario, ScenarioConfig};
use inano_core::{PathPredictor, PredictorConfig};
use inano_model::rng::rng_for;
use inano_model::Ipv4;
use inano_net::cli::arg;
use inano_net::demo::ring_ip;
use inano_net::{Frame, NetClient, NetServer, ServerConfig};
use inano_service::{QueryEngine, ServiceConfig};
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Draw `n` scenario pairs — sources uniform, destinations zipf(s=1.0)
/// by prefix rank — validated routable against scratch predictors for
/// *both* days, so percentiles measure real predictions and the run
/// can assert zero faults across the swap (a pair the day-1 delta
/// unroutes would otherwise fail legitimately mid-run).
fn scenario_pairs(sc: &Scenario, day1: &inano_atlas::Atlas, n: usize) -> Vec<(Ipv4, Ipv4)> {
    let mut by_prefix: Vec<_> = sc
        .atlas
        .prefix_as
        .iter()
        .map(|(&pid, &(prefix, _))| (pid, prefix.nth(1)))
        .collect();
    by_prefix.sort_by_key(|&(pid, _)| pid);
    let ips: Vec<Ipv4> = by_prefix.into_iter().map(|(_, ip)| ip).collect();
    assert!(ips.len() > 2, "scenario must expose prefixes to query");

    let weights: Vec<f64> = (0..ips.len()).map(|r| 1.0 / (r as f64 + 1.0)).collect();
    let cumulative: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w;
            Some(*acc)
        })
        .collect();
    let total_weight = *cumulative.last().unwrap();

    let scratch0 = PathPredictor::new(Arc::new(sc.atlas.clone()), PredictorConfig::full());
    let scratch1 = PathPredictor::new(Arc::new(day1.clone()), PredictorConfig::full());
    let mut routable_memo: std::collections::HashMap<(Ipv4, Ipv4), bool> =
        std::collections::HashMap::new();
    let mut rng = rng_for(99, "net-throughput-load");
    let mut rejected = 0usize;
    let mut pairs: Vec<(Ipv4, Ipv4)> = Vec::with_capacity(n);
    while pairs.len() < n && rejected < n * 20 {
        let src = ips[rng.gen_range(0..ips.len())];
        let pick = rng.gen_range(0.0..total_weight);
        let dst = ips[cumulative.partition_point(|&c| c < pick).min(ips.len() - 1)];
        let ok = *routable_memo.entry((src, dst)).or_insert_with(|| {
            scratch0.query(src, dst).is_ok() && scratch1.query(src, dst).is_ok()
        });
        if ok {
            pairs.push((src, dst));
        } else {
            rejected += 1;
        }
    }
    assert!(
        pairs.len() == n,
        "atlas too sparse: only {} of {n} requested pairs routable",
        pairs.len(),
    );
    pairs
}

/// Uniform pairs over an `inano-serve --ring N` world.
fn ring_pairs(ring: u32, n: usize) -> Vec<(Ipv4, Ipv4)> {
    assert!(ring >= 3, "--ring must be at least 3");
    let mut rng = rng_for(99, "net-throughput-ring");
    (0..n)
        .map(|_| {
            let s = rng.gen_range(0..ring);
            let d = (s + rng.gen_range(1..ring)) % ring;
            (ring_ip(s), ring_ip(d))
        })
        .collect()
}

struct ClientTally {
    served: u64,
    faults: u64,
    /// Per-request (batch) round-trip times, microseconds.
    request_us: Vec<u64>,
}

/// Drive one connection: keep `depth` batches in flight, submit the
/// next on every receive.
fn drive(
    addr: std::net::SocketAddr,
    pairs: &[(Ipv4, Ipv4)],
    batch: usize,
    depth: usize,
    issued_total: &AtomicU64,
) -> ClientTally {
    let mut client = NetClient::connect(addr).expect("connect to server");
    let chunks: Vec<&[(Ipv4, Ipv4)]> = pairs.chunks(batch).collect();
    let mut tally = ClientTally {
        served: 0,
        faults: 0,
        request_us: Vec::with_capacity(chunks.len()),
    };
    let mut in_flight: std::collections::VecDeque<(u64, usize, Instant)> =
        std::collections::VecDeque::with_capacity(depth);
    let mut next = 0usize;
    while next < chunks.len() || !in_flight.is_empty() {
        while next < chunks.len() && in_flight.len() < depth {
            let id = client.submit_batch(chunks[next]).expect("submit batch");
            issued_total.fetch_add(chunks[next].len() as u64, Ordering::Relaxed);
            in_flight.push_back((id, next, Instant::now()));
            next += 1;
        }
        let (got_id, frame) = client.recv().expect("receive reply");
        let (want_id, chunk_idx, t0) = in_flight.pop_front().expect("a reply implies a request");
        assert_eq!(got_id, want_id, "pipelined replies arrive in order");
        tally.request_us.push(t0.elapsed().as_micros() as u64);
        match frame {
            Frame::PathBatch { results } => {
                assert_eq!(results.len(), chunks[chunk_idx].len());
                for (k, r) in results.into_iter().enumerate() {
                    match r {
                        Ok(_) => tally.served += 1,
                        Err(fault) => {
                            if tally.faults < 3 {
                                let (s, d) = chunks[chunk_idx][k];
                                eprintln!("fault on {s:?} -> {d:?}: {fault}");
                            }
                            tally.faults += 1;
                        }
                    }
                }
            }
            Frame::Error { fault } => panic!("batch-level fault: {fault}"),
            other => panic!("unexpected reply {other:?}"),
        }
    }
    tally
}

fn quantile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64 * q).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

fn main() {
    let n_queries: usize = arg("--queries", 200_000);
    let clients: usize = arg("--clients", 4);
    let batch: usize = arg("--batch", 512);
    let depth: usize = arg("--depth", 4);
    let workers: usize = arg("--workers", 0); // 0 = ServiceConfig default
    let scale: String = arg("--scale", "test".to_string());
    let connect: String = arg("--connect", String::new());
    let ring: u32 = arg("--ring", 64);
    assert!(clients >= 1 && batch >= 1 && depth >= 1);

    // An owned server (in-process mode) plus the delta to land on it
    // mid-run; --connect mode drives a remote instead.
    let mut server: Option<NetServer> = None;
    let mut delta: Option<AtlasDelta> = None;
    let (addr, pairs) = if connect.is_empty() {
        let sc = Scenario::build(match scale.as_str() {
            "experiment" => ScenarioConfig::experiment(99),
            _ => ScenarioConfig::test(99),
        });
        eprintln!("scenario: {}", sc.summary());
        let (_, atlas1) = sc.atlas_for_day(1);
        let d = AtlasDelta::between(&sc.atlas, &atlas1);
        // Validate against the atlas the delta *produces* (deltas
        // quantise), which is what the engine serves post-swap.
        let atlas1_applied = d.apply(&sc.atlas).expect("delta applies to day 0");
        delta = Some(d);
        let pairs = scenario_pairs(&sc, &atlas1_applied, n_queries);

        let mut cfg = ServiceConfig {
            predictor: PredictorConfig::full(),
            ..ServiceConfig::default()
        };
        if workers > 0 {
            cfg.workers = workers;
        }
        cfg.workers = cfg.workers.max(4);
        let engine = Arc::new(QueryEngine::new(Arc::new(sc.atlas.clone()), cfg));
        let srv = NetServer::bind("127.0.0.1:0", engine, ServerConfig::default())
            .expect("bind loopback server");
        let addr = srv.local_addr();
        eprintln!("in-process server on {addr}");
        server = Some(srv);
        (addr, pairs)
    } else {
        let addr = connect.parse().expect("--connect ADDR must be ip:port");
        eprintln!("driving external server {addr} (ring {ring})");
        (addr, ring_pairs(ring, n_queries))
    };

    // Split the pair stream across client threads.
    let shares: Vec<Vec<(Ipv4, Ipv4)>> = (0..clients)
        .map(|c| {
            pairs
                .iter()
                .skip(c)
                .step_by(clients)
                .copied()
                .collect::<Vec<_>>()
        })
        .collect();
    let issued_total = Arc::new(AtomicU64::new(0));

    // In-process: land the day-1 delta once half the load is issued,
    // from its own thread, so the swap genuinely overlaps remote
    // batches in flight.
    let swap_thread = server.as_ref().map(|srv| {
        let engine = Arc::clone(srv.engine());
        let delta = delta.take().expect("in-process mode built a delta");
        let issued = Arc::clone(&issued_total);
        let trigger = (n_queries / 2) as u64;
        std::thread::spawn(move || {
            while issued.load(Ordering::Relaxed) < trigger {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            let t0 = Instant::now();
            let day = engine.apply_delta(&delta).expect("delta applies");
            eprintln!(
                "hot swap to day {day} in {:.1} ms, {} queries issued",
                t0.elapsed().as_secs_f64() * 1e3,
                issued.load(Ordering::Relaxed),
            );
        })
    });

    let t0 = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = shares
            .iter()
            .map(|share| {
                let issued_total = Arc::clone(&issued_total);
                scope.spawn(move || drive(addr, share, batch, depth, &issued_total))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();
    if let Some(h) = swap_thread {
        h.join().expect("swap thread");
    }

    let served: u64 = tallies.iter().map(|t| t.served).sum();
    let faults: u64 = tallies.iter().map(|t| t.faults).sum();
    let mut request_us: Vec<u64> = tallies.iter().flat_map(|t| t.request_us.clone()).collect();
    request_us.sort_unstable();
    let qps = (served + faults) as f64 / elapsed;
    let p50 = quantile(&request_us, 0.50);
    let p99 = quantile(&request_us, 0.99);

    let mut swaps = 0u64;
    let mut epoch = 0u64;
    if let Some(srv) = &server {
        // The swap must be visible over the wire: a fresh client sees
        // the bumped epoch and the day-1 atlas.
        let mut probe = NetClient::connect(addr).expect("probe connect");
        let (e, day) = probe.epoch().expect("epoch over the wire");
        assert_eq!(e, 1, "post-swap epoch visible to remote clients");
        assert_eq!(day, 1, "post-swap day visible to remote clients");
        let stats = probe.stats().expect("stats over the wire");
        assert!(stats.swaps >= 1, "the mid-load swap must have happened");
        assert_eq!(faults, 0, "no query may fail across the swap");
        swaps = stats.swaps;
        epoch = e;
        eprintln!(
            "server counters: {} queries, cache hit rate {:.3}, epoch {}, day {}",
            stats.queries, stats.cache_hit_rate, stats.epoch, stats.day
        );
        srv.shutdown();
    }

    eprintln!(
        "served {served} queries ({faults} faults) in {elapsed:.2}s over {clients} \
         connections: {qps:.0} qps, request p50 {p50}us / p99 {p99}us \
         (batch {batch}, depth {depth})",
    );

    // The contract line: exactly one JSON record on stdout.
    println!(
        "{{\"bench\":\"net_throughput\",\"qps\":{qps:.1},\"p50_us\":{p50},\"p99_us\":{p99},\
         \"queries\":{},\"errors\":{faults},\"clients\":{clients},\"batch\":{batch},\
         \"depth\":{depth},\"swaps\":{swaps},\"epoch\":{epoch}}}",
        served + faults,
    );
}
