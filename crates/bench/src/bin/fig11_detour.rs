//! Figure 11: routing around failures with iNano-ranked detours vs
//! random detours (SOSR [20]).
//!
//! Paper setup: failure episodes where ≥10% of sources simultaneously
//! cannot reach a destination but ≥10% can; a source recovers if one of
//! its first N detours has working src→detour and detour→dst paths.
//! Headline: for the same N, iNano-ranked detours roughly halve the
//! unreachable fraction (5 detours: 2% vs 4%).

use inano_apps::detour::rank_detours;
use inano_bench::report::emit;
use inano_bench::{Scenario, ScenarioConfig};
use inano_core::{PathPredictor, PredictorConfig};
use inano_model::rng::rng_for;
use inano_model::{HostId, PrefixId};
use inano_routing::{FailureScenario, RoutingOracle};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::Serialize;
use std::sync::Arc;

const MAX_DETOURS: usize = 8;

#[derive(Serialize)]
struct Out {
    n_detours: usize,
    unreachable_inano: f64,
    unreachable_random: f64,
    episodes: usize,
    victim_cases: usize,
}

fn main() {
    let sc = Scenario::build(ScenarioConfig::experiment(42));
    eprintln!("scenario: {}", sc.summary());
    let mut rng = rng_for(sc.cfg.seed, "fig11");

    // 35 sources (paper) among the agents; detour candidates are the
    // other sources.
    let sources: Vec<HostId> = sc.vps.agents.iter().take(35).copied().collect();
    let src_prefix: Vec<PrefixId> = sources.iter().map(|&h| sc.net.host(h).prefix).collect();

    let atlas = Arc::new(sc.atlas.clone());
    let predictor = PathPredictor::new(Arc::clone(&atlas), PredictorConfig::full());
    let baseline = sc.oracle(0);

    // Build failure episodes: take a destination, fail a transit PoP on
    // the true path from a random source; keep episodes that split the
    // source population 10/90.
    let all_dests: Vec<PrefixId> = sc.net.edge_prefixes().map(|p| p.id).collect();
    let mut episodes = 0usize;
    let mut victim_cases = 0usize;
    // fail_counts[strategy][n-1] = victims still unreachable with n detours.
    let mut fail_inano = [0usize; MAX_DETOURS];
    let mut fail_random = [0usize; MAX_DETOURS];

    let mut attempts = 0;
    while episodes < 60 && attempts < 1200 {
        attempts += 1;
        let dst = all_dests[rng.gen_range(0..all_dests.len())];
        let probe_src = sources[rng.gen_range(0..sources.len())];
        let Some(path) = baseline.host_to_prefix(probe_src, dst) else {
            continue;
        };
        let Some(scenario) = FailureScenario::transit_outage_on_path(&sc.net, &path.pops, &mut rng)
        else {
            continue;
        };
        let broken = RoutingOracle::with_failures(&sc.net, sc.churn.day_state(0), &scenario);
        let reachable: Vec<bool> = sources
            .iter()
            .map(|&s| broken.host_to_prefix(s, dst).is_some())
            .collect();
        let n_fail = reachable.iter().filter(|r| !**r).count();
        let n_ok = reachable.len() - n_fail;
        // Paper's episode filter: at least 10% fail AND at least 10% work.
        if n_fail * 10 < sources.len() || n_ok * 10 < sources.len() {
            continue;
        }
        episodes += 1;

        for (i, &src) in sources.iter().enumerate() {
            if reachable[i] {
                continue;
            }
            victim_cases += 1;
            // Candidate detours: the other sources.
            let candidates: Vec<PrefixId> = src_prefix
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &p)| p)
                .collect();
            let detour_hosts: Vec<HostId> = sources
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &h)| h)
                .collect();

            // iNano ranking (predictions are failure-unaware: the atlas
            // predates the outage, exactly as deployed).
            let ranked = rank_detours(&predictor, src_prefix[i], dst, &candidates, MAX_DETOURS);
            let works = |detour_pfx: PrefixId| -> bool {
                let Some(pos) = src_prefix.iter().position(|&p| p == detour_pfx) else {
                    return false;
                };
                let relay = sources[pos];
                broken.host_to_prefix(src, detour_pfx).is_some()
                    && broken.host_to_prefix(relay, dst).is_some()
            };
            let mut recovered_at = usize::MAX;
            for (k, &d) in ranked.iter().enumerate() {
                if works(d) {
                    recovered_at = k;
                    break;
                }
            }
            for n in 1..=MAX_DETOURS {
                if recovered_at >= n {
                    fail_inano[n - 1] += 1;
                }
            }

            // Random ranking.
            let mut shuffled: Vec<HostId> = detour_hosts.clone();
            shuffled.shuffle(&mut rng);
            let mut recovered_at = usize::MAX;
            for (k, &relay) in shuffled.iter().take(MAX_DETOURS).enumerate() {
                let dpfx = sc.net.host(relay).prefix;
                if broken.host_to_prefix(src, dpfx).is_some()
                    && broken.host_to_prefix(relay, dst).is_some()
                {
                    recovered_at = k;
                    break;
                }
            }
            for n in 1..=MAX_DETOURS {
                if recovered_at >= n {
                    fail_random[n - 1] += 1;
                }
            }
        }
    }

    let mut text = String::from("== Figure 11: routing around failures ==\n");
    text.push_str(&format!(
        "episodes: {episodes}, unreachable (source, dst) cases: {victim_cases}\n\n"
    ));
    text.push_str(&format!(
        "{:>9} {:>18} {:>18}\n",
        "#detours", "iNano unreachable", "random unreachable"
    ));
    let mut outs = Vec::new();
    for n in 1..=MAX_DETOURS {
        let fi = fail_inano[n - 1] as f64 / victim_cases.max(1) as f64;
        let fr = fail_random[n - 1] as f64 / victim_cases.max(1) as f64;
        text.push_str(&format!(
            "{n:>9} {:>17.1}% {:>17.1}%\n",
            fi * 100.0,
            fr * 100.0
        ));
        outs.push(Out {
            n_detours: n,
            unreachable_inano: fi,
            unreachable_random: fr,
            episodes,
            victim_cases,
        });
    }
    text.push_str("\n(paper: iNano halves the unreachable fraction; 5 detours: 2% vs 4%)\n");
    emit("fig11_detour", &text, &outs);
}
