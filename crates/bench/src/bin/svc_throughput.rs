//! `svc_throughput`: load-generate the `inano-service` query engine and
//! report serving metrics as a single BENCH JSON line (stable keys, one
//! line, parseable by future perf-trajectory tooling).
//!
//! The workload models the paper's application studies: many clients
//! asking about few popular destinations — sources uniform, destinations
//! zipf(s=1.0) over the atlas prefixes — so the cluster-keyed result
//! cache sees a realistic skew. Halfway through, a day-1 delta is
//! applied on a separate thread to demonstrate (and time) a hot swap
//! under load.
//!
//! Usage: `svc_throughput [--queries N] [--workers W] [--scale test|experiment]`

use inano_atlas::AtlasDelta;
use inano_bench::{Scenario, ScenarioConfig};
use inano_core::PredictorConfig;
use inano_model::rng::rng_for;
use inano_model::Ipv4;
use inano_net::cli::arg;
use inano_service::{QueryEngine, ServiceConfig};
use rand::Rng;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let n_queries: usize = arg("--queries", 200_000);
    let workers: usize = arg("--workers", 0); // 0 = ServiceConfig default
    let scale: String = arg("--scale", "test".to_string());
    let batch = 2048usize;

    let sc = Scenario::build(match scale.as_str() {
        "experiment" => ScenarioConfig::experiment(99),
        _ => ScenarioConfig::test(99),
    });
    eprintln!("scenario: {}", sc.summary());
    let (_, atlas1) = sc.atlas_for_day(1);
    let delta = AtlasDelta::between(&sc.atlas, &atlas1);

    // One representative address per atlas prefix, deterministically
    // ordered for the zipf ranking.
    let mut by_prefix: Vec<_> = sc
        .atlas
        .prefix_as
        .iter()
        .map(|(&pid, &(prefix, _))| (pid, prefix.nth(1)))
        .collect();
    by_prefix.sort_by_key(|&(pid, _)| pid);
    let ips: Vec<Ipv4> = by_prefix.into_iter().map(|(_, ip)| ip).collect();
    assert!(ips.len() > 2, "scenario must expose prefixes to query");

    // Destination popularity: zipf(s=1.0) by prefix rank.
    let weights: Vec<f64> = (0..ips.len()).map(|r| 1.0 / (r as f64 + 1.0)).collect();
    let cumulative: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w;
            Some(*acc)
        })
        .collect();
    let total_weight = *cumulative.last().unwrap();

    // Draw the mix, keeping only pairs the day-0 atlas can actually
    // answer (validated against a scratch predictor so the benchmarked
    // engine's cache stays cold): the emitted latency percentiles then
    // measure real predictions, not fast NoPath failures. After the
    // mid-run swap a few pairs may legitimately start failing if the
    // day-1 delta removed their links; those stay counted in `errors`.
    let scratch =
        inano_core::PathPredictor::new(Arc::new(sc.atlas.clone()), PredictorConfig::full());
    let mut routable_memo: std::collections::HashMap<(Ipv4, Ipv4), bool> =
        std::collections::HashMap::new();
    let mut rng = rng_for(99, "svc-throughput-load");
    let mut rejected = 0usize;
    let mut pairs: Vec<(Ipv4, Ipv4)> = Vec::with_capacity(n_queries);
    while pairs.len() < n_queries && rejected < n_queries * 20 {
        let src = ips[rng.gen_range(0..ips.len())];
        let pick = rng.gen_range(0.0..total_weight);
        let dst = ips[cumulative.partition_point(|&c| c < pick).min(ips.len() - 1)];
        let ok = *routable_memo
            .entry((src, dst))
            .or_insert_with(|| scratch.query(src, dst).is_ok());
        if ok {
            pairs.push((src, dst));
        } else {
            rejected += 1;
        }
    }
    drop(scratch);
    assert!(
        pairs.len() == n_queries,
        "atlas too sparse: only {} of {} requested pairs routable",
        pairs.len(),
        n_queries
    );

    let mut cfg = ServiceConfig {
        predictor: PredictorConfig::full(),
        ..ServiceConfig::default()
    };
    if workers > 0 {
        cfg.workers = workers;
    }
    cfg.workers = cfg.workers.max(4);
    let engine = Arc::new(QueryEngine::new(Arc::new(sc.atlas.clone()), cfg));

    // Halfway through the load, land the day-1 delta from a separate
    // thread — the swap genuinely overlaps in-flight batches, so its
    // reported duration is a swap-under-load number.
    let swap_trigger = n_queries / 2;
    let mut issued = 0usize;
    let mut swap_thread: Option<std::thread::JoinHandle<()>> = None;

    let spawn_swap = |label: &'static str| {
        let engine = Arc::clone(&engine);
        let delta = delta.clone();
        std::thread::spawn(move || {
            let swap_t0 = Instant::now();
            let day = engine.apply_delta(&delta).expect("delta applies");
            eprintln!(
                "hot swap to day {day} in {:.1} ms ({label})",
                swap_t0.elapsed().as_secs_f64() * 1e3
            );
        })
    };

    let t0 = Instant::now();
    let mut ok = 0u64;
    let mut err = 0u64;
    for chunk in pairs.chunks(batch) {
        if swap_thread.is_none() && issued >= swap_trigger {
            swap_thread = Some(spawn_swap("under load"));
        }
        for r in engine.query_batch(chunk) {
            match r {
                Ok(_) => ok += 1,
                Err(_) => err += 1,
            }
        }
        issued += chunk.len();
    }
    // Tiny runs (one batch) never reach the mid-load spawn point; swap
    // after the load so the day-1 assertions still hold.
    swap_thread
        .unwrap_or_else(|| spawn_swap("after load"))
        .join()
        .expect("swap thread");
    let elapsed = t0.elapsed().as_secs_f64();

    let stats = engine.stats();
    let qps = (ok + err) as f64 / elapsed;
    eprintln!(
        "served {} queries ({} ok, {} err) in {:.2}s on {} workers: \
         {:.0} qps, p50 {}us, p99 {}us, cache hit rate {:.3} \
         ({} hits / {} misses / {} evictions), {} swap(s), day {}",
        stats.queries,
        ok,
        err,
        elapsed,
        stats.workers,
        qps,
        stats.p50_us,
        stats.p99_us,
        stats.cache_hit_rate,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.swaps,
        stats.day,
    );
    assert!(stats.swaps >= 1, "the mid-load swap must have happened");
    assert_eq!(stats.day, 1, "post-swap generation serves day 1");

    // The contract line: exactly one JSON record on stdout.
    println!(
        "{{\"bench\":\"svc_throughput\",\"qps\":{:.1},\"p50_us\":{},\"p99_us\":{},\
         \"cache_hit\":{:.4},\"queries\":{},\"errors\":{},\"workers\":{},\"swaps\":{}}}",
        qps,
        stats.p50_us,
        stats.p99_us,
        stats.cache_hit_rate,
        stats.queries,
        err,
        stats.workers,
        stats.swaps,
    );
}
