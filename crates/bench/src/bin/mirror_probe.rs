//! `mirror_probe`: verify that a mirror really serves its origin's
//! atlas — the client-side check of the dissemination chain.
//!
//! Fetches the full shard-0 atlas from both servers over the wire (the
//! same chunked, checksummed path any peer bootstrap uses), asserts the
//! epoch tags match, then asks both servers the same `--queries` random
//! ring queries and asserts the answers are identical.
//!
//! Every failure path names the role (`origin`/`mirror`), address and
//! shard it died on, and the probe's last stderr word is one typed
//! summary line — `PROBE OK` or
//! `PROBE FAIL role=... addr=... shard=... stage=...` — so a harness
//! can grep the verdict without parsing the story above it. On success
//! stdout carries exactly one BENCH JSON line, as ever.
//!
//! Usage: `mirror_probe --origin ADDR --mirror ADDR [--ring N]
//!         [--queries Q]`

use inano_core::AtlasReader;
use inano_model::rng::rng_for;
use inano_net::cli::arg;
use inano_net::demo::ring_ip;
use inano_net::NetClient;
use rand::Rng;

/// The probed shard: both fetch paths and the parity batch talk to the
/// default shard only.
const SHARD: u16 = 0;

/// Tell the failure story, emit the typed summary line, exit non-zero.
fn fail(role: &str, addr: &str, stage: &str, why: impl std::fmt::Display) -> ! {
    eprintln!("mirror_probe: {stage} against {role} {addr} (shard {SHARD}): {why}");
    eprintln!("PROBE FAIL role={role} addr={addr} shard={SHARD} stage={stage}");
    std::process::exit(1);
}

fn main() {
    let origin: String = arg("--origin", String::new());
    let mirror: String = arg("--mirror", String::new());
    let ring: u32 = arg("--ring", 64);
    let queries: usize = arg("--queries", 500);
    if origin.is_empty() || mirror.is_empty() {
        eprintln!("usage: mirror_probe --origin ADDR --mirror ADDR [--ring N] [--queries Q]");
        std::process::exit(2);
    }

    // The client fetch: both atlases arrive over the wire through the
    // chunked AtlasSource the servers expose.
    let reader = AtlasReader::default();
    let mut origin_client =
        NetClient::connect(&origin).unwrap_or_else(|e| fail("origin", &origin, "connect", e));
    let mut mirror_client =
        NetClient::connect(&mirror).unwrap_or_else(|e| fail("mirror", &mirror, "connect", e));
    let (origin_head, origin_bytes) = reader
        .fetch_full(&mut origin_client)
        .unwrap_or_else(|e| fail("origin", &origin, "fetch-full", e));
    let (mirror_head, mirror_bytes) = reader
        .fetch_full(&mut mirror_client)
        .unwrap_or_else(|e| fail("mirror", &mirror, "fetch-full", e));
    if origin_head.epoch_tag != mirror_head.epoch_tag {
        fail(
            "mirror",
            &mirror,
            "atlas-parity",
            format!(
                "serves tag {:#018x} (day {}) but the origin serves {:#018x} (day {})",
                mirror_head.epoch_tag, mirror_head.day, origin_head.epoch_tag, origin_head.day
            ),
        );
    }
    if origin_bytes != mirror_bytes {
        fail(
            "mirror",
            &mirror,
            "atlas-parity",
            "tag equal but bytes differ?!",
        );
    }
    eprintln!(
        "atlas parity: day {}, tag {:#018x}, {} bytes in {} chunk(s) from each server",
        origin_head.day,
        origin_head.epoch_tag,
        origin_head.full_len,
        origin_head.n_chunks(),
    );

    // The query parity check: identical predictions from both ends.
    let mut rng = rng_for(7, "mirror-probe");
    let pairs: Vec<_> = (0..queries)
        .map(|_| {
            let s = rng.gen_range(0..ring);
            let d = (s + rng.gen_range(1..ring)) % ring;
            (ring_ip(s), ring_ip(d))
        })
        .collect();
    let from_origin = origin_client
        .query_batch(&pairs)
        .unwrap_or_else(|e| fail("origin", &origin, "query-batch", e));
    let from_mirror = mirror_client
        .query_batch(&pairs)
        .unwrap_or_else(|e| fail("mirror", &mirror, "query-batch", e));
    let mut mismatches = 0usize;
    for (i, (a, b)) in from_origin.iter().zip(&from_mirror).enumerate() {
        // Routes and AS paths must agree exactly; RTT/loss only to
        // float accumulation error — the origin may serve an in-memory
        // atlas whose latencies were never quantised through the
        // codec, so per-hop sums can differ in the last ulp.
        let agrees = match (a, b) {
            (Ok(a), Ok(b)) => {
                a.fwd_clusters == b.fwd_clusters
                    && a.rev_clusters == b.rev_clusters
                    && a.fwd_as == b.fwd_as
                    && a.rev_as == b.rev_as
                    && (a.rtt_ms - b.rtt_ms).abs() < 1e-9
                    && (a.loss - b.loss).abs() < 1e-9
            }
            (Err(a), Err(b)) => a.code == b.code,
            _ => false,
        };
        if !agrees {
            mismatches += 1;
            if mismatches <= 3 {
                eprintln!("pair {i} diverges:\n  origin: {a:?}\n  mirror: {b:?}");
            }
        }
    }
    if mismatches > 0 {
        fail(
            "mirror",
            &mirror,
            "query-parity",
            format!("{mismatches} of {queries} queries diverge from the origin"),
        );
    }

    println!(
        "{{\"bench\":\"mirror_probe\",\"tag\":\"{:#018x}\",\"atlas_bytes\":{},\"chunks\":{},\
         \"parity_queries\":{queries},\"mismatches\":0}}",
        origin_head.epoch_tag,
        origin_head.full_len,
        origin_head.n_chunks(),
    );
    eprintln!("PROBE OK origin={origin} mirror={mirror} shard={SHARD}");
}
