//! Figure 8: accuracy of loss-rate estimates to arbitrary destinations —
//! iNano vs path composition (coordinate systems can't predict loss at
//! all, §6.3.2). Paper: iNano approximates the path-based estimates with
//! a much smaller atlas; both within 10% absolute error for >80% of
//! paths.

use inano_bench::report::{cdf_rows, emit};
use inano_bench::{eval, Scenario, ScenarioConfig};
use inano_core::{PathPredictor, PredictorConfig};
use inano_model::stats::Ecdf;
use inano_paths::{PathAtlas, PathComposer};
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct Out {
    within_10pct: Vec<(String, f64)>,
    medians: Vec<(String, f64)>,
    samples: usize,
}

fn main() {
    let sc = Scenario::build(ScenarioConfig::experiment(42));
    eprintln!("scenario: {}", sc.summary());
    let oracle = sc.oracle(0);
    let paths = eval::validation_set(&sc, &oracle, 37, 100);

    let atlas = Arc::new(sc.atlas.clone());
    let predictor = PathPredictor::new(Arc::clone(&atlas), PredictorConfig::full());
    let path_atlas = PathAtlas::build(&sc.net, &sc.clustering, &sc.day0);
    let composer = PathComposer::new(&path_atlas, &atlas);

    let mut err_inano = Vec::new();
    let mut err_comp = Vec::new();
    for p in &paths {
        let truth = p.true_loss.rate();
        if let Ok(pred) = predictor.predict(p.src_prefix, p.dst_prefix) {
            err_inano.push((pred.loss.rate() - truth).abs());
        }
        // Composition: loss along composed forward + reverse paths.
        if let (Some(&s), Some(&d)) = (
            sc.atlas.prefix_cluster.get(&p.src_prefix),
            sc.atlas.prefix_cluster.get(&p.dst_prefix),
        ) {
            let fwd = composer.predict_forward(s, p.dst_prefix);
            let rev = composer.predict_forward(d, p.src_prefix);
            if let (Ok(f), Ok(r)) = (fwd, rev) {
                let loss = composer
                    .loss_of(&f.clusters)
                    .compose(composer.loss_of(&r.clusters));
                err_comp.push((loss.rate() - truth).abs());
            }
        }
    }

    let series = [
        ("iNano", Ecdf::new(err_inano)),
        ("path composition", Ecdf::new(err_comp)),
    ];
    let mut text = String::from("== Figure 8: loss-rate estimation error (absolute) ==\n");
    let mut within = Vec::new();
    let mut medians = Vec::new();
    for (name, e) in &series {
        if e.is_empty() {
            continue;
        }
        text.push_str(&cdf_rows(name, e));
        let w = e.fraction_at_most(0.10);
        text.push_str(&format!(
            "{name}: error <= 0.10 for {:.1}% of paths (paper: >80%)\n",
            w * 100.0
        ));
        within.push((name.to_string(), w));
        medians.push((name.to_string(), e.median()));
    }
    let out = Out {
        within_10pct: within,
        medians,
        samples: paths.len(),
    };
    emit("fig8_loss_error", &text, &out);
}
