//! Figure 9: peer-to-peer CDN replica selection, 30KB and 1.5MB files.
//!
//! Paper setup: 199 clients, 5 random replicas each, strategies
//! {measured latency, Vivaldi, OASIS, iNano, random} vs the optimal
//! choice. Headline: iNano is near-optimal at the median for both sizes;
//! for 1.5MB its loss-awareness beats even measured latencies; Vivaldi
//! and OASIS trail.

use inano_apps::cdn::{CdnExperiment, ReplicaStrategy};
use inano_bench::report::emit;
use inano_bench::{eval, Scenario, ScenarioConfig};
use inano_core::{PathPredictor, PredictorConfig};
use inano_model::rng::rng_for;
use inano_model::stats::Ecdf;
use inano_model::HostId;
use inano_topology::Tier;
use rand::seq::SliceRandom;
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct Out {
    file_bytes: f64,
    median_secs: Vec<(String, f64)>,
    p90_secs: Vec<(String, f64)>,
    clients: usize,
}

fn main() {
    let sc = Scenario::build(ScenarioConfig::experiment(42));
    eprintln!("scenario: {}", sc.summary());
    let oracle = sc.oracle(0);
    let mut rng = rng_for(sc.cfg.seed, "fig9");

    // Clients: end-host agents (their links are in FROM_SRC). Replicas:
    // hosts in transit-tier prefixes (well-connected, Akamai-like).
    let clients: Vec<HostId> = sc.vps.agents.iter().take(100).copied().collect();
    let mut replicas: Vec<HostId> = sc
        .net
        .hosts
        .iter()
        .filter(|h| {
            matches!(sc.net.as_info(h.asn).tier, Tier::Tier2 | Tier::Tier3)
                && !clients.contains(&h.id)
        })
        .map(|h| h.id)
        .collect();
    replicas.shuffle(&mut rng);
    replicas.truncate(60);
    eprintln!("{} clients, {} replicas", clients.len(), replicas.len());

    // Candidate sets: 5 random replicas per client (as in the paper).
    let candidate_sets: Vec<Vec<HostId>> = clients
        .iter()
        .map(|_| {
            let mut r = replicas.clone();
            r.shuffle(&mut rng);
            r.truncate(5);
            r
        })
        .collect();

    let atlas = Arc::new(sc.atlas.clone());
    let predictor = PathPredictor::new(Arc::clone(&atlas), PredictorConfig::full());

    // Vivaldi over clients + replicas.
    let mut population: Vec<HostId> = clients.iter().chain(replicas.iter()).copied().collect();
    population.sort();
    population.dedup();
    let (vivaldi, vidx) = eval::train_vivaldi(&sc, &oracle, &population, 80);

    let mut outs = Vec::new();
    let mut text = String::from("== Figure 9: CDN replica selection ==\n");
    for (label, bytes) in [("(a) 30KB", 30_000.0), ("(b) 1.5MB", 1_500_000.0)] {
        let exp = CdnExperiment {
            oracle: &oracle,
            predictor: &predictor,
            vivaldi: &vivaldi,
            vivaldi_index: &vidx,
            file_bytes: bytes,
        };
        text.push_str(&format!("\n-- {label} --\n"));
        text.push_str(&format!(
            "{:<12} {:>12} {:>12}\n",
            "strategy", "median (s)", "p90 (s)"
        ));
        let mut medians = Vec::new();
        let mut p90s = Vec::new();
        for strategy in ReplicaStrategy::all() {
            let mut times = Vec::new();
            for (ci, &client) in clients.iter().enumerate() {
                let cands = &candidate_sets[ci];
                let Some(r) = exp.pick(strategy, client, cands, &mut rng) else {
                    continue;
                };
                if let Some(t) = exp.download_time(client, r) {
                    times.push(t);
                }
            }
            if times.is_empty() {
                continue;
            }
            let e = Ecdf::new(times);
            text.push_str(&format!(
                "{:<12} {:>12.3} {:>12.3}\n",
                strategy.name(),
                e.median(),
                e.quantile(0.9)
            ));
            medians.push((strategy.name().to_string(), e.median()));
            p90s.push((strategy.name().to_string(), e.quantile(0.9)));
        }
        outs.push(Out {
            file_bytes: bytes,
            median_secs: medians,
            p90_secs: p90s,
            clients: clients.len(),
        });
    }
    text.push_str(
        "\n(paper: iNano near-optimal medians; for 1.5MB, loss-aware iNano beats measured \
         latency; Vivaldi/OASIS trail)\n",
    );
    emit("fig9_cdn", &text, &outs);
}
