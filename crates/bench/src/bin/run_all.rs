//! Regenerate every table and figure in sequence by invoking the sibling
//! experiment binaries. Pass `--json` to also write machine-readable
//! results to `target/experiments/`.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "tab2_atlas",
    "scale_vps",
    "fig4_path_stationarity",
    "loss_stationarity",
    "fig5_as_accuracy",
    "fig6_latency_error",
    "fig7_rank_closest",
    "fig8_loss_error",
    "fig9_cdn",
    "fig10_voip",
    "fig11_detour",
    "abl_tuple_threshold",
];

fn main() {
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("binary directory");
    let json = std::env::args().any(|a| a == "--json");

    let mut failed = Vec::new();
    for exp in EXPERIMENTS {
        println!("\n######## {exp} ########");
        let mut cmd = Command::new(dir.join(exp));
        if json {
            cmd.arg("--json");
        }
        match cmd.status() {
            Ok(st) if st.success() => {}
            Ok(st) => {
                eprintln!("{exp} exited with {st}");
                failed.push(*exp);
            }
            Err(e) => {
                eprintln!("could not run {exp}: {e}");
                failed.push(*exp);
            }
        }
    }
    if failed.is_empty() {
        println!("\nall {} experiments completed", EXPERIMENTS.len());
    } else {
        println!("\nFAILED: {failed:?}");
        std::process::exit(1);
    }
}
