//! Table 2: size of iNano's atlas — entries and encoded bytes per
//! dataset, plus the delta to the next day's atlas.
//!
//! Paper (absolute numbers at their 140K-prefix scale): 309K links /
//! 1.99MB, 47K loss / 0.21MB, 140K prefix→cluster / 0.76MB, 287K
//! prefix→AS / 1.67MB, 28K degrees / 0.09MB, 1.05M tuples / 1.23MB, 9K
//! prefs / 0.03MB, 33K providers / 0.63MB; total 6.61MB, delta 1.34MB.
//! Our topology is smaller, so the *ratios* are the comparison target.

use inano_atlas::{atlas_stats, delta_stats, stats::render_table, AtlasDelta};
use inano_bench::report::emit;
use inano_bench::{Scenario, ScenarioConfig};
use inano_paths::PathAtlas;

fn main() {
    let sc = Scenario::build(ScenarioConfig::experiment(42));
    eprintln!("scenario: {}", sc.summary());

    // Next day's atlas for the delta column.
    let (_, atlas1) = sc.atlas_for_day(1);
    let delta = AtlasDelta::between(&sc.atlas, &atlas1);

    let mut stats = atlas_stats(&sc.atlas);
    delta_stats(&mut stats, &delta);

    let mut text = String::from("== Table 2: size of iNano's atlas ==\n");
    text.push_str(&render_table(&stats));

    let (full_bytes, _) = inano_atlas::codec::encode(&sc.atlas);
    let (delta_bytes, _) = delta.encode();
    text.push_str(&format!(
        "\nfull atlas: {:.2} KB; daily delta: {:.2} KB ({:.0}% of full; paper: ~20%)\n",
        full_bytes.len() as f64 / 1e3,
        delta_bytes.len() as f64 / 1e3,
        100.0 * delta_bytes.len() as f64 / full_bytes.len() as f64,
    ));

    // The headline comparison: link atlas vs iPlane-style path atlas.
    let pa = PathAtlas::build(&sc.net, &sc.clustering, &sc.day0);
    let (path_entries, path_bytes) = pa.storage_size();
    text.push_str(&format!(
        "iPlane-style path atlas from the same measurements: {} hop entries, {:.2} KB \
         ({:.1}x the link atlas; paper: ~2-3 orders of magnitude at full scale)\n",
        path_entries,
        path_bytes as f64 / 1e3,
        path_bytes as f64 / full_bytes.len() as f64,
    ));

    emit("tab2_atlas", &text, &stats);
}
