//! §6.1.2: does iNano's atlas stay tractable as end-host vantage points
//! are added?
//!
//! Paper: 845 DIMES agents added ~16K links and ~14K 3-tuples to a
//! 309K-link / 1.05M-tuple PlanetLab atlas; linear extrapolation to all
//! 100K edge prefixes gives ~2.2M links (8x) and 2.7M tuples (2.6x) —
//! an estimated +18MB atlas / +5MB daily update: still tractable.

use inano_atlas::{build_atlas, AtlasConfig};
use inano_bench::report::emit;
use inano_bench::{Scenario, ScenarioConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    agents: usize,
    links: usize,
    tuples: usize,
    bytes: usize,
}

fn main() {
    let mut cfg = ScenarioConfig::experiment(42);
    cfg.n_agents = 160; // a larger agent pool to sweep over
    let sc = Scenario::build(cfg);
    eprintln!("scenario: {}", sc.summary());

    // Re-build the atlas with increasing numbers of agents contributing
    // FROM_SRC traceroutes (truncating the same measurement day keeps
    // everything else equal).
    let mut rows: Vec<Row> = Vec::new();
    for take in [0usize, 20, 40, 80, 160] {
        let mut day = sc.day0.clone();
        let cutoff: std::collections::HashSet<_> =
            sc.vps.agents.iter().take(take).copied().collect();
        day.agent_traceroutes.retain(|tr| cutoff.contains(&tr.src));
        let atlas = build_atlas(&sc.net, &sc.clustering, &day, &AtlasConfig::default());
        let (bytes, _) = inano_atlas::codec::encode(&atlas);
        rows.push(Row {
            agents: take,
            links: atlas.links.len(),
            tuples: atlas.tuples.len(),
            bytes: bytes.len(),
        });
    }

    let base = &rows[0];
    let last = rows.last().unwrap();
    let link_growth_per_agent = (last.links - base.links) as f64 / last.agents.max(1) as f64;
    let tuple_growth_per_agent = (last.tuples - base.tuples) as f64 / last.agents.max(1) as f64;
    // Extrapolate to an agent in every edge prefix.
    let n_prefixes = sc.net.edge_prefixes().count();
    let extrapolated_links = base.links as f64 + link_growth_per_agent * n_prefixes as f64;
    let extrapolated_tuples = base.tuples as f64 + tuple_growth_per_agent * n_prefixes as f64;

    let mut text = String::from("== §6.1.2: atlas growth with end-host vantage points ==\n");
    text.push_str(&format!(
        "{:>8} {:>10} {:>10} {:>12}\n",
        "agents", "links", "tuples", "atlas bytes"
    ));
    for r in &rows {
        text.push_str(&format!(
            "{:>8} {:>10} {:>10} {:>12}\n",
            r.agents, r.links, r.tuples, r.bytes
        ));
    }
    text.push_str(&format!(
        "\nlinear extrapolation to one agent in each of {n_prefixes} edge prefixes:\n\
         links: {:.0} ({:.1}x the VP-only atlas; paper: ~8x)\n\
         tuples: {:.0} ({:.1}x; paper: ~2.6x)\n",
        extrapolated_links,
        extrapolated_links / base.links as f64,
        extrapolated_tuples,
        extrapolated_tuples / base.tuples as f64,
    ));
    emit("scale_vps", &text, &rows);
}
