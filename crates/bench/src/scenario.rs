//! Scenario construction: everything the experiments share.

use inano_atlas::{build_atlas, Atlas, AtlasConfig};
use inano_measure::{
    run_campaign, CampaignConfig, Clustering, ClusteringConfig, MeasurementDay, VantagePoints,
};
use inano_model::rng::rng_for;
use inano_routing::RoutingOracle;
use inano_topology::{build_internet, ChurnModel, Internet, TopologyConfig};

/// Scenario knobs: topology scale plus measurement-campaign sizing.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    pub seed: u64,
    pub topo: TopologyConfig,
    pub clustering: ClusteringConfig,
    pub campaign: CampaignConfig,
    /// Infrastructure (PlanetLab-like) vantage points.
    pub n_vps: usize,
    /// End-host (DIMES-like) agents.
    pub n_agents: usize,
}

impl ScenarioConfig {
    /// Tiny scenario for unit/integration tests (runs in < 1 s).
    pub fn test(seed: u64) -> Self {
        ScenarioConfig {
            seed,
            topo: TopologyConfig::tiny(seed),
            clustering: ClusteringConfig {
                seed,
                ..ClusteringConfig::default()
            },
            campaign: CampaignConfig {
                seed,
                traceroutes_per_agent: 15,
                ..CampaignConfig::default()
            },
            n_vps: 10,
            n_agents: 12,
        }
    }

    /// The default experiment scale: a paper-shaped Internet at roughly
    /// 1/4 the paper's AS count ratio of VPs (197 VPs / 140K prefixes ⇒
    /// here ~50 VPs over ~3-4K edge prefixes).
    pub fn experiment(seed: u64) -> Self {
        let mut topo = TopologyConfig::scaled(0.5);
        topo.seed = seed;
        ScenarioConfig {
            seed,
            topo,
            clustering: ClusteringConfig {
                seed,
                ..ClusteringConfig::default()
            },
            campaign: CampaignConfig {
                seed,
                traceroutes_per_agent: 100,
                ..CampaignConfig::default()
            },
            n_vps: 60,
            n_agents: 80,
        }
    }
}

/// A fully-built scenario: ground truth + one measured day + its atlas.
pub struct Scenario {
    pub cfg: ScenarioConfig,
    pub net: Internet,
    pub churn: ChurnModel,
    pub clustering: Clustering,
    pub vps: VantagePoints,
    pub day0: MeasurementDay,
    pub atlas: Atlas,
}

impl Scenario {
    /// Build the scenario: generate the Internet, derive the clustering,
    /// pick vantage points, run day 0's campaign and build its atlas.
    pub fn build(cfg: ScenarioConfig) -> Scenario {
        let net = build_internet(&cfg.topo).expect("valid topology config");
        let churn = ChurnModel::new(&net);
        let clustering = Clustering::derive(&net, &cfg.clustering);
        let mut rng = rng_for(cfg.seed, "scenario-vps");
        let vps = VantagePoints::choose(&net, cfg.n_vps, cfg.n_agents, &mut rng);
        let oracle = RoutingOracle::new(&net, churn.day_state(0));
        let day0 = run_campaign(&oracle, &clustering, &vps, &cfg.campaign);
        let atlas = build_atlas(&net, &clustering, &day0, &AtlasConfig::default());
        Scenario {
            cfg,
            net,
            churn,
            clustering,
            vps,
            day0,
            atlas,
        }
    }

    /// An oracle for a given day of this scenario.
    pub fn oracle(&self, day: u32) -> RoutingOracle<'_> {
        RoutingOracle::new(&self.net, self.churn.day_state(day))
    }

    /// Run the campaign and build the atlas for another day (same VPs and
    /// clustering — cluster ids stay stable across days).
    pub fn atlas_for_day(&self, day: u32) -> (MeasurementDay, Atlas) {
        let oracle = self.oracle(day);
        let md = run_campaign(&oracle, &self.clustering, &self.vps, &self.cfg.campaign);
        let atlas = build_atlas(&self.net, &self.clustering, &md, &AtlasConfig::default());
        (md, atlas)
    }

    /// Quick summary line for reports.
    pub fn summary(&self) -> String {
        format!(
            "{}; atlas: {} links / {} tuples / {} prefs / {} providers",
            self.net.summary(),
            self.atlas.links.len(),
            self.atlas.tuples.len(),
            self.atlas.prefs.len(),
            self.atlas.providers.len(),
        )
    }
}
