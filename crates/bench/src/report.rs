//! Report output: paper-style text to stdout, JSON to
//! `target/experiments/` when `--json` is passed.

use inano_model::stats::Ecdf;
use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// Emit a report: always prints `text`; with `--json` in argv, also
/// writes `value` to `target/experiments/<name>.json`.
pub fn emit<T: Serialize>(name: &str, text: &str, value: &T) {
    println!("{text}");
    if std::env::args().any(|a| a == "--json") {
        let dir = PathBuf::from("target/experiments");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join(format!("{name}.json"));
        match serde_json::to_string_pretty(value) {
            Ok(s) => {
                if let Err(e) = fs::write(&path, s) {
                    eprintln!("could not write {}: {e}", path.display());
                } else {
                    eprintln!("wrote {}", path.display());
                }
            }
            Err(e) => eprintln!("could not serialise {name}: {e}"),
        }
    }
}

/// Format an ECDF as "value fraction" rows at the given percentile grid —
/// the text analogue of the paper's CDF figures.
pub fn cdf_rows(label: &str, e: &Ecdf) -> String {
    let mut out = format!("# CDF: {label} (n={})\n", e.len());
    if e.is_empty() {
        out.push_str("(no samples)\n");
        return out;
    }
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
        out.push_str(&format!(
            "  p{:<4} {:>10.3}\n",
            (q * 100.0) as u32,
            e.quantile(q)
        ));
    }
    out
}

/// A generic (series name, x, y) triple for JSON output of figures.
#[derive(Serialize)]
pub struct SeriesPoint {
    pub series: String,
    pub x: f64,
    pub y: f64,
}

/// Percent formatting helper.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}
