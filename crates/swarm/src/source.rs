//! An [`AtlasSource`] that hands out atlas bytes "through" the simulated
//! swarm: fetches succeed and the simulation's completion time is
//! recorded, so examples can report realistic bootstrap latencies.
//!
//! The source serves the chunked v2 API natively: the encoded bodies
//! live behind shared `Arc<[u8]>`s and every chunk is a copy of just
//! its span — the old blob API cloned the *entire* encoded atlas per
//! peer fetch, which at §5 scale (a ~7MB atlas, thousands of peers) is
//! gigabytes of needless allocation at the seed.

use crate::sim::{simulate_swarm, SwarmConfig, SwarmReport};
use inano_atlas::{codec, Atlas, AtlasDelta};
use inano_core::DEFAULT_CHUNK_SIZE;
use inano_core::{chunk_span, content_tag, AtlasChunk, AtlasSource, AtlasVersion, DeltaHandle};
use inano_model::ModelError;
use inano_obs::{Counter, MetricValue, MetricsRegistry};
use std::collections::VecDeque;
use std::sync::Arc;

/// Most recent download reports retained by a [`SwarmSource`]. A
/// long-lived engine fetches a delta per day forever; an unbounded log
/// is a slow leak, so older reports are dropped once consumers had
/// [`SwarmSource::take_downloads`] available to drain them.
pub const DOWNLOAD_LOG_CAP: usize = 64;

/// One encoded delta body with its precomputed day span.
struct DeltaEntry {
    from_day: u32,
    to_day: u32,
    bytes: Arc<[u8]>,
}

/// Serves a full atlas plus a chain of daily deltas, simulating a swarm
/// download for each logical fetch (the simulation runs once per body,
/// on its first chunk; later chunks of the same body ride that swarm).
pub struct SwarmSource {
    day: u32,
    full: Arc<[u8]>,
    full_tag: u64,
    deltas: Vec<DeltaEntry>,
    chunk_size: u32,
    swarm: SwarmConfig,
    /// Reports of the most recent downloads, in fetch order, capped at
    /// [`DOWNLOAD_LOG_CAP`].
    downloads: VecDeque<SwarmReport>,
    /// Shared atomic handles (not plain `u64`s) so a metrics registry
    /// can snapshot them at dump time while the source keeps serving.
    fetches: Counter,
    bytes_served: Counter,
}

impl SwarmSource {
    /// Build from the atlas of day 0 and subsequent days' atlases.
    pub fn new(day0: &Atlas, later_days: &[Atlas], swarm: SwarmConfig) -> SwarmSource {
        let (full, _) = codec::encode(day0);
        let mut deltas = Vec::new();
        let mut prev = day0;
        for next in later_days {
            let delta = AtlasDelta::between(prev, next);
            deltas.push(DeltaEntry {
                from_day: delta.from_day,
                to_day: delta.to_day,
                bytes: delta.encode().0.into(),
            });
            prev = next;
        }
        SwarmSource {
            day: day0.day,
            full_tag: content_tag(&full),
            full: full.into(),
            deltas,
            chunk_size: DEFAULT_CHUNK_SIZE,
            swarm,
            downloads: VecDeque::new(),
            fetches: Counter::default(),
            bytes_served: Counter::default(),
        }
    }

    /// Publish this source's lifetime counters into `obs` as the
    /// `swarm.fetches` / `swarm.bytes_served` series: a collector
    /// snapshots the shared handles at every dump, so the seed's
    /// serving cost shows up in the same scrape as the query plane.
    pub fn register_metrics(&self, obs: &MetricsRegistry) {
        let fetches = self.fetches.clone();
        let bytes_served = self.bytes_served.clone();
        obs.register_collector(move |out| {
            out.push(("swarm.fetches".into(), MetricValue::Counter(fetches.get())));
            out.push((
                "swarm.bytes_served".into(),
                MetricValue::Counter(bytes_served.get()),
            ));
        });
    }

    fn swarm_fetch(&mut self, bytes: usize) {
        let cfg = SwarmConfig {
            file_bytes: bytes as f64,
            // Small files (daily deltas) ship in proportionally smaller
            // chunks; a fixed 256KB chunk would round a 20KB delta up to
            // a whole chunk per peer.
            chunk_bytes: (bytes as f64 / 8.0).clamp(4.0e3, self.swarm.chunk_bytes),
            ..self.swarm.clone()
        };
        self.fetches.inc();
        if self.downloads.len() == DOWNLOAD_LOG_CAP {
            self.downloads.pop_front();
        }
        self.downloads.push_back(simulate_swarm(&cfg));
    }

    /// Serve one chunk of a shared body, counting the bytes and — on
    /// the body's first chunk — running the swarm simulation for the
    /// whole download.
    fn serve_chunk(&mut self, body: &Arc<[u8]>, idx: u32) -> Result<AtlasChunk, ModelError> {
        let span = chunk_span(body.len() as u64, self.chunk_size, idx)?;
        if idx == 0 {
            self.swarm_fetch(body.len());
        }
        self.bytes_served.add(span.len() as u64);
        Ok(AtlasChunk::of(body[span].to_vec()))
    }

    /// The retained download reports, oldest first (at most
    /// [`DOWNLOAD_LOG_CAP`]; see [`SwarmSource::total_fetches`] for the
    /// uncapped count).
    pub fn downloads(&self) -> &VecDeque<SwarmReport> {
        &self.downloads
    }

    /// Drain the retained reports (oldest first), leaving the buffer
    /// empty — the polling pattern for a long-lived updater that wants
    /// every report without the source holding them forever.
    pub fn take_downloads(&mut self) -> Vec<SwarmReport> {
        self.downloads.drain(..).collect()
    }

    /// Fetches served over this source's lifetime (never capped).
    pub fn total_fetches(&self) -> u64 {
        self.fetches.get()
    }

    /// Total chunk bytes handed out over this source's lifetime — the
    /// seed-side serving cost, which the blob API hid by cloning whole
    /// atlases.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served.get()
    }

    /// Completion time of the most recent fetch, seconds.
    pub fn last_fetch_secs(&self) -> Option<f64> {
        self.downloads.back().map(|r| r.median_completion())
    }
}

impl AtlasSource for SwarmSource {
    fn head(&mut self) -> Result<AtlasVersion, ModelError> {
        Ok(AtlasVersion {
            day: self.day,
            epoch_tag: self.full_tag,
            full_len: self.full.len() as u64,
            chunk_size: self.chunk_size,
        })
    }

    fn fetch_full_chunk(&mut self, idx: u32) -> Result<AtlasChunk, ModelError> {
        let body = Arc::clone(&self.full);
        self.serve_chunk(&body, idx)
    }

    fn fetch_delta(&mut self, have_day: u32) -> Result<Option<DeltaHandle>, ModelError> {
        Ok(self
            .deltas
            .iter()
            .find(|d| d.from_day == have_day)
            .map(|d| DeltaHandle {
                from_day: d.from_day,
                to_day: d.to_day,
                len: d.bytes.len() as u64,
                chunk_size: self.chunk_size,
            }))
    }

    fn fetch_delta_chunk(&mut self, from_day: u32, idx: u32) -> Result<AtlasChunk, ModelError> {
        let Some(body) = self
            .deltas
            .iter()
            .find(|d| d.from_day == from_day)
            .map(|d| Arc::clone(&d.bytes))
        else {
            return Err(ModelError::VersionRaced(format!(
                "no delta leaving day {from_day}"
            )));
        };
        self.serve_chunk(&body, idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_atlas::{LinkAnnotation, Plane};
    use inano_core::AtlasReader;
    use inano_model::{Asn, ClusterId, LatencyMs};

    fn atlas(day: u32, extra_link: bool) -> Atlas {
        let mut a = Atlas {
            day,
            ..Atlas::default()
        };
        let cl = ClusterId::new;
        a.links.insert(
            (cl(1), cl(2)),
            LinkAnnotation {
                latency: Some(LatencyMs::new(1.0)),
                plane: Plane::TO_DST,
            },
        );
        if extra_link {
            a.links.insert(
                (cl(2), cl(3)),
                LinkAnnotation {
                    latency: Some(LatencyMs::new(2.0)),
                    plane: Plane::TO_DST,
                },
            );
        }
        a.cluster_as.insert(cl(1), Asn::new(1));
        a.cluster_as.insert(cl(2), Asn::new(2));
        a.cluster_as.insert(cl(3), Asn::new(3));
        a
    }

    #[test]
    fn serves_full_and_delta_with_download_reports() {
        let d0 = atlas(0, false);
        let d1 = atlas(1, true);
        let mut src = SwarmSource::new(
            &d0,
            &[d1],
            SwarmConfig {
                n_peers: 10,
                ..SwarmConfig::default()
            },
        );
        let reader = AtlasReader::default();
        let (version, full) = reader.fetch_full(&mut src).expect("full fetch");
        assert!(!full.is_empty());
        assert_eq!(version.day, 0);
        assert_eq!(version.epoch_tag, content_tag(&full));
        assert_eq!(src.downloads().len(), 1);
        assert_eq!(src.bytes_served(), full.len() as u64);
        let (handle, delta) = reader
            .fetch_delta(&mut src, 0)
            .expect("delta fetch")
            .expect("a delta leaves day 0");
        assert_eq!((handle.from_day, handle.to_day), (0, 1));
        assert_eq!(delta.len() as u64, handle.len);
        assert_eq!(src.downloads().len(), 2);
        assert_eq!(src.bytes_served(), (full.len() + delta.len()) as u64);
        // The delta is smaller, so it downloads faster.
        assert!(src.downloads()[1].makespan <= src.downloads()[0].makespan);
        assert!(reader.fetch_delta(&mut src, 1).unwrap().is_none());
    }

    #[test]
    fn chunks_come_from_a_shared_body_not_a_fresh_clone() {
        let d0 = atlas(0, false);
        let mut src = SwarmSource::new(
            &d0,
            &[],
            SwarmConfig {
                n_peers: 4,
                ..SwarmConfig::default()
            },
        );
        let head = src.head().expect("head");
        // Peer fetches only ever copy a chunk-sized span; the encoded
        // body itself stays shared (one Arc, not one clone per fetch).
        let before = Arc::strong_count(&src.full);
        let c = src.fetch_full_chunk(0).expect("chunk");
        assert!(c.verify());
        assert_eq!(
            c.bytes.len() as u64,
            head.full_len.min(head.chunk_size as u64)
        );
        assert_eq!(Arc::strong_count(&src.full), before);
        // Out-of-range indexes are typed, not panics.
        assert!(matches!(
            src.fetch_full_chunk(head.n_chunks()),
            Err(ModelError::ChunkOutOfRange(_))
        ));
    }

    #[test]
    fn registered_metrics_track_the_source() {
        let d0 = atlas(0, false);
        let mut src = SwarmSource::new(
            &d0,
            &[],
            SwarmConfig {
                n_peers: 4,
                ..SwarmConfig::default()
            },
        );
        let obs = MetricsRegistry::new();
        src.register_metrics(&obs);
        src.fetch_full_chunk(0).unwrap();
        let dump = obs.dump();
        assert_eq!(dump.counter("swarm.fetches"), 1);
        assert!(src.bytes_served() > 0);
        assert_eq!(dump.counter("swarm.bytes_served"), src.bytes_served());
    }

    #[test]
    fn download_log_is_bounded_and_drainable() {
        let d0 = atlas(0, false);
        let mut src = SwarmSource::new(
            &d0,
            &[],
            SwarmConfig {
                n_peers: 4,
                ..SwarmConfig::default()
            },
        );
        // Chunk 0 of the full body is what triggers a simulated swarm
        // download; every peer bootstrap starts there.
        for _ in 0..(DOWNLOAD_LOG_CAP + 40) {
            src.fetch_full_chunk(0).unwrap();
        }
        assert_eq!(src.downloads().len(), DOWNLOAD_LOG_CAP);
        assert_eq!(src.total_fetches(), (DOWNLOAD_LOG_CAP + 40) as u64);
        assert!(src.last_fetch_secs().is_some());
        let drained = src.take_downloads();
        assert_eq!(drained.len(), DOWNLOAD_LOG_CAP);
        assert!(src.downloads().is_empty());
        assert_eq!(src.last_fetch_secs(), None);
        // The counter survives the drain; the buffer refills.
        src.fetch_full_chunk(0).unwrap();
        assert_eq!(src.downloads().len(), 1);
        assert_eq!(src.total_fetches(), (DOWNLOAD_LOG_CAP + 41) as u64);
    }
}
