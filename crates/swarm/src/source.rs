//! An [`AtlasSource`] that hands out atlas bytes "through" the simulated
//! swarm: fetches succeed and the simulation's completion time is
//! recorded, so examples can report realistic bootstrap latencies.

use crate::sim::{simulate_swarm, SwarmConfig, SwarmReport};
use inano_atlas::{codec, Atlas, AtlasDelta};
use inano_core::AtlasSource;
use inano_model::ModelError;
use std::collections::VecDeque;

/// Most recent download reports retained by a [`SwarmSource`]. A
/// long-lived engine fetches a delta per day forever; an unbounded log
/// is a slow leak, so older reports are dropped once consumers had
/// [`SwarmSource::take_downloads`] available to drain them.
pub const DOWNLOAD_LOG_CAP: usize = 64;

/// Serves a full atlas plus a chain of daily deltas, simulating a swarm
/// download for each fetch.
pub struct SwarmSource {
    full: Vec<u8>,
    deltas: Vec<Vec<u8>>,
    swarm: SwarmConfig,
    /// Reports of the most recent downloads, in fetch order, capped at
    /// [`DOWNLOAD_LOG_CAP`].
    downloads: VecDeque<SwarmReport>,
    fetches: u64,
}

impl SwarmSource {
    /// Build from the atlas of day 0 and subsequent days' atlases.
    pub fn new(day0: &Atlas, later_days: &[Atlas], swarm: SwarmConfig) -> SwarmSource {
        let (full, _) = codec::encode(day0);
        let mut deltas = Vec::new();
        let mut prev = day0;
        for next in later_days {
            deltas.push(AtlasDelta::between(prev, next).encode().0);
            prev = next;
        }
        SwarmSource {
            full,
            deltas,
            swarm,
            downloads: VecDeque::new(),
            fetches: 0,
        }
    }

    fn swarm_fetch(&mut self, bytes: usize) {
        let cfg = SwarmConfig {
            file_bytes: bytes as f64,
            // Small files (daily deltas) ship in proportionally smaller
            // chunks; a fixed 256KB chunk would round a 20KB delta up to
            // a whole chunk per peer.
            chunk_bytes: (bytes as f64 / 8.0).clamp(4.0e3, self.swarm.chunk_bytes),
            ..self.swarm.clone()
        };
        self.fetches += 1;
        if self.downloads.len() == DOWNLOAD_LOG_CAP {
            self.downloads.pop_front();
        }
        self.downloads.push_back(simulate_swarm(&cfg));
    }

    /// The retained download reports, oldest first (at most
    /// [`DOWNLOAD_LOG_CAP`]; see [`SwarmSource::total_fetches`] for the
    /// uncapped count).
    pub fn downloads(&self) -> &VecDeque<SwarmReport> {
        &self.downloads
    }

    /// Drain the retained reports (oldest first), leaving the buffer
    /// empty — the polling pattern for a long-lived updater that wants
    /// every report without the source holding them forever.
    pub fn take_downloads(&mut self) -> Vec<SwarmReport> {
        self.downloads.drain(..).collect()
    }

    /// Fetches served over this source's lifetime (never capped).
    pub fn total_fetches(&self) -> u64 {
        self.fetches
    }

    /// Completion time of the most recent fetch, seconds.
    pub fn last_fetch_secs(&self) -> Option<f64> {
        self.downloads.back().map(|r| r.median_completion())
    }
}

impl AtlasSource for SwarmSource {
    fn fetch_full(&mut self) -> Result<Vec<u8>, ModelError> {
        self.swarm_fetch(self.full.len());
        Ok(self.full.clone())
    }

    fn fetch_delta(&mut self, have_day: u32) -> Result<Option<Vec<u8>>, ModelError> {
        for d in &self.deltas {
            let parsed = AtlasDelta::decode(d)?;
            if parsed.from_day == have_day {
                let bytes = d.clone();
                self.swarm_fetch(bytes.len());
                return Ok(Some(bytes));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_atlas::{LinkAnnotation, Plane};
    use inano_model::{Asn, ClusterId, LatencyMs};

    fn atlas(day: u32, extra_link: bool) -> Atlas {
        let mut a = Atlas {
            day,
            ..Atlas::default()
        };
        let cl = ClusterId::new;
        a.links.insert(
            (cl(1), cl(2)),
            LinkAnnotation {
                latency: Some(LatencyMs::new(1.0)),
                plane: Plane::TO_DST,
            },
        );
        if extra_link {
            a.links.insert(
                (cl(2), cl(3)),
                LinkAnnotation {
                    latency: Some(LatencyMs::new(2.0)),
                    plane: Plane::TO_DST,
                },
            );
        }
        a.cluster_as.insert(cl(1), Asn::new(1));
        a.cluster_as.insert(cl(2), Asn::new(2));
        a.cluster_as.insert(cl(3), Asn::new(3));
        a
    }

    #[test]
    fn serves_full_and_delta_with_download_reports() {
        let d0 = atlas(0, false);
        let d1 = atlas(1, true);
        let mut src = SwarmSource::new(
            &d0,
            &[d1],
            SwarmConfig {
                n_peers: 10,
                ..SwarmConfig::default()
            },
        );
        let full = src.fetch_full().unwrap();
        assert!(!full.is_empty());
        assert_eq!(src.downloads().len(), 1);
        let delta = src.fetch_delta(0).unwrap();
        assert!(delta.is_some());
        assert_eq!(src.downloads().len(), 2);
        // The delta is smaller, so it downloads faster.
        assert!(src.downloads()[1].makespan <= src.downloads()[0].makespan);
        assert!(src.fetch_delta(1).unwrap().is_none());
    }

    #[test]
    fn download_log_is_bounded_and_drainable() {
        let d0 = atlas(0, false);
        let mut src = SwarmSource::new(
            &d0,
            &[],
            SwarmConfig {
                n_peers: 4,
                ..SwarmConfig::default()
            },
        );
        for _ in 0..(DOWNLOAD_LOG_CAP + 40) {
            src.fetch_full().unwrap();
        }
        assert_eq!(src.downloads().len(), DOWNLOAD_LOG_CAP);
        assert_eq!(src.total_fetches(), (DOWNLOAD_LOG_CAP + 40) as u64);
        assert!(src.last_fetch_secs().is_some());
        let drained = src.take_downloads();
        assert_eq!(drained.len(), DOWNLOAD_LOG_CAP);
        assert!(src.downloads().is_empty());
        assert_eq!(src.last_fetch_secs(), None);
        // The counter survives the drain; the buffer refills.
        src.fetch_full().unwrap();
        assert_eq!(src.downloads().len(), 1);
        assert_eq!(src.total_fetches(), (DOWNLOAD_LOG_CAP + 41) as u64);
    }
}
