//! # inano-swarm
//!
//! Atlas dissemination (§5 "Fetching the Atlas"): iNano's central server
//! only *seeds* the atlas; clients swarm it among themselves, so server
//! bandwidth stays constant as the client population grows — the "low
//! infrastructure cost" design goal of Table 1.
//!
//! This crate provides a fluid-model swarm simulation (chunked file,
//! capacity-constrained seed and peers, BitTorrent-style) to quantify
//! that claim, plus an [`inano_core::AtlasSource`] implementation so the
//! client library can "download" through the simulated swarm.

pub mod sim;
pub mod source;

pub use sim::{simulate_swarm, SwarmConfig, SwarmReport};
pub use source::{SwarmSource, DOWNLOAD_LOG_CAP};
