//! Fluid-model swarm simulation.
//!
//! Time advances in small steps; each step allocates every node's upload
//! capacity across peers that still miss chunks it has (rarest-first
//! chunk choice, seed included). The model captures the two regimes that
//! matter for the paper's argument:
//!
//! * client/server: the seed's upload is the bottleneck, completion time
//!   grows linearly with the population;
//! * swarming: peers re-upload what they have, completion time grows
//!   ~logarithmically and the seed's bytes stay near one file copy.

use inano_model::rng::{rng_for, DeterministicRng};
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Swarm parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SwarmConfig {
    pub seed: u64,
    /// File size in bytes (an atlas is ~7 MB, a delta ~1 MB).
    pub file_bytes: f64,
    /// Chunk size in bytes.
    pub chunk_bytes: f64,
    /// Number of downloading peers.
    pub n_peers: usize,
    /// Seed upload capacity, bytes/s.
    pub seed_up: f64,
    /// Peer upload capacity, bytes/s (0 = pure client/server).
    pub peer_up: f64,
    /// Peer download capacity, bytes/s.
    pub peer_down: f64,
    /// Neighbors each peer exchanges chunks with.
    pub neighbors: usize,
    /// Simulation timestep, seconds.
    pub dt: f64,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        SwarmConfig {
            seed: 1,
            file_bytes: 7.0e6,
            chunk_bytes: 256.0e3,
            n_peers: 100,
            seed_up: 1.25e6,   // 10 Mbit/s server
            peer_up: 0.125e6,  // 1 Mbit/s upstream
            peer_down: 1.25e6, // 10 Mbit/s downstream
            neighbors: 8,
            dt: 1.0,
        }
    }
}

/// Results of one swarm run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SwarmReport {
    /// Seconds until each peer completed (sorted ascending).
    pub completion_times: Vec<f64>,
    /// Total bytes the seed uploaded.
    pub seed_bytes: f64,
    /// Wall-clock time until the last peer finished.
    pub makespan: f64,
}

impl SwarmReport {
    pub fn median_completion(&self) -> f64 {
        if self.completion_times.is_empty() {
            return f64::NAN;
        }
        self.completion_times[self.completion_times.len() / 2]
    }
}

/// Run the swarm to completion (or `max_time`).
pub fn simulate_swarm(cfg: &SwarmConfig) -> SwarmReport {
    let n_chunks = (cfg.file_bytes / cfg.chunk_bytes).ceil() as usize;
    let n = cfg.n_peers;
    let mut rng: DeterministicRng = rng_for(cfg.seed, "swarm");

    // have[p][c]: how much of chunk c peer p holds, in bytes.
    let mut have: Vec<Vec<f64>> = vec![vec![0.0; n_chunks]; n];
    let mut done: Vec<Option<f64>> = vec![None; n];
    let mut seed_bytes = 0.0;

    // Static random neighbor sets.
    let mut neighbors: Vec<Vec<usize>> = Vec::with_capacity(n);
    for i in 0..n {
        let mut others: Vec<usize> = (0..n).filter(|&j| j != i).collect();
        others.shuffle(&mut rng);
        others.truncate(cfg.neighbors);
        neighbors.push(others);
    }

    let complete = |h: &Vec<f64>, cfg: &SwarmConfig| -> bool {
        h.iter().all(|&b| b >= cfg.chunk_bytes - 1e-6)
    };

    let max_time = 3600.0 * 10.0;
    let mut t = 0.0;
    while t < max_time && done.iter().any(|d| d.is_none()) {
        t += cfg.dt;
        // Download budget per peer this step.
        let mut down_budget: Vec<f64> = (0..n)
            .map(|p| {
                if done[p].is_some() {
                    0.0
                } else {
                    cfg.peer_down * cfg.dt
                }
            })
            .collect();

        // Seed serves the peer(s) with the fewest complete chunks.
        let mut seed_budget = cfg.seed_up * cfg.dt;
        let mut wanting: Vec<usize> = (0..n).filter(|&p| done[p].is_none()).collect();
        wanting.shuffle(&mut rng);
        wanting.sort_by_key(|&p| have[p].iter().filter(|&&b| b >= cfg.chunk_bytes).count());
        for &p in &wanting {
            if seed_budget <= 0.0 {
                break;
            }
            let give = seed_budget.min(down_budget[p]);
            if give <= 0.0 {
                continue;
            }
            let moved = fill_missing(&mut have[p], give, cfg.chunk_bytes, None);
            seed_budget -= moved;
            down_budget[p] -= moved;
            seed_bytes += moved;
        }

        // Peer-to-peer exchange: each peer uploads chunks it completed to
        // neighbors that miss them.
        if cfg.peer_up > 0.0 {
            for p in 0..n {
                let mut up_budget = cfg.peer_up * cfg.dt;
                // Completed chunk indices at p.
                let owned: Vec<usize> = (0..n_chunks)
                    .filter(|&c| have[p][c] >= cfg.chunk_bytes)
                    .collect();
                if owned.is_empty() {
                    continue;
                }
                for &q in &neighbors[p] {
                    if up_budget <= 0.0 {
                        break;
                    }
                    if done[q].is_some() {
                        continue;
                    }
                    let give = up_budget.min(down_budget[q]);
                    if give <= 0.0 {
                        continue;
                    }
                    let moved = fill_missing(&mut have[q], give, cfg.chunk_bytes, Some(&owned));
                    up_budget -= moved;
                    down_budget[q] -= moved;
                }
            }
        }

        for p in 0..n {
            if done[p].is_none() && complete(&have[p], cfg) {
                done[p] = Some(t);
            }
        }
    }

    let mut completion_times: Vec<f64> = done.iter().map(|d| d.unwrap_or(max_time)).collect();
    completion_times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let makespan = *completion_times.last().unwrap_or(&0.0);
    SwarmReport {
        completion_times,
        seed_bytes,
        makespan,
    }
}

/// Pour `budget` bytes into incomplete chunks of `h` (restricted to
/// `allowed` chunk indices when given). Returns bytes actually moved.
fn fill_missing(
    h: &mut [f64],
    mut budget: f64,
    chunk_bytes: f64,
    allowed: Option<&[usize]>,
) -> f64 {
    let mut moved = 0.0;
    match allowed {
        None => {
            for b in h.iter_mut() {
                if budget <= 0.0 {
                    break;
                }
                let need = (chunk_bytes - *b).max(0.0);
                let take = need.min(budget);
                *b += take;
                budget -= take;
                moved += take;
            }
        }
        Some(idxs) => {
            for &c in idxs {
                if budget <= 0.0 {
                    break;
                }
                let need = (chunk_bytes - h[c]).max(0.0);
                let take = need.min(budget);
                h[c] += take;
                budget -= take;
                moved += take;
            }
        }
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everyone_completes() {
        let r = simulate_swarm(&SwarmConfig {
            n_peers: 20,
            ..SwarmConfig::default()
        });
        assert_eq!(r.completion_times.len(), 20);
        assert!(r.makespan < 3600.0, "makespan {}", r.makespan);
    }

    #[test]
    fn swarming_cuts_seed_bytes_vs_client_server() {
        let cs = simulate_swarm(&SwarmConfig {
            n_peers: 60,
            peer_up: 0.0,
            ..SwarmConfig::default()
        });
        let sw = simulate_swarm(&SwarmConfig {
            n_peers: 60,
            ..SwarmConfig::default()
        });
        // Client/server: seed ships ~60 copies. Swarm: far fewer.
        assert!(
            sw.seed_bytes < cs.seed_bytes / 3.0,
            "seed bytes {} vs {}",
            sw.seed_bytes,
            cs.seed_bytes
        );
        assert!(sw.makespan < cs.makespan);
    }

    #[test]
    fn population_growth_is_sublinear_with_swarming() {
        let small = simulate_swarm(&SwarmConfig {
            n_peers: 25,
            ..SwarmConfig::default()
        });
        let large = simulate_swarm(&SwarmConfig {
            n_peers: 100,
            ..SwarmConfig::default()
        });
        // 4x the peers must cost far less than 4x the time.
        assert!(
            large.makespan < small.makespan * 3.0,
            "{} vs {}",
            large.makespan,
            small.makespan
        );
    }

    #[test]
    fn deterministic() {
        let a = simulate_swarm(&SwarmConfig::default());
        let b = simulate_swarm(&SwarmConfig::default());
        assert_eq!(a.completion_times, b.completion_times);
        assert_eq!(a.seed_bytes, b.seed_bytes);
    }
}
