//! Small statistics helpers shared by the evaluation harness: empirical
//! CDFs, percentiles, and histogram binning (Figure 4 uses 0.05-wide bins).

use serde::{Deserialize, Serialize};

/// An empirical distribution over `f64` samples.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from samples (NaNs are rejected with a panic — they indicate a
    /// bug upstream, not a data property).
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "NaN sample passed to Ecdf"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ecdf { sorted: samples }
    }

    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x`.
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples `>= x`.
    pub fn fraction_at_least(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v < x);
        (self.sorted.len() - n) as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 <= q <= 1) by nearest-rank.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty Ecdf");
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() as f64 - 1.0) * q).round() as usize;
        self.sorted[idx]
    }

    /// Median, by nearest rank.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    pub fn min(&self) -> f64 {
        *self.sorted.first().expect("min of empty Ecdf")
    }

    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("max of empty Ecdf")
    }

    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Evenly spaced (value, cumulative-fraction) points for plotting.
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        let len = self.sorted.len();
        (0..n)
            .map(|i| {
                let idx = (i * (len - 1)) / n.max(1).saturating_sub(1).max(1);
                let idx = idx.min(len - 1);
                (self.sorted[idx], (idx + 1) as f64 / len as f64)
            })
            .collect()
    }

    /// Underlying sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

/// Histogram with fixed-width bins over `[lo, hi]`; values outside are
/// clamped into the edge bins. Used for Figure 4's 0.05-wide similarity
/// bins.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    width: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0 && hi > lo, "invalid histogram bounds");
        Histogram {
            lo,
            width: (hi - lo) / bins as f64,
            counts: vec![0; bins],
            total: 0,
        }
    }

    pub fn add(&mut self, value: f64) {
        let idx = ((value - self.lo) / self.width).floor();
        let idx = (idx.max(0.0) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    /// (bin lower edge, fraction of samples) rows.
    pub fn fractions(&self) -> Vec<(f64, f64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let frac = if self.total == 0 {
                    0.0
                } else {
                    c as f64 / self.total as f64
                };
                (self.lo + i as f64 * self.width, frac)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_fractions() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.fraction_at_most(2.0), 0.5);
        assert_eq!(e.fraction_at_most(0.5), 0.0);
        assert_eq!(e.fraction_at_most(10.0), 1.0);
        assert_eq!(e.fraction_at_least(3.0), 0.5);
        assert_eq!(e.fraction_at_least(1.0), 1.0);
    }

    #[test]
    fn ecdf_quantiles() {
        let e = Ecdf::new(vec![5.0, 1.0, 3.0]);
        assert_eq!(e.median(), 3.0);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 5.0);
        assert!((e.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ecdf_handles_duplicates() {
        let e = Ecdf::new(vec![2.0, 2.0, 2.0, 7.0]);
        assert_eq!(e.fraction_at_most(2.0), 0.75);
        assert_eq!(e.median(), 2.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn ecdf_rejects_nan() {
        let _ = Ecdf::new(vec![f64::NAN]);
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 20);
        h.add(0.0);
        h.add(0.04);
        h.add(0.96);
        h.add(1.0); // clamps into last bin
        h.add(2.0); // clamps into last bin
        let f = h.fractions();
        assert_eq!(f.len(), 20);
        assert!((f[0].1 - 0.4).abs() < 1e-12);
        assert!((f[19].1 - 0.6).abs() < 1e-12);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn ecdf_points_monotonic() {
        let e = Ecdf::new((0..100).map(|i| i as f64).collect());
        let pts = e.points(10);
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }
}
