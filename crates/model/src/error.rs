//! Error types shared across the workspace.

use std::fmt;

/// Errors produced by model-layer operations and surfaced through the
/// public APIs of the higher crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// An id referenced an entity that does not exist in the relevant table.
    UnknownEntity { kind: &'static str, id: u64 },
    /// An IP address did not match any known prefix.
    UnroutableAddress(String),
    /// A dataset failed to decode (corrupt bytes, bad magic, truncated...).
    Decode(String),
    /// A delta/patch did not apply cleanly (base-version mismatch etc.).
    PatchMismatch(String),
    /// A query could not be answered (e.g. no path found in the atlas).
    NoPath(String),
    /// Invalid configuration.
    Config(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownEntity { kind, id } => write!(f, "unknown {kind} id {id}"),
            ModelError::UnroutableAddress(ip) => write!(f, "unroutable address {ip}"),
            ModelError::Decode(msg) => write!(f, "decode error: {msg}"),
            ModelError::PatchMismatch(msg) => write!(f, "patch mismatch: {msg}"),
            ModelError::NoPath(msg) => write!(f, "no path: {msg}"),
            ModelError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ModelError::UnknownEntity {
            kind: "prefix",
            id: 9,
        };
        assert_eq!(e.to_string(), "unknown prefix id 9");
        assert!(ModelError::Decode("bad magic".into())
            .to_string()
            .contains("bad magic"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ModelError::NoPath("x".into()));
    }
}
