//! Error types shared across the workspace.

use std::fmt;

/// Errors produced by model-layer operations and surfaced through the
/// public APIs of the higher crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// An id referenced an entity that does not exist in the relevant table.
    UnknownEntity { kind: &'static str, id: u64 },
    /// An IP address did not match any known prefix.
    UnroutableAddress(String),
    /// A dataset failed to decode (corrupt bytes, bad magic, truncated...).
    Decode(String),
    /// A delta/patch did not apply cleanly (base-version mismatch etc.).
    PatchMismatch(String),
    /// A query could not be answered (e.g. no path found in the atlas).
    NoPath(String),
    /// Invalid configuration.
    Config(String),
    /// A request named an atlas shard the registry does not host.
    UnknownShard(u16),
    /// The atlas (or delta) a chunked fetch was reading changed or
    /// disappeared under it; the fetcher should re-read `head()` and
    /// restart at the new version.
    VersionRaced(String),
    /// A chunk fetch named an index beyond the body it was cut from.
    ChunkOutOfRange(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownEntity { kind, id } => write!(f, "unknown {kind} id {id}"),
            ModelError::UnroutableAddress(ip) => write!(f, "unroutable address {ip}"),
            ModelError::Decode(msg) => write!(f, "decode error: {msg}"),
            ModelError::PatchMismatch(msg) => write!(f, "patch mismatch: {msg}"),
            ModelError::NoPath(msg) => write!(f, "no path: {msg}"),
            ModelError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            ModelError::UnknownShard(id) => write!(f, "unknown shard {id}"),
            ModelError::VersionRaced(msg) => write!(f, "version raced: {msg}"),
            ModelError::ChunkOutOfRange(msg) => write!(f, "chunk out of range: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Stable numeric error codes for the wire protocol (`inano-net`).
///
/// Two ranges: `1..=15` mirror [`ModelError`] variants (a query that
/// fails inside the engine crosses the wire as one of these), `16..`
/// are transport-level faults the server raises itself (framing,
/// limits, admission). The numeric values are part of the protocol —
/// append, never renumber.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ErrorCode {
    /// [`ModelError::UnknownEntity`].
    UnknownEntity = 1,
    /// [`ModelError::UnroutableAddress`].
    UnroutableAddress = 2,
    /// [`ModelError::Decode`].
    Decode = 3,
    /// [`ModelError::PatchMismatch`].
    PatchMismatch = 4,
    /// [`ModelError::NoPath`].
    NoPath = 5,
    /// [`ModelError::Config`].
    Config = 6,
    /// [`ModelError::UnknownShard`]: the request named an atlas shard
    /// the serving registry does not host.
    UnknownShard = 7,
    /// [`ModelError::VersionRaced`]: the atlas/delta being fetched
    /// changed under the fetch; re-read the head and restart.
    VersionRaced = 8,
    /// [`ModelError::ChunkOutOfRange`]: a chunk index beyond the body.
    ChunkOutOfRange = 9,
    /// Frame header did not start with the protocol magic.
    BadMagic = 16,
    /// Frame header carried an unsupported protocol version.
    BadVersion = 17,
    /// Declared payload length exceeds the receiver's frame limit.
    FrameTooLarge = 18,
    /// A `QueryBatch` carried more pairs than the receiver allows.
    BatchTooLarge = 19,
    /// Frame type byte is not part of the protocol.
    UnknownFrame = 20,
    /// Payload failed to parse (truncated, trailing bytes, bad tag...).
    Malformed = 21,
    /// Admission gate: the server is at its connection limit.
    Overloaded = 22,
    /// The server is shutting down and no longer accepts requests.
    ShuttingDown = 23,
    /// A syntactically valid frame that makes no sense in this
    /// direction (e.g. a client sending a reply type).
    UnexpectedFrame = 24,
    /// A stream-only frame (chunk fetches and other multi-frame
    /// exchanges) arrived on the single-shot datagram transport.
    NotOnDatagram = 25,
}

impl ErrorCode {
    /// Every defined code, for exhaustive round-trip tests.
    pub const ALL: [ErrorCode; 19] = [
        ErrorCode::UnknownEntity,
        ErrorCode::UnroutableAddress,
        ErrorCode::Decode,
        ErrorCode::PatchMismatch,
        ErrorCode::NoPath,
        ErrorCode::Config,
        ErrorCode::UnknownShard,
        ErrorCode::VersionRaced,
        ErrorCode::ChunkOutOfRange,
        ErrorCode::BadMagic,
        ErrorCode::BadVersion,
        ErrorCode::FrameTooLarge,
        ErrorCode::BatchTooLarge,
        ErrorCode::UnknownFrame,
        ErrorCode::Malformed,
        ErrorCode::Overloaded,
        ErrorCode::ShuttingDown,
        ErrorCode::UnexpectedFrame,
        ErrorCode::NotOnDatagram,
    ];

    pub const fn as_u16(self) -> u16 {
        self as u16
    }

    pub fn from_u16(code: u16) -> Option<ErrorCode> {
        ErrorCode::ALL.into_iter().find(|c| c.as_u16() == code)
    }

    /// True for faults raised by the transport itself rather than
    /// carried over from a [`ModelError`].
    pub const fn is_transport(self) -> bool {
        self.as_u16() >= 16
    }
}

impl From<&ModelError> for ErrorCode {
    fn from(e: &ModelError) -> ErrorCode {
        match e {
            ModelError::UnknownEntity { .. } => ErrorCode::UnknownEntity,
            ModelError::UnroutableAddress(_) => ErrorCode::UnroutableAddress,
            ModelError::Decode(_) => ErrorCode::Decode,
            ModelError::PatchMismatch(_) => ErrorCode::PatchMismatch,
            ModelError::NoPath(_) => ErrorCode::NoPath,
            ModelError::Config(_) => ErrorCode::Config,
            ModelError::UnknownShard(_) => ErrorCode::UnknownShard,
            ModelError::VersionRaced(_) => ErrorCode::VersionRaced,
            ModelError::ChunkOutOfRange(_) => ErrorCode::ChunkOutOfRange,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::UnknownEntity => "unknown-entity",
            ErrorCode::UnroutableAddress => "unroutable-address",
            ErrorCode::Decode => "decode",
            ErrorCode::PatchMismatch => "patch-mismatch",
            ErrorCode::NoPath => "no-path",
            ErrorCode::Config => "config",
            ErrorCode::UnknownShard => "unknown-shard",
            ErrorCode::VersionRaced => "version-raced",
            ErrorCode::ChunkOutOfRange => "chunk-out-of-range",
            ErrorCode::BadMagic => "bad-magic",
            ErrorCode::BadVersion => "bad-version",
            ErrorCode::FrameTooLarge => "frame-too-large",
            ErrorCode::BatchTooLarge => "batch-too-large",
            ErrorCode::UnknownFrame => "unknown-frame",
            ErrorCode::Malformed => "malformed",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::UnexpectedFrame => "unexpected-frame",
            ErrorCode::NotOnDatagram => "not-on-datagram",
        };
        write!(f, "{name}({})", self.as_u16())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ModelError::UnknownEntity {
            kind: "prefix",
            id: 9,
        };
        assert_eq!(e.to_string(), "unknown prefix id 9");
        assert!(ModelError::Decode("bad magic".into())
            .to_string()
            .contains("bad magic"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ModelError::NoPath("x".into()));
    }

    #[test]
    fn error_codes_round_trip_and_stay_stable() {
        for code in ErrorCode::ALL {
            assert_eq!(ErrorCode::from_u16(code.as_u16()), Some(code));
        }
        assert_eq!(ErrorCode::from_u16(0), None);
        assert_eq!(ErrorCode::from_u16(9999), None);
        // Protocol constants: renumbering is a wire break.
        assert_eq!(ErrorCode::UnknownEntity.as_u16(), 1);
        assert_eq!(ErrorCode::Config.as_u16(), 6);
        assert_eq!(ErrorCode::UnknownShard.as_u16(), 7);
        assert_eq!(ErrorCode::VersionRaced.as_u16(), 8);
        assert_eq!(ErrorCode::ChunkOutOfRange.as_u16(), 9);
        assert_eq!(ErrorCode::BadMagic.as_u16(), 16);
        assert_eq!(ErrorCode::UnexpectedFrame.as_u16(), 24);
        assert_eq!(ErrorCode::NotOnDatagram.as_u16(), 25);
        assert!(ErrorCode::NotOnDatagram.is_transport());
    }

    #[test]
    fn unknown_shard_is_a_model_code() {
        let e = ModelError::UnknownShard(9);
        assert_eq!(e.to_string(), "unknown shard 9");
        assert_eq!(ErrorCode::from(&e), ErrorCode::UnknownShard);
        assert!(!ErrorCode::UnknownShard.is_transport());
    }

    #[test]
    fn dissemination_faults_are_model_codes() {
        let raced = ModelError::VersionRaced("tag moved".into());
        assert_eq!(ErrorCode::from(&raced), ErrorCode::VersionRaced);
        assert!(!ErrorCode::VersionRaced.is_transport());
        let oob = ModelError::ChunkOutOfRange("chunk 9 of 4".into());
        assert_eq!(ErrorCode::from(&oob), ErrorCode::ChunkOutOfRange);
        assert!(oob.to_string().contains("chunk 9 of 4"));
    }

    #[test]
    fn model_errors_map_onto_codes() {
        let e = ModelError::NoPath("x".into());
        assert_eq!(ErrorCode::from(&e), ErrorCode::NoPath);
        assert!(!ErrorCode::from(&e).is_transport());
        assert!(ErrorCode::Overloaded.is_transport());
        assert!(ErrorCode::NoPath.to_string().contains("no-path"));
    }
}
