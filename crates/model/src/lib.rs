//! # inano-model
//!
//! Shared vocabulary for the iPlane Nano reproduction: strongly-typed
//! identifiers, IPv4 prefixes and longest-prefix-match tries, AS
//! relationships, latency/loss metrics and their composition rules, path
//! types with the PoP-level similarity metric used in the paper's Figure 4,
//! and deterministic RNG plumbing.
//!
//! Every other crate in the workspace builds on these types, so they are
//! deliberately small, `Copy` where possible, and free of heavyweight
//! dependencies.

pub mod error;
pub mod ids;
pub mod ip;
pub mod metrics;
pub mod path;
pub mod rel;
pub mod rng;
pub mod stats;

pub use error::{ErrorCode, ModelError};
pub use ids::{Asn, ClusterId, HostId, IfaceId, PopId, PrefixId, RouterId};
pub use ip::{Ipv4, Prefix, PrefixTrie};
pub use metrics::{LatencyMs, LossRate};
pub use path::{path_similarity, AsPath, ClusterPath};
pub use rel::Relationship;
pub use rng::DeterministicRng;
