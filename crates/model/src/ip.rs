//! IPv4 addresses, CIDR prefixes, and a longest-prefix-match trie.
//!
//! The measurement pipeline maps traceroute hop addresses to prefixes and
//! ASes exactly the way iNano does ("data to map IP addresses to prefixes
//! and ASes", §5), so we need a real LPM structure rather than a hash map.

use crate::ids::PrefixId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An IPv4 address stored as a host-order `u32`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// Build from dotted-quad octets.
    pub const fn from_octets(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// Raw host-order value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A CIDR prefix: `addr/len`. The address is stored pre-masked so two
/// equal prefixes always compare equal.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix {
    addr: Ipv4,
    len: u8,
}

impl Prefix {
    /// Create a prefix; the address is masked down to `len` bits.
    pub fn new(addr: Ipv4, len: u8) -> Self {
        assert!(len <= 32, "prefix length must be <= 32");
        Prefix {
            addr: Ipv4(addr.0 & Self::mask(len)),
            len,
        }
    }

    /// The network mask for a given length.
    #[inline]
    pub const fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// Network address (already masked).
    pub const fn addr(self) -> Ipv4 {
        self.addr
    }

    /// Prefix length in bits.
    pub const fn len(self) -> u8 {
        self.len
    }

    /// True when this is the default route `0.0.0.0/0`.
    pub const fn is_empty(self) -> bool {
        self.len == 0
    }

    /// Does `ip` fall inside this prefix?
    #[inline]
    pub const fn contains(self, ip: Ipv4) -> bool {
        (ip.0 & Self::mask(self.len)) == self.addr.0
    }

    /// Number of host addresses covered.
    pub const fn size(self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// The `i`th address inside the prefix (wraps within the prefix).
    pub fn nth(self, i: u64) -> Ipv4 {
        Ipv4(self.addr.0.wrapping_add((i % self.size()) as u32))
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A binary trie for longest-prefix matching, mapping [`Prefix`]es to
/// [`PrefixId`]s. Nodes are kept in a flat arena for cache friendliness.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PrefixTrie {
    nodes: Vec<TrieNode>,
    entries: usize,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct TrieNode {
    children: [u32; 2],
    value: Option<PrefixId>,
}

const NO_CHILD: u32 = u32::MAX;

impl TrieNode {
    fn new() -> Self {
        TrieNode {
            children: [NO_CHILD, NO_CHILD],
            value: None,
        }
    }
}

impl PrefixTrie {
    /// An empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            nodes: vec![TrieNode::new()],
            entries: 0,
        }
    }

    /// Number of prefixes inserted (overwrites don't count twice).
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when no prefix has been inserted.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Insert or overwrite the value for `prefix`. Returns the previous
    /// value if the prefix was already present.
    pub fn insert(&mut self, prefix: Prefix, id: PrefixId) -> Option<PrefixId> {
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            let bit = ((prefix.addr().raw() >> (31 - depth)) & 1) as usize;
            let next = self.nodes[node].children[bit];
            node = if next == NO_CHILD {
                let idx = self.nodes.len();
                self.nodes.push(TrieNode::new());
                self.nodes[node].children[bit] = idx as u32;
                idx
            } else {
                next as usize
            };
        }
        let prev = self.nodes[node].value.replace(id);
        if prev.is_none() {
            self.entries += 1;
        }
        prev
    }

    /// Longest-prefix match: the most specific prefix containing `ip`.
    pub fn lookup(&self, ip: Ipv4) -> Option<PrefixId> {
        let mut node = 0usize;
        let mut best = self.nodes[0].value;
        for depth in 0..32 {
            let bit = ((ip.raw() >> (31 - depth)) & 1) as usize;
            let next = self.nodes[node].children[bit];
            if next == NO_CHILD {
                break;
            }
            node = next as usize;
            if let Some(v) = self.nodes[node].value {
                best = Some(v);
            }
        }
        best
    }

    /// Exact-match lookup for a specific prefix.
    pub fn get(&self, prefix: Prefix) -> Option<PrefixId> {
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            let bit = ((prefix.addr().raw() >> (31 - depth)) & 1) as usize;
            let next = self.nodes[node].children[bit];
            if next == NO_CHILD {
                return None;
            }
            node = next as usize;
        }
        self.nodes[node].value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octet_roundtrip() {
        let ip = Ipv4::from_octets(10, 1, 2, 3);
        assert_eq!(ip.octets(), [10, 1, 2, 3]);
        assert_eq!(ip.to_string(), "10.1.2.3");
    }

    #[test]
    fn prefix_masks_address() {
        let p = Prefix::new(Ipv4::from_octets(10, 1, 2, 3), 16);
        assert_eq!(p.addr(), Ipv4::from_octets(10, 1, 0, 0));
        assert_eq!(p.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn prefix_contains() {
        let p = Prefix::new(Ipv4::from_octets(192, 168, 0, 0), 24);
        assert!(p.contains(Ipv4::from_octets(192, 168, 0, 255)));
        assert!(!p.contains(Ipv4::from_octets(192, 168, 1, 0)));
        let default = Prefix::new(Ipv4(0), 0);
        assert!(default.contains(Ipv4::from_octets(8, 8, 8, 8)));
    }

    #[test]
    fn prefix_nth_wraps() {
        let p = Prefix::new(Ipv4::from_octets(10, 0, 0, 0), 30);
        assert_eq!(p.size(), 4);
        assert_eq!(p.nth(0), Ipv4::from_octets(10, 0, 0, 0));
        assert_eq!(p.nth(5), Ipv4::from_octets(10, 0, 0, 1));
    }

    #[test]
    fn trie_longest_prefix_wins() {
        let mut t = PrefixTrie::new();
        t.insert(
            Prefix::new(Ipv4::from_octets(10, 0, 0, 0), 8),
            PrefixId::new(1),
        );
        t.insert(
            Prefix::new(Ipv4::from_octets(10, 1, 0, 0), 16),
            PrefixId::new(2),
        );
        t.insert(
            Prefix::new(Ipv4::from_octets(10, 1, 2, 0), 24),
            PrefixId::new(3),
        );
        assert_eq!(
            t.lookup(Ipv4::from_octets(10, 1, 2, 3)),
            Some(PrefixId::new(3))
        );
        assert_eq!(
            t.lookup(Ipv4::from_octets(10, 1, 9, 9)),
            Some(PrefixId::new(2))
        );
        assert_eq!(
            t.lookup(Ipv4::from_octets(10, 9, 9, 9)),
            Some(PrefixId::new(1))
        );
        assert_eq!(t.lookup(Ipv4::from_octets(11, 0, 0, 1)), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn trie_overwrite_returns_previous() {
        let mut t = PrefixTrie::new();
        let p = Prefix::new(Ipv4::from_octets(172, 16, 0, 0), 12);
        assert_eq!(t.insert(p, PrefixId::new(1)), None);
        assert_eq!(t.insert(p, PrefixId::new(2)), Some(PrefixId::new(1)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p), Some(PrefixId::new(2)));
    }

    #[test]
    fn trie_exact_get_misses_on_absent() {
        let mut t = PrefixTrie::new();
        t.insert(
            Prefix::new(Ipv4::from_octets(10, 0, 0, 0), 8),
            PrefixId::new(1),
        );
        assert_eq!(t.get(Prefix::new(Ipv4::from_octets(10, 0, 0, 0), 16)), None);
    }

    #[test]
    fn trie_default_route() {
        let mut t = PrefixTrie::new();
        t.insert(Prefix::new(Ipv4(0), 0), PrefixId::new(0));
        assert_eq!(
            t.lookup(Ipv4::from_octets(1, 2, 3, 4)),
            Some(PrefixId::new(0))
        );
    }
}
