//! Strongly-typed identifiers for every entity in the simulated Internet.
//!
//! Using newtypes instead of bare `u32`s prevents an entire class of bugs
//! (indexing the PoP table with a prefix id, say) at zero runtime cost. All
//! ids are dense indexes assigned by the topology generator, so they can be
//! used directly as `Vec` indexes via [`Asn::index`] and friends.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a dense index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw value, for encoding.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// The id as a `usize` index into dense tables.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a `usize` index (panics on overflow).
            #[inline]
            pub fn from_index(idx: usize) -> Self {
                Self(u32::try_from(idx).expect("id overflow"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }
    };
}

define_id!(
    /// An Autonomous System number.
    Asn,
    "AS"
);
define_id!(
    /// A Point-of-Presence: the set of routers of one AS in one location.
    PopId,
    "pop"
);
define_id!(
    /// A cluster of interfaces inferred to be the same PoP. In the ground
    /// truth topology clusters coincide with PoPs; the measurement pipeline
    /// re-derives them (possibly imperfectly) from alias resolution.
    ClusterId,
    "cl"
);
define_id!(
    /// A routable BGP prefix.
    PrefixId,
    "pfx"
);
define_id!(
    /// An end-host (client machine) attached to some prefix.
    HostId,
    "host"
);
define_id!(
    /// A router inside a PoP.
    RouterId,
    "r"
);
define_id!(
    /// A router interface; owns exactly one IP address.
    IfaceId,
    "if"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_raw() {
        let a = Asn::new(42);
        assert_eq!(a.raw(), 42);
        assert_eq!(a.index(), 42);
        assert_eq!(Asn::from_index(42), a);
        assert_eq!(Asn::from(42u32), a);
    }

    #[test]
    fn display_includes_tag() {
        assert_eq!(Asn::new(7).to_string(), "AS7");
        assert_eq!(PopId::new(3).to_string(), "pop3");
        assert_eq!(ClusterId::new(9).to_string(), "cl9");
        assert_eq!(format!("{:?}", PrefixId::new(1)), "pfx1");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(HostId::new(2) < HostId::new(10));
        let mut v = vec![RouterId::new(5), RouterId::new(1), RouterId::new(3)];
        v.sort();
        assert_eq!(
            v,
            vec![RouterId::new(1), RouterId::new(3), RouterId::new(5)]
        );
    }

    #[test]
    #[should_panic(expected = "id overflow")]
    fn from_index_overflow_panics() {
        let _ = IfaceId::from_index(usize::MAX);
    }
}
