//! Path performance metrics: latency and loss rate, with the composition
//! rules iNano uses to turn per-link annotations into end-to-end estimates
//! (§3: "composes the properties of the inter-cluster links on the
//! predicted paths").

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// One-way latency (or RTT, by context) in milliseconds.
///
/// Latencies compose additively along a path. Stored as `f64`; the atlas
/// codec quantises to 0.1 ms when serialising.
#[derive(Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
pub struct LatencyMs(pub f64);

impl LatencyMs {
    pub const ZERO: LatencyMs = LatencyMs(0.0);

    pub fn new(ms: f64) -> Self {
        debug_assert!(
            ms.is_finite() && ms >= 0.0,
            "latency must be finite and >= 0"
        );
        LatencyMs(ms)
    }

    pub fn ms(self) -> f64 {
        self.0
    }

    /// Absolute difference, used for estimation-error CDFs.
    pub fn abs_diff(self, other: LatencyMs) -> LatencyMs {
        LatencyMs((self.0 - other.0).abs())
    }
}

impl Add for LatencyMs {
    type Output = LatencyMs;
    fn add(self, rhs: LatencyMs) -> LatencyMs {
        LatencyMs(self.0 + rhs.0)
    }
}

impl AddAssign for LatencyMs {
    fn add_assign(&mut self, rhs: LatencyMs) {
        self.0 += rhs.0;
    }
}

impl Sum for LatencyMs {
    fn sum<I: Iterator<Item = LatencyMs>>(iter: I) -> LatencyMs {
        LatencyMs(iter.map(|l| l.0).sum())
    }
}

impl fmt::Debug for LatencyMs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}ms", self.0)
    }
}

impl fmt::Display for LatencyMs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A loss rate in `[0, 1]`.
///
/// Loss rates compose multiplicatively: the probability a packet survives a
/// path is the product of the per-link survival probabilities, assuming
/// independent losses (the same assumption iNano makes).
#[derive(Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
pub struct LossRate(pub f64);

impl LossRate {
    pub const ZERO: LossRate = LossRate(0.0);

    /// Create a loss rate, clamping into `[0, 1]`.
    pub fn new(p: f64) -> Self {
        debug_assert!(p.is_finite(), "loss rate must be finite");
        LossRate(p.clamp(0.0, 1.0))
    }

    pub fn rate(self) -> f64 {
        self.0
    }

    /// Probability a packet survives this hop/path.
    pub fn survival(self) -> f64 {
        1.0 - self.0
    }

    /// Compose two loss rates in series: `1 - (1-a)(1-b)`.
    #[must_use]
    pub fn compose(self, other: LossRate) -> LossRate {
        LossRate(1.0 - self.survival() * other.survival())
    }

    /// Compose a whole sequence of per-link loss rates.
    pub fn compose_all<I: IntoIterator<Item = LossRate>>(iter: I) -> LossRate {
        let survival: f64 = iter.into_iter().map(|l| l.survival()).product();
        LossRate(1.0 - survival)
    }

    /// Absolute difference, used for estimation-error CDFs.
    pub fn abs_diff(self, other: LossRate) -> f64 {
        (self.0 - other.0).abs()
    }

    /// True when any loss at all is present (with a small epsilon so that
    /// binomially-estimated zero-loss paths compare clean).
    pub fn is_lossy(self) -> bool {
        self.0 > 1e-9
    }
}

impl fmt::Debug for LossRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}%", self.0 * 100.0)
    }
}

impl fmt::Display for LossRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Mean Opinion Score for a VoIP call, from the ITU-T E-model simplification
/// used in the relay-selection literature (the paper cites the MOS metric
/// [5] as the quantity a Skype-like system optimises).
///
/// `rtt` is the round-trip time and `loss` the end-to-end loss rate. The
/// returned score lies in roughly `[1, 4.5]`, higher is better.
pub fn mean_opinion_score(rtt: LatencyMs, loss: LossRate) -> f64 {
    // One-way delay including typical jitter-buffer and codec delay.
    let d = rtt.ms() / 2.0 + 25.0;
    // Delay impairment.
    let id = 0.024 * d + if d > 177.3 { 0.11 * (d - 177.3) } else { 0.0 };
    // Equipment (loss) impairment for a G.729-like codec.
    let ie = 11.0 + 40.0 * (1.0 + 10.0 * loss.rate()).ln();
    let r = (94.2 - id - ie).clamp(0.0, 100.0);
    1.0 + 0.035 * r + 7.0e-6 * r * (r - 60.0) * (100.0 - r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_adds() {
        let total: LatencyMs = [LatencyMs::new(1.5), LatencyMs::new(2.5)].into_iter().sum();
        assert!((total.ms() - 4.0).abs() < 1e-12);
        assert_eq!(LatencyMs::new(3.0).abs_diff(LatencyMs::new(5.0)).ms(), 2.0);
    }

    #[test]
    fn loss_composes_multiplicatively() {
        let a = LossRate::new(0.1);
        let b = LossRate::new(0.2);
        let c = a.compose(b);
        assert!((c.rate() - 0.28).abs() < 1e-12);
        // Composition order must not matter.
        assert!((b.compose(a).rate() - c.rate()).abs() < 1e-12);
    }

    #[test]
    fn loss_compose_all_matches_pairwise() {
        let rates = [0.01, 0.05, 0.0, 0.2].map(LossRate::new);
        let all = LossRate::compose_all(rates);
        let pairwise = rates.iter().fold(LossRate::ZERO, |acc, &l| acc.compose(l));
        assert!((all.rate() - pairwise.rate()).abs() < 1e-12);
    }

    #[test]
    fn loss_clamps() {
        assert_eq!(LossRate::new(1.5).rate(), 1.0);
        assert_eq!(LossRate::new(-0.5).rate(), 0.0);
    }

    #[test]
    fn zero_loss_is_identity() {
        let l = LossRate::new(0.37);
        assert!((l.compose(LossRate::ZERO).rate() - l.rate()).abs() < 1e-12);
        assert!(!LossRate::ZERO.is_lossy());
        assert!(l.is_lossy());
    }

    #[test]
    fn mos_prefers_better_paths() {
        let good = mean_opinion_score(LatencyMs::new(40.0), LossRate::new(0.0));
        let mid = mean_opinion_score(LatencyMs::new(40.0), LossRate::new(0.05));
        let bad = mean_opinion_score(LatencyMs::new(400.0), LossRate::new(0.2));
        assert!(good > mid, "loss must hurt MOS: {good} vs {mid}");
        assert!(mid > bad, "delay+loss must hurt MOS more: {mid} vs {bad}");
        assert!(good <= 4.6 && bad >= 0.9, "MOS range sanity: {good} {bad}");
    }
}
