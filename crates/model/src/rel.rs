//! Business relationships between adjacent ASes.
//!
//! The textbook Gao model (paper §4.1): an AS prefers routes through its
//! customers over peers over providers, and only exports customer routes to
//! everyone; peer/provider routes go to customers only. These rules make
//! routes *valley-free*.

use serde::{Deserialize, Serialize};

/// The relationship of an AS `a` to a specific neighbor `b`, from `a`'s
/// point of view.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Relationship {
    /// `b` is a customer of `a` (`a` gets paid to carry `b`'s traffic).
    Customer,
    /// `b` is a peer of `a` (settlement-free interconnect).
    Peer,
    /// `b` is a provider of `a` (`a` pays `b`).
    Provider,
    /// `a` and `b` are siblings (same organisation, e.g. AS6380/AS6389 in
    /// the paper); they exchange all routes freely.
    Sibling,
}

impl Relationship {
    /// The relationship as seen from the other side of the link.
    #[must_use]
    pub fn reverse(self) -> Relationship {
        match self {
            Relationship::Customer => Relationship::Provider,
            Relationship::Provider => Relationship::Customer,
            Relationship::Peer => Relationship::Peer,
            Relationship::Sibling => Relationship::Sibling,
        }
    }

    /// Default local-preference class: lower is more preferred
    /// (customer < sibling < peer < provider). Sibling routes are treated
    /// like slightly-worse-than-customer routes, reflecting that siblings
    /// exchange routes freely but transit via a sibling still uses
    /// someone's backbone.
    pub fn pref_class(self) -> u8 {
        match self {
            Relationship::Customer => 0,
            Relationship::Sibling => 1,
            Relationship::Peer => 2,
            Relationship::Provider => 3,
        }
    }

    /// Gao export rule: may a route *learned from* a neighbor with
    /// relationship `learned_from` be exported to a neighbor with
    /// relationship `export_to`?
    ///
    /// Customer routes (and the AS's own routes, which callers encode as
    /// `Customer`) go to everyone; peer and provider routes only to
    /// customers. Siblings receive and forward everything.
    pub fn may_export(learned_from: Relationship, export_to: Relationship) -> bool {
        if export_to == Relationship::Sibling || learned_from == Relationship::Sibling {
            return true;
        }
        match learned_from {
            Relationship::Customer => true,
            Relationship::Peer | Relationship::Provider => export_to == Relationship::Customer,
            Relationship::Sibling => true,
        }
    }
}

/// Is the sequence of relationships along a path valley-free?
///
/// `rels[i]` is the relationship of AS `i` to AS `i+1` *from i's point of
/// view* (so `Customer` means the path goes "down" to a customer). A
/// valley-free path goes up (via providers) zero or more times, crosses at
/// most one peer link, then goes down (via customers); siblings are
/// transparent.
pub fn is_valley_free(rels: &[Relationship]) -> bool {
    #[derive(PartialEq, PartialOrd)]
    enum Stage {
        Up,
        Peered,
        Down,
    }
    let mut stage = Stage::Up;
    for &r in rels {
        match r {
            Relationship::Sibling => {}
            Relationship::Provider => {
                // Going up: only allowed while still in the Up stage.
                if stage > Stage::Up {
                    return false;
                }
            }
            Relationship::Peer => {
                if stage > Stage::Up {
                    return false;
                }
                stage = Stage::Peered;
            }
            Relationship::Customer => {
                stage = Stage::Down;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use Relationship::*;

    #[test]
    fn reverse_is_involution() {
        for r in [Customer, Peer, Provider, Sibling] {
            assert_eq!(r.reverse().reverse(), r);
        }
        assert_eq!(Customer.reverse(), Provider);
        assert_eq!(Peer.reverse(), Peer);
    }

    #[test]
    fn pref_order_matches_paper() {
        assert!(Customer.pref_class() < Peer.pref_class());
        assert!(Peer.pref_class() < Provider.pref_class());
    }

    #[test]
    fn export_rules() {
        // Customer routes are exported to everyone.
        for to in [Customer, Peer, Provider] {
            assert!(Relationship::may_export(Customer, to));
        }
        // Peer/provider routes only to customers.
        assert!(Relationship::may_export(Peer, Customer));
        assert!(!Relationship::may_export(Peer, Peer));
        assert!(!Relationship::may_export(Peer, Provider));
        assert!(Relationship::may_export(Provider, Customer));
        assert!(!Relationship::may_export(Provider, Peer));
        assert!(!Relationship::may_export(Provider, Provider));
        // Siblings see everything.
        assert!(Relationship::may_export(Provider, Sibling));
        assert!(Relationship::may_export(Sibling, Provider));
    }

    #[test]
    fn valley_free_accepts_up_peer_down() {
        // up, up, peer, down, down
        assert!(is_valley_free(&[
            Provider, Provider, Peer, Customer, Customer
        ]));
        // pure down
        assert!(is_valley_free(&[Customer, Customer]));
        // pure up
        assert!(is_valley_free(&[Provider]));
        // sibling is transparent anywhere
        assert!(is_valley_free(&[
            Provider, Sibling, Peer, Sibling, Customer
        ]));
        assert!(is_valley_free(&[]));
    }

    #[test]
    fn valley_free_rejects_valleys() {
        // down then up: classic valley
        assert!(!is_valley_free(&[Customer, Provider]));
        // two peer crossings
        assert!(!is_valley_free(&[Peer, Peer]));
        // peer then up
        assert!(!is_valley_free(&[Peer, Provider]));
        // down, peer
        assert!(!is_valley_free(&[Customer, Peer]));
    }
}
