//! AS-level and cluster(PoP)-level path types, and the path-similarity
//! metric from the paper's stationarity study (Figure 4).

use crate::ids::{Asn, ClusterId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// An AS-level path, source first. Consecutive duplicates (AS prepending)
/// are collapsed on construction, matching the paper's "discounting
/// prepending".
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct AsPath(Vec<Asn>);

impl AsPath {
    /// Build from a hop sequence, collapsing consecutive duplicates.
    pub fn new<I: IntoIterator<Item = Asn>>(hops: I) -> Self {
        let mut v: Vec<Asn> = Vec::new();
        for h in hops {
            if v.last() != Some(&h) {
                v.push(h);
            }
        }
        AsPath(v)
    }

    pub fn as_slice(&self) -> &[Asn] {
        &self.0
    }

    /// Number of ASes on the path.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn first(&self) -> Option<Asn> {
        self.0.first().copied()
    }

    pub fn last(&self) -> Option<Asn> {
        self.0.last().copied()
    }

    /// Does the path visit the same AS twice (an AS-level loop)? Validation
    /// traceroutes with loops are discarded in §6.3.
    pub fn has_loop(&self) -> bool {
        let mut seen = HashSet::with_capacity(self.0.len());
        self.0.iter().any(|a| !seen.insert(*a))
    }

    /// All consecutive AS triples on the path, for the 3-tuple dataset.
    pub fn triples(&self) -> impl Iterator<Item = (Asn, Asn, Asn)> + '_ {
        self.0.windows(3).map(|w| (w[0], w[1], w[2]))
    }

    pub fn iter(&self) -> impl Iterator<Item = Asn> + '_ {
        self.0.iter().copied()
    }
}

impl fmt::Debug for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", a.raw())?;
        }
        write!(f, "]")
    }
}

impl FromIterator<Asn> for AsPath {
    fn from_iter<I: IntoIterator<Item = Asn>>(iter: I) -> Self {
        AsPath::new(iter)
    }
}

/// A cluster (PoP)-level path, source first.
#[derive(Clone, PartialEq, Eq, Hash, Default, Debug, Serialize, Deserialize)]
pub struct ClusterPath(pub Vec<ClusterId>);

impl ClusterPath {
    pub fn new(hops: Vec<ClusterId>) -> Self {
        ClusterPath(hops)
    }

    pub fn as_slice(&self) -> &[ClusterId] {
        &self.0
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The directed cluster-level links traversed.
    pub fn links(&self) -> impl Iterator<Item = (ClusterId, ClusterId)> + '_ {
        self.0.windows(2).map(|w| (w[0], w[1]))
    }

    /// The set of distinct clusters visited.
    pub fn cluster_set(&self) -> HashSet<ClusterId> {
        self.0.iter().copied().collect()
    }
}

/// The path-similarity metric of Figure 4 ([22, 29]): the ratio of the size
/// of the intersection to the size of the union of the *sets* of clusters on
/// each path; ordering is ignored. Two identical paths score 1.0, disjoint
/// paths 0.0. Two empty paths are defined as identical (1.0).
pub fn path_similarity(a: &ClusterPath, b: &ClusterPath) -> f64 {
    let sa = a.cluster_set();
    let sb = b.cluster_set();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f64 / union as f64
}

/// Number of elements shared between two paths' cluster sets — used by the
/// detour-disjointness ranking (§7.3).
pub fn shared_clusters(a: &ClusterPath, b: &ClusterPath) -> usize {
    let sa = a.cluster_set();
    b.cluster_set().intersection(&sa).count()
}

/// Number of shared ASes between two AS paths (set semantics).
pub fn shared_ases(a: &AsPath, b: &AsPath) -> usize {
    let sa: HashSet<Asn> = a.iter().collect();
    b.iter().collect::<HashSet<_>>().intersection(&sa).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asp(v: &[u32]) -> AsPath {
        AsPath::new(v.iter().map(|&x| Asn::new(x)))
    }

    fn cp(v: &[u32]) -> ClusterPath {
        ClusterPath::new(v.iter().map(|&x| ClusterId::new(x)).collect())
    }

    #[test]
    fn as_path_collapses_prepending() {
        let p = asp(&[1, 1, 2, 2, 2, 3]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.as_slice(), &[Asn::new(1), Asn::new(2), Asn::new(3)]);
    }

    #[test]
    fn as_path_loop_detection() {
        assert!(!asp(&[1, 2, 3]).has_loop());
        assert!(asp(&[1, 2, 1]).has_loop());
        // Prepending is not a loop.
        assert!(!asp(&[1, 1, 2]).has_loop());
    }

    #[test]
    fn as_path_triples() {
        let p = asp(&[1, 2, 3, 4]);
        let t: Vec<_> = p.triples().collect();
        assert_eq!(
            t,
            vec![
                (Asn::new(1), Asn::new(2), Asn::new(3)),
                (Asn::new(2), Asn::new(3), Asn::new(4)),
            ]
        );
        assert_eq!(asp(&[1, 2]).triples().count(), 0);
    }

    #[test]
    fn similarity_identical_is_one() {
        let p = cp(&[1, 2, 3]);
        assert_eq!(path_similarity(&p, &p), 1.0);
        // Ordering does not matter.
        assert_eq!(path_similarity(&cp(&[3, 2, 1]), &p), 1.0);
    }

    #[test]
    fn similarity_disjoint_is_zero() {
        assert_eq!(path_similarity(&cp(&[1, 2]), &cp(&[3, 4])), 0.0);
    }

    #[test]
    fn similarity_partial() {
        // {1,2,3} vs {2,3,4}: intersection 2, union 4.
        let s = path_similarity(&cp(&[1, 2, 3]), &cp(&[2, 3, 4]));
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn similarity_empty_paths() {
        assert_eq!(path_similarity(&cp(&[]), &cp(&[])), 1.0);
        assert_eq!(path_similarity(&cp(&[]), &cp(&[1])), 0.0);
    }

    #[test]
    fn shared_counts() {
        assert_eq!(shared_clusters(&cp(&[1, 2, 3]), &cp(&[2, 3, 4])), 2);
        assert_eq!(shared_ases(&asp(&[1, 2, 3]), &asp(&[3, 9])), 1);
    }

    #[test]
    fn cluster_path_links() {
        let p = cp(&[5, 6, 7]);
        let links: Vec<_> = p.links().collect();
        assert_eq!(
            links,
            vec![
                (ClusterId::new(5), ClusterId::new(6)),
                (ClusterId::new(6), ClusterId::new(7)),
            ]
        );
    }
}
