//! Deterministic RNG plumbing.
//!
//! Every stochastic component in the workspace (topology generation,
//! measurement noise, churn, experiment sampling) draws from a
//! [`DeterministicRng`] derived from an explicit `u64` seed plus a string
//! salt, so that experiments are exactly reproducible and independent
//! subsystems don't perturb each other's random streams when code changes.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The workspace-wide RNG type: ChaCha8 is fast, high quality, and --
/// unlike `SmallRng` -- stable across platforms and `rand` versions.
pub type DeterministicRng = ChaCha8Rng;

/// Derive an independent RNG from a root seed and a purpose salt.
///
/// Uses an FNV-1a fold of the salt into the seed; the point is stream
/// separation, not cryptography.
pub fn rng_for(seed: u64, salt: &str) -> DeterministicRng {
    ChaCha8Rng::seed_from_u64(mix(seed, salt))
}

/// Derive a sub-seed (for components that want to own their seed).
pub fn seed_for(seed: u64, salt: &str) -> u64 {
    mix(seed, salt)
}

fn mix(seed: u64, salt: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for b in salt.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Final avalanche (splitmix64 finaliser).
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_for(42, "topology");
        let mut b = rng_for(42, "topology");
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_salt_different_stream() {
        let mut a = rng_for(42, "topology");
        let mut b = rng_for(42, "measurement");
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = rng_for(1, "x");
        let mut b = rng_for(2, "x");
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn seed_for_is_stable() {
        // Pin the derivation so atlas snapshots stay reproducible across
        // refactors; update deliberately if `mix` ever changes.
        assert_eq!(seed_for(0, ""), seed_for(0, ""));
        assert_ne!(seed_for(0, "a"), seed_for(0, "b"));
    }
}
