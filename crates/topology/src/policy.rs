//! Ground-truth routing policies beyond the textbook model.
//!
//! These are the §4.3 "sources of prediction error" — the behaviours that
//! make `GRAPH` mispredict on the real Internet and that iNano's
//! refinements (3-tuples, preferences, provider sets) recover from
//! observations:
//!
//! * **local-pref overrides** — an AS ranks a specific neighbor out of its
//!   relationship class (e.g. prefers a peer over a customer);
//! * **selective export filters** — an AS declines to export routes
//!   learned from neighbor A to neighbor C even where the Gao rule allows;
//! * **traffic engineering** — a multi-homed AS announces its own prefixes
//!   to only a subset of its providers (possibly per-prefix), so its
//!   *providers* set (as destination) is a proper subset of its *upstream
//!   neighbours* (as transit);
//! * **late exit** — pairs of ASes (always siblings) that carry traffic on
//!   their own backbone as far as possible;
//! * **stable tie-break rankings** — most ASes break ties among
//!   equal-preference, equal-length routes with a fixed neighbor ranking
//!   (learnable as "AS preferences"), while *load-balancer* ASes waver
//!   per-destination (unlearnable, and filtered out by iNano's 3×
//!   dominance rule).

use crate::config::TopologyConfig;
use crate::internet::{AsInfo, PrefixInfo, Tier};
use inano_model::rng::DeterministicRng;
use inano_model::{Asn, PrefixId, Relationship};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// The full ground-truth policy state of the generated Internet.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PolicySet {
    /// (as, neighbor) → overridden preference class (lower = preferred).
    pub localpref_override: HashMap<(Asn, Asn), u8>,
    /// (learned_from, via, export_to): `via` filters these routes.
    pub export_deny: HashSet<(Asn, Asn, Asn)>,
    /// AS → providers that hear its own-prefix announcements (absent ⇒ all).
    pub te_providers: HashMap<Asn, Vec<Asn>>,
    /// Per-prefix refinement of `te_providers`.
    pub te_prefix_providers: HashMap<PrefixId, Vec<Asn>>,
    /// Ordered pairs (a, b): traffic a→b uses late exit inside `a`.
    pub late_exit: HashSet<(Asn, Asn)>,
    /// ASes whose tie-break is destination-dependent.
    pub load_balancers: HashSet<Asn>,
    /// Stable per-AS neighbor ranking for tie-breaks (lower = preferred).
    pub neighbor_rank: HashMap<Asn, HashMap<Asn, u32>>,
}

impl PolicySet {
    /// Effective preference class of `asn` for routes via `neighbor`.
    pub fn pref_class(&self, asn: Asn, neighbor: Asn, rel: Relationship) -> u8 {
        self.localpref_override
            .get(&(asn, neighbor))
            .copied()
            .unwrap_or_else(|| rel.pref_class())
    }

    /// May `via` export a route learned from `from` to `to`? Combines the
    /// Gao rule with the selective filters.
    pub fn may_export(
        &self,
        from: Asn,
        via: Asn,
        to: Asn,
        rel_to_from: Relationship,
        rel_to_to: Relationship,
    ) -> bool {
        Relationship::may_export(rel_to_from, rel_to_to)
            && !self.export_deny.contains(&(from, via, to))
    }

    /// Does origin AS `origin` announce `prefix` to provider `prov`?
    pub fn announces_to_provider(&self, origin: Asn, prefix: PrefixId, prov: Asn) -> bool {
        if let Some(set) = self.te_prefix_providers.get(&prefix) {
            return set.contains(&prov);
        }
        if let Some(set) = self.te_providers.get(&origin) {
            return set.contains(&prov);
        }
        true
    }

    /// Tie-break rank of `neighbor` at `asn` for destination key `dest`.
    /// Lower ranks win. Load balancers hash the destination in; everyone
    /// else uses their stable ranking (with `day_salt` allowing churn to
    /// reshuffle a given AS's ranking on some days).
    pub fn tie_rank(&self, asn: Asn, neighbor: Asn, dest: u64, day_salt: u64) -> u64 {
        let base = self
            .neighbor_rank
            .get(&asn)
            .and_then(|m| m.get(&neighbor))
            .copied()
            .unwrap_or(u32::MAX) as u64;
        if self.load_balancers.contains(&asn) {
            // Wavering: depends on the destination.
            splitmix(asn.raw() as u64 ^ neighbor.raw() as u64 ^ dest.wrapping_mul(0x9e37))
        } else if day_salt != 0 {
            splitmix(base ^ day_salt ^ (asn.raw() as u64) << 32 ^ neighbor.raw() as u64)
        } else {
            base
        }
    }

    /// True when traffic from `a` into `b` uses late exit.
    pub fn uses_late_exit(&self, a: Asn, b: Asn) -> bool {
        self.late_exit.contains(&(a, b))
    }
}

fn splitmix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Generate the policy set for a finished AS graph + prefix table.
pub fn generate_policies(
    cfg: &TopologyConfig,
    ases: &[AsInfo],
    prefixes: &[PrefixInfo],
    rng: &mut DeterministicRng,
) -> PolicySet {
    let mut ps = PolicySet::default();

    // --- stable neighbor rankings (every AS) ---
    for a in ases {
        let mut order: Vec<Asn> = a.neighbors.iter().map(|(n, _)| *n).collect();
        order.shuffle(rng);
        let ranks: HashMap<Asn, u32> = order
            .into_iter()
            .enumerate()
            .map(|(i, n)| (n, i as u32))
            .collect();
        ps.neighbor_rank.insert(a.asn, ranks);
    }

    // --- load balancers (mostly transit ASes) ---
    for a in ases {
        let p = match a.tier {
            Tier::Stub => cfg.p_load_balancer * 0.3,
            _ => cfg.p_load_balancer,
        };
        if rng.gen_bool(p) {
            ps.load_balancers.insert(a.asn);
        }
    }

    // --- local-pref overrides ---
    for a in ases {
        for &(n, rel) in &a.neighbors {
            if rel == Relationship::Sibling || !rng.gen_bool(cfg.p_localpref_override) {
                continue;
            }
            let new_class = match rel {
                // Promote a peer or provider above customers, or demote a
                // customer below peers: both happen in practice.
                Relationship::Peer => *[0u8, 3].choose(rng).unwrap(),
                Relationship::Provider => *[0u8, 2].choose(rng).unwrap(),
                Relationship::Customer => *[2u8, 3].choose(rng).unwrap(),
                Relationship::Sibling => continue,
            };
            ps.localpref_override.insert((a.asn, n), new_class);
        }
    }

    // --- selective export filters ---
    // For each transit AS `via` and each learned-from neighbor, deny export
    // to some of the otherwise-allowed *peer/provider* neighbors (selective
    // announcement of customer routes upward — backup-only links, selective
    // peering). Exports toward customers are never filtered and at least
    // one provider export always survives, so reachability is preserved:
    // every route still climbs to the tier-1 clique (where nothing is
    // filtered) and descends to every customer cone.
    for via in ases {
        if via.tier == Tier::Stub {
            continue;
        }
        for &(from, rel_from) in &via.neighbors {
            let candidates: Vec<(Asn, Relationship)> = via
                .neighbors
                .iter()
                .filter(|&&(to, rel_to)| {
                    to != from
                        && Relationship::may_export(rel_from, rel_to)
                        && matches!(rel_to, Relationship::Peer | Relationship::Provider)
                        // The tier-1 clique shares everything.
                        && !(via.tier == Tier::Tier1 && ases[to.index()].tier == Tier::Tier1)
                })
                .copied()
                .collect();
            if candidates.len() < 2 {
                continue;
            }
            let max_denials = candidates.len() / 2;
            let mut providers_left = candidates
                .iter()
                .filter(|(_, r)| *r == Relationship::Provider)
                .count();
            let mut denied = 0;
            for &(to, rel_to) in &candidates {
                if denied >= max_denials {
                    break;
                }
                if rel_to == Relationship::Provider && providers_left <= 1 {
                    continue; // keep the last upward export alive
                }
                if rng.gen_bool(cfg.p_export_filter) {
                    ps.export_deny.insert((from, via.asn, to));
                    denied += 1;
                    if rel_to == Relationship::Provider {
                        providers_left -= 1;
                    }
                }
            }
        }
    }

    // --- traffic engineering ---
    for a in ases {
        let providers: Vec<Asn> = a.providers().collect();
        if providers.len() < 2 || !rng.gen_bool(cfg.p_traffic_engineering) {
            continue;
        }
        if rng.gen_bool(cfg.p_te_per_prefix) {
            // Per-prefix: each edge prefix announced to its own subset.
            for &pid in &a.prefixes {
                if prefixes[pid.index()].is_infrastructure {
                    continue;
                }
                let subset = random_proper_subset(&providers, rng);
                ps.te_prefix_providers.insert(pid, subset);
            }
        } else {
            let subset = random_proper_subset(&providers, rng);
            ps.te_providers.insert(a.asn, subset);
        }
    }

    // --- late exit ---
    for a in ases {
        for &(n, rel) in &a.neighbors {
            if rel == Relationship::Sibling {
                ps.late_exit.insert((a.asn, n));
            } else if a.asn < n && rng.gen_bool(cfg.p_late_exit) {
                ps.late_exit.insert((a.asn, n));
                if rng.gen_bool(0.5) {
                    ps.late_exit.insert((n, a.asn));
                }
            }
        }
    }

    ps
}

/// A uniformly random non-empty *proper* subset of `items` (len >= 2).
fn random_proper_subset(items: &[Asn], rng: &mut DeterministicRng) -> Vec<Asn> {
    debug_assert!(items.len() >= 2);
    let k = rng.gen_range(1..items.len());
    let mut v = items.to_vec();
    v.shuffle(rng);
    v.truncate(k);
    v.sort();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::as_graph::generate_as_graph;
    use crate::geo::generate_world;
    use crate::infra;
    use inano_model::rng::rng_for;

    fn build(seed: u64) -> (Vec<AsInfo>, Vec<PrefixInfo>, PolicySet) {
        let cfg = TopologyConfig::tiny(seed);
        let mut rng = rng_for(seed, "test-policy");
        let cities = generate_world(cfg.continents, cfg.cities_per_continent, &mut rng);
        let mut ases = generate_as_graph(&cfg, &mut rng);
        let inf = infra::generate(&cfg, &mut ases, &cities, &mut rng);
        let ps = generate_policies(&cfg, &ases, &inf.prefixes, &mut rng);
        (ases, inf.prefixes, ps)
    }

    #[test]
    fn default_pref_class_without_override() {
        let (ases, _, ps) = build(21);
        let a = &ases[0];
        let mut checked = 0;
        for &(n, rel) in &a.neighbors {
            if !ps.localpref_override.contains_key(&(a.asn, n)) {
                assert_eq!(ps.pref_class(a.asn, n, rel), rel.pref_class());
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn export_filters_respect_gao_and_keep_half() {
        let (ases, _, ps) = build(22);
        // Every denial must correspond to a Gao-allowed triple (otherwise
        // the filter is redundant), and per (via, from) at least one export
        // must remain.
        for &(from, via, to) in &ps.export_deny {
            let v = &ases[via.index()];
            let rel_from = v.rel_to(from).unwrap();
            let rel_to = v.rel_to(to).unwrap();
            assert!(Relationship::may_export(rel_from, rel_to));
            let remaining = v
                .neighbors
                .iter()
                .filter(|&&(t, rt)| {
                    t != from
                        && Relationship::may_export(rel_from, rt)
                        && !ps.export_deny.contains(&(from, via, t))
                })
                .count();
            assert!(remaining >= 1, "no exports left for {from} via {via}");
        }
    }

    #[test]
    fn te_subsets_are_proper_and_nonempty() {
        let (ases, prefixes, ps) = build(23);
        for (asn, subset) in &ps.te_providers {
            let providers: Vec<Asn> = ases[asn.index()].providers().collect();
            assert!(!subset.is_empty());
            assert!(subset.len() < providers.len());
            assert!(subset.iter().all(|p| providers.contains(p)));
        }
        for (pid, subset) in &ps.te_prefix_providers {
            let origin = prefixes[pid.index()].origin;
            let providers: Vec<Asn> = ases[origin.index()].providers().collect();
            assert!(!subset.is_empty() && subset.len() < providers.len());
        }
    }

    #[test]
    fn siblings_always_late_exit() {
        let (ases, _, ps) = build(24);
        for a in &ases {
            for &(n, rel) in &a.neighbors {
                if rel == Relationship::Sibling {
                    assert!(ps.uses_late_exit(a.asn, n));
                }
            }
        }
    }

    #[test]
    fn load_balancer_tie_rank_wavers_stable_as_does_not() {
        let (ases, _, ps) = build(25);
        let lb = ps.load_balancers.iter().next();
        if let Some(&lb) = lb {
            let n = ases[lb.index()].neighbors[0].0;
            let r1 = ps.tie_rank(lb, n, 1, 0);
            let r2 = ps.tie_rank(lb, n, 2, 0);
            assert_ne!(r1, r2, "load balancer must waver");
        }
        let stable = ases
            .iter()
            .find(|a| !ps.load_balancers.contains(&a.asn) && !a.neighbors.is_empty())
            .unwrap();
        let n = stable.neighbors[0].0;
        assert_eq!(
            ps.tie_rank(stable.asn, n, 1, 0),
            ps.tie_rank(stable.asn, n, 2, 0)
        );
        // Day salt reshuffles deterministically.
        assert_eq!(
            ps.tie_rank(stable.asn, n, 1, 7),
            ps.tie_rank(stable.asn, n, 2, 7)
        );
    }

    #[test]
    fn announce_to_provider_defaults_true() {
        let (ases, prefixes, ps) = build(26);
        // Find an AS with no TE at all.
        let plain = ases
            .iter()
            .find(|a| {
                !ps.te_providers.contains_key(&a.asn)
                    && a.prefixes
                        .iter()
                        .all(|p| !ps.te_prefix_providers.contains_key(p))
                    && a.providers().count() > 0
            })
            .unwrap();
        let prov = plain.providers().next().unwrap();
        let pid = plain.prefixes[0];
        assert!(ps.announces_to_provider(plain.asn, pid, prov));
        let _ = prefixes;
    }
}
