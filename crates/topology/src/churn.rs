//! Day-to-day churn: the slow evolution of routing state that makes
//! iNano's daily atlas updates necessary (and small).
//!
//! Per §6.2 of the paper, most Internet paths are stationary across a day:
//! ~50 % of PoP-level paths identical, 91 % with similarity ≥ 0.75. We
//! model churn as (a) inter-AS links being down for the day and (b) some
//! ASes reshuffling their tie-break rankings, both drawn per-day from the
//! topology seed so any day can be re-materialised independently.

use crate::config::TopologyConfig;
use crate::internet::{Internet, LinkId, LinkKind};
use inano_model::rng::rng_for;
use inano_model::Asn;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// The routing-relevant state of one day.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DayState {
    pub day: u32,
    /// Inter-AS links that are down for the whole day.
    pub down_links: HashSet<LinkId>,
    /// ASes whose tie-break ranking is reshuffled today, with the salt to
    /// feed [`crate::policy::PolicySet::tie_rank`].
    pub pref_salts: HashMap<Asn, u64>,
}

impl DayState {
    /// Day salt for an AS (0 = no reshuffle today).
    pub fn salt_for(&self, asn: Asn) -> u64 {
        self.pref_salts.get(&asn).copied().unwrap_or(0)
    }

    pub fn is_down(&self, link: LinkId) -> bool {
        self.down_links.contains(&link)
    }
}

/// Generates [`DayState`]s for a given Internet.
#[derive(Clone, Debug)]
pub struct ChurnModel {
    seed: u64,
    p_link_down: f64,
    p_pref_flip: f64,
    inter_links: Vec<LinkId>,
    single_homed_links: HashSet<LinkId>,
    asns: Vec<Asn>,
}

impl ChurnModel {
    pub fn new(net: &Internet) -> ChurnModel {
        let cfg: &TopologyConfig = &net.cfg;
        // Never bring down the only interconnect of a single-homed AS —
        // day-long total partitions of whole ASes would dominate the
        // stationarity statistics with trivially-dissimilar (empty) paths.
        // (Transient failures for the detour study are injected separately
        // by `inano-routing::failures`.)
        let mut inter_count: HashMap<Asn, usize> = HashMap::new();
        for l in net.inter_as_links() {
            *inter_count.entry(net.pop_as(l.a)).or_default() += 1;
            *inter_count.entry(net.pop_as(l.b)).or_default() += 1;
        }
        let mut single_homed_links = HashSet::new();
        for l in net.inter_as_links() {
            if inter_count[&net.pop_as(l.a)] <= 1 || inter_count[&net.pop_as(l.b)] <= 1 {
                single_homed_links.insert(l.id);
            }
        }
        ChurnModel {
            seed: cfg.seed,
            p_link_down: cfg.p_link_down_per_day,
            p_pref_flip: cfg.p_pref_flip_per_day,
            inter_links: net
                .links
                .iter()
                .filter(|l| l.kind == LinkKind::Inter)
                .map(|l| l.id)
                .collect(),
            single_homed_links,
            asns: net.ases.iter().map(|a| a.asn).collect(),
        }
    }

    /// The state of day `day`. Day 0 is the baseline: no churn, so that
    /// atlas construction sees the canonical topology.
    pub fn day_state(&self, day: u32) -> DayState {
        let mut st = DayState {
            day,
            ..DayState::default()
        };
        if day == 0 {
            return st;
        }
        let mut rng = rng_for(self.seed, &format!("churn-day-{day}"));
        for &l in &self.inter_links {
            if !self.single_homed_links.contains(&l) && rng.gen_bool(self.p_link_down) {
                st.down_links.insert(l);
            }
        }
        for &a in &self.asns {
            if rng.gen_bool(self.p_pref_flip) {
                st.pref_salts.insert(a, rng.gen_range(1..u64::MAX));
            }
        }
        st
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_internet;
    use crate::config::TopologyConfig;

    fn model(seed: u64) -> (Internet, ChurnModel) {
        let net = build_internet(&TopologyConfig::tiny(seed)).unwrap();
        let cm = ChurnModel::new(&net);
        (net, cm)
    }

    #[test]
    fn day_zero_is_pristine() {
        let (_, cm) = model(41);
        let d0 = cm.day_state(0);
        assert!(d0.down_links.is_empty());
        assert!(d0.pref_salts.is_empty());
    }

    #[test]
    fn days_are_deterministic_and_distinct() {
        let (_, cm) = model(42);
        let d1a = cm.day_state(1);
        let d1b = cm.day_state(1);
        assert_eq!(d1a.down_links, d1b.down_links);
        assert_eq!(d1a.pref_salts, d1b.pref_salts);
        let d2 = cm.day_state(2);
        // Overwhelmingly likely to differ on a non-trivial topology.
        assert!(
            d1a.down_links != d2.down_links || d1a.pref_salts != d2.pref_salts,
            "consecutive days identical"
        );
    }

    #[test]
    fn churn_volume_tracks_probability() {
        let (net, cm) = model(43);
        let days = 30;
        let mut down_total = 0usize;
        for d in 1..=days {
            down_total += cm.day_state(d).down_links.len();
        }
        let inter = net.inter_as_links().count();
        let expected = inter as f64 * net.cfg.p_link_down_per_day * days as f64;
        let got = down_total as f64;
        assert!(
            got < expected * 3.0 + 10.0,
            "too much churn: {got} vs expected {expected}"
        );
    }

    #[test]
    fn never_kills_single_homed_stub() {
        let (net, cm) = model(44);
        for d in 1..=10 {
            let st = cm.day_state(d);
            for &l in &st.down_links {
                assert!(!cm.single_homed_links.contains(&l));
                let _ = net.link(l);
            }
        }
    }
}
