//! Geography: a flat 2-D plane measured in kilometres, with continents as
//! widely separated cluster centres and cities scattered around them.
//!
//! Link propagation delay is derived from great-circle (here: Euclidean)
//! distance at the speed of light in fibre (~200 000 km/s), which is the
//! standard first-order model; the paper's link latencies likewise capture
//! propagation but not queueing ("our link latencies do not capture
//! transmission and queueing delays", §6.2).

use inano_model::rng::DeterministicRng;
use inano_model::LatencyMs;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A point on the plane, in kilometres.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize, Default)]
pub struct GeoPoint {
    pub x: f64,
    pub y: f64,
}

impl GeoPoint {
    pub fn new(x: f64, y: f64) -> Self {
        GeoPoint { x, y }
    }

    /// Euclidean distance in km.
    pub fn distance_km(self, other: GeoPoint) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// Propagation speed in fibre, km per millisecond.
pub const FIBRE_KM_PER_MS: f64 = 200.0;

/// Fixed per-hop forwarding cost added to every link (serialisation,
/// switching), in milliseconds.
pub const HOP_COST_MS: f64 = 0.3;

/// One-way link latency for a span of `km` kilometres. Real fibre paths
/// are never straight lines; `path_stretch` (~1.3) accounts for that.
pub fn link_latency(km: f64) -> LatencyMs {
    const PATH_STRETCH: f64 = 1.3;
    LatencyMs::new(km * PATH_STRETCH / FIBRE_KM_PER_MS + HOP_COST_MS)
}

/// A city: a geographic location where PoPs can be placed. Two PoPs in the
/// same city are *colocated* and can be cheaply interconnected.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct City {
    pub id: u32,
    pub continent: u8,
    pub loc: GeoPoint,
}

/// Generate the world: `continents` cluster centres placed on a large
/// circle, each with `cities_per_continent` cities scattered around it.
pub fn generate_world(
    continents: usize,
    cities_per_continent: usize,
    rng: &mut DeterministicRng,
) -> Vec<City> {
    assert!(continents > 0 && continents <= 32, "1..=32 continents");
    // Inter-continent scale: centres on a circle of radius 7000 km, so
    // neighbouring continents are ~5000-13000 km apart (trans-oceanic
    // RTTs in the 50-150 ms range, like the real Internet).
    let radius = 7000.0;
    let mut cities = Vec::with_capacity(continents * cities_per_continent);
    for c in 0..continents {
        let angle = (c as f64) / (continents as f64) * std::f64::consts::TAU;
        let centre = GeoPoint::new(radius * angle.cos(), radius * angle.sin());
        for _ in 0..cities_per_continent {
            // Scatter cities with ~1200 km std-dev: intra-continent
            // distances of a few hundred to ~4000 km.
            let dx: f64 = rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0);
            let dy: f64 = rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0);
            let loc = GeoPoint::new(centre.x + dx * 1200.0, centre.y + dy * 1200.0);
            cities.push(City {
                id: cities.len() as u32,
                continent: c as u8,
                loc,
            });
        }
    }
    cities
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_model::rng::rng_for;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(3.0, 4.0);
        assert_eq!(a.distance_km(b), 5.0);
        assert_eq!(b.distance_km(a), 5.0);
        assert_eq!(a.distance_km(a), 0.0);
    }

    #[test]
    fn latency_scales_with_distance() {
        let near = link_latency(10.0);
        let far = link_latency(6000.0);
        assert!(near.ms() < 1.0, "metro link should be sub-ms-ish: {near}");
        assert!(
            far.ms() > 30.0 && far.ms() < 60.0,
            "transcontinental: {far}"
        );
    }

    #[test]
    fn world_has_expected_shape() {
        let mut rng = rng_for(1, "world");
        let cities = generate_world(5, 30, &mut rng);
        assert_eq!(cities.len(), 150);
        // Cities of the same continent are near each other, different
        // continents far apart (on average).
        let same: Vec<f64> = cities
            .iter()
            .filter(|c| c.continent == 0)
            .flat_map(|a| {
                cities
                    .iter()
                    .filter(|c| c.continent == 0 && c.id != a.id)
                    .map(move |b| a.loc.distance_km(b.loc))
            })
            .collect();
        let cross: Vec<f64> = cities
            .iter()
            .filter(|c| c.continent == 0)
            .flat_map(|a| {
                cities
                    .iter()
                    .filter(|c| c.continent == 2)
                    .map(move |b| a.loc.distance_km(b.loc))
            })
            .collect();
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(avg(&same) * 2.0 < avg(&cross), "continents must separate");
    }

    #[test]
    fn world_is_deterministic() {
        let a = generate_world(3, 10, &mut rng_for(7, "w"));
        let b = generate_world(3, 10, &mut rng_for(7, "w"));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.loc, y.loc);
        }
    }
}
