//! Top-level assembly: world → AS graph → infrastructure → policies →
//! base loss, producing a ready [`Internet`].

use crate::as_graph::generate_as_graph;
use crate::config::TopologyConfig;
use crate::geo::generate_world;
use crate::infra;
use crate::internet::Internet;
use crate::loss::assign_base_loss;
use crate::policy::generate_policies;
use inano_model::rng::rng_for;
use inano_model::ModelError;

/// Build the complete ground-truth Internet from a configuration.
///
/// Deterministic in `cfg.seed`. Returns `ModelError::Config` on invalid
/// configurations.
pub fn build_internet(cfg: &TopologyConfig) -> Result<Internet, ModelError> {
    cfg.validate().map_err(ModelError::Config)?;

    let mut rng = rng_for(cfg.seed, "topology");
    let cities = generate_world(cfg.continents, cfg.cities_per_continent, &mut rng);
    let mut ases = generate_as_graph(cfg, &mut rng);
    let infra = infra::generate(cfg, &mut ases, &cities, &mut rng);
    let policy = generate_policies(cfg, &ases, &infra.prefixes, &mut rng);

    let mut net = Internet {
        cfg: cfg.clone(),
        ases,
        pops: infra.pops,
        links: infra.links,
        pop_adj: infra.pop_adj,
        prefixes: infra.prefixes,
        prefix_trie: infra.prefix_trie,
        hosts: infra.hosts,
        routers: infra.routers,
        ifaces: infra.ifaces,
        iface_by_ip: infra.iface_by_ip,
        host_by_ip: infra.host_by_ip,
        policy,
    };
    assign_base_loss(&mut net);

    debug_assert_eq!(net.check_invariants(), Ok(()));
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::internet::Tier;

    #[test]
    fn tiny_internet_builds_and_validates() {
        let net = build_internet(&TopologyConfig::tiny(1)).unwrap();
        net.check_invariants().unwrap();
        assert_eq!(net.ases.len(), net.cfg.total_ases());
        assert!(!net.hosts.is_empty());
        assert!(!net.links.is_empty());
    }

    #[test]
    fn build_is_deterministic() {
        let a = build_internet(&TopologyConfig::tiny(5)).unwrap();
        let b = build_internet(&TopologyConfig::tiny(5)).unwrap();
        assert_eq!(a.pops.len(), b.pops.len());
        assert_eq!(a.links.len(), b.links.len());
        for (x, y) in a.links.iter().zip(&b.links) {
            assert_eq!(x.a, y.a);
            assert_eq!(x.b, y.b);
            assert_eq!(x.latency, y.latency);
            assert_eq!(x.loss_ab, y.loss_ab);
        }
        assert_eq!(a.policy.export_deny, b.policy.export_deny);
    }

    #[test]
    fn different_seeds_differ() {
        let a = build_internet(&TopologyConfig::tiny(1)).unwrap();
        let b = build_internet(&TopologyConfig::tiny(2)).unwrap();
        // Same sizes are possible but identical link tables are not.
        let same = a.links.len() == b.links.len()
            && a.links
                .iter()
                .zip(&b.links)
                .all(|(x, y)| x.a == y.a && x.b == y.b);
        assert!(!same, "seeds 1 and 2 generated identical internets");
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = TopologyConfig::tiny(1);
        cfg.p_lossy_link = 2.0;
        assert!(build_internet(&cfg).is_err());
    }

    #[test]
    fn default_scale_smoke() {
        // The full default config is used by the experiment harness; make
        // sure it builds in test time and has paper-like proportions.
        let cfg = TopologyConfig::scaled(0.25);
        let net = build_internet(&cfg).unwrap();
        net.check_invariants().unwrap();
        let stubs = net.ases.iter().filter(|a| a.tier == Tier::Stub).count();
        assert!(stubs * 2 > net.ases.len(), "stubs should dominate");
        assert!(net.pops.len() > net.ases.len(), "PoPs outnumber ASes");
        assert!(net.links.len() > net.pops.len() / 2);
    }
}
