//! The `Internet` struct: the complete generated ground-truth topology,
//! with dense tables for every entity and the accessors the routing oracle
//! and measurement pipeline need.

use crate::config::TopologyConfig;
use crate::geo::GeoPoint;
use crate::policy::PolicySet;
use inano_model::{
    Asn, ClusterId, HostId, IfaceId, Ipv4, LatencyMs, LossRate, PopId, Prefix, PrefixId,
    PrefixTrie, Relationship, RouterId,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// AS tier in the generated hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Tier {
    Tier1,
    Tier2,
    Tier3,
    Stub,
}

/// A directed link identifier into [`Internet::links`]. Links are stored
/// once (undirected); direction is expressed at use sites.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl LinkId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// Intra-AS backbone link or inter-AS interconnect.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum LinkKind {
    Intra,
    Inter,
}

/// One AS and everything it owns.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AsInfo {
    pub asn: Asn,
    pub tier: Tier,
    /// Continents where this AS has PoPs.
    pub presence: Vec<u8>,
    pub pops: Vec<PopId>,
    /// Adjacent ASes with the relationship *from this AS's point of view*
    /// (`Customer` means the neighbor is our customer).
    pub neighbors: Vec<(Asn, Relationship)>,
    /// Prefixes originated by this AS (first is the infrastructure prefix).
    pub prefixes: Vec<PrefixId>,
}

impl AsInfo {
    /// Relationship to a specific neighbor, if adjacent.
    pub fn rel_to(&self, other: Asn) -> Option<Relationship> {
        self.neighbors
            .iter()
            .find(|(a, _)| *a == other)
            .map(|(_, r)| *r)
    }

    /// This AS's degree in the AS-level graph.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// The providers of this AS (ground truth).
    pub fn providers(&self) -> impl Iterator<Item = Asn> + '_ {
        self.neighbors
            .iter()
            .filter(|(_, r)| *r == Relationship::Provider)
            .map(|(a, _)| *a)
    }
}

/// A Point-of-Presence: routers of one AS in one city.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PopInfo {
    pub id: PopId,
    pub asn: Asn,
    pub city: u32,
    pub loc: GeoPoint,
    pub routers: Vec<RouterId>,
}

/// An undirected physical link between two PoPs. Loss may differ per
/// direction; latency is symmetric (propagation).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Link {
    pub id: LinkId,
    pub a: PopId,
    pub b: PopId,
    pub kind: LinkKind,
    pub latency: LatencyMs,
    /// Base loss in the a→b direction.
    pub loss_ab: LossRate,
    /// Base loss in the b→a direction.
    pub loss_ba: LossRate,
    /// Interface at `a` facing `b` (the hop IP reported when entering `a`
    /// from `b`).
    pub iface_a: IfaceId,
    /// Interface at `b` facing `a`.
    pub iface_b: IfaceId,
}

impl Link {
    /// The other endpoint, given one endpoint.
    pub fn other(&self, p: PopId) -> PopId {
        if p == self.a {
            self.b
        } else {
            debug_assert_eq!(p, self.b);
            self.a
        }
    }

    /// Loss in the `from → to` direction.
    pub fn loss_from(&self, from: PopId) -> LossRate {
        if from == self.a {
            self.loss_ab
        } else {
            self.loss_ba
        }
    }

    /// Ingress interface when entering PoP `to` over this link.
    pub fn iface_at(&self, to: PopId) -> IfaceId {
        if to == self.a {
            self.iface_a
        } else {
            self.iface_b
        }
    }
}

/// A BGP prefix with its origin and attachment point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PrefixInfo {
    pub id: PrefixId,
    pub prefix: Prefix,
    pub origin: Asn,
    /// The PoP this prefix hangs off.
    pub home_pop: PopId,
    /// Infrastructure prefixes number router interfaces; edge prefixes
    /// contain end-hosts and are what iNano predicts paths *to*.
    pub is_infrastructure: bool,
}

/// An end-host inside an edge prefix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HostInfo {
    pub id: HostId,
    pub ip: Ipv4,
    pub prefix: PrefixId,
    pub asn: Asn,
    pub pop: PopId,
}

/// A router inside a PoP.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RouterInfo {
    pub id: RouterId,
    pub pop: PopId,
}

/// A router interface with its IP address.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IfaceInfo {
    pub id: IfaceId,
    pub router: RouterId,
    pub ip: Ipv4,
    pub link: LinkId,
}

/// The fully generated ground-truth Internet.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Internet {
    pub cfg: TopologyConfig,
    pub ases: Vec<AsInfo>,
    pub pops: Vec<PopInfo>,
    pub links: Vec<Link>,
    /// Adjacency: for each PoP, (link, neighbor PoP).
    pub pop_adj: Vec<Vec<(LinkId, PopId)>>,
    pub prefixes: Vec<PrefixInfo>,
    pub prefix_trie: PrefixTrie,
    pub hosts: Vec<HostInfo>,
    pub routers: Vec<RouterInfo>,
    pub ifaces: Vec<IfaceInfo>,
    pub iface_by_ip: HashMap<Ipv4, IfaceId>,
    pub host_by_ip: HashMap<Ipv4, HostId>,
    pub policy: PolicySet,
}

impl Internet {
    pub fn as_info(&self, a: Asn) -> &AsInfo {
        &self.ases[a.index()]
    }

    pub fn pop(&self, p: PopId) -> &PopInfo {
        &self.pops[p.index()]
    }

    pub fn link(&self, l: LinkId) -> &Link {
        &self.links[l.index()]
    }

    pub fn prefix(&self, p: PrefixId) -> &PrefixInfo {
        &self.prefixes[p.index()]
    }

    pub fn host(&self, h: HostId) -> &HostInfo {
        &self.hosts[h.index()]
    }

    /// The AS owning a PoP.
    pub fn pop_as(&self, p: PopId) -> Asn {
        self.pops[p.index()].asn
    }

    /// In the ground truth, cluster ids coincide with PoP ids; the
    /// measurement pipeline may re-derive a different clustering.
    pub fn pop_cluster(&self, p: PopId) -> ClusterId {
        ClusterId::new(p.raw())
    }

    /// Longest-prefix-match an IP to its prefix.
    pub fn lookup_prefix(&self, ip: Ipv4) -> Option<PrefixId> {
        self.prefix_trie.lookup(ip)
    }

    /// All edge (non-infrastructure) prefixes.
    pub fn edge_prefixes(&self) -> impl Iterator<Item = &PrefixInfo> {
        self.prefixes.iter().filter(|p| !p.is_infrastructure)
    }

    /// All inter-AS links.
    pub fn inter_as_links(&self) -> impl Iterator<Item = &Link> {
        self.links.iter().filter(|l| l.kind == LinkKind::Inter)
    }

    /// Count of ASes / PoPs / links — handy summary for reports.
    pub fn summary(&self) -> String {
        format!(
            "{} ASes, {} PoPs, {} links ({} inter-AS), {} prefixes, {} hosts, {} ifaces",
            self.ases.len(),
            self.pops.len(),
            self.links.len(),
            self.links
                .iter()
                .filter(|l| l.kind == LinkKind::Inter)
                .count(),
            self.prefixes.len(),
            self.hosts.len(),
            self.ifaces.len(),
        )
    }

    /// Verify structural invariants; used by tests and debug builds.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, a) in self.ases.iter().enumerate() {
            if a.asn.index() != i {
                return Err(format!("AS table out of order at {i}"));
            }
            for &(n, r) in &a.neighbors {
                let back = self.ases[n.index()]
                    .rel_to(a.asn)
                    .ok_or_else(|| format!("{} -> {} not symmetric", a.asn, n))?;
                if back != r.reverse() {
                    return Err(format!("{} -> {} relationship mismatch", a.asn, n));
                }
            }
        }
        for l in &self.links {
            let (pa, pb) = (self.pop(l.a), self.pop(l.b));
            match l.kind {
                LinkKind::Intra if pa.asn != pb.asn => {
                    return Err(format!("{:?} intra but crosses ASes", l.id));
                }
                LinkKind::Inter if pa.asn == pb.asn => {
                    return Err(format!("{:?} inter but within one AS", l.id));
                }
                _ => {}
            }
        }
        for (p, adj) in self.pop_adj.iter().enumerate() {
            for &(lid, other) in adj {
                let l = self.link(lid);
                let here = PopId::from_index(p);
                if l.other(here) != other {
                    return Err(format!("adjacency of pop{p} inconsistent"));
                }
            }
        }
        Ok(())
    }
}
