//! AS-level graph generation: tier assignment, customer/provider
//! attachment, peering, and siblings.
//!
//! The hierarchy mirrors the accepted coarse structure of the Internet:
//! a clique of tier-1 backbones at the top, multi-continent tier-2 transit
//! providers, single-continent tier-3 regionals, and a large population of
//! stub (edge) ASes, most of them multi-homed.

use crate::config::TopologyConfig;
use crate::internet::{AsInfo, Tier};
use inano_model::rng::DeterministicRng;
use inano_model::{Asn, Relationship};
use rand::seq::SliceRandom;
use rand::Rng;

/// Generate the AS population with relationships (PoPs are attached later).
pub fn generate_as_graph(cfg: &TopologyConfig, rng: &mut DeterministicRng) -> Vec<AsInfo> {
    let total = cfg.total_ases();
    let mut ases: Vec<AsInfo> = Vec::with_capacity(total);

    // --- tier assignment & continent presence ---
    let all_continents: Vec<u8> = (0..cfg.continents as u8).collect();
    for i in 0..total {
        let tier = tier_of(cfg, i);
        let presence = match tier {
            Tier::Tier1 => all_continents.clone(),
            Tier::Tier2 => {
                let mut pres = vec![*all_continents.choose(rng).unwrap()];
                for &c in &all_continents {
                    if !pres.contains(&c) && rng.gen_bool(0.35) && pres.len() < 3 {
                        pres.push(c);
                    }
                }
                pres
            }
            Tier::Tier3 | Tier::Stub => vec![*all_continents.choose(rng).unwrap()],
        };
        ases.push(AsInfo {
            asn: Asn::from_index(i),
            tier,
            presence,
            pops: Vec::new(),
            neighbors: Vec::new(),
            prefixes: Vec::new(),
        });
    }

    // Index by tier for attachment choices.
    let t1: Vec<Asn> = tier_asns(&ases, Tier::Tier1);
    let t2: Vec<Asn> = tier_asns(&ases, Tier::Tier2);
    let t3: Vec<Asn> = tier_asns(&ases, Tier::Tier3);

    // --- tier-1 clique: all peers ---
    for (i, &a) in t1.iter().enumerate() {
        for &b in &t1[i + 1..] {
            add_rel(&mut ases, a, b, Relationship::Peer);
        }
    }

    // --- providers ---
    // Tier-2: 2-3 tier-1 providers with overlapping presence.
    for &a in &t2 {
        let n = rng.gen_range(2..=3.min(t1.len()));
        let choices = pick_providers(&ases, a, &t1, n, rng);
        for p in choices {
            add_rel(&mut ases, p, a, Relationship::Customer);
        }
    }
    // Tier-3: 2-3 providers from tier-2 (same continent preferred), with a
    // small chance of a direct tier-1 provider.
    for &a in &t3 {
        let n = rng.gen_range(2..=3);
        let pool = if rng.gen_bool(0.15) { &t1 } else { &t2 };
        let choices = pick_providers(&ases, a, pool, n, rng);
        for p in choices {
            add_rel(&mut ases, p, a, Relationship::Customer);
        }
    }
    // Stubs: 1-3 providers from tier-3/tier-2 on the same continent.
    let mut transit_pool: Vec<Asn> = t3.iter().chain(t2.iter()).copied().collect();
    transit_pool.sort();
    for i in 0..ases.len() {
        if ases[i].tier != Tier::Stub {
            continue;
        }
        let a = ases[i].asn;
        let n = *[1usize, 1, 2, 2, 2, 3].choose(rng).unwrap();
        let choices = pick_providers(&ases, a, &transit_pool, n, rng);
        if choices.is_empty() {
            // Guarantee connectivity: fall back to any tier-2.
            let p = *t2.choose(rng).unwrap();
            add_rel(&mut ases, p, a, Relationship::Customer);
        } else {
            for p in choices {
                add_rel(&mut ases, p, a, Relationship::Customer);
            }
        }
    }

    // --- peering among transit tiers ---
    add_peering(&mut ases, &t2, cfg.p_peer_t2, rng);
    add_peering(&mut ases, &t3, cfg.p_peer_t3, rng);

    // --- siblings ---
    // Pick pairs of same-tier, same-continent ASes and mark them siblings.
    let n_sib = ((total as f64) * cfg.sibling_frac / 2.0).round() as usize;
    let mut candidates: Vec<Asn> = t2.iter().chain(t3.iter()).copied().collect();
    candidates.shuffle(rng);
    let mut made = 0;
    let mut i = 0;
    while made < n_sib && i + 1 < candidates.len() {
        let (a, b) = (candidates[i], candidates[i + 1]);
        i += 2;
        if ases[a.index()].rel_to(b).is_none() && shares_continent(&ases, a, b) {
            add_rel(&mut ases, a, b, Relationship::Sibling);
            made += 1;
        }
    }

    ases
}

fn tier_of(cfg: &TopologyConfig, i: usize) -> Tier {
    if i < cfg.n_tier1 {
        Tier::Tier1
    } else if i < cfg.n_tier1 + cfg.n_tier2 {
        Tier::Tier2
    } else if i < cfg.n_tier1 + cfg.n_tier2 + cfg.n_tier3 {
        Tier::Tier3
    } else {
        Tier::Stub
    }
}

fn tier_asns(ases: &[AsInfo], tier: Tier) -> Vec<Asn> {
    ases.iter()
        .filter(|a| a.tier == tier)
        .map(|a| a.asn)
        .collect()
}

/// Record relationship `rel` of `a` towards `b` (and the reverse at `b`).
fn add_rel(ases: &mut [AsInfo], a: Asn, b: Asn, rel: Relationship) {
    debug_assert!(a != b);
    debug_assert!(ases[a.index()].rel_to(b).is_none(), "duplicate edge");
    ases[a.index()].neighbors.push((b, rel));
    ases[b.index()].neighbors.push((a, rel.reverse()));
}

fn shares_continent(ases: &[AsInfo], a: Asn, b: Asn) -> bool {
    let pa = &ases[a.index()].presence;
    ases[b.index()].presence.iter().any(|c| pa.contains(c))
}

/// Choose up to `n` distinct providers for `a` from `pool`, preferring
/// continent overlap, skipping already-adjacent ASes.
fn pick_providers(
    ases: &[AsInfo],
    a: Asn,
    pool: &[Asn],
    n: usize,
    rng: &mut DeterministicRng,
) -> Vec<Asn> {
    let mut near: Vec<Asn> = pool
        .iter()
        .filter(|&&p| p != a && ases[a.index()].rel_to(p).is_none() && shares_continent(ases, a, p))
        .copied()
        .collect();
    near.shuffle(rng);
    let mut picks: Vec<Asn> = near.into_iter().take(n).collect();
    if picks.len() < n {
        let mut far: Vec<Asn> = pool
            .iter()
            .filter(|&&p| p != a && ases[a.index()].rel_to(p).is_none() && !picks.contains(&p))
            .copied()
            .collect();
        far.shuffle(rng);
        picks.extend(far.into_iter().take(n - picks.len()));
    }
    picks
}

/// Add peer edges among `group` for same-continent pairs with probability `p`.
fn add_peering(ases: &mut [AsInfo], group: &[Asn], p: f64, rng: &mut DeterministicRng) {
    for (i, &a) in group.iter().enumerate() {
        for &b in &group[i + 1..] {
            if ases[a.index()].rel_to(b).is_none()
                && shares_continent(ases, a, b)
                && rng.gen_bool(p)
            {
                add_rel(ases, a, b, Relationship::Peer);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_model::rng::rng_for;

    fn gen(seed: u64) -> (TopologyConfig, Vec<AsInfo>) {
        let cfg = TopologyConfig::tiny(seed);
        let mut rng = rng_for(seed, "asgraph");
        let ases = generate_as_graph(&cfg, &mut rng);
        (cfg, ases)
    }

    #[test]
    fn relationships_are_symmetric() {
        let (_, ases) = gen(5);
        for a in &ases {
            for &(n, r) in &a.neighbors {
                assert_eq!(ases[n.index()].rel_to(a.asn), Some(r.reverse()));
            }
        }
    }

    #[test]
    fn tier1_is_peer_clique() {
        let (cfg, ases) = gen(6);
        for (i, a) in ases.iter().enumerate().take(cfg.n_tier1) {
            for j in 0..cfg.n_tier1 {
                if i != j {
                    assert_eq!(a.rel_to(Asn::from_index(j)), Some(Relationship::Peer));
                }
            }
        }
    }

    #[test]
    fn every_non_tier1_has_a_provider_or_sibling_path_up() {
        let (_, ases) = gen(7);
        for a in &ases {
            if a.tier != Tier::Tier1 {
                let has_provider = a
                    .neighbors
                    .iter()
                    .any(|(_, r)| *r == Relationship::Provider);
                assert!(
                    has_provider,
                    "{} (tier {:?}) has no provider",
                    a.asn, a.tier
                );
            }
        }
    }

    #[test]
    fn stubs_have_no_customers() {
        let (_, ases) = gen(8);
        for a in &ases {
            if a.tier == Tier::Stub {
                assert!(
                    a.neighbors
                        .iter()
                        .all(|(_, r)| *r != Relationship::Customer),
                    "stub {} has customers",
                    a.asn
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, a) = gen(9);
        let (_, b) = gen(9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.neighbors, y.neighbors);
            assert_eq!(x.presence, y.presence);
        }
    }

    #[test]
    fn degree_distribution_is_top_heavy() {
        let cfg = TopologyConfig::scaled(0.3);
        let mut rng = rng_for(10, "asgraph");
        let ases = generate_as_graph(&cfg, &mut rng);
        let avg = |t: Tier| {
            let v: Vec<usize> = ases
                .iter()
                .filter(|a| a.tier == t)
                .map(|a| a.degree())
                .collect();
            v.iter().sum::<usize>() as f64 / v.len() as f64
        };
        assert!(avg(Tier::Tier1) > avg(Tier::Tier3));
        assert!(avg(Tier::Tier2) > avg(Tier::Stub));
    }
}
