//! # inano-topology
//!
//! A parametric synthetic Internet: tiered AS graph with business
//! relationships, PoPs placed in geographic cities, intra-AS backbones and
//! inter-AS interconnects, routers and interfaces with IP addresses, BGP
//! prefixes and end-hosts, ground-truth routing *policies* (local-pref
//! exceptions, selective export filters, per-prefix traffic engineering,
//! late-exit pairs, load-balancing tie-breaks), per-link loss processes,
//! and a day-to-day churn model.
//!
//! The paper evaluated iNano against the real Internet measured from
//! PlanetLab; we have no PlanetLab, so this crate provides the closest
//! synthetic equivalent. Crucially, the *policy exceptions* generated here
//! are exactly the behaviours §4.3 of the paper identifies as the reasons
//! the textbook routing model (`GRAPH`) mispredicts: each iNano refinement
//! then has a real error class to recover.
//!
//! Everything is generated deterministically from a `u64` seed.

pub mod as_graph;
pub mod builder;
pub mod churn;
pub mod config;
pub mod geo;
pub mod infra;
pub mod internet;
pub mod loss;
pub mod policy;

pub use builder::build_internet;
pub use churn::{ChurnModel, DayState};
pub use config::TopologyConfig;
pub use geo::GeoPoint;
pub use internet::{
    AsInfo, HostInfo, IfaceInfo, Internet, Link, LinkId, LinkKind, PopInfo, PrefixInfo, RouterInfo,
    Tier,
};
pub use policy::PolicySet;
