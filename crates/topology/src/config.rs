//! All knobs of the synthetic Internet, with laptop-scale defaults.
//!
//! The defaults produce an Internet of ~1 500 ASes / ~3 500 PoPs /
//! ~9 000 links — roughly 1/18th of the paper's measured atlas (27.5K
//! ASes, 85K clusters, 309K links) but with the same structural flavour.
//! Experiments that need other scales construct a config with
//! [`TopologyConfig::scaled`].

use serde::{Deserialize, Serialize};

/// Configuration of the synthetic Internet generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Root seed; every random decision derives from it.
    pub seed: u64,

    // ---- world ----
    /// Number of continents (geographic clusters).
    pub continents: usize,
    /// Cities per continent; PoPs are placed at cities.
    pub cities_per_continent: usize,

    // ---- AS population ----
    /// Tier-1 backbone ASes (full peer clique, global presence).
    pub n_tier1: usize,
    /// Tier-2 transit providers (multi-continent).
    pub n_tier2: usize,
    /// Tier-3 regional providers (single continent).
    pub n_tier3: usize,
    /// Stub (edge) ASes.
    pub n_stub: usize,

    // ---- multihoming / peering ----
    /// Probability that a same-continent tier-2 pair peers.
    pub p_peer_t2: f64,
    /// Probability that a same-continent tier-3 pair peers.
    pub p_peer_t3: f64,
    /// Fraction of ASes that have a sibling AS (same organisation).
    pub sibling_frac: f64,

    // ---- prefixes & hosts ----
    /// Edge prefixes per stub AS: uniform in `1..=max_stub_prefixes`.
    pub max_stub_prefixes: usize,
    /// End-hosts instantiated per edge prefix.
    pub hosts_per_prefix: usize,
    /// Routers per PoP (interfaces are spread across them).
    pub routers_per_pop: usize,

    // ---- policy exceptions (the §4.3 error sources) ----
    /// Probability an AS overrides the default local-pref class for one of
    /// its neighbors (e.g. prefers a peer over a customer). Paper §4.3.3:
    /// "An AS's customer may be a provider for specific paths".
    pub p_localpref_override: f64,
    /// Probability that a (learned-from, via, export-to) AS triple that the
    /// Gao rule would allow is nevertheless filtered (selective export,
    /// backup-only links). Paper §4.3.2.
    pub p_export_filter: f64,
    /// Fraction of multi-homed edge ASes that announce their prefixes to
    /// only a subset of their providers (traffic engineering, §4.3.4 —
    /// paper observed 1 352 / 27 515 ≈ 5 % of ASes).
    pub p_traffic_engineering: f64,
    /// Among traffic-engineering ASes, fraction that do it per-prefix
    /// (different prefixes announced to different provider subsets).
    pub p_te_per_prefix: f64,
    /// Probability an adjacent AS pair (sibling pairs always) uses
    /// late-exit instead of early-exit routing (§4.2.2).
    pub p_late_exit: f64,
    /// Fraction of ASes whose equal-preference tie-break depends on the
    /// destination (load balancing ⇒ "wavering preferences", §4.3.3).
    pub p_load_balancer: f64,

    // ---- link performance ----
    /// Fraction of links that are lossy at any instant.
    pub p_lossy_link: f64,
    /// Extra lossiness multiplier for edge (stub-facing) links.
    pub edge_loss_boost: f64,

    // ---- churn (day-to-day, §6.2) ----
    /// Probability an inter-AS link is down on any given day.
    pub p_link_down_per_day: f64,
    /// Probability a (non-wavering) tie-break ranking re-shuffles per day.
    pub p_pref_flip_per_day: f64,
    /// Per-6-hour-epoch probability that a lossy link stays lossy.
    pub loss_persistence_6h: f64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            seed: 1,
            continents: 5,
            cities_per_continent: 25,
            n_tier1: 9,
            n_tier2: 55,
            n_tier3: 180,
            n_stub: 1300,
            p_peer_t2: 0.30,
            p_peer_t3: 0.10,
            sibling_frac: 0.015,
            max_stub_prefixes: 5,
            hosts_per_prefix: 1,
            routers_per_pop: 3,
            p_localpref_override: 0.06,
            p_export_filter: 0.08,
            p_traffic_engineering: 0.05,
            p_te_per_prefix: 0.3,
            p_late_exit: 0.05,
            p_load_balancer: 0.10,
            p_lossy_link: 0.04,
            edge_loss_boost: 3.0,
            p_link_down_per_day: 0.013,
            p_pref_flip_per_day: 0.035,
            loss_persistence_6h: 0.66,
        }
    }
}

impl TopologyConfig {
    /// A config scaled by `f` in AS population (and proportionally in
    /// cities), keeping all probabilities fixed. `f = 1.0` is the default
    /// scale; `f = 0.1` is handy for unit tests.
    pub fn scaled(f: f64) -> Self {
        let d = TopologyConfig::default();
        let s = |n: usize| ((n as f64 * f).round() as usize).max(1);
        TopologyConfig {
            n_tier1: s(d.n_tier1).max(3),
            n_tier2: s(d.n_tier2).max(4),
            n_tier3: s(d.n_tier3).max(4),
            n_stub: s(d.n_stub).max(8),
            cities_per_continent: s(d.cities_per_continent).max(4),
            ..d
        }
    }

    /// Tiny config for fast unit tests.
    pub fn tiny(seed: u64) -> Self {
        TopologyConfig {
            seed,
            continents: 3,
            cities_per_continent: 6,
            n_tier1: 3,
            n_tier2: 6,
            n_tier3: 12,
            n_stub: 60,
            ..TopologyConfig::default()
        }
    }

    /// Total AS count.
    pub fn total_ases(&self) -> usize {
        self.n_tier1 + self.n_tier2 + self.n_tier3 + self.n_stub
    }

    /// Validate invariants; returns an error message on nonsense values.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_tier1 < 2 {
            return Err("need at least 2 tier-1 ASes".into());
        }
        if self.continents == 0 || self.cities_per_continent == 0 {
            return Err("world must have continents and cities".into());
        }
        if self.routers_per_pop == 0 {
            return Err("routers_per_pop must be >= 1".into());
        }
        for (name, p) in [
            ("p_peer_t2", self.p_peer_t2),
            ("p_peer_t3", self.p_peer_t3),
            ("sibling_frac", self.sibling_frac),
            ("p_localpref_override", self.p_localpref_override),
            ("p_export_filter", self.p_export_filter),
            ("p_traffic_engineering", self.p_traffic_engineering),
            ("p_te_per_prefix", self.p_te_per_prefix),
            ("p_late_exit", self.p_late_exit),
            ("p_load_balancer", self.p_load_balancer),
            ("p_lossy_link", self.p_lossy_link),
            ("p_link_down_per_day", self.p_link_down_per_day),
            ("p_pref_flip_per_day", self.p_pref_flip_per_day),
            ("loss_persistence_6h", self.loss_persistence_6h),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0,1], got {p}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        TopologyConfig::default().validate().unwrap();
        TopologyConfig::tiny(3).validate().unwrap();
    }

    #[test]
    fn scaled_keeps_minimums() {
        let c = TopologyConfig::scaled(0.01);
        c.validate().unwrap();
        assert!(c.n_tier1 >= 3);
        assert!(c.n_stub >= 8);
    }

    #[test]
    fn invalid_probability_rejected() {
        let c = TopologyConfig {
            p_export_filter: 1.5,
            ..TopologyConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn totals() {
        let c = TopologyConfig::tiny(1);
        assert_eq!(c.total_ases(), 3 + 6 + 12 + 60);
    }
}
