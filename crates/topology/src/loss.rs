//! Per-link loss rates and their temporal evolution.
//!
//! Links are mostly loss-free; a configurable fraction is lossy at any
//! instant, with magnitudes drawn log-uniformly (most lossy links lose a
//! few percent, a few lose a lot — the heavy-tailed shape seen in
//! wide-area measurements). Edge links (stub-facing interconnects) are
//! boosted, matching the observation that loss concentrates near the edge.
//!
//! Temporal model (for the §6.2.2 stationarity study): each link-direction
//! follows a two-state Markov chain over 6-hour epochs. A lossy link stays
//! lossy with probability `loss_persistence_6h`; clean links become lossy
//! at the complementary rate that keeps the stationary lossy fraction at
//! `p_lossy_link`. When lossy, the magnitude is re-drawn per epoch.

use crate::config::TopologyConfig;
use crate::internet::{Internet, LinkKind, Tier};
use inano_model::rng::rng_for;
use inano_model::LossRate;
use rand::Rng;

/// Loss state of every link-direction for a sequence of 6-hour epochs.
///
/// Index with `[epoch][link_id * 2 + dir]` where dir 0 = a→b, 1 = b→a.
#[derive(Clone, Debug)]
pub struct LossProcess {
    /// Per-epoch per-direction loss rates.
    epochs: Vec<Vec<LossRate>>,
    n_dirs: usize,
}

/// Number of 6-hour epochs per day.
pub const EPOCHS_PER_DAY: usize = 4;

impl LossProcess {
    /// Simulate `n_epochs` epochs of the loss process for `net`.
    pub fn simulate(net: &Internet, n_epochs: usize) -> LossProcess {
        let cfg = &net.cfg;
        let n_dirs = net.links.len() * 2;
        let mut rng = rng_for(cfg.seed, "loss-process");

        // Per-direction stationary lossy probability.
        let p_lossy: Vec<f64> = net
            .links
            .iter()
            .flat_map(|l| {
                let p = base_lossy_prob(net, cfg, l.id.index());
                [p, p]
            })
            .collect();

        let mut epochs: Vec<Vec<LossRate>> = Vec::with_capacity(n_epochs);
        let mut lossy: Vec<bool> = (0..n_dirs).map(|d| rng.gen_bool(p_lossy[d])).collect();
        for _epoch in 0..n_epochs {
            let rates: Vec<LossRate> = (0..n_dirs)
                .map(|d| {
                    if lossy[d] {
                        draw_magnitude(&mut rng)
                    } else {
                        LossRate::ZERO
                    }
                })
                .collect();
            epochs.push(rates);
            // Advance the Markov chain.
            let a = cfg.loss_persistence_6h;
            for d in 0..n_dirs {
                let p = p_lossy[d];
                // clean→lossy rate b chosen so stationary fraction is p:
                // p = b / (b + 1 - a)  ⇒  b = p (1 - a) / (1 - p)
                let b = if p >= 1.0 {
                    1.0
                } else {
                    (p * (1.0 - a)) / (1.0 - p)
                };
                lossy[d] = if lossy[d] {
                    rng.gen_bool(a)
                } else {
                    rng.gen_bool(b.clamp(0.0, 1.0))
                };
            }
        }
        LossProcess { epochs, n_dirs }
    }

    pub fn n_epochs(&self) -> usize {
        self.epochs.len()
    }

    /// Loss of link `lid` in direction `a_to_b` during `epoch`.
    pub fn loss(&self, epoch: usize, lid: usize, a_to_b: bool) -> LossRate {
        let d = lid * 2 + usize::from(!a_to_b);
        debug_assert!(d < self.n_dirs);
        self.epochs[epoch][d]
    }

    /// Apply epoch `epoch`'s rates onto an [`Internet`]'s link table, so
    /// the routing oracle and measurements see that instant's loss.
    pub fn apply_epoch(&self, net: &mut Internet, epoch: usize) {
        for (i, l) in net.links.iter_mut().enumerate() {
            l.loss_ab = self.loss(epoch, i, true);
            l.loss_ba = self.loss(epoch, i, false);
        }
    }
}

/// Stationary probability that a given link is lossy, with the edge boost.
fn base_lossy_prob(net: &Internet, cfg: &TopologyConfig, lid: usize) -> f64 {
    let l = &net.links[lid];
    let touches_stub = net.ases[net.pop_as(l.a).index()].tier == Tier::Stub
        || net.ases[net.pop_as(l.b).index()].tier == Tier::Stub;
    let boost = if l.kind == LinkKind::Inter && touches_stub {
        cfg.edge_loss_boost
    } else {
        1.0
    };
    (cfg.p_lossy_link * boost).min(0.9)
}

/// Lossy-link magnitude: log-uniform between 0.5 % and ~20 %.
fn draw_magnitude(rng: &mut inano_model::rng::DeterministicRng) -> LossRate {
    let exp: f64 = rng.gen_range(-2.3..-0.7);
    LossRate::new(10f64.powf(exp))
}

/// Assign epoch-0 loss to the base link table during construction.
pub fn assign_base_loss(net: &mut Internet) {
    let process = LossProcess::simulate(net, 1);
    process.apply_epoch(net, 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_internet;
    use crate::config::TopologyConfig;

    fn net(seed: u64) -> Internet {
        build_internet(&TopologyConfig::tiny(seed)).unwrap()
    }

    #[test]
    fn lossy_fraction_is_plausible() {
        let n = net(31);
        let proc_ = LossProcess::simulate(&n, 1);
        let total = n.links.len() * 2;
        let lossy = (0..n.links.len())
            .flat_map(|l| [proc_.loss(0, l, true), proc_.loss(0, l, false)])
            .filter(|r| r.is_lossy())
            .count();
        let frac = lossy as f64 / total as f64;
        // Configured 4% base with 3x edge boost: expect low single digits
        // to ~15%.
        assert!(frac > 0.005 && frac < 0.3, "lossy fraction {frac}");
    }

    #[test]
    fn magnitudes_in_range() {
        let n = net(32);
        let proc_ = LossProcess::simulate(&n, 2);
        for e in 0..2 {
            for l in 0..n.links.len() {
                for dir in [true, false] {
                    let r = proc_.loss(e, l, dir).rate();
                    assert!((0.0..=0.25).contains(&r), "loss {r} out of range");
                }
            }
        }
    }

    #[test]
    fn persistence_is_near_configured() {
        let mut n = net(33);
        n.cfg.loss_persistence_6h = 0.75;
        let proc_ = LossProcess::simulate(&n, 16);
        let mut stay = 0u32;
        let mut lossy_total = 0u32;
        for e in 0..15 {
            for l in 0..n.links.len() {
                for dir in [true, false] {
                    if proc_.loss(e, l, dir).is_lossy() {
                        lossy_total += 1;
                        if proc_.loss(e + 1, l, dir).is_lossy() {
                            stay += 1;
                        }
                    }
                }
            }
        }
        assert!(lossy_total > 50, "need lossy samples, got {lossy_total}");
        let persistence = stay as f64 / lossy_total as f64;
        assert!(
            (persistence - 0.75).abs() < 0.12,
            "persistence {persistence} far from 0.75"
        );
    }

    #[test]
    fn apply_epoch_updates_links() {
        let mut n = net(34);
        let proc_ = LossProcess::simulate(&n, 2);
        proc_.apply_epoch(&mut n, 1);
        for (i, l) in n.links.iter().enumerate() {
            assert_eq!(l.loss_ab, proc_.loss(1, i, true));
            assert_eq!(l.loss_ba, proc_.loss(1, i, false));
        }
    }
}
