//! Physical infrastructure generation: PoPs at cities, intra-AS backbones,
//! inter-AS interconnects, routers, interfaces with IP addresses, BGP
//! prefixes, and end-hosts.

use crate::config::TopologyConfig;
use crate::geo::{link_latency, City};
use crate::internet::{
    AsInfo, HostInfo, IfaceInfo, Link, LinkId, LinkKind, PopInfo, PrefixInfo, RouterInfo, Tier,
};
use inano_model::rng::DeterministicRng;
use inano_model::{HostId, IfaceId, Ipv4, LossRate, PopId, Prefix, PrefixId, PrefixTrie, RouterId};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;

/// Everything `generate` produces besides the AS table it mutates.
pub struct InfraTables {
    pub pops: Vec<PopInfo>,
    pub links: Vec<Link>,
    pub pop_adj: Vec<Vec<(LinkId, PopId)>>,
    pub routers: Vec<RouterInfo>,
    pub ifaces: Vec<IfaceInfo>,
    pub prefixes: Vec<PrefixInfo>,
    pub prefix_trie: PrefixTrie,
    pub hosts: Vec<HostInfo>,
    pub iface_by_ip: HashMap<Ipv4, IfaceId>,
    pub host_by_ip: HashMap<Ipv4, HostId>,
}

/// Generate all physical infrastructure. Fills in `pops` and `prefixes`
/// of each [`AsInfo`].
pub fn generate(
    cfg: &TopologyConfig,
    ases: &mut [AsInfo],
    cities: &[City],
    rng: &mut DeterministicRng,
) -> InfraTables {
    let mut pops: Vec<PopInfo> = Vec::new();
    let mut routers: Vec<RouterInfo> = Vec::new();

    // --- PoPs: pick cities per continent of presence, by tier ---
    let cities_of: Vec<Vec<u32>> = (0..cfg.continents)
        .map(|c| {
            cities
                .iter()
                .filter(|ct| ct.continent == c as u8)
                .map(|ct| ct.id)
                .collect()
        })
        .collect();

    for a in ases.iter_mut() {
        for &cont in &a.presence {
            let pool = &cities_of[cont as usize];
            let n = match a.tier {
                Tier::Tier1 => rng.gen_range(2..=4usize),
                Tier::Tier2 => rng.gen_range(1..=3usize),
                Tier::Tier3 => rng.gen_range(1..=3usize),
                Tier::Stub => {
                    if rng.gen_bool(0.2) {
                        2
                    } else {
                        1
                    }
                }
            }
            .min(pool.len());
            let mut chosen = pool.clone();
            chosen.shuffle(rng);
            for &city in chosen.iter().take(n) {
                let id = PopId::from_index(pops.len());
                let loc = cities[city as usize].loc;
                let rtrs: Vec<RouterId> = (0..cfg.routers_per_pop)
                    .map(|_| {
                        let rid = RouterId::from_index(routers.len());
                        routers.push(RouterInfo { id: rid, pop: id });
                        rid
                    })
                    .collect();
                pops.push(PopInfo {
                    id,
                    asn: a.asn,
                    city,
                    loc,
                    routers: rtrs,
                });
                a.pops.push(id);
            }
        }
    }

    // --- links ---
    let mut links: Vec<Link> = Vec::new();
    let mut pop_adj: Vec<Vec<(LinkId, PopId)>> = vec![Vec::new(); pops.len()];
    let dummy_iface = IfaceId::new(u32::MAX);

    let push_link = |links: &mut Vec<Link>,
                     pop_adj: &mut Vec<Vec<(LinkId, PopId)>>,
                     a: PopId,
                     b: PopId,
                     kind: LinkKind,
                     km: f64| {
        debug_assert_ne!(a, b);
        let id = LinkId(links.len() as u32);
        links.push(Link {
            id,
            a,
            b,
            kind,
            latency: link_latency(km),
            loss_ab: LossRate::ZERO,
            loss_ba: LossRate::ZERO,
            iface_a: dummy_iface,
            iface_b: dummy_iface,
        });
        pop_adj[a.index()].push((id, b));
        pop_adj[b.index()].push((id, a));
        id
    };

    // Intra-AS backbone: nearest-neighbour spanning tree plus extra chords
    // for larger ASes (redundant backbones).
    for a in ases.iter() {
        let ps = &a.pops;
        if ps.len() < 2 {
            continue;
        }
        let mut in_tree = vec![ps[0]];
        let mut rest: Vec<PopId> = ps[1..].to_vec();
        while let Some((ri, ti, km)) = rest
            .iter()
            .enumerate()
            .flat_map(|(ri, &r)| {
                in_tree
                    .iter()
                    .enumerate()
                    .map(move |(ti, &t)| (ri, ti, r, t))
            })
            .map(|(ri, ti, r, t)| (ri, ti, pops[r.index()].loc.distance_km(pops[t.index()].loc)))
            .min_by(|x, y| x.2.partial_cmp(&y.2).unwrap())
        {
            let r = rest.remove(ri);
            let t = in_tree[ti];
            push_link(&mut links, &mut pop_adj, t, r, LinkKind::Intra, km);
            in_tree.push(r);
        }
        // Extra chords: one per three PoPs beyond the tree.
        let extra = ps.len() / 3;
        for _ in 0..extra {
            let x = *ps.choose(rng).unwrap();
            let y = *ps.choose(rng).unwrap();
            if x != y && !pop_adj[x.index()].iter().any(|&(_, o)| o == y) {
                let km = pops[x.index()].loc.distance_km(pops[y.index()].loc);
                push_link(&mut links, &mut pop_adj, x, y, LinkKind::Intra, km);
            }
        }
    }

    // Inter-AS interconnects: at shared cities when possible, otherwise the
    // closest PoP pair (a private long-haul interconnect).
    for a in ases.iter() {
        for &(b, rel) in &a.neighbors {
            if b <= a.asn {
                continue; // handle each pair once, from the lower ASN
            }
            let pa = &ases[a.asn.index()].pops;
            let pb = &ases[b.index()].pops;
            let mut shared: Vec<(PopId, PopId)> = Vec::new();
            for &x in pa {
                for &y in pb {
                    if pops[x.index()].city == pops[y.index()].city {
                        shared.push((x, y));
                    }
                }
            }
            let n_links = match (a.tier, ases[b.index()].tier) {
                (Tier::Tier1, Tier::Tier1) => 3,
                (Tier::Tier1, Tier::Tier2) | (Tier::Tier2, Tier::Tier1) => 2,
                _ => {
                    if rel == inano_model::Relationship::Sibling {
                        2
                    } else {
                        1
                    }
                }
            };
            if !shared.is_empty() {
                shared.shuffle(rng);
                for &(x, y) in shared.iter().take(n_links) {
                    // Same city: metro cross-connect, a few km.
                    let km = rng.gen_range(2.0..30.0);
                    push_link(&mut links, &mut pop_adj, x, y, LinkKind::Inter, km);
                }
            } else {
                // Closest pair across the two ASes.
                let (&x, &y, km) = pa
                    .iter()
                    .flat_map(|x| pb.iter().map(move |y| (x, y)))
                    .map(|(x, y)| (x, y, pops[x.index()].loc.distance_km(pops[y.index()].loc)))
                    .min_by(|p, q| p.2.partial_cmp(&q.2).unwrap())
                    .unwrap();
                push_link(&mut links, &mut pop_adj, x, y, LinkKind::Inter, km);
            }
        }
    }

    // --- prefixes ---
    let mut alloc = IpAllocator::new();
    let mut prefixes: Vec<PrefixInfo> = Vec::new();
    let mut prefix_trie = PrefixTrie::new();

    // Interface count per AS decides its infrastructure prefix size.
    let mut endpoints_per_as: Vec<usize> = vec![0; ases.len()];
    for l in &links {
        endpoints_per_as[pops[l.a.index()].asn.index()] += 1;
        endpoints_per_as[pops[l.b.index()].asn.index()] += 1;
    }

    for a in ases.iter_mut() {
        // Infrastructure prefix, sized to the interface count.
        let need = (endpoints_per_as[a.asn.index()] + 2)
            .next_power_of_two()
            .max(256);
        let len = 32 - need.trailing_zeros() as u8;
        let infra = alloc.alloc(len);
        let pid = PrefixId::from_index(prefixes.len());
        prefix_trie.insert(infra, pid);
        prefixes.push(PrefixInfo {
            id: pid,
            prefix: infra,
            origin: a.asn,
            home_pop: a.pops[0],
            is_infrastructure: true,
        });
        a.prefixes.push(pid);

        // Edge prefixes: stubs several, transit tiers a couple (their
        // enterprise customers), tier-1 one.
        let n_edge = match a.tier {
            Tier::Stub => rng.gen_range(1..=cfg.max_stub_prefixes),
            Tier::Tier3 => rng.gen_range(1..=2),
            Tier::Tier2 => rng.gen_range(1..=2),
            Tier::Tier1 => 1,
        };
        for k in 0..n_edge {
            let p = alloc.alloc(24);
            let pid = PrefixId::from_index(prefixes.len());
            prefix_trie.insert(p, pid);
            prefixes.push(PrefixInfo {
                id: pid,
                prefix: p,
                origin: a.asn,
                home_pop: a.pops[k % a.pops.len()],
                is_infrastructure: false,
            });
            a.prefixes.push(pid);
        }
    }

    // --- interfaces ---
    // Each link endpoint gets an interface on the least-loaded router of
    // its PoP, numbered out of the AS's infrastructure prefix.
    let mut ifaces: Vec<IfaceInfo> = Vec::new();
    let mut iface_by_ip: HashMap<Ipv4, IfaceId> = HashMap::new();
    let mut router_load: Vec<usize> = vec![0; routers.len()];
    let mut infra_next: Vec<u64> = vec![1; ases.len()]; // skip network address

    let infra_prefix_of: Vec<Prefix> = ases
        .iter()
        .map(|a| prefixes[a.prefixes[0].index()].prefix)
        .collect();

    for (li, link) in links.iter_mut().enumerate() {
        let (a, b) = (link.a, link.b);
        let ia = make_iface(
            a,
            LinkId(li as u32),
            &pops,
            &infra_prefix_of,
            &mut infra_next,
            &mut router_load,
            &mut ifaces,
            &mut iface_by_ip,
        );
        let ib = make_iface(
            b,
            LinkId(li as u32),
            &pops,
            &infra_prefix_of,
            &mut infra_next,
            &mut router_load,
            &mut ifaces,
            &mut iface_by_ip,
        );
        link.iface_a = ia;
        link.iface_b = ib;
    }

    // --- hosts ---
    let mut hosts: Vec<HostInfo> = Vec::new();
    let mut host_by_ip: HashMap<Ipv4, HostId> = HashMap::new();
    for p in &prefixes {
        if p.is_infrastructure {
            continue;
        }
        for i in 0..cfg.hosts_per_prefix {
            let ip = p.prefix.nth(10 + i as u64);
            let id = HostId::from_index(hosts.len());
            hosts.push(HostInfo {
                id,
                ip,
                prefix: p.id,
                asn: p.origin,
                pop: p.home_pop,
            });
            host_by_ip.insert(ip, id);
        }
    }

    InfraTables {
        pops,
        links,
        pop_adj,
        routers,
        ifaces,
        prefixes,
        prefix_trie,
        hosts,
        iface_by_ip,
        host_by_ip,
    }
}

#[allow(clippy::too_many_arguments)]
fn make_iface(
    pop: PopId,
    link: LinkId,
    pops: &[PopInfo],
    infra_prefix_of: &[Prefix],
    infra_next: &mut [u64],
    router_load: &mut [usize],
    ifaces: &mut Vec<IfaceInfo>,
    iface_by_ip: &mut HashMap<Ipv4, IfaceId>,
) -> IfaceId {
    let pinfo = &pops[pop.index()];
    // Least-loaded router in the PoP.
    let router = *pinfo
        .routers
        .iter()
        .min_by_key(|r| router_load[r.index()])
        .expect("pop has routers");
    router_load[router.index()] += 1;

    let asn = pinfo.asn;
    let ip = infra_prefix_of[asn.index()].nth(infra_next[asn.index()]);
    infra_next[asn.index()] += 1;

    let id = IfaceId::from_index(ifaces.len());
    ifaces.push(IfaceInfo {
        id,
        router,
        ip,
        link,
    });
    let prev = iface_by_ip.insert(ip, id);
    debug_assert!(prev.is_none(), "duplicate interface IP {ip}");
    id
}

/// Sequential, alignment-respecting IPv4 block allocator.
struct IpAllocator {
    next: u32,
}

impl IpAllocator {
    fn new() -> Self {
        // Start at 11.0.0.0 to stay clear of 0/8 and 10/8.
        IpAllocator { next: 0x0B00_0000 }
    }

    fn alloc(&mut self, len: u8) -> Prefix {
        let size = 1u32 << (32 - len);
        // Align up.
        let aligned = (self.next + size - 1) & !(size - 1);
        self.next = aligned + size;
        Prefix::new(Ipv4(aligned), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::as_graph::generate_as_graph;
    use crate::geo::generate_world;
    use inano_model::rng::rng_for;

    fn build(seed: u64) -> (TopologyConfig, Vec<AsInfo>, InfraTables) {
        let cfg = TopologyConfig::tiny(seed);
        let mut rng = rng_for(seed, "test-infra");
        let cities = generate_world(cfg.continents, cfg.cities_per_continent, &mut rng);
        let mut ases = generate_as_graph(&cfg, &mut rng);
        let infra = generate(&cfg, &mut ases, &cities, &mut rng);
        (cfg, ases, infra)
    }

    #[test]
    fn every_as_has_pops_and_prefixes() {
        let (_, ases, _) = build(11);
        for a in &ases {
            assert!(!a.pops.is_empty(), "{} has no PoPs", a.asn);
            assert!(a.prefixes.len() >= 2, "{} needs infra+edge prefix", a.asn);
        }
    }

    #[test]
    fn adjacent_ases_are_physically_linked() {
        let (_, ases, infra) = build(12);
        for a in &ases {
            for &(b, _) in &a.neighbors {
                let linked = infra.links.iter().any(|l| {
                    let (x, y) = (infra.pops[l.a.index()].asn, infra.pops[l.b.index()].asn);
                    (x == a.asn && y == b) || (x == b && y == a.asn)
                });
                assert!(linked, "{} ~ {} adjacency has no link", a.asn, b);
            }
        }
    }

    #[test]
    fn interfaces_are_assigned_and_unique() {
        let (_, _, infra) = build(13);
        for l in &infra.links {
            assert_ne!(l.iface_a.raw(), u32::MAX);
            assert_ne!(l.iface_b.raw(), u32::MAX);
            assert_ne!(l.iface_a, l.iface_b);
        }
        assert_eq!(infra.iface_by_ip.len(), infra.ifaces.len());
    }

    #[test]
    fn iface_ips_map_back_to_owner_as() {
        let (_, ases, infra) = build(14);
        for ifc in infra.ifaces.iter().take(200) {
            let pid = infra.prefix_trie.lookup(ifc.ip).expect("iface ip in trie");
            let owner = infra.prefixes[pid.index()].origin;
            let router_pop = infra.routers[ifc.router.index()].pop;
            assert_eq!(owner, infra.pops[router_pop.index()].asn);
            assert!(infra.prefixes[pid.index()].is_infrastructure);
            let _ = &ases; // silence unused
        }
    }

    #[test]
    fn hosts_live_in_their_prefix() {
        let (_, _, infra) = build(15);
        for h in infra.hosts.iter().take(200) {
            let p = &infra.prefixes[h.prefix.index()];
            assert!(p.prefix.contains(h.ip));
            assert!(!p.is_infrastructure);
            assert_eq!(infra.prefix_trie.lookup(h.ip), Some(h.prefix));
        }
    }

    #[test]
    fn intra_as_backbone_is_connected() {
        let (_, ases, infra) = build(16);
        for a in &ases {
            if a.pops.len() < 2 {
                continue;
            }
            // BFS over intra-AS links only.
            let mut seen = std::collections::HashSet::new();
            let mut queue = vec![a.pops[0]];
            seen.insert(a.pops[0]);
            while let Some(p) = queue.pop() {
                for &(lid, other) in &infra.pop_adj[p.index()] {
                    if infra.links[lid.index()].kind == LinkKind::Intra
                        && infra.pops[other.index()].asn == a.asn
                        && seen.insert(other)
                    {
                        queue.push(other);
                    }
                }
            }
            assert_eq!(seen.len(), a.pops.len(), "{} backbone disconnected", a.asn);
        }
    }

    #[test]
    fn allocator_respects_alignment() {
        let mut a = IpAllocator::new();
        let p1 = a.alloc(24);
        let p2 = a.alloc(22);
        let p3 = a.alloc(24);
        for p in [p1, p2, p3] {
            assert_eq!(p.addr().raw() & (p.size() as u32 - 1), 0, "{p} misaligned");
        }
        // No overlap.
        assert!(!p1.contains(p2.addr()));
        assert!(!p2.contains(p3.addr()));
    }
}
