//! # inano-routing
//!
//! The ground-truth routing oracle for the synthetic Internet: given the
//! topology and a day's churn state, it computes the routes the "real"
//! Internet would use — BGP-style policy routing at the AS level
//! (local preferences with exceptions, selective export, traffic
//! engineering, shortest AS path, deterministic or load-balanced
//! tie-breaks), expanded to PoP level with early-/late-exit intradomain
//! behaviour — and derives path latency and loss.
//!
//! The measurement crate issues traceroutes *through* this oracle; the
//! prediction crates never see it (they only get the measured atlas), and
//! the evaluation harness uses it as the truth to score predictions
//! against.

pub mod expand;
pub mod failures;
pub mod oracle;
pub mod rib;

pub use failures::FailureScenario;
pub use oracle::{PathResult, RoutingOracle};
pub use rib::{DestKey, RouteTree};
