//! The routing oracle: the single entry point for "what does the real
//! Internet do" questions — full PoP-level paths between hosts and
//! prefixes, their latency and loss, reply-path latencies for traceroute
//! RTT simulation, and reachability under failures.

use crate::expand::{expand, PopPath};
use crate::failures::FailureScenario;
use crate::rib::{compute_route_tree, DestKey, RouteTree};
use inano_model::{AsPath, Asn, HostId, LatencyMs, LossRate, PopId, PrefixId, Relationship};
use inano_topology::{DayState, Internet, LinkId};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// A resolved one-way path with its properties.
#[derive(Clone, Debug)]
pub struct PathResult {
    pub pops: Vec<PopId>,
    /// `links[i]` connects `pops[i]` → `pops[i+1]`.
    pub links: Vec<LinkId>,
    pub as_path: AsPath,
    /// One-way latency.
    pub latency: LatencyMs,
    /// One-way loss in the forward direction.
    pub loss: LossRate,
}

/// Ground-truth routing for one day (plus optional injected failures).
///
/// Route trees and reply latencies are cached internally; the oracle is
/// cheap to construct, so parallel experiments build one per thread.
pub struct RoutingOracle<'a> {
    net: &'a Internet,
    day: DayState,
    extra_down: HashSet<LinkId>,
    /// Effective AS adjacency (pairs with >= 1 up interconnect).
    as_adj: Vec<Vec<(Asn, Relationship)>>,
    /// Up interconnects per ordered AS pair.
    pair_links: HashMap<(Asn, Asn), Vec<LinkId>>,
    trees: RefCell<HashMap<DestKey, Rc<RouteTree>>>,
    reply_cache: RefCell<HashMap<(PopId, PrefixId), Option<LatencyMs>>>,
    rtt_cache: RefCell<HashMap<(HostId, HostId), Option<LatencyMs>>>,
    loss_cache: RefCell<HashMap<(HostId, HostId), Option<LossRate>>>,
}

impl<'a> RoutingOracle<'a> {
    /// Oracle for a given day with no extra failures.
    pub fn new(net: &'a Internet, day: DayState) -> Self {
        Self::with_failures(net, day, &FailureScenario::default())
    }

    /// Oracle with an injected failure scenario on top of the day's churn.
    pub fn with_failures(net: &'a Internet, day: DayState, failures: &FailureScenario) -> Self {
        let extra_down: HashSet<LinkId> = failures.down_links.iter().copied().collect();
        let mut pair_links: HashMap<(Asn, Asn), Vec<LinkId>> = HashMap::new();
        for l in net.inter_as_links() {
            if day.is_down(l.id) || extra_down.contains(&l.id) {
                continue;
            }
            let (x, y) = (net.pop_as(l.a), net.pop_as(l.b));
            pair_links.entry((x, y)).or_default().push(l.id);
            pair_links.entry((y, x)).or_default().push(l.id);
        }
        let as_adj: Vec<Vec<(Asn, Relationship)>> = net
            .ases
            .iter()
            .map(|a| {
                a.neighbors
                    .iter()
                    .filter(|(n, _)| pair_links.contains_key(&(a.asn, *n)))
                    .copied()
                    .collect()
            })
            .collect();
        RoutingOracle {
            net,
            day,
            extra_down,
            as_adj,
            pair_links,
            trees: RefCell::new(HashMap::new()),
            reply_cache: RefCell::new(HashMap::new()),
            rtt_cache: RefCell::new(HashMap::new()),
            loss_cache: RefCell::new(HashMap::new()),
        }
    }

    pub fn internet(&self) -> &'a Internet {
        self.net
    }

    pub fn day(&self) -> &DayState {
        &self.day
    }

    /// The destination key a prefix routes under (per-prefix for
    /// traffic-engineered prefixes, per-AS otherwise).
    pub fn dest_key(&self, prefix: PrefixId) -> DestKey {
        if self.net.policy.te_prefix_providers.contains_key(&prefix) {
            DestKey::Prefix(prefix)
        } else {
            DestKey::As(self.net.prefix(prefix).origin)
        }
    }

    /// The (cached) route tree toward a destination.
    pub fn tree(&self, key: DestKey) -> Rc<RouteTree> {
        if let Some(t) = self.trees.borrow().get(&key) {
            return Rc::clone(t);
        }
        let t = Rc::new(compute_route_tree(self.net, &self.day, &self.as_adj, key));
        self.trees.borrow_mut().insert(key, Rc::clone(&t));
        t
    }

    /// Ground-truth AS path from an AS to a prefix.
    pub fn as_path(&self, src: Asn, prefix: PrefixId) -> Option<AsPath> {
        self.tree(self.dest_key(prefix)).as_path_from(src)
    }

    /// Full PoP-level path from a PoP to a prefix's home PoP.
    pub fn path_to_prefix(&self, src_pop: PopId, prefix: PrefixId) -> Option<PathResult> {
        let src_as = self.net.pop_as(src_pop);
        let chain = self.as_path(src_as, prefix)?;
        let dst_pop = self.net.prefix(prefix).home_pop;
        let empty: &[LinkId] = &[];
        let pop_path: PopPath = expand(self.net, chain.as_slice(), src_pop, dst_pop, |x, y| {
            self.pair_links
                .get(&(x, y))
                .map(|v| v.as_slice())
                .unwrap_or(empty)
        })?;
        Some(self.finish(pop_path, chain))
    }

    fn finish(&self, p: PopPath, as_path: AsPath) -> PathResult {
        let latency = p.latency(self.net);
        let loss = LossRate::compose_all(
            p.links
                .iter()
                .zip(&p.pops)
                .map(|(&l, &from)| self.net.link(l).loss_from(from)),
        );
        PathResult {
            pops: p.pops,
            links: p.links,
            as_path,
            latency,
            loss,
        }
    }

    /// Forward path between two hosts.
    pub fn host_path(&self, src: HostId, dst: HostId) -> Option<PathResult> {
        let s = self.net.host(src);
        let d = self.net.host(dst);
        self.path_to_prefix(s.pop, d.prefix)
    }

    /// Forward path from a host to a prefix.
    pub fn host_to_prefix(&self, src: HostId, prefix: PrefixId) -> Option<PathResult> {
        self.path_to_prefix(self.net.host(src).pop, prefix)
    }

    /// Ground-truth RTT between two hosts: forward + reverse one-way
    /// latencies (the two directions may take different routes). Cached:
    /// Vivaldi training and the application studies re-probe the same
    /// pairs many times.
    pub fn rtt(&self, a: HostId, b: HostId) -> Option<LatencyMs> {
        if let Some(v) = self.rtt_cache.borrow().get(&(a, b)) {
            return *v;
        }
        let v = (|| {
            let fwd = self.host_path(a, b)?;
            let rev = self.host_path(b, a)?;
            Some(fwd.latency + rev.latency)
        })();
        self.rtt_cache.borrow_mut().insert((a, b), v);
        v
    }

    /// Round-trip loss between two hosts (forward ∘ reverse), cached.
    pub fn round_trip_loss(&self, a: HostId, b: HostId) -> Option<LossRate> {
        if let Some(v) = self.loss_cache.borrow().get(&(a, b)) {
            return *v;
        }
        let v = (|| {
            let fwd = self.host_path(a, b)?;
            let rev = self.host_path(b, a)?;
            Some(fwd.loss.compose(rev.loss))
        })();
        self.loss_cache.borrow_mut().insert((a, b), v);
        v
    }

    /// One-way latency of the reply path from a PoP back to a prefix
    /// (cached: traceroute simulation asks this for every hop).
    pub fn reply_latency(&self, from: PopId, to_prefix: PrefixId) -> Option<LatencyMs> {
        if let Some(v) = self.reply_cache.borrow().get(&(from, to_prefix)) {
            return *v;
        }
        let v = self.path_to_prefix(from, to_prefix).map(|p| p.latency);
        self.reply_cache.borrow_mut().insert((from, to_prefix), v);
        v
    }

    /// One-way loss of the reply path from a PoP back to a prefix.
    pub fn reply_loss(&self, from: PopId, to_prefix: PrefixId) -> Option<LossRate> {
        self.path_to_prefix(from, to_prefix).map(|p| p.loss)
    }

    /// Can `src` reach `prefix` at the AS level today?
    pub fn reachable(&self, src: HostId, prefix: PrefixId) -> bool {
        let s = self.net.host(src);
        self.tree(self.dest_key(prefix)).reaches(s.asn)
    }

    /// The links that are down (churn + injected failures).
    pub fn down_links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.day
            .down_links
            .iter()
            .chain(self.extra_down.iter())
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_topology::{build_internet, ChurnModel, TopologyConfig};

    fn net(seed: u64) -> Internet {
        build_internet(&TopologyConfig::tiny(seed)).unwrap()
    }

    #[test]
    fn host_paths_exist_and_are_consistent() {
        let n = net(71);
        let oracle = RoutingOracle::new(&n, DayState::default());
        let hosts: Vec<HostId> = (0..20.min(n.hosts.len())).map(HostId::from_index).collect();
        let mut found = 0;
        for &a in &hosts {
            for &b in &hosts {
                if a == b {
                    continue;
                }
                if let Some(p) = oracle.host_path(a, b) {
                    found += 1;
                    assert_eq!(p.pops.len(), p.links.len() + 1);
                    assert_eq!(*p.pops.first().unwrap(), n.host(a).pop);
                    assert_eq!(*p.pops.last().unwrap(), n.prefix(n.host(b).prefix).home_pop);
                    // AS path of the PoP path matches the reported chain.
                    let seq: Vec<Asn> = p.pops.iter().map(|&x| n.pop_as(x)).collect();
                    let collapsed = AsPath::new(seq);
                    assert_eq!(collapsed, p.as_path);
                }
            }
        }
        assert!(found > 300, "expected near-full reachability, got {found}");
    }

    #[test]
    fn rtt_positive_and_symmetric_definition() {
        let n = net(72);
        let oracle = RoutingOracle::new(&n, DayState::default());
        let a = HostId::new(0);
        let b = HostId::new(5);
        let rtt_ab = oracle.rtt(a, b).unwrap();
        let rtt_ba = oracle.rtt(b, a).unwrap();
        assert!(rtt_ab.ms() > 0.0);
        // RTT is direction-agnostic by construction (fwd+rev vs rev+fwd).
        assert!((rtt_ab.ms() - rtt_ba.ms()).abs() < 1e-9);
    }

    #[test]
    fn asymmetry_exists_in_ground_truth() {
        // Over many pairs, at least some forward/reverse AS paths differ —
        // the paper's central premise for the FROM_SRC plane.
        let n = net(73);
        let oracle = RoutingOracle::new(&n, DayState::default());
        let mut asym = 0;
        let mut total = 0;
        for i in 0..30.min(n.hosts.len()) {
            for j in (i + 1)..30.min(n.hosts.len()) {
                let (a, b) = (HostId::from_index(i), HostId::from_index(j));
                if let (Some(f), Some(r)) = (oracle.host_path(a, b), oracle.host_path(b, a)) {
                    total += 1;
                    let mut rev: Vec<Asn> = r.as_path.iter().collect();
                    rev.reverse();
                    if AsPath::new(rev) != f.as_path {
                        asym += 1;
                    }
                }
            }
        }
        assert!(total > 100);
        assert!(asym > 0, "no asymmetric routes in {total} pairs");
    }

    #[test]
    fn reply_latency_cached_and_stable() {
        let n = net(74);
        let oracle = RoutingOracle::new(&n, DayState::default());
        let pop = n.hosts[3].pop;
        let pfx = n.hosts[9].prefix;
        let l1 = oracle.reply_latency(pop, pfx);
        let l2 = oracle.reply_latency(pop, pfx);
        assert_eq!(l1, l2);
        assert!(l1.is_some());
    }

    #[test]
    fn failures_cut_reachability() {
        let n = net(75);
        // Fail every interconnect of some stub's providers to cut it off.
        let stub_host = n
            .hosts
            .iter()
            .find(|h| {
                n.as_info(h.asn).tier == inano_topology::Tier::Stub
                    && n.as_info(h.asn).neighbors.len() == 1
            })
            .cloned();
        let Some(h) = stub_host else {
            return; // no single-homed stub in this tiny net
        };
        let down: Vec<LinkId> = n
            .inter_as_links()
            .filter(|l| n.pop_as(l.a) == h.asn || n.pop_as(l.b) == h.asn)
            .map(|l| l.id)
            .collect();
        let scenario = FailureScenario {
            down_links: down,
            ..Default::default()
        };
        let oracle = RoutingOracle::with_failures(&n, DayState::default(), &scenario);
        let other = n.hosts.iter().find(|o| o.asn != h.asn).unwrap();
        assert!(!oracle.reachable(h.id, other.prefix));
        assert!(oracle.host_path(h.id, other.id).is_none());
    }

    #[test]
    fn day_churn_changes_some_routes() {
        let n = build_internet(&TopologyConfig::tiny(76)).unwrap();
        let cm = ChurnModel::new(&n);
        let o0 = RoutingOracle::new(&n, cm.day_state(0));
        let mut changed = 0;
        let mut total = 0;
        // A single day of churn on a tiny topology can miss the sampled
        // pairs entirely; scan a few days.
        for day in 1..=5u32 {
            let o1 = RoutingOracle::new(&n, cm.day_state(day));
            for i in 0..25.min(n.hosts.len()) {
                for j in 0..25.min(n.hosts.len()) {
                    if i == j {
                        continue;
                    }
                    let (a, b) = (HostId::from_index(i), HostId::from_index(j));
                    let p0 = o0.host_path(a, b).map(|p| p.pops);
                    let p1 = o1.host_path(a, b).map(|p| p.pops);
                    total += 1;
                    if p0 != p1 {
                        changed += 1;
                    }
                }
            }
        }
        // Churn should change some but not most paths.
        assert!(changed > 0, "no route churn at all over {total} pairs");
        assert!(
            (changed as f64) < (total as f64) * 0.6,
            "churn too violent: {changed}/{total}"
        );
    }

    #[test]
    fn loss_composes_along_path() {
        let n = net(77);
        let oracle = RoutingOracle::new(&n, DayState::default());
        let p = oracle.host_path(HostId::new(1), HostId::new(8)).unwrap();
        let manual = LossRate::compose_all(
            p.links
                .iter()
                .zip(&p.pops)
                .map(|(&l, &from)| n.link(l).loss_from(from)),
        );
        assert!((p.loss.rate() - manual.rate()).abs() < 1e-12);
    }
}
