//! Failure injection for the detour-routing study (§7.3, Figure 11).
//!
//! The paper measured real path outages from PlanetLab; we synthesise
//! failure *episodes* instead: a set of links taken down such that a
//! destination becomes unreachable from some-but-not-all sources ("at
//! least 10% of our sources were simultaneously unable to reach the
//! destination but at least 10% could").

use inano_model::rng::DeterministicRng;
use inano_model::PopId;
use inano_topology::{Internet, LinkId, LinkKind};
use rand::seq::SliceRandom;
use rand::Rng;

/// A set of additionally-failed links layered on top of a day's churn.
#[derive(Clone, Debug, Default)]
pub struct FailureScenario {
    pub down_links: Vec<LinkId>,
    /// Human-readable description of what failed (for reports).
    pub description: String,
}

impl FailureScenario {
    /// Fail `n` random inter-AS links.
    pub fn random_inter_links(net: &Internet, n: usize, rng: &mut DeterministicRng) -> Self {
        let mut links: Vec<LinkId> = net.inter_as_links().map(|l| l.id).collect();
        links.shuffle(rng);
        links.truncate(n);
        FailureScenario {
            description: format!("{} random inter-AS links", links.len()),
            down_links: links,
        }
    }

    /// Fail every link touching a PoP (a PoP-wide outage — power, fibre
    /// cut at a carrier hotel...). This is the canonical "partial outage":
    /// sources routed through the PoP lose the destination, others don't.
    pub fn pop_outage(net: &Internet, pop: PopId) -> Self {
        let down: Vec<LinkId> = net.pop_adj[pop.index()].iter().map(|&(l, _)| l).collect();
        FailureScenario {
            description: format!("outage of {pop}"),
            down_links: down,
        }
    }

    /// Fail a transit PoP chosen from the PoPs on the ground-truth path
    /// toward a destination (excluding the first and last AS), which is
    /// how real partial outages bisect the source population.
    pub fn transit_outage_on_path(
        net: &Internet,
        path_pops: &[PopId],
        rng: &mut DeterministicRng,
    ) -> Option<Self> {
        if path_pops.len() < 3 {
            return None;
        }
        let first_as = net.pop_as(path_pops[0]);
        let last_as = net.pop_as(*path_pops.last().unwrap());
        let transit: Vec<PopId> = path_pops[1..path_pops.len() - 1]
            .iter()
            .copied()
            .filter(|&p| net.pop_as(p) != first_as && net.pop_as(p) != last_as)
            .collect();
        let &pop = transit.choose(rng)?;
        Some(Self::pop_outage(net, pop))
    }

    /// Fail a random subset of the interconnects entering the
    /// destination's AS (losing some providers but not all).
    pub fn dest_upstream_failure(
        net: &Internet,
        dst_pop: PopId,
        rng: &mut DeterministicRng,
    ) -> Option<Self> {
        let dst_as = net.pop_as(dst_pop);
        let upstream: Vec<LinkId> = net
            .links
            .iter()
            .filter(|l| {
                l.kind == LinkKind::Inter
                    && (net.pop_as(l.a) == dst_as || net.pop_as(l.b) == dst_as)
            })
            .map(|l| l.id)
            .collect();
        if upstream.len() < 2 {
            return None;
        }
        let k = rng.gen_range(1..upstream.len());
        let mut chosen = upstream;
        chosen.shuffle(rng);
        chosen.truncate(k);
        Some(FailureScenario {
            description: format!("{k} upstream links of {dst_as} down"),
            down_links: chosen,
        })
    }

    /// Merge two scenarios.
    pub fn merged(mut self, other: &FailureScenario) -> Self {
        self.down_links.extend_from_slice(&other.down_links);
        self.down_links.sort();
        self.down_links.dedup();
        self.description = format!("{} + {}", self.description, other.description);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_model::rng::rng_for;
    use inano_topology::{build_internet, TopologyConfig};

    #[test]
    fn random_links_are_inter_as() {
        let net = build_internet(&TopologyConfig::tiny(81)).unwrap();
        let mut rng = rng_for(81, "fail");
        let s = FailureScenario::random_inter_links(&net, 5, &mut rng);
        assert_eq!(s.down_links.len(), 5);
        for l in &s.down_links {
            assert_eq!(net.link(*l).kind, LinkKind::Inter);
        }
    }

    #[test]
    fn pop_outage_covers_all_adjacent_links() {
        let net = build_internet(&TopologyConfig::tiny(82)).unwrap();
        let pop = net.pops[0].id;
        let s = FailureScenario::pop_outage(&net, pop);
        assert_eq!(s.down_links.len(), net.pop_adj[pop.index()].len());
    }

    #[test]
    fn dest_upstream_failure_is_partial() {
        let net = build_internet(&TopologyConfig::tiny(83)).unwrap();
        let mut rng = rng_for(83, "fail");
        // Find a multi-homed destination.
        let pop = net
            .pops
            .iter()
            .find(|p| {
                net.links
                    .iter()
                    .filter(|l| {
                        l.kind == LinkKind::Inter
                            && (net.pop_as(l.a) == p.asn || net.pop_as(l.b) == p.asn)
                    })
                    .count()
                    >= 2
            })
            .unwrap();
        let s = FailureScenario::dest_upstream_failure(&net, pop.id, &mut rng).unwrap();
        let total = net
            .links
            .iter()
            .filter(|l| {
                l.kind == LinkKind::Inter
                    && (net.pop_as(l.a) == pop.asn || net.pop_as(l.b) == pop.asn)
            })
            .count();
        assert!(!s.down_links.is_empty());
        assert!(s.down_links.len() < total, "must leave some path up");
    }

    #[test]
    fn merged_dedups() {
        let net = build_internet(&TopologyConfig::tiny(84)).unwrap();
        let a = FailureScenario::pop_outage(&net, net.pops[0].id);
        let b = FailureScenario::pop_outage(&net, net.pops[0].id);
        let n = a.down_links.len();
        let m = a.merged(&b);
        assert_eq!(m.down_links.len(), n);
    }
}
