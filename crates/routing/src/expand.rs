//! PoP-level expansion of AS-level routes: within each AS on the path,
//! traffic enters at the ingress PoP determined by the previous
//! interconnect and leaves at an egress chosen by early-exit (nearest exit
//! to the ingress — hot potato) or late-exit (carry it on our own backbone
//! toward the destination) policy, over the AS's backbone shortest paths.

use inano_model::{Asn, LatencyMs, PopId};
use inano_topology::{Internet, LinkId, LinkKind};
use std::collections::BinaryHeap;

/// A PoP-level path: `links[i]` connects `pops[i]` to `pops[i+1]`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PopPath {
    pub pops: Vec<PopId>,
    pub links: Vec<LinkId>,
}

impl PopPath {
    pub fn single(pop: PopId) -> PopPath {
        PopPath {
            pops: vec![pop],
            links: Vec::new(),
        }
    }

    /// One-way latency: sum of link latencies.
    pub fn latency(&self, net: &Internet) -> LatencyMs {
        self.links.iter().map(|&l| net.link(l).latency).sum()
    }

    fn extend(&mut self, other: PopPath) {
        debug_assert_eq!(self.pops.last(), other.pops.first());
        self.links.extend_from_slice(&other.links);
        self.pops.extend_from_slice(&other.pops[1..]);
    }

    fn push_link(&mut self, link: LinkId, to: PopId) {
        self.links.push(link);
        self.pops.push(to);
    }
}

/// Expand an AS-level chain into a PoP-level path.
///
/// `up_links(pair)` must yield the inter-AS links currently up between an
/// AS pair (the oracle supplies this with the day's churn and any injected
/// failures applied). Returns `None` only if an AS pair on the chain has
/// no surviving interconnect (the oracle prunes such chains beforehand,
/// but failure injection can race the adjacency view).
pub fn expand<'a>(
    net: &Internet,
    as_chain: &[Asn],
    src_pop: PopId,
    dst_pop: PopId,
    up_links: impl Fn(Asn, Asn) -> &'a [LinkId],
) -> Option<PopPath> {
    debug_assert!(!as_chain.is_empty());
    debug_assert_eq!(net.pop_as(src_pop), as_chain[0]);
    debug_assert_eq!(net.pop_as(dst_pop), *as_chain.last().unwrap());

    let mut path = PopPath::single(src_pop);
    let mut cur = src_pop;

    for w in as_chain.windows(2) {
        let (here, next) = (w[0], w[1]);
        let cands = up_links(here, next);
        if cands.is_empty() {
            return None;
        }
        // Distances from the current ingress to every PoP of this AS.
        let dist = intra_as_dijkstra(net, cur);
        let chosen = if net.policy.uses_late_exit(here, next) {
            // Late exit: pick the interconnect whose far side is
            // geographically closest to the destination PoP, i.e. carry
            // the traffic as far as possible ourselves.
            let dst_loc = net.pop(dst_pop).loc;
            cands
                .iter()
                .copied()
                .filter(|&l| local_side(net, l, here).is_some())
                .min_by(|&x, &y| {
                    let rx = far_side(net, x, here);
                    let ry = far_side(net, y, here);
                    let dx = net.pop(rx).loc.distance_km(dst_loc);
                    let dy = net.pop(ry).loc.distance_km(dst_loc);
                    dx.partial_cmp(&dy).unwrap().then(x.cmp(&y))
                })?
        } else {
            // Early exit (hot potato): nearest egress from the ingress.
            cands
                .iter()
                .copied()
                .filter(|&l| {
                    local_side(net, l, here)
                        .map(|p| dist[p.index()].is_finite())
                        .unwrap_or(false)
                })
                .min_by(|&x, &y| {
                    let dx = dist[local_side(net, x, here).unwrap().index()];
                    let dy = dist[local_side(net, y, here).unwrap().index()];
                    dx.partial_cmp(&dy).unwrap().then(x.cmp(&y))
                })?
        };
        let egress = local_side(net, chosen, here)?;
        let ingress = far_side(net, chosen, here);
        path.extend(intra_as_path(net, cur, egress)?);
        path.push_link(chosen, ingress);
        cur = ingress;
    }

    // Final intra-AS stretch to the destination PoP.
    path.extend(intra_as_path(net, cur, dst_pop)?);
    Some(path)
}

/// The endpoint of `link` inside AS `asn` (None if neither side is).
fn local_side(net: &Internet, link: LinkId, asn: Asn) -> Option<PopId> {
    let l = net.link(link);
    if net.pop_as(l.a) == asn {
        Some(l.a)
    } else if net.pop_as(l.b) == asn {
        Some(l.b)
    } else {
        None
    }
}

/// The endpoint of `link` *outside* AS `asn`.
fn far_side(net: &Internet, link: LinkId, asn: Asn) -> PopId {
    let l = net.link(link);
    if net.pop_as(l.a) == asn {
        l.b
    } else {
        l.a
    }
}

/// Dijkstra over one AS's intra-AS links from `src`; returns latency in ms
/// per PoP index (infinite for PoPs outside the AS or unreachable).
fn intra_as_dijkstra(net: &Internet, src: PopId) -> Vec<f64> {
    let asn = net.pop_as(src);
    let mut dist = vec![f64::INFINITY; net.pops.len()];
    dist[src.index()] = 0.0;
    let mut heap: BinaryHeap<(ordered::NotNan, PopId)> = BinaryHeap::new();
    heap.push((ordered::NotNan(0.0), src));
    while let Some((ordered::NotNan(neg_d), p)) = heap.pop() {
        let d = -neg_d;
        if d > dist[p.index()] {
            continue;
        }
        for &(lid, other) in &net.pop_adj[p.index()] {
            let l = net.link(lid);
            if l.kind != LinkKind::Intra || net.pop_as(other) != asn {
                continue;
            }
            let nd = d + l.latency.ms();
            if nd < dist[other.index()] {
                dist[other.index()] = nd;
                heap.push((ordered::NotNan(-nd), other));
            }
        }
    }
    dist
}

/// Shortest intra-AS PoP path from `src` to `dst` (same AS).
fn intra_as_path(net: &Internet, src: PopId, dst: PopId) -> Option<PopPath> {
    debug_assert_eq!(net.pop_as(src), net.pop_as(dst));
    if src == dst {
        return Some(PopPath::single(src));
    }
    let asn = net.pop_as(src);
    let mut dist = vec![f64::INFINITY; net.pops.len()];
    let mut parent: Vec<Option<(LinkId, PopId)>> = vec![None; net.pops.len()];
    dist[src.index()] = 0.0;
    let mut heap: BinaryHeap<(ordered::NotNan, PopId)> = BinaryHeap::new();
    heap.push((ordered::NotNan(0.0), src));
    while let Some((ordered::NotNan(neg_d), p)) = heap.pop() {
        let d = -neg_d;
        if p == dst {
            break;
        }
        if d > dist[p.index()] {
            continue;
        }
        for &(lid, other) in &net.pop_adj[p.index()] {
            let l = net.link(lid);
            if l.kind != LinkKind::Intra || net.pop_as(other) != asn {
                continue;
            }
            let nd = d + l.latency.ms();
            if nd < dist[other.index()] {
                dist[other.index()] = nd;
                parent[other.index()] = Some((lid, p));
                heap.push((ordered::NotNan(-nd), other));
            }
        }
    }
    if dist[dst.index()].is_infinite() {
        return None; // backbone disconnected — generator prevents this
    }
    // Reconstruct.
    let mut rev_pops = vec![dst];
    let mut rev_links = Vec::new();
    let mut cur = dst;
    while cur != src {
        let (lid, prev) = parent[cur.index()].expect("parent chain intact");
        rev_links.push(lid);
        rev_pops.push(prev);
        cur = prev;
    }
    rev_pops.reverse();
    rev_links.reverse();
    Some(PopPath {
        pops: rev_pops,
        links: rev_links,
    })
}

/// Minimal ordered-float shim so the heap can hold f64 keys without
/// pulling in a dependency.
mod ordered {
    #[derive(PartialEq, PartialOrd)]
    pub struct NotNan(pub f64);
    impl Eq for NotNan {}
    #[allow(clippy::derive_ord_xor_partial_ord)]
    impl Ord for NotNan {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.partial_cmp(other).expect("NaN in Dijkstra key")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_topology::{build_internet, TopologyConfig};
    use std::collections::HashMap;

    fn pair_links(net: &Internet) -> HashMap<(Asn, Asn), Vec<LinkId>> {
        let mut m: HashMap<(Asn, Asn), Vec<LinkId>> = HashMap::new();
        for l in net.inter_as_links() {
            let (x, y) = (net.pop_as(l.a), net.pop_as(l.b));
            m.entry((x, y)).or_default().push(l.id);
            m.entry((y, x)).or_default().push(l.id);
        }
        m
    }

    #[test]
    fn intra_path_within_single_as() {
        let net = build_internet(&TopologyConfig::tiny(61)).unwrap();
        let multi = net.ases.iter().find(|a| a.pops.len() >= 3).unwrap();
        let (s, d) = (multi.pops[0], multi.pops[2]);
        let p = intra_as_path(&net, s, d).unwrap();
        assert_eq!(p.pops.first(), Some(&s));
        assert_eq!(p.pops.last(), Some(&d));
        assert_eq!(p.links.len(), p.pops.len() - 1);
        for (i, &l) in p.links.iter().enumerate() {
            let link = net.link(l);
            assert!(link.a == p.pops[i] || link.b == p.pops[i]);
            assert_eq!(link.other(p.pops[i]), p.pops[i + 1]);
        }
    }

    #[test]
    fn expand_crosses_each_as_once() {
        let net = build_internet(&TopologyConfig::tiny(62)).unwrap();
        let pl = pair_links(&net);
        let empty: Vec<LinkId> = Vec::new();
        // Find adjacent AS pair and expand a 2-AS chain.
        let a = net.ases.iter().find(|a| !a.neighbors.is_empty()).unwrap();
        let (b, _) = a.neighbors[0];
        let chain = [a.asn, b];
        let src = a.pops[0];
        let dst = net.ases[b.index()].pops[0];
        let path = expand(&net, &chain, src, dst, |x, y| {
            pl.get(&(x, y)).map(|v| v.as_slice()).unwrap_or(&empty)
        })
        .unwrap();
        // AS sequence along the PoP path must be exactly [a, b] collapsed.
        let as_seq: Vec<Asn> = path.pops.iter().map(|&p| net.pop_as(p)).collect();
        let mut dedup = as_seq.clone();
        dedup.dedup();
        assert_eq!(dedup, vec![a.asn, b]);
        assert_eq!(path.pops.first(), Some(&src));
        assert_eq!(path.pops.last(), Some(&dst));
    }

    #[test]
    fn expand_same_as_is_intra_only() {
        let net = build_internet(&TopologyConfig::tiny(63)).unwrap();
        let multi = net.ases.iter().find(|a| a.pops.len() >= 2).unwrap();
        let empty: Vec<LinkId> = Vec::new();
        let path = expand(&net, &[multi.asn], multi.pops[0], multi.pops[1], |_, _| {
            empty.as_slice()
        })
        .unwrap();
        for &l in &path.links {
            assert_eq!(net.link(l).kind, LinkKind::Intra);
        }
    }

    #[test]
    fn expand_fails_without_interconnect() {
        let net = build_internet(&TopologyConfig::tiny(64)).unwrap();
        let a = net.ases.iter().find(|a| !a.neighbors.is_empty()).unwrap();
        let (b, _) = a.neighbors[0];
        let empty: Vec<LinkId> = Vec::new();
        let r = expand(
            &net,
            &[a.asn, b],
            a.pops[0],
            net.ases[b.index()].pops[0],
            |_, _| empty.as_slice(),
        );
        assert!(r.is_none());
    }

    #[test]
    fn latency_is_sum_of_links() {
        let net = build_internet(&TopologyConfig::tiny(65)).unwrap();
        let pl = pair_links(&net);
        let empty: Vec<LinkId> = Vec::new();
        let a = net.ases.iter().find(|a| !a.neighbors.is_empty()).unwrap();
        let (b, _) = a.neighbors[0];
        let path = expand(
            &net,
            &[a.asn, b],
            a.pops[0],
            net.ases[b.index()].pops[0],
            |x, y| pl.get(&(x, y)).map(|v| v.as_slice()).unwrap_or(&empty),
        )
        .unwrap();
        let manual: f64 = path.links.iter().map(|&l| net.link(l).latency.ms()).sum();
        assert!((path.latency(&net).ms() - manual).abs() < 1e-9);
    }
}
