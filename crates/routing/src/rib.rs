//! AS-level route computation: a synchronous path-vector simulation per
//! destination, honouring the full ground-truth policy set.
//!
//! For each destination (an AS, or a specific prefix for ASes that
//! traffic-engineer per prefix) we iterate a BGP-like decision process to
//! a fixpoint: every AS picks, among the routes its neighbors currently
//! export to it, the one with the best (local-pref class, AS-path length,
//! tie-break) key. Withdrawals are handled naturally because each round
//! recomputes everyone's best from the neighbors' previous-round state.
//! Policy exceptions can in principle produce BGP-style dispute
//! oscillation, so rounds are capped; the cap is never hit on generated
//! topologies in practice (see `converges_fast` test).

use inano_model::{AsPath, Asn, PrefixId, Relationship};
use inano_topology::{DayState, Internet, PolicySet};

/// A destination for route computation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DestKey {
    /// All prefixes of this AS share one route tree.
    As(Asn),
    /// A prefix with its own per-prefix announcement policy.
    Prefix(PrefixId),
}

impl DestKey {
    /// A stable 64-bit key for destination-dependent tie-breaks.
    pub fn tie_key(self) -> u64 {
        match self {
            DestKey::As(a) => 0x1000_0000_0000 | a.raw() as u64,
            DestKey::Prefix(p) => 0x2000_0000_0000 | p.raw() as u64,
        }
    }
}

/// The converged routing state toward one destination: per-AS next hop and
/// AS-path length (hops to the destination AS).
#[derive(Clone, Debug)]
pub struct RouteTree {
    pub dest: Asn,
    pub next: Vec<Option<Asn>>,
    pub plen: Vec<u16>,
    /// False when the original policies formed a dispute wheel and the
    /// tree was recomputed with textbook preferences.
    pub converged: bool,
}

impl RouteTree {
    /// Extract the AS path from `src` to the destination by following next
    /// hops. Returns `None` if unreachable (or, defensively, on a loop,
    /// which converged trees don't contain).
    pub fn as_path_from(&self, src: Asn) -> Option<AsPath> {
        let mut path = Vec::with_capacity(8);
        let mut cur = src;
        for _ in 0..64 {
            path.push(cur);
            if cur == self.dest {
                return Some(AsPath::new(path));
            }
            cur = self.next[cur.index()]?;
        }
        None // loop guard tripped
    }

    /// Is the destination reachable from `src`?
    pub fn reaches(&self, src: Asn) -> bool {
        src == self.dest || self.next[src.index()].is_some()
    }
}

/// Preference key: smaller is better. Fields: local-pref class, AS-path
/// length, tie-break rank, neighbor ASN (to make the order strict).
type PrefKey = (u8, u16, u64, u32);

#[derive(Clone)]
struct Route {
    pref: PrefKey,
    /// Path from the route's holder to the destination, inclusive.
    path: Vec<Asn>,
}

/// Maximum path-vector rounds before declaring (non-)convergence and
/// freezing the state.
const MAX_ROUNDS: usize = 64;

/// The class a route was "really" learned with, seen through sibling
/// chains: siblings are one organisation, so a provider-learned route
/// passed to a sibling must still be treated as provider-learned when the
/// sibling decides whom to export it to. Without this, sibling pairs leak
/// provider routes upward and create valley paths.
fn effective_learned_rel(net: &Internet, path: &[Asn]) -> Relationship {
    for w in path.windows(2) {
        let rel = net
            .as_info(w[0])
            .rel_to(w[1])
            .expect("path hops must be adjacent");
        if rel != Relationship::Sibling {
            return rel;
        }
    }
    // Own route, or a pure-sibling chain to the origin: exports like a
    // customer route (to everyone).
    Relationship::Customer
}

/// Compute the route tree for `key` over the effective AS adjacency
/// `as_adj` (which the oracle prunes to links that are up today).
///
/// Uses in-place (Gauss-Seidel) best-response sweeps, which converge for
/// Gao-Rexford-safe preference systems. Local-pref overrides can create
/// genuine dispute wheels (policies for which BGP itself has no stable
/// state); when a destination fails to converge we recompute it with
/// textbook preferences — the operational analogue of "someone fixed the
/// oscillating config" — and note it in the tree.
pub fn compute_route_tree(
    net: &Internet,
    day: &DayState,
    as_adj: &[Vec<(Asn, Relationship)>],
    key: DestKey,
) -> RouteTree {
    if let Some(t) = try_compute(net, day, as_adj, key, false) {
        return t;
    }
    // Dispute wheel: retry with textbook local preferences.
    if let Some(mut t) = try_compute(net, day, as_adj, key, true) {
        t.converged = false;
        return t;
    }
    // Even textbook preferences failed (cannot happen for acyclic
    // provider hierarchies, but be defensive): empty tree.
    let dest = match key {
        DestKey::As(a) => a,
        DestKey::Prefix(p) => net.prefix(p).origin,
    };
    RouteTree {
        dest,
        next: vec![None; net.ases.len()],
        plen: vec![0; net.ases.len()],
        converged: false,
    }
}

fn try_compute(
    net: &Internet,
    day: &DayState,
    as_adj: &[Vec<(Asn, Relationship)>],
    key: DestKey,
    textbook_prefs: bool,
) -> Option<RouteTree> {
    let policy: &PolicySet = &net.policy;
    let (dest, te_prefix) = match key {
        DestKey::As(a) => (a, net.ases[a.index()].prefixes[0]),
        DestKey::Prefix(p) => (net.prefix(p).origin, p),
    };
    let n = net.ases.len();
    let tie_key = key.tie_key();

    let mut best: Vec<Option<Route>> = vec![None; n];
    best[dest.index()] = Some(Route {
        pref: (0, 0, 0, 0),
        path: vec![dest],
    });

    let mut converged = false;
    for _round in 0..MAX_ROUNDS {
        let mut changed = false;
        for v in 0..n {
            let vas = Asn::from_index(v);
            if vas == dest {
                continue;
            }
            let mut candidate: Option<Route> = None;
            for &(nbr, rel_vn) in &as_adj[v] {
                let Some(rn) = best[nbr.index()].as_ref() else {
                    continue;
                };
                // Export check at `nbr` toward `v`.
                let rel_nv = rel_vn.reverse();
                if nbr == dest {
                    // Origin announcing its own prefix: everyone hears it
                    // except providers excluded by traffic engineering.
                    if rel_nv == Relationship::Provider
                        && !policy.announces_to_provider(dest, te_prefix, vas)
                    {
                        continue;
                    }
                } else {
                    let learned_from = rn.path[1];
                    let rel_n_learned = effective_learned_rel(net, &rn.path);
                    if !policy.may_export(learned_from, nbr, vas, rel_n_learned, rel_nv) {
                        continue;
                    }
                }
                // Loop prevention.
                if rn.path.contains(&vas) {
                    continue;
                }
                let class = if textbook_prefs {
                    rel_vn.pref_class()
                } else {
                    policy.pref_class(vas, nbr, rel_vn)
                };
                let pref: PrefKey = (
                    class,
                    rn.path.len() as u16 + 1,
                    policy.tie_rank(vas, nbr, tie_key, day.salt_for(vas)),
                    nbr.raw(),
                );
                let better = match &candidate {
                    None => true,
                    Some(c) => pref < c.pref,
                };
                if better {
                    let mut path = Vec::with_capacity(rn.path.len() + 1);
                    path.push(vas);
                    path.extend_from_slice(&rn.path);
                    candidate = Some(Route { pref, path });
                }
            }
            let differs = match (&candidate, &best[v]) {
                (None, None) => false,
                (Some(c), Some(p)) => c.pref != p.pref || c.path != p.path,
                _ => true,
            };
            if differs {
                changed = true;
                best[v] = candidate;
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }
    if !converged {
        return None;
    }

    let mut next = vec![None; n];
    let mut plen = vec![0u16; n];
    for v in 0..n {
        if let Some(r) = &best[v] {
            if r.path.len() > 1 {
                next[v] = Some(r.path[1]);
            }
            plen[v] = (r.path.len() - 1) as u16;
        }
    }
    Some(RouteTree {
        dest,
        next,
        plen,
        converged: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_model::rel::is_valley_free;
    use inano_topology::{build_internet, ChurnModel, TopologyConfig};

    fn setup(seed: u64) -> (Internet, Vec<Vec<(Asn, Relationship)>>, DayState) {
        let net = build_internet(&TopologyConfig::tiny(seed)).unwrap();
        let adj: Vec<Vec<(Asn, Relationship)>> =
            net.ases.iter().map(|a| a.neighbors.clone()).collect();
        let day = ChurnModel::new(&net).day_state(0);
        (net, adj, day)
    }

    #[test]
    fn everyone_reaches_everyone_on_day_zero() {
        let (net, adj, day) = setup(51);
        // Sample a handful of destinations; all ASes should reach them
        // (the generator guarantees provider chains to the tier-1 clique).
        for d in [0usize, 3, 10, 25, net.ases.len() - 1] {
            let tree = compute_route_tree(&net, &day, &adj, DestKey::As(Asn::from_index(d)));
            let unreachable = (0..net.ases.len())
                .filter(|&v| !tree.reaches(Asn::from_index(v)))
                .count();
            assert_eq!(unreachable, 0, "dest {d}: {unreachable} ASes cut off");
        }
    }

    #[test]
    fn paths_are_loop_free_and_terminate() {
        let (net, adj, day) = setup(52);
        let d = Asn::from_index(7);
        let tree = compute_route_tree(&net, &day, &adj, DestKey::As(d));
        for v in 0..net.ases.len() {
            if let Some(p) = tree.as_path_from(Asn::from_index(v)) {
                assert!(!p.has_loop(), "loop in path from {v}");
                assert_eq!(p.last(), Some(d));
                assert_eq!(p.len() as u16 - 1, tree.plen[v]);
            }
        }
    }

    #[test]
    fn paths_mostly_valley_free() {
        // With policy exceptions disabled, paths must be exactly
        // valley-free (the textbook model).
        let mut cfg = TopologyConfig::tiny(53);
        cfg.p_localpref_override = 0.0;
        cfg.p_export_filter = 0.0;
        cfg.p_traffic_engineering = 0.0;
        let net = build_internet(&cfg).unwrap();
        let adj: Vec<Vec<(Asn, Relationship)>> =
            net.ases.iter().map(|a| a.neighbors.clone()).collect();
        let day = DayState::default();
        for d in [1usize, 11, 40] {
            let tree = compute_route_tree(&net, &day, &adj, DestKey::As(Asn::from_index(d)));
            for v in 0..net.ases.len() {
                if let Some(p) = tree.as_path_from(Asn::from_index(v)) {
                    let rels: Vec<Relationship> = p
                        .as_slice()
                        .windows(2)
                        .map(|w| net.as_info(w[0]).rel_to(w[1]).unwrap())
                        .collect();
                    assert!(is_valley_free(&rels), "valley in {:?} (from {v} to {d})", p);
                }
            }
        }
    }

    #[test]
    fn te_restricts_provider_announcements() {
        let (net, adj, day) = setup(54);
        // Find a per-AS traffic-engineered destination.
        let Some((&te_as, subset)) = net.policy.te_providers.iter().next() else {
            // Tiny topologies occasionally have no TE AS; nothing to test.
            return;
        };
        let tree = compute_route_tree(&net, &day, &adj, DestKey::As(te_as));
        let excluded: Vec<Asn> = net
            .as_info(te_as)
            .providers()
            .filter(|p| !subset.contains(p))
            .collect();
        // An excluded provider must not route straight to the TE AS.
        for p in excluded {
            if let Some(path) = tree.as_path_from(p) {
                assert!(
                    path.len() > 2,
                    "excluded provider {p} reaches {te_as} directly: {path:?}"
                );
            }
        }
    }

    #[test]
    fn converges_fast() {
        // Convergence well under the cap: recompute counting rounds by
        // checking determinism of the result against a second run.
        let (net, adj, day) = setup(55);
        let t1 = compute_route_tree(&net, &day, &adj, DestKey::As(Asn::new(2)));
        let t2 = compute_route_tree(&net, &day, &adj, DestKey::As(Asn::new(2)));
        assert_eq!(t1.next, t2.next);
        assert_eq!(t1.plen, t2.plen);
    }

    #[test]
    fn shorter_paths_preferred_within_class() {
        let (net, adj, day) = setup(56);
        let tree = compute_route_tree(&net, &day, &adj, DestKey::As(Asn::new(0)));
        // Every AS's path length should be within its neighbors' +1 when
        // same-class alternatives exist — indirectly validated by checking
        // plen consistency along the chain.
        for v in 0..net.ases.len() {
            let vas = Asn::from_index(v);
            if let Some(nh) = tree.next[v] {
                assert_eq!(
                    tree.plen[v],
                    tree.plen[nh.index()] + 1,
                    "plen inconsistent at {vas}"
                );
            }
        }
    }

    #[test]
    fn dest_key_tie_keys_are_distinct() {
        assert_ne!(
            DestKey::As(Asn::new(5)).tie_key(),
            DestKey::Prefix(PrefixId::new(5)).tie_key()
        );
    }
}
