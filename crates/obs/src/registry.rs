//! The unified metrics registry: one named map of counters, gauges and
//! latency histograms per process, snapshotted into a [`MetricsDump`]
//! that merges exactly across servers.
//!
//! ## Handles, not lookups
//!
//! The hot path never touches the registry. [`MetricsRegistry::counter`]
//! hands back a [`Counter`] — a clonable `Arc<AtomicU64>` wrapper — and
//! incrementing it is one relaxed `fetch_add`, the same cost as the
//! ad-hoc atomics it replaces. The registry's map is only walked at
//! [`MetricsRegistry::dump`] time (a scrape, once a second at most).
//!
//! ## Collectors
//!
//! Subsystems that already keep their own state (a `QueryEngine`'s
//! stats, a cache's counter snapshot) don't re-plumb every atomic:
//! they register a *collector* — a closure run at dump time that
//! appends `(name, value)` pairs from a fresh snapshot.
//!
//! ## Merge semantics
//!
//! Fleet aggregation follows `ServiceStats::aggregate`: counters and
//! histogram buckets sum element-wise (exact — never average
//! percentiles), while gauges take the **max** — a gauge is a level or
//! watermark (queue depth, convergence lag, peak memory), and the
//! merged fleet view reports the worst member.

use crate::hist::LatencyHistogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// A named monotone counter. Cloning shares the underlying atomic.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named level (queue depth, lag, watermark). Cloning shares the
/// underlying atomic.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` is higher — the watermark pattern.
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One registered metric: the live handle the registry snapshots.
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<LatencyHistogram>),
}

impl Metric {
    fn snapshot(&self) -> MetricValue {
        match self {
            Metric::Counter(c) => MetricValue::Counter(c.get()),
            Metric::Gauge(g) => MetricValue::Gauge(g.get()),
            Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
        }
    }
}

/// A snapshotted metric value, as it travels in a [`MetricsDump`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotone count; merges by summing.
    Counter(u64),
    /// Level or watermark; merges by max (fleet-worst).
    Gauge(u64),
    /// Raw log₂ bucket counts; merges element-wise (exact).
    Histogram(Vec<u64>),
}

/// A closure run at dump time to append snapshot-derived entries.
type Collector = Box<dyn Fn(&mut Vec<(String, MetricValue)>) + Send + Sync>;

/// The process-wide metric map. See the module docs for the contract.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: RwLock<BTreeMap<String, Metric>>,
    collectors: Mutex<Vec<Collector>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use. Repeat calls
    /// (any clone holder) share one atomic. If the name is already
    /// taken by a different kind, a detached handle is returned — the
    /// registry never panics over a naming bug, the dump just won't
    /// show the detached writer.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.metrics.write().expect("metrics lock");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => {
                debug_assert!(false, "metric {name} registered with another kind");
                Counter::default()
            }
        }
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.metrics.write().expect("metrics lock");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => {
                debug_assert!(false, "metric {name} registered with another kind");
                Gauge::default()
            }
        }
    }

    /// Register an existing histogram under `name` (histograms are
    /// usually owned by their subsystem and attached, not created
    /// through the registry).
    pub fn attach_histogram(&self, name: &str, hist: Arc<LatencyHistogram>) {
        let mut map = self.metrics.write().expect("metrics lock");
        map.insert(name.to_string(), Metric::Histogram(hist));
    }

    /// Register a dump-time collector; see the module docs.
    pub fn register_collector<F>(&self, f: F)
    where
        F: Fn(&mut Vec<(String, MetricValue)>) + Send + Sync + 'static,
    {
        self.collectors
            .lock()
            .expect("collectors lock")
            .push(Box::new(f));
    }

    /// Snapshot every registered metric plus every collector's output
    /// into a sorted, stable-named dump.
    pub fn dump(&self) -> MetricsDump {
        let mut entries: Vec<(String, MetricValue)> = {
            let map = self.metrics.read().expect("metrics lock");
            map.iter()
                .map(|(name, m)| (name.clone(), m.snapshot()))
                .collect()
        };
        for collect in self.collectors.lock().expect("collectors lock").iter() {
            collect(&mut entries);
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsDump { entries }
    }
}

/// A point-in-time snapshot of a registry: sorted `(name, value)`
/// pairs, ready for the wire, the text endpoint, or a fleet merge.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsDump {
    /// Sorted by name.
    pub entries: Vec<(String, MetricValue)>,
}

impl MetricsDump {
    /// The value under `name`, if present.
    pub fn value(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// The counter under `name`, or 0 (absent counters merge as 0).
    pub fn counter(&self, name: &str) -> u64 {
        match self.value(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// The gauge under `name`, or 0.
    pub fn gauge(&self, name: &str) -> u64 {
        match self.value(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Sum of every counter whose name ends with `suffix` — the fleet
    /// aggregation shorthand for per-shard names (`shard0.queries`,
    /// `shard1.queries`, ...).
    pub fn counter_sum(&self, suffix: &str) -> u64 {
        self.entries
            .iter()
            .filter_map(|(n, v)| match v {
                MetricValue::Counter(c) if n.ends_with(suffix) => Some(*c),
                _ => None,
            })
            .sum()
    }

    /// Merge `other` into `self` per the registry's merge semantics:
    /// counters sum, histogram buckets sum element-wise, gauges take
    /// the max. A name that is one kind here and another there keeps
    /// this dump's value — a kind mismatch is a bug, never a panic.
    pub fn merge(&mut self, other: &MetricsDump) {
        for (name, theirs) in &other.entries {
            match self.entries.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => {
                    let ours = &mut self.entries[i].1;
                    match (ours, theirs) {
                        (MetricValue::Counter(a), MetricValue::Counter(b)) => {
                            *a = a.saturating_add(*b);
                        }
                        (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = (*a).max(*b),
                        (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                            if a.len() < b.len() {
                                a.resize(b.len(), 0);
                            }
                            for (acc, &c) in a.iter_mut().zip(b) {
                                *acc = acc.saturating_add(c);
                            }
                        }
                        _ => {} // kind mismatch: keep ours
                    }
                }
                Err(i) => self.entries.insert(i, (name.clone(), theirs.clone())),
            }
        }
    }

    /// The exact merge of many dumps (fleet members, scrape ticks).
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a MetricsDump>) -> MetricsDump {
        let mut out = MetricsDump::default();
        for p in parts {
            out.merge(p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_one_atomic_and_dump_sees_them() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("srv.accepted");
        let b = reg.counter("srv.accepted");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let g = reg.gauge("srv.active");
        g.set(5);
        g.raise(3); // lower: no-op
        g.raise(9);
        let dump = reg.dump();
        assert_eq!(dump.counter("srv.accepted"), 3);
        assert_eq!(dump.gauge("srv.active"), 9);
        assert_eq!(dump.counter("srv.missing"), 0);
    }

    #[test]
    fn kind_mismatch_is_detached_not_a_panic() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x");
        c.inc();
        // Release builds: a gauge request for a counter name returns a
        // detached handle and the registered counter is untouched.
        if !cfg!(debug_assertions) {
            let g = reg.gauge("x");
            g.set(99);
            assert_eq!(reg.dump().counter("x"), 1);
        }
    }

    #[test]
    fn collectors_append_at_dump_time() {
        let reg = MetricsRegistry::new();
        let live = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&live);
        reg.register_collector(move |out| {
            out.push((
                "shard0.queries".into(),
                MetricValue::Counter(seen.load(Ordering::Relaxed)),
            ));
        });
        live.store(7, Ordering::Relaxed);
        assert_eq!(reg.dump().counter("shard0.queries"), 7);
        live.store(11, Ordering::Relaxed);
        assert_eq!(reg.dump().counter("shard0.queries"), 11);
    }

    #[test]
    fn attached_histograms_dump_their_buckets() {
        let reg = MetricsRegistry::new();
        let h = Arc::new(LatencyHistogram::default());
        reg.attach_histogram("shard0.latency_us", Arc::clone(&h));
        h.record_us(10);
        h.record_us(5000);
        match reg.dump().value("shard0.latency_us") {
            Some(MetricValue::Histogram(b)) => assert_eq!(b.iter().sum::<u64>(), 2),
            other => panic!("want histogram, got {other:?}"),
        }
    }

    #[test]
    fn merge_sums_counters_maxes_gauges_sums_buckets() {
        let a = MetricsDump {
            entries: vec![
                ("c".into(), MetricValue::Counter(3)),
                ("g".into(), MetricValue::Gauge(5)),
                ("h".into(), MetricValue::Histogram(vec![1, 0, 2])),
                ("only_a".into(), MetricValue::Counter(1)),
            ],
        };
        let b = MetricsDump {
            entries: vec![
                ("c".into(), MetricValue::Counter(4)),
                ("g".into(), MetricValue::Gauge(2)),
                ("h".into(), MetricValue::Histogram(vec![0, 1, 0, 9])),
                ("only_b".into(), MetricValue::Gauge(8)),
            ],
        };
        let m = MetricsDump::merged([&a, &b]);
        assert_eq!(m.counter("c"), 7);
        assert_eq!(m.gauge("g"), 5);
        assert_eq!(
            m.value("h"),
            Some(&MetricValue::Histogram(vec![1, 1, 2, 9]))
        );
        assert_eq!(m.counter("only_a"), 1);
        assert_eq!(m.gauge("only_b"), 8);
        // Entries stay sorted so `value` can binary-search.
        let names: Vec<_> = m.entries.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn counter_sum_aggregates_per_shard_names() {
        let d = MetricsDump {
            entries: vec![
                ("shard0.queries".into(), MetricValue::Counter(10)),
                ("shard1.queries".into(), MetricValue::Counter(5)),
                ("shard1.errors".into(), MetricValue::Counter(2)),
            ],
        };
        assert_eq!(d.counter_sum(".queries"), 15);
        assert_eq!(d.counter_sum(".errors"), 2);
    }
}
