//! The log₂ latency histogram and its exact-merge quantile math.
//!
//! This lived in `inano-service::stats` through v4; it moved here so
//! the registry can treat histograms as a first-class metric kind and
//! so layers below the service (net, swarm) can record into one
//! without a dependency cycle. `inano-service` re-exports these names,
//! so existing callers are unaffected.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two latency buckets: bucket `i` covers
/// `[2^i, 2^(i+1))` microseconds, so 40 buckets reach ~12 days.
pub const BUCKETS: usize = 40;

/// The quantile's bucket over a raw log₂ count vector, reported as the
/// bucket's geometric midpoint (`1.5 × 2^i` µs) — bucket-resolution,
/// which is all a power-of-two histogram can honestly claim. Shared by
/// the live histogram and by aggregators merging snapshots from many
/// engines (shards, fleet members): summing bucket vectors element-wise
/// and calling this is exact, unlike averaging percentiles.
pub fn quantile_from_counts(counts: &[u64], q: f64) -> u64 {
    // A bucket index beyond u64's shift range can only come from a
    // malformed foreign histogram (ours has 40 buckets); saturate
    // rather than overflow the shift.
    let midpoint = |i: usize| {
        let base = 1u64 << i.min(63);
        base.saturating_add(base / 2)
    };
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((total as f64) * q).ceil().max(1.0) as u64;
    let mut seen = 0;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return midpoint(i);
        }
    }
    midpoint(counts.len().max(1) - 1)
}

/// Lock-free latency histogram over microseconds.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    pub fn record_us(&self, us: u64) {
        let idx = (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// See [`quantile_from_counts`].
    pub fn quantile_us(&self, q: f64) -> u64 {
        quantile_from_counts(&self.snapshot(), q)
    }

    /// A point-in-time copy of the raw bucket counts, in bucket order.
    pub fn snapshot(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let h = LatencyHistogram::default();
        for us in [10u64, 10, 10, 10, 10, 10, 10, 10, 10, 5000] {
            h.record_us(us);
        }
        let p50 = h.quantile_us(0.5);
        assert!((8..=16).contains(&p50), "p50 bucket ~10us, got {p50}");
        let p99 = h.quantile_us(0.99);
        assert!((4096..=8192).contains(&p99), "p99 bucket ~5ms, got {p99}");
        assert_eq!(h.count(), 10);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
    }

    #[test]
    fn quantile_saturates_on_foreign_bucket_counts() {
        // 80 buckets is double ours; the shift must saturate, not wrap.
        let mut counts = vec![0u64; 80];
        counts[79] = 1;
        assert!(quantile_from_counts(&counts, 0.99) >= 1 << 62);
    }
}
