//! Observability substrate for the iPlane Nano serving fleet.
//!
//! Everything a running `inano-serve` knows about itself funnels
//! through here: the unified [`MetricsRegistry`] (named counters,
//! gauges and log₂ [`LatencyHistogram`]s behind cheap atomic handles),
//! the mergeable [`MetricsDump`] snapshot it exports (counters and
//! histograms merge exactly, like `ServiceStats::aggregate`), the
//! request-scoped [`TraceCtx`] that times a request through the
//! decode → queue → engine → encode stages, the drainable [`SlowLog`]
//! of the worst-latency requests, the typed, monotonically sequenced
//! [`EventJournal`] (the causal timeline behind the counters: swaps,
//! resyncs, overload episodes, connection churn), and a [`textserve`]
//! module that renders a dump as Prometheus-style text exposition over
//! a trivial HTTP/1.0 responder.
//!
//! The crate is deliberately dependency-free (std only): it sits below
//! `inano-service`, `inano-net` and `inano-swarm` in the workspace, so
//! anything it pulled in would be paid by every layer above it.

mod hist;
mod journal;
mod registry;
mod slowlog;
pub mod textserve;
mod trace;

pub use hist::{quantile_from_counts, LatencyHistogram, BUCKETS};
pub use journal::{now_ms, Event, EventJournal, EventKind, EventsPage};
pub use registry::{Counter, Gauge, MetricValue, MetricsDump, MetricsRegistry};
pub use slowlog::{SlowEntry, SlowLog};
pub use trace::{TraceCtx, TraceTimings};
