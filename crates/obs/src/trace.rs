//! Request-scoped stage timing.
//!
//! A [`TraceCtx`] rides alongside one request from the moment its
//! frame is decoded to the moment its reply is encoded, splitting the
//! wall time into the stages a server operator can actually act on:
//! decode (wire parsing), queue (waiting for a responder slot), engine
//! (shard dispatch + prediction), encode (reply serialization + write).
//! [`TraceCtx::finish`] seals it into a [`TraceTimings`] — the value
//! the wire layer ships back to a tracing client and the slow log
//! stores.

use std::time::Instant;

/// Accumulates one request's stage boundaries. Construct with
/// [`TraceCtx::begin`] right after decode, mark the stages as they
/// pass, and [`TraceCtx::finish`] when the reply bytes are out.
#[derive(Debug)]
pub struct TraceCtx {
    mark: Instant,
    decode_us: u32,
    queue_us: u32,
    engine_us: u32,
}

/// One request's stage breakdown, microseconds per stage. `u32` per
/// stage bounds a stage at ~71 minutes, far beyond any timeout in the
/// stack, and keeps the wire trailer fixed-size.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceTimings {
    pub decode_us: u32,
    pub queue_us: u32,
    pub engine_us: u32,
    pub encode_us: u32,
}

impl TraceTimings {
    /// Total time across all recorded stages.
    pub fn total_us(&self) -> u64 {
        self.decode_us as u64 + self.queue_us as u64 + self.engine_us as u64 + self.encode_us as u64
    }
}

fn elapsed_us(since: Instant) -> u32 {
    since.elapsed().as_micros().min(u32::MAX as u128) as u32
}

impl TraceCtx {
    /// Start the clock at the decode → queue boundary; `decode_us` is
    /// how long the wire read + parse took (measured by the reader).
    pub fn begin(decode_us: u32) -> TraceCtx {
        TraceCtx {
            mark: Instant::now(),
            decode_us,
            queue_us: 0,
            engine_us: 0,
        }
    }

    /// The request left the queue: everything since `begin` was wait.
    pub fn dequeued(&mut self) {
        self.queue_us = elapsed_us(self.mark);
        self.mark = Instant::now();
    }

    /// The engine produced the reply frame.
    pub fn served(&mut self) {
        self.engine_us = elapsed_us(self.mark);
        self.mark = Instant::now();
    }

    /// The reply bytes are written: everything since `served` was
    /// encode + write. Consumes the context into its timings.
    pub fn finish(self) -> TraceTimings {
        TraceTimings {
            decode_us: self.decode_us,
            queue_us: self.queue_us,
            engine_us: self.engine_us,
            encode_us: elapsed_us(self.mark),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn stages_split_the_wall_clock() {
        let mut t = TraceCtx::begin(7);
        thread::sleep(Duration::from_millis(2));
        t.dequeued();
        thread::sleep(Duration::from_millis(2));
        t.served();
        let timings = t.finish();
        assert_eq!(timings.decode_us, 7);
        assert!(timings.queue_us >= 1_000, "queue {}", timings.queue_us);
        assert!(timings.engine_us >= 1_000, "engine {}", timings.engine_us);
        assert!(timings.total_us() >= 4_007);
    }
}
