//! A ring buffer of the worst-latency requests, cheap enough to sit on
//! every request's exit path.
//!
//! The fast path is one relaxed atomic load: a request under the
//! threshold touches nothing else — no lock, no allocation (the
//! description closure is never called). Requests over the threshold
//! claim a slot by bumping an atomic cursor and store an entry behind
//! that slot's mutex; with one mutex per slot, writers only contend
//! when the ring wraps faster than a lock hand-off, and readers
//! ([`SlowLog::drain`]) never block the request path for more than one
//! slot at a time.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// One over-threshold request: what it was and how long it took.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowEntry {
    pub latency_us: u64,
    /// Free-form description (frame kind, shard, request id...).
    pub what: String,
}

/// The drainable top-K slow-query ring. See the module docs.
pub struct SlowLog {
    threshold_us: AtomicU64,
    cursor: AtomicUsize,
    slots: Vec<Mutex<Option<SlowEntry>>>,
}

impl SlowLog {
    /// A ring of `capacity` slots recording requests at or over
    /// `threshold_us` microseconds.
    pub fn new(capacity: usize, threshold_us: u64) -> SlowLog {
        SlowLog {
            threshold_us: AtomicU64::new(threshold_us),
            cursor: AtomicUsize::new(0),
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
        }
    }

    pub fn threshold_us(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed)
    }

    /// Retune the threshold live (0 records everything).
    pub fn set_threshold_us(&self, us: u64) {
        self.threshold_us.store(us, Ordering::Relaxed);
    }

    /// Record a request that took `latency_us`. Below the threshold
    /// this is one atomic load and `what` is never called.
    pub fn record_with(&self, latency_us: u64, what: impl FnOnce() -> String) {
        if latency_us < self.threshold_us.load(Ordering::Relaxed) {
            return;
        }
        let slot = self.cursor.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        *self.slots[slot].lock().expect("slow-log slot") = Some(SlowEntry {
            latency_us,
            what: what(),
        });
    }

    /// Take every retained entry, worst first, leaving the ring empty.
    pub fn drain(&self) -> Vec<SlowEntry> {
        let mut out: Vec<SlowEntry> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().expect("slow-log slot").take())
            .collect();
        out.sort_by_key(|e| std::cmp::Reverse(e.latency_us));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_threshold_never_builds_the_description() {
        let log = SlowLog::new(4, 1000);
        log.record_with(10, || panic!("must not be called"));
        assert!(log.drain().is_empty());
    }

    #[test]
    fn drain_returns_worst_first_and_empties_the_ring() {
        let log = SlowLog::new(8, 100);
        for us in [150u64, 5000, 100, 700] {
            log.record_with(us, || format!("q{us}"));
        }
        let drained = log.drain();
        let lat: Vec<u64> = drained.iter().map(|e| e.latency_us).collect();
        assert_eq!(lat, vec![5000, 700, 150, 100]);
        assert_eq!(drained[0].what, "q5000");
        assert!(log.drain().is_empty());
    }

    #[test]
    fn ring_wraps_keeping_the_most_recent_k() {
        let log = SlowLog::new(2, 0);
        for us in 1..=5u64 {
            log.record_with(us, String::new);
        }
        let lat: Vec<u64> = log.drain().into_iter().map(|e| e.latency_us).collect();
        assert_eq!(lat, vec![5, 4]);
    }

    #[test]
    fn threshold_is_live_tunable() {
        let log = SlowLog::new(4, u64::MAX);
        log.record_with(1 << 40, || "huge".into());
        assert!(log.drain().is_empty(), "u64::MAX threshold records nothing");
        log.set_threshold_us(0);
        log.record_with(1, || "tiny".into());
        assert_eq!(log.drain().len(), 1);
    }
}
