//! The fleet event journal: a bounded ring of typed, monotonically
//! sequenced events — the causal complement to the metrics registry.
//!
//! Counters say *that* state changed; the journal says *when and why*:
//! a generation swap, a delta application, a full resync after falling
//! off the delta chain, an overload episode opening and closing, a
//! connection arriving or leaving. Each event carries a strictly
//! increasing sequence number (one `fetch_add`, process-wide per
//! journal) and a coarse wall-clock millisecond timestamp, so
//! per-server streams scraped over the wire merge into one fleet
//! timeline ordered by `(t_ms, seq)`.
//!
//! The ring follows the [`crate::SlowLog`] shape — an atomic cursor
//! over per-slot mutexes — so emission is cheap enough for connection
//! and swap paths (it is **not** on the per-query path). Overflow is
//! deliberate and *detectable*: when writers lap readers, the
//! overwritten sequence numbers are gone, and [`EventJournal::since`]
//! reports exactly how many requested events were lost instead of
//! silently skipping them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// What happened. Codes are stable wire-visible u8s — append-only.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A new atlas generation was swapped in (any path).
    GenerationSwap,
    /// A delta advanced the current generation in place.
    DeltaApplied,
    /// The full atlas was re-fetched and replaced (fell off the chain,
    /// bootstrap, or head moved past the retained deltas).
    FullResync,
    /// A mid-fetch generation swap was detected and recovered by
    /// restarting the read against the new epoch.
    RaceRecovered,
    /// The server began shedding work (budget or queue exhaustion).
    OverloadStart,
    /// The overload episode ended (a shed-free accept/respond cycle).
    OverloadEnd,
    /// A connection was admitted.
    ConnAccepted,
    /// A connection terminated (either side, any reason).
    ConnClosed,
    /// A mirror refresh pass against the upstream failed.
    MirrorRefreshFailed,
}

impl EventKind {
    /// Stable wire code. Append new kinds; never renumber.
    pub fn code(self) -> u8 {
        match self {
            EventKind::GenerationSwap => 1,
            EventKind::DeltaApplied => 2,
            EventKind::FullResync => 3,
            EventKind::RaceRecovered => 4,
            EventKind::OverloadStart => 5,
            EventKind::OverloadEnd => 6,
            EventKind::ConnAccepted => 7,
            EventKind::ConnClosed => 8,
            EventKind::MirrorRefreshFailed => 9,
        }
    }

    /// Decode a wire code; `None` for codes this build doesn't know
    /// (a newer peer's kinds — callers skip, never fail the frame).
    pub fn from_code(code: u8) -> Option<EventKind> {
        Some(match code {
            1 => EventKind::GenerationSwap,
            2 => EventKind::DeltaApplied,
            3 => EventKind::FullResync,
            4 => EventKind::RaceRecovered,
            5 => EventKind::OverloadStart,
            6 => EventKind::OverloadEnd,
            7 => EventKind::ConnAccepted,
            8 => EventKind::ConnClosed,
            9 => EventKind::MirrorRefreshFailed,
            _ => return None,
        })
    }

    /// Stable snake-case name, used in text exposition and BENCH JSON.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::GenerationSwap => "generation_swap",
            EventKind::DeltaApplied => "delta_applied",
            EventKind::FullResync => "full_resync",
            EventKind::RaceRecovered => "race_recovered",
            EventKind::OverloadStart => "overload_start",
            EventKind::OverloadEnd => "overload_end",
            EventKind::ConnAccepted => "conn_accepted",
            EventKind::ConnClosed => "conn_closed",
            EventKind::MirrorRefreshFailed => "mirror_refresh_failed",
        }
    }
}

/// One journal entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Strictly increasing per journal, starting at 0. Never reused.
    pub seq: u64,
    /// Coarse wall-clock milliseconds since the Unix epoch, captured
    /// at emission. Coarse on purpose: it orders events *across*
    /// servers; `seq` orders them within one.
    pub t_ms: u64,
    pub kind: EventKind,
    /// Free-form context: shard, day, peer address, error text.
    pub detail: String,
}

/// A page of events returned by [`EventJournal::since`], plus how many
/// requested events the ring had already overwritten.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventsPage {
    /// Ascending by `seq`, each `>= the requested since_seq`.
    pub events: Vec<Event>,
    /// Requested sequence numbers no longer retained. Zero means the
    /// page is gapless from `since_seq` to the journal head.
    pub lost: u64,
    /// Pass this as the next `since_seq` to continue the stream.
    pub next_seq: u64,
}

/// The bounded, lock-free-emission event ring. See the module docs.
pub struct EventJournal {
    next_seq: AtomicU64,
    slots: Vec<Mutex<Option<Event>>>,
}

/// Milliseconds since the Unix epoch, saturating at 0 for pre-epoch
/// clocks (a misconfigured container, not a panic).
pub fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

impl EventJournal {
    /// A ring retaining the most recent `capacity` events.
    pub fn new(capacity: usize) -> EventJournal {
        EventJournal {
            next_seq: AtomicU64::new(0),
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The sequence number the *next* emitted event will get — i.e.
    /// one past the newest event so far.
    pub fn head_seq(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Emit an event with the current wall clock.
    pub fn emit(&self, kind: EventKind, detail: impl Into<String>) {
        self.emit_at(now_ms(), kind, detail);
    }

    /// Emit with an explicit timestamp (tests, replays).
    pub fn emit_at(&self, t_ms: u64, kind: EventKind, detail: impl Into<String>) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.slots.len() as u64) as usize;
        *self.slots[slot].lock().expect("journal slot") = Some(Event {
            seq,
            t_ms,
            kind,
            detail: detail.into(),
        });
    }

    /// Every retained event with `seq >= since_seq`, ascending, plus
    /// the count of requested events the ring no longer holds (lapped
    /// by writers). Reading never consumes: the same page can be
    /// served to any number of scrapers.
    pub fn since(&self, since_seq: u64) -> EventsPage {
        // Head is read *before* the slot scan: events emitted during
        // the scan (seq >= head) are excluded so they can't make the
        // page look larger than the request, and the page never claims
        // loss it can't know about yet.
        let head = self.head_seq();
        let mut events: Vec<Event> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().expect("journal slot").clone())
            .filter(|e| e.seq >= since_seq && e.seq < head)
            .collect();
        events.sort_by_key(|e| e.seq);
        // Every seq in [since_seq, head) was assigned; any not in the
        // page was overwritten (a writer lapped the ring).
        let requested = head.saturating_sub(since_seq);
        let lost = requested.saturating_sub(events.len() as u64);
        let next_seq = head;
        EventsPage {
            events,
            lost,
            next_seq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_strictly_increases_and_since_never_reorders() {
        let j = EventJournal::new(16);
        for i in 0..10u64 {
            j.emit_at(i, EventKind::DeltaApplied, format!("day={i}"));
        }
        let page = j.since(0);
        assert_eq!(page.lost, 0);
        assert_eq!(page.next_seq, 10);
        let seqs: Vec<u64> = page.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
        assert_eq!(page.events[3].detail, "day=3");
    }

    #[test]
    fn since_filters_and_overflow_reports_lost() {
        let j = EventJournal::new(4);
        for i in 0..10u64 {
            j.emit_at(i, EventKind::ConnAccepted, "");
        }
        // Ring of 4 retains seqs 6..=9.
        let page = j.since(0);
        let seqs: Vec<u64> = page.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(page.lost, 6);
        assert_eq!(page.next_seq, 10);
        // Resuming from next_seq is gapless and empty.
        let tail = j.since(page.next_seq);
        assert!(tail.events.is_empty());
        assert_eq!(tail.lost, 0);
        assert_eq!(tail.next_seq, 10);
        // A reader that kept up sees no loss.
        let caught_up = j.since(7);
        assert_eq!(caught_up.events.len(), 3);
        assert_eq!(caught_up.lost, 0);
    }

    #[test]
    fn kind_codes_round_trip_and_unknown_is_none() {
        for kind in [
            EventKind::GenerationSwap,
            EventKind::DeltaApplied,
            EventKind::FullResync,
            EventKind::RaceRecovered,
            EventKind::OverloadStart,
            EventKind::OverloadEnd,
            EventKind::ConnAccepted,
            EventKind::ConnClosed,
            EventKind::MirrorRefreshFailed,
        ] {
            assert_eq!(EventKind::from_code(kind.code()), Some(kind));
            assert!(!kind.name().is_empty());
        }
        assert_eq!(EventKind::from_code(0), None);
        assert_eq!(EventKind::from_code(200), None);
    }

    #[test]
    fn concurrent_emitters_never_duplicate_a_seq() {
        let j = std::sync::Arc::new(EventJournal::new(256));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let j = std::sync::Arc::clone(&j);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        j.emit(EventKind::ConnClosed, "");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let page = j.since(0);
        assert_eq!(page.events.len(), 200);
        assert_eq!(page.lost, 0);
        let mut seqs: Vec<u64> = page.events.iter().map(|e| e.seq).collect();
        let sorted = seqs.clone();
        seqs.dedup();
        assert_eq!(seqs, sorted, "duplicated seq");
        assert_eq!(seqs.len(), 200);
    }
}
