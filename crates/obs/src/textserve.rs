//! Prometheus-style text exposition for a [`MetricsDump`], and the
//! trivial HTTP/1.0 responder `inano-serve --metrics-text` mounts it
//! on.
//!
//! The responder is deliberately not a web server: it reads and
//! discards one request head, writes one `200 OK` with the rendered
//! registry, and closes — exactly the subset `curl` and a Prometheus
//! scraper need, with zero dependencies and no connection reuse to get
//! wrong.

use crate::registry::{MetricValue, MetricsDump};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Registry names use `.` as the namespace separator
/// (`shard0.mirror.deltas_applied`); Prometheus names admit only
/// `[a-zA-Z0-9_:]`, so everything else becomes `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Render a dump as Prometheus text exposition (version 0.0.4):
/// counters and gauges as single samples, histograms as cumulative
/// `_bucket{le="..."}` series (bucket `i` covers `[2^i, 2^(i+1))` µs,
/// so its upper bound is `2^(i+1)`) plus `+Inf` and `_count`.
pub fn render_prometheus(dump: &MetricsDump) -> String {
    let mut out = String::new();
    for (name, value) in &dump.entries {
        let pname = sanitize(name);
        match value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {pname} counter\n{pname} {v}\n"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {pname} gauge\n{pname} {v}\n"));
            }
            MetricValue::Histogram(buckets) => {
                out.push_str(&format!("# TYPE {pname} histogram\n"));
                let mut cum = 0u64;
                for (i, &c) in buckets.iter().enumerate() {
                    cum = cum.saturating_add(c);
                    if c != 0 {
                        let le = 1u128 << (i + 1).min(127);
                        out.push_str(&format!("{pname}_bucket{{le=\"{le}\"}} {cum}\n"));
                    }
                }
                out.push_str(&format!("{pname}_bucket{{le=\"+Inf\"}} {cum}\n"));
                out.push_str(&format!("{pname}_count {cum}\n"));
            }
        }
    }
    out
}

/// A running `--metrics-text` endpoint. Dropping it stops the accept
/// thread (within one poll interval) and closes the listener.
pub struct MetricsTextServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl MetricsTextServer {
    /// Bind `addr` and serve `body()` to every HTTP request, each
    /// rendered fresh at request time.
    pub fn bind<A, F>(addr: A, body: F) -> io::Result<MetricsTextServer>
    where
        A: ToSocketAddrs,
        F: Fn() -> String + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        let handle = thread::Builder::new()
            .name("inano-metrics-text".into())
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // One request, one response, close. Errors
                            // (a scraper hanging up early) only cost
                            // that one connection.
                            let _ = answer(stream, &body);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(25));
                        }
                        Err(_) => thread::sleep(Duration::from_millis(25)),
                    }
                }
            })
            .expect("spawn metrics-text thread");
        Ok(MetricsTextServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

fn answer(stream: std::net::TcpStream, body: &dyn Fn() -> String) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream);
    // Read up to the blank line ending the request head; the request
    // line and headers are irrelevant — every path gets the metrics.
    let mut line = String::new();
    while reader.read_line(&mut line)? > 0 {
        if line == "\r\n" || line == "\n" || line.trim().is_empty() {
            break;
        }
        line.clear();
    }
    let text = body();
    let mut stream = reader.into_inner();
    stream.write_all(
        format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n",
            text.len()
        )
        .as_bytes(),
    )?;
    stream.write_all(text.as_bytes())?;
    stream.flush()
}

impl Drop for MetricsTextServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use std::io::Read;
    use std::net::TcpStream;

    #[test]
    fn render_counters_gauges_histograms() {
        let d = MetricsDump {
            entries: vec![
                (
                    "shard0.mirror.deltas_applied".into(),
                    MetricValue::Counter(2),
                ),
                ("srv.active".into(), MetricValue::Gauge(3)),
                (
                    "shard0.latency_us".into(),
                    MetricValue::Histogram(vec![0, 1, 2]),
                ),
            ],
        };
        let text = render_prometheus(&d);
        assert!(text.contains("shard0_mirror_deltas_applied 2\n"), "{text}");
        assert!(text.contains("# TYPE srv_active gauge\nsrv_active 3\n"));
        // Bucket 1 covers [2,4): le=4, cumulative 1; bucket 2 adds 2.
        assert!(text.contains("shard0_latency_us_bucket{le=\"4\"} 1\n"));
        assert!(text.contains("shard0_latency_us_bucket{le=\"8\"} 3\n"));
        assert!(text.contains("shard0_latency_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("shard0_latency_us_count 3\n"));
    }

    #[test]
    fn http_responder_serves_a_fresh_dump_per_request() {
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.counter("srv.accepted");
        let body_reg = Arc::clone(&reg);
        let srv =
            MetricsTextServer::bind("127.0.0.1:0", move || render_prometheus(&body_reg.dump()))
                .expect("bind metrics text");

        let fetch = |addr: SocketAddr| {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n")
                .expect("request");
            let mut buf = String::new();
            s.read_to_string(&mut buf).expect("response");
            buf
        };

        c.inc();
        let first = fetch(srv.local_addr());
        assert!(first.starts_with("HTTP/1.0 200 OK\r\n"), "{first}");
        assert!(first.contains("srv_accepted 1\n"), "{first}");
        c.add(4);
        let second = fetch(srv.local_addr());
        assert!(second.contains("srv_accepted 5\n"), "{second}");
    }
}
