//! Prometheus-style text exposition for a [`MetricsDump`], and the
//! trivial HTTP/1.0 responder `inano-serve --metrics-text` mounts it
//! on.
//!
//! The responder is deliberately not a web server: it parses only the
//! request path, answers each request with a `200 OK` (or a `404` for
//! a path the router declines), and keeps reading — a poller may hold
//! one connection open and issue sequential requests without racing a
//! reconnect, which is exactly the subset `curl`, a Prometheus
//! scraper, and a CI health loop need, with zero dependencies.

use crate::registry::{MetricValue, MetricsDump};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Registry names use `.` as the namespace separator
/// (`shard0.mirror.deltas_applied`); Prometheus names admit only
/// `[a-zA-Z0-9_:]`, so everything else becomes `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Render a dump as Prometheus text exposition (version 0.0.4):
/// counters and gauges as single samples, histograms as cumulative
/// `_bucket{le="..."}` series (bucket `i` covers `[2^i, 2^(i+1))` µs,
/// so its upper bound is `2^(i+1)`) plus `+Inf` and `_count`.
pub fn render_prometheus(dump: &MetricsDump) -> String {
    let mut out = String::new();
    for (name, value) in &dump.entries {
        let pname = sanitize(name);
        match value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {pname} counter\n{pname} {v}\n"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {pname} gauge\n{pname} {v}\n"));
            }
            MetricValue::Histogram(buckets) => {
                out.push_str(&format!("# TYPE {pname} histogram\n"));
                let mut cum = 0u64;
                for (i, &c) in buckets.iter().enumerate() {
                    cum = cum.saturating_add(c);
                    if c != 0 {
                        let le = 1u128 << (i + 1).min(127);
                        out.push_str(&format!("{pname}_bucket{{le=\"{le}\"}} {cum}\n"));
                    }
                }
                out.push_str(&format!("{pname}_bucket{{le=\"+Inf\"}} {cum}\n"));
                out.push_str(&format!("{pname}_count {cum}\n"));
            }
        }
    }
    out
}

/// How long one scraper connection may hold the single-threaded
/// responder. The responder serves connections sequentially, so a
/// wedged or malicious peer that connects and then sends nothing (or
/// drip-feeds header bytes under the per-read timeout) would starve
/// every other scraper without a whole-connection bound.
#[derive(Clone, Copy, Debug)]
pub struct ServeLimits {
    /// Per-read / per-write socket timeout. Bounds any *single* stall.
    pub io_timeout: Duration,
    /// Total wall-clock budget for one connection, across all of its
    /// sequential requests. Bounds a peer that keeps making progress
    /// just fast enough to dodge `io_timeout`.
    pub conn_deadline: Duration,
    /// Maximum requests answered on one connection before it is
    /// closed (the scraper just reconnects).
    pub max_requests: u32,
}

impl Default for ServeLimits {
    fn default() -> ServeLimits {
        ServeLimits {
            io_timeout: Duration::from_secs(5),
            conn_deadline: Duration::from_secs(30),
            max_requests: 64,
        }
    }
}

/// A running `--metrics-text` endpoint. Dropping it stops the accept
/// thread (within one poll interval) and closes the listener.
pub struct MetricsTextServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl MetricsTextServer {
    /// Bind `addr` and route every HTTP request through `route`: given
    /// the request path (`"/metrics"`, `"/healthz"`, ...) it returns
    /// the body to serve, rendered fresh at request time, or `None`
    /// for a `404`. A connection is answered for as many sequential
    /// requests as the peer sends before hanging up.
    pub fn bind<A, F>(addr: A, route: F) -> io::Result<MetricsTextServer>
    where
        A: ToSocketAddrs,
        F: Fn(&str) -> Option<String> + Send + Sync + 'static,
    {
        MetricsTextServer::bind_with_limits(addr, route, ServeLimits::default())
    }

    /// [`bind`](MetricsTextServer::bind) with explicit [`ServeLimits`]
    /// — tests shrink the deadline to milliseconds; a deployment
    /// fronting slow scrape paths can widen it.
    pub fn bind_with_limits<A, F>(
        addr: A,
        route: F,
        limits: ServeLimits,
    ) -> io::Result<MetricsTextServer>
    where
        A: ToSocketAddrs,
        F: Fn(&str) -> Option<String> + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        let handle = thread::Builder::new()
            .name("inano-metrics-text".into())
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Serve the connection until the peer
                            // closes, the deadline passes, or the
                            // request cap is hit. Errors (a scraper
                            // hanging up mid-request) only cost that
                            // connection.
                            let _ = answer(stream, &route, limits);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(25));
                        }
                        Err(_) => thread::sleep(Duration::from_millis(25)),
                    }
                }
            })
            .expect("spawn metrics-text thread");
        Ok(MetricsTextServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

/// Serve one connection: read a request head, answer it, repeat until
/// EOF, the connection deadline, or the request cap. HTTP/1.0 pollers
/// that close after one response cost nothing extra; pollers that keep
/// the socket open get sequential answers without a reconnect race.
///
/// The per-read timeout is re-clamped to the *remaining* connection
/// deadline before every head line, so a peer drip-feeding one byte
/// per `io_timeout` still gets cut off at `conn_deadline` — the
/// socket timeout is shared by the `BufReader` clone (`SO_RCVTIMEO`
/// is per socket, and clones share the descriptor).
fn answer(
    stream: std::net::TcpStream,
    route: &dyn Fn(&str) -> Option<String>,
    limits: ServeLimits,
) -> io::Result<()> {
    let started = Instant::now();
    stream.set_nonblocking(false)?;
    stream.set_write_timeout(Some(limits.io_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    let clamp = |s: &std::net::TcpStream| -> io::Result<bool> {
        let left = limits.conn_deadline.saturating_sub(started.elapsed());
        if left.is_zero() {
            return Ok(false);
        }
        s.set_read_timeout(Some(limits.io_timeout.min(left)))?;
        Ok(true)
    };
    for _served in 0..limits.max_requests {
        // Request line: `GET /path HTTP/1.0`. EOF here is the normal
        // end of the connection.
        if !clamp(&stream)? {
            return Ok(());
        }
        let mut request_line = String::new();
        if reader.read_line(&mut request_line)? == 0 {
            return Ok(());
        }
        let path = request_line
            .split_whitespace()
            .nth(1)
            .unwrap_or("/")
            .to_string();
        // Drain the rest of the head up to the blank line.
        let mut line = String::new();
        loop {
            if !clamp(&stream)? {
                return Ok(());
            }
            if reader.read_line(&mut line)? == 0 {
                break;
            }
            if line == "\r\n" || line == "\n" || line.trim().is_empty() {
                break;
            }
            line.clear();
        }
        let (status, text) = match route(&path) {
            Some(body) => ("200 OK", body),
            None => ("404 Not Found", format!("no such path: {path}\n")),
        };
        stream.write_all(
            format!(
                "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n",
                text.len()
            )
            .as_bytes(),
        )?;
        stream.write_all(text.as_bytes())?;
        stream.flush()?;
    }
    // Request cap reached: hang up; the scraper reconnects.
    Ok(())
}

impl Drop for MetricsTextServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use std::io::Read;
    use std::net::TcpStream;

    #[test]
    fn render_counters_gauges_histograms() {
        let d = MetricsDump {
            entries: vec![
                (
                    "shard0.mirror.deltas_applied".into(),
                    MetricValue::Counter(2),
                ),
                ("srv.active".into(), MetricValue::Gauge(3)),
                (
                    "shard0.latency_us".into(),
                    MetricValue::Histogram(vec![0, 1, 2]),
                ),
            ],
        };
        let text = render_prometheus(&d);
        assert!(text.contains("shard0_mirror_deltas_applied 2\n"), "{text}");
        assert!(text.contains("# TYPE srv_active gauge\nsrv_active 3\n"));
        // Bucket 1 covers [2,4): le=4, cumulative 1; bucket 2 adds 2.
        assert!(text.contains("shard0_latency_us_bucket{le=\"4\"} 1\n"));
        assert!(text.contains("shard0_latency_us_bucket{le=\"8\"} 3\n"));
        assert!(text.contains("shard0_latency_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("shard0_latency_us_count 3\n"));
    }

    fn bind_counter_server() -> (Arc<MetricsRegistry>, MetricsTextServer) {
        let reg = Arc::new(MetricsRegistry::new());
        let body_reg = Arc::clone(&reg);
        let srv = MetricsTextServer::bind("127.0.0.1:0", move |path| match path {
            "/healthz" => Some("ok 3 42\n".into()),
            _ if path.starts_with("/metrics") || path == "/" => {
                Some(render_prometheus(&body_reg.dump()))
            }
            _ => None,
        })
        .expect("bind metrics text");
        (reg, srv)
    }

    #[test]
    fn http_responder_serves_a_fresh_dump_per_request() {
        let (reg, srv) = bind_counter_server();
        let c = reg.counter("srv.accepted");

        let fetch = |addr: SocketAddr| {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n")
                .expect("request");
            let mut buf = String::new();
            s.read_to_string(&mut buf).expect("response");
            buf
        };

        c.inc();
        let first = fetch(srv.local_addr());
        assert!(first.starts_with("HTTP/1.0 200 OK\r\n"), "{first}");
        assert!(first.contains("srv_accepted 1\n"), "{first}");
        c.add(4);
        let second = fetch(srv.local_addr());
        assert!(second.contains("srv_accepted 5\n"), "{second}");
    }

    /// Read exactly one HTTP response (status + headers +
    /// Content-Length body) off an open connection.
    fn read_response(reader: &mut BufReader<TcpStream>) -> String {
        let mut head = String::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).expect("head line") > 0);
            if line == "\r\n" || line == "\n" {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().expect("content-length");
            }
            head.push_str(&line);
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("body");
        format!("{head}\n{}", String::from_utf8_lossy(&body))
    }

    #[test]
    fn one_connection_answers_sequential_requests_and_healthz() {
        let (reg, srv) = bind_counter_server();
        let c = reg.counter("srv.accepted");
        let s = TcpStream::connect(srv.local_addr()).expect("connect");
        let mut reader = BufReader::new(s.try_clone().expect("clone"));
        let mut s = s;

        c.inc();
        s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
            .expect("req 1");
        let first = read_response(&mut reader);
        assert!(first.contains("srv_accepted 1\n"), "{first}");

        // Same connection, second request: fresh render, no reconnect.
        c.add(9);
        s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
            .expect("req 2");
        let second = read_response(&mut reader);
        assert!(second.contains("srv_accepted 10\n"), "{second}");

        // And a third, on a different path.
        s.write_all(b"GET /healthz HTTP/1.0\r\n\r\n")
            .expect("req 3");
        let third = read_response(&mut reader);
        assert!(third.starts_with("HTTP/1.0 200 OK\r\n"), "{third}");
        assert!(third.ends_with("ok 3 42\n"), "{third}");
    }

    /// A scraper that connects and then goes silent must not starve
    /// the single-threaded responder: the connection deadline cuts it
    /// off and the next scraper in line is answered.
    #[test]
    fn silent_connection_is_cut_at_the_deadline_and_the_next_scraper_is_served() {
        let srv = MetricsTextServer::bind_with_limits(
            "127.0.0.1:0",
            |_| Some("ok\n".into()),
            ServeLimits {
                io_timeout: Duration::from_millis(50),
                conn_deadline: Duration::from_millis(150),
                max_requests: 64,
            },
        )
        .expect("bind metrics text");

        // Wedged peer: connects, never sends a byte.
        let wedged = TcpStream::connect(srv.local_addr()).expect("connect wedged");

        // Healthy scraper queued behind it must get through once the
        // deadline fires — well under the 5s a naive per-read timeout
        // alone would allow a drip-feeding peer.
        let started = Instant::now();
        let mut s = TcpStream::connect(srv.local_addr()).expect("connect healthy");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").expect("req");
        let mut buf = String::new();
        s.read_to_string(&mut buf).expect("response");
        assert!(buf.starts_with("HTTP/1.0 200 OK\r\n"), "{buf}");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "healthy scraper waited {:?} behind a wedged peer",
            started.elapsed()
        );
        drop(wedged);
    }

    /// After `max_requests` answers the server hangs up; a reconnect
    /// is served normally.
    #[test]
    fn request_cap_closes_the_connection() {
        let srv = MetricsTextServer::bind_with_limits(
            "127.0.0.1:0",
            |_| Some("ok\n".into()),
            ServeLimits {
                max_requests: 2,
                ..ServeLimits::default()
            },
        )
        .expect("bind metrics text");

        let s = TcpStream::connect(srv.local_addr()).expect("connect");
        let mut reader = BufReader::new(s.try_clone().expect("clone"));
        let mut s = s;
        for _ in 0..2 {
            s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").expect("req");
            let resp = read_response(&mut reader);
            assert!(resp.starts_with("HTTP/1.0 200 OK\r\n"), "{resp}");
        }
        // Third request on the same connection: the server has hung
        // up, so the read sees EOF (or a reset from the closed peer).
        s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").ok();
        let mut line = String::new();
        let eof = matches!(reader.read_line(&mut line), Ok(0) | Err(_));
        assert!(eof, "expected EOF after request cap, got {line:?}");

        // A fresh connection is served again.
        let mut s2 = TcpStream::connect(srv.local_addr()).expect("reconnect");
        s2.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").expect("req");
        let mut buf = String::new();
        s2.read_to_string(&mut buf).expect("response");
        assert!(buf.starts_with("HTTP/1.0 200 OK\r\n"), "{buf}");
    }

    #[test]
    fn unknown_paths_get_a_404_and_the_connection_survives() {
        let (_reg, srv) = bind_counter_server();
        let s = TcpStream::connect(srv.local_addr()).expect("connect");
        let mut reader = BufReader::new(s.try_clone().expect("clone"));
        let mut s = s;
        s.write_all(b"GET /nope HTTP/1.0\r\n\r\n").expect("req");
        let resp = read_response(&mut reader);
        assert!(resp.starts_with("HTTP/1.0 404 Not Found\r\n"), "{resp}");
        // The 404 didn't kill the connection.
        s.write_all(b"GET /healthz HTTP/1.0\r\n\r\n")
            .expect("req 2");
        let ok = read_response(&mut reader);
        assert!(ok.starts_with("HTTP/1.0 200 OK\r\n"), "{ok}");
    }
}
