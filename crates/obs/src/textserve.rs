//! Prometheus-style text exposition for a [`MetricsDump`], and the
//! trivial HTTP/1.0 responder `inano-serve --metrics-text` mounts it
//! on.
//!
//! The responder is deliberately not a web server: it parses only the
//! request path, answers each request with a `200 OK` (or a `404` for
//! a path the router declines), and keeps reading — a poller may hold
//! one connection open and issue sequential requests without racing a
//! reconnect, which is exactly the subset `curl`, a Prometheus
//! scraper, and a CI health loop need, with zero dependencies.

use crate::registry::{MetricValue, MetricsDump};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Registry names use `.` as the namespace separator
/// (`shard0.mirror.deltas_applied`); Prometheus names admit only
/// `[a-zA-Z0-9_:]`, so everything else becomes `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Render a dump as Prometheus text exposition (version 0.0.4):
/// counters and gauges as single samples, histograms as cumulative
/// `_bucket{le="..."}` series (bucket `i` covers `[2^i, 2^(i+1))` µs,
/// so its upper bound is `2^(i+1)`) plus `+Inf` and `_count`.
pub fn render_prometheus(dump: &MetricsDump) -> String {
    let mut out = String::new();
    for (name, value) in &dump.entries {
        let pname = sanitize(name);
        match value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {pname} counter\n{pname} {v}\n"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {pname} gauge\n{pname} {v}\n"));
            }
            MetricValue::Histogram(buckets) => {
                out.push_str(&format!("# TYPE {pname} histogram\n"));
                let mut cum = 0u64;
                for (i, &c) in buckets.iter().enumerate() {
                    cum = cum.saturating_add(c);
                    if c != 0 {
                        let le = 1u128 << (i + 1).min(127);
                        out.push_str(&format!("{pname}_bucket{{le=\"{le}\"}} {cum}\n"));
                    }
                }
                out.push_str(&format!("{pname}_bucket{{le=\"+Inf\"}} {cum}\n"));
                out.push_str(&format!("{pname}_count {cum}\n"));
            }
        }
    }
    out
}

/// A running `--metrics-text` endpoint. Dropping it stops the accept
/// thread (within one poll interval) and closes the listener.
pub struct MetricsTextServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl MetricsTextServer {
    /// Bind `addr` and route every HTTP request through `route`: given
    /// the request path (`"/metrics"`, `"/healthz"`, ...) it returns
    /// the body to serve, rendered fresh at request time, or `None`
    /// for a `404`. A connection is answered for as many sequential
    /// requests as the peer sends before hanging up.
    pub fn bind<A, F>(addr: A, route: F) -> io::Result<MetricsTextServer>
    where
        A: ToSocketAddrs,
        F: Fn(&str) -> Option<String> + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        let handle = thread::Builder::new()
            .name("inano-metrics-text".into())
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Serve the connection until the peer
                            // closes. Errors (a scraper hanging up
                            // mid-request) only cost that connection.
                            let _ = answer(stream, &route);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(25));
                        }
                        Err(_) => thread::sleep(Duration::from_millis(25)),
                    }
                }
            })
            .expect("spawn metrics-text thread");
        Ok(MetricsTextServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

/// Serve one connection: read a request head, answer it, repeat until
/// EOF. HTTP/1.0 pollers that close after one response cost nothing
/// extra; pollers that keep the socket open get sequential answers
/// without a reconnect race.
fn answer(stream: std::net::TcpStream, route: &dyn Fn(&str) -> Option<String>) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    loop {
        // Request line: `GET /path HTTP/1.0`. EOF here is the normal
        // end of the connection.
        let mut request_line = String::new();
        if reader.read_line(&mut request_line)? == 0 {
            return Ok(());
        }
        let path = request_line
            .split_whitespace()
            .nth(1)
            .unwrap_or("/")
            .to_string();
        // Drain the rest of the head up to the blank line.
        let mut line = String::new();
        while reader.read_line(&mut line)? > 0 {
            if line == "\r\n" || line == "\n" || line.trim().is_empty() {
                break;
            }
            line.clear();
        }
        let (status, text) = match route(&path) {
            Some(body) => ("200 OK", body),
            None => ("404 Not Found", format!("no such path: {path}\n")),
        };
        stream.write_all(
            format!(
                "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n",
                text.len()
            )
            .as_bytes(),
        )?;
        stream.write_all(text.as_bytes())?;
        stream.flush()?;
    }
}

impl Drop for MetricsTextServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use std::io::Read;
    use std::net::TcpStream;

    #[test]
    fn render_counters_gauges_histograms() {
        let d = MetricsDump {
            entries: vec![
                (
                    "shard0.mirror.deltas_applied".into(),
                    MetricValue::Counter(2),
                ),
                ("srv.active".into(), MetricValue::Gauge(3)),
                (
                    "shard0.latency_us".into(),
                    MetricValue::Histogram(vec![0, 1, 2]),
                ),
            ],
        };
        let text = render_prometheus(&d);
        assert!(text.contains("shard0_mirror_deltas_applied 2\n"), "{text}");
        assert!(text.contains("# TYPE srv_active gauge\nsrv_active 3\n"));
        // Bucket 1 covers [2,4): le=4, cumulative 1; bucket 2 adds 2.
        assert!(text.contains("shard0_latency_us_bucket{le=\"4\"} 1\n"));
        assert!(text.contains("shard0_latency_us_bucket{le=\"8\"} 3\n"));
        assert!(text.contains("shard0_latency_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("shard0_latency_us_count 3\n"));
    }

    fn bind_counter_server() -> (Arc<MetricsRegistry>, MetricsTextServer) {
        let reg = Arc::new(MetricsRegistry::new());
        let body_reg = Arc::clone(&reg);
        let srv = MetricsTextServer::bind("127.0.0.1:0", move |path| match path {
            "/healthz" => Some("ok 3 42\n".into()),
            _ if path.starts_with("/metrics") || path == "/" => {
                Some(render_prometheus(&body_reg.dump()))
            }
            _ => None,
        })
        .expect("bind metrics text");
        (reg, srv)
    }

    #[test]
    fn http_responder_serves_a_fresh_dump_per_request() {
        let (reg, srv) = bind_counter_server();
        let c = reg.counter("srv.accepted");

        let fetch = |addr: SocketAddr| {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n")
                .expect("request");
            let mut buf = String::new();
            s.read_to_string(&mut buf).expect("response");
            buf
        };

        c.inc();
        let first = fetch(srv.local_addr());
        assert!(first.starts_with("HTTP/1.0 200 OK\r\n"), "{first}");
        assert!(first.contains("srv_accepted 1\n"), "{first}");
        c.add(4);
        let second = fetch(srv.local_addr());
        assert!(second.contains("srv_accepted 5\n"), "{second}");
    }

    /// Read exactly one HTTP response (status + headers +
    /// Content-Length body) off an open connection.
    fn read_response(reader: &mut BufReader<TcpStream>) -> String {
        let mut head = String::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).expect("head line") > 0);
            if line == "\r\n" || line == "\n" {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().expect("content-length");
            }
            head.push_str(&line);
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("body");
        format!("{head}\n{}", String::from_utf8_lossy(&body))
    }

    #[test]
    fn one_connection_answers_sequential_requests_and_healthz() {
        let (reg, srv) = bind_counter_server();
        let c = reg.counter("srv.accepted");
        let s = TcpStream::connect(srv.local_addr()).expect("connect");
        let mut reader = BufReader::new(s.try_clone().expect("clone"));
        let mut s = s;

        c.inc();
        s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
            .expect("req 1");
        let first = read_response(&mut reader);
        assert!(first.contains("srv_accepted 1\n"), "{first}");

        // Same connection, second request: fresh render, no reconnect.
        c.add(9);
        s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
            .expect("req 2");
        let second = read_response(&mut reader);
        assert!(second.contains("srv_accepted 10\n"), "{second}");

        // And a third, on a different path.
        s.write_all(b"GET /healthz HTTP/1.0\r\n\r\n")
            .expect("req 3");
        let third = read_response(&mut reader);
        assert!(third.starts_with("HTTP/1.0 200 OK\r\n"), "{third}");
        assert!(third.ends_with("ok 3 42\n"), "{third}");
    }

    #[test]
    fn unknown_paths_get_a_404_and_the_connection_survives() {
        let (_reg, srv) = bind_counter_server();
        let s = TcpStream::connect(srv.local_addr()).expect("connect");
        let mut reader = BufReader::new(s.try_clone().expect("clone"));
        let mut s = s;
        s.write_all(b"GET /nope HTTP/1.0\r\n\r\n").expect("req");
        let resp = read_response(&mut reader);
        assert!(resp.starts_with("HTTP/1.0 404 Not Found\r\n"), "{resp}");
        // The 404 didn't kill the connection.
        s.write_all(b"GET /healthz HTTP/1.0\r\n\r\n")
            .expect("req 2");
        let ok = read_response(&mut reader);
        assert!(ok.starts_with("HTTP/1.0 200 OK\r\n"), "{ok}");
    }
}
