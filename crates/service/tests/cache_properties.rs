//! Property test for the satellite requirement: a cache hit must be
//! indistinguishable from a fresh `PathPredictor::query` — over random
//! (ring + chords) atlases, every repeated engine query agrees with a
//! predictor built directly over the same atlas.

use inano_atlas::{Atlas, LinkAnnotation, Plane};
use inano_core::{PathPredictor, PredictorConfig};
use inano_model::{Asn, ClusterId, Ipv4, LatencyMs, Prefix, PrefixId};
use inano_service::{QueryEngine, ServiceConfig};
use proptest::prelude::*;
use std::sync::Arc;

prop_compose! {
    fn arb_atlas()(
        n in 4u32..14,
        chords in proptest::collection::vec((0u32..14, 0u32..14), 0..10),
        lat in 0.5f64..20.0,
    ) -> Atlas {
        let mut a = Atlas::default();
        let add = |a: &mut Atlas, x: u32, y: u32| {
            if x == y {
                return;
            }
            for (f, t) in [(x, y), (y, x)] {
                a.links.insert(
                    (ClusterId::new(f), ClusterId::new(t)),
                    LinkAnnotation {
                        latency: Some(LatencyMs::new(lat + f as f64 * 0.25)),
                        plane: Plane::TO_DST,
                    },
                );
            }
        };
        for i in 0..n {
            add(&mut a, i, (i + 1) % n);
        }
        for (x, y) in chords {
            add(&mut a, x % n, y % n);
        }
        for c in 0..n {
            a.cluster_as.insert(ClusterId::new(c), Asn::new(c));
            a.as_degree.insert(Asn::new(c), 2);
            a.prefix_cluster.insert(PrefixId::new(c), ClusterId::new(c));
            a.prefix_as.insert(
                PrefixId::new(c),
                (Prefix::new(Ipv4(c << 16), 16), Asn::new(c)),
            );
        }
        a
    }
}

fn cfg() -> PredictorConfig {
    let mut cfg = PredictorConfig::full();
    cfg.use_tuples = false;
    cfg.use_prefs = false;
    cfg.use_providers = false;
    cfg.use_from_src = false;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cache_hits_equal_fresh_queries(atlas in arb_atlas()) {
        let n = atlas.prefix_cluster.len() as u32;
        let fresh = PathPredictor::new(Arc::new(atlas.clone()), cfg());
        let engine = QueryEngine::new(
            Arc::new(atlas),
            ServiceConfig {
                workers: 2,
                cache_capacity: 1024,
                cache_shards: 4,
                chunk: 8,
                predictor: cfg(),
            },
        );
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                let src = Ipv4((s << 16) | 3);
                let dst = Ipv4((d << 16) | 9);
                let reference = fresh.query(src, dst);
                // Twice: the second serve is a cache hit for every
                // canonical pair.
                for _ in 0..2 {
                    match (engine.query(src, dst), &reference) {
                        (Ok(got), Ok(want)) => {
                            prop_assert_eq!(&got.fwd_clusters, &want.fwd_clusters);
                            prop_assert_eq!(&got.rev_clusters, &want.rev_clusters);
                            prop_assert_eq!(&got.fwd_as_path, &want.fwd_as_path);
                            prop_assert_eq!(&got.rev_as_path, &want.rev_as_path);
                            prop_assert!((got.rtt.ms() - want.rtt.ms()).abs() < 1e-12);
                            prop_assert!((got.loss.rate() - want.loss.rate()).abs() < 1e-12);
                        }
                        (Err(_), Err(_)) => {}
                        (got, want) => {
                            prop_assert!(
                                false,
                                "engine and fresh predictor disagree: {:?} vs {:?}",
                                got.is_ok(),
                                want.is_ok()
                            );
                        }
                    }
                }
            }
        }
        let stats = engine.stats();
        prop_assert!(stats.cache_hits > 0, "repeat queries must hit the cache");
    }
}
