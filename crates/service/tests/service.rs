//! Integration tests for the query engine: concurrency under hot swap,
//! cache-hit correctness against the bare predictor, and serving
//! updates through the swarm's `AtlasSource`.

use inano_atlas::{Atlas, AtlasDelta, LinkAnnotation, Plane};
use inano_core::{PathPredictor, PredictedPath, PredictorConfig};
use inano_model::{Asn, ClusterId, Ipv4, LatencyMs, Prefix, PrefixId};
use inano_service::{QueryEngine, ServiceConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// A bidirectional ring of `n` clusters, one AS and one /16 prefix per
/// cluster. Every pair is routable.
fn ring_atlas(n: u32, day: u32) -> Atlas {
    let mut a = Atlas {
        day,
        ..Atlas::default()
    };
    for i in 0..n {
        let j = (i + 1) % n;
        for (x, y) in [(i, j), (j, i)] {
            a.links.insert(
                (ClusterId::new(x), ClusterId::new(y)),
                LinkAnnotation {
                    latency: Some(LatencyMs::new(1.0 + x as f64 * 0.1)),
                    plane: Plane::TO_DST,
                },
            );
        }
        a.cluster_as.insert(ClusterId::new(i), Asn::new(i));
        a.as_degree.insert(Asn::new(i), 2);
        a.prefix_cluster.insert(PrefixId::new(i), ClusterId::new(i));
        a.prefix_as.insert(
            PrefixId::new(i),
            (Prefix::new(Ipv4(i << 16), 16), Asn::new(i)),
        );
    }
    a
}

fn ip(cluster: u32) -> Ipv4 {
    Ipv4((cluster << 16) | 7)
}

/// Ring-friendly config: no tuples/prefs/providers (the synthetic atlas
/// records no policy evidence) and no FROM_SRC plane.
fn ring_cfg() -> PredictorConfig {
    let mut cfg = PredictorConfig::full();
    cfg.use_tuples = false;
    cfg.use_prefs = false;
    cfg.use_providers = false;
    cfg.use_from_src = false;
    cfg
}

fn engine_over(atlas: Atlas, workers: usize) -> QueryEngine {
    let cfg = ServiceConfig {
        workers,
        cache_capacity: 4096,
        cache_shards: 8,
        chunk: 16,
        predictor: ring_cfg(),
    };
    QueryEngine::new(Arc::new(atlas), cfg)
}

fn assert_same_path(a: &PredictedPath, b: &PredictedPath) {
    assert_eq!(a.fwd_clusters, b.fwd_clusters);
    assert_eq!(a.rev_clusters, b.rev_clusters);
    assert_eq!(a.fwd_as_path, b.fwd_as_path);
    assert_eq!(a.rev_as_path, b.rev_as_path);
    assert!((a.rtt.ms() - b.rtt.ms()).abs() < 1e-12);
    assert!((a.loss.rate() - b.loss.rate()).abs() < 1e-12);
}

#[test]
fn batches_fan_across_workers_in_order() {
    let n = 10;
    let engine = engine_over(ring_atlas(n, 0), 4);
    let pairs: Vec<(Ipv4, Ipv4)> = (0..n)
        .flat_map(|s| (0..n).filter(move |&d| d != s).map(move |d| (ip(s), ip(d))))
        .collect();
    let batched = engine.query_batch(&pairs);
    assert_eq!(batched.len(), pairs.len());
    for (i, &(s, d)) in pairs.iter().enumerate() {
        let inline = engine.query(s, d).expect("ring is fully routable");
        assert_same_path(batched[i].as_ref().expect("batch result ok"), &inline);
    }
    let stats = engine.stats();
    assert_eq!(stats.workers, 4);
    assert_eq!(stats.errors, 0);
    assert!(stats.queries >= pairs.len() as u64 * 2);
}

#[test]
fn cache_hit_equals_fresh_predictor_query() {
    let n = 12;
    let atlas = ring_atlas(n, 0);
    let engine = engine_over(atlas.clone(), 2);
    let fresh = PathPredictor::new(Arc::new(atlas), ring_cfg());
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            let cold = engine.query(ip(s), ip(d)).expect("routable");
            let warm = engine.query(ip(s), ip(d)).expect("routable");
            let reference = fresh.query(ip(s), ip(d)).expect("routable");
            assert_same_path(&cold, &reference);
            assert_same_path(&warm, &reference);
        }
    }
    let stats = engine.stats();
    assert!(stats.cache_hits > 0, "second pass must hit: {stats:?}");
    assert!(stats.cache_hit_rate > 0.0);
}

#[test]
fn zipf_mix_sees_positive_hit_rate() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let n = 16u32;
    let engine = engine_over(ring_atlas(n, 0), 4);
    let mut rng = SmallRng::seed_from_u64(42);
    // Zipf(s≈1) over destination clusters: weight 1/(rank+1).
    let weights: Vec<f64> = (0..n).map(|r| 1.0 / (r as f64 + 1.0)).collect();
    let total: f64 = weights.iter().sum();
    let mut pairs = Vec::new();
    for _ in 0..2000 {
        let src = rng.gen_range(0..n);
        let mut pick = rng.gen_range(0.0..total);
        let mut dst = 0;
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                dst = i as u32;
                break;
            }
            pick -= w;
        }
        if src != dst {
            pairs.push((ip(src), ip(dst)));
        }
    }
    for r in engine.query_batch(&pairs) {
        r.expect("ring is fully routable");
    }
    let stats = engine.stats();
    assert!(
        stats.cache_hit_rate > 0.5,
        "zipf mix over {} cluster pairs must mostly hit: {stats:?}",
        n * (n - 1)
    );
}

#[test]
fn hammering_queries_while_applying_deltas_never_errors() {
    let n = 12u32;
    let day0 = ring_atlas(n, 0);
    // Day 1 adds a direct shortcut 0 ↔ n/2, halving that path.
    let far = n / 2;
    let mut day1 = ring_atlas(n, 1);
    for (x, y) in [(0, far), (far, 0)] {
        day1.links.insert(
            (ClusterId::new(x), ClusterId::new(y)),
            LinkAnnotation {
                latency: Some(LatencyMs::new(0.5)),
                plane: Plane::TO_DST,
            },
        );
    }
    let delta = AtlasDelta::between(&day0, &day1);

    let engine = Arc::new(engine_over(day0, 4));
    let before = engine.query(ip(0), ip(far)).expect("routable");
    assert_eq!(
        before.fwd_clusters.len(),
        far as usize + 1,
        "pre-swap: the long way around"
    );

    let pairs: Vec<(Ipv4, Ipv4)> = (0..n)
        .flat_map(|s| (0..n).filter(move |&d| d != s).map(move |d| (ip(s), ip(d))))
        .collect();
    let stop = Arc::new(AtomicBool::new(false));
    let issued = Arc::new(AtomicU64::new(0));
    let hammers: Vec<_> = (0..6)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let issued = Arc::clone(&issued);
            let pairs = pairs.clone();
            thread::spawn(move || {
                let mut failures = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for r in engine.query_batch(&pairs) {
                        if r.is_err() {
                            failures += 1;
                        }
                    }
                    issued.fetch_add(pairs.len() as u64, Ordering::Relaxed);
                }
                failures
            })
        })
        .collect();

    // Let the hammers warm up, then swap mid-load.
    thread::sleep(Duration::from_millis(50));
    let day = engine.apply_delta(&delta).expect("delta applies");
    assert_eq!(day, 1);
    thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);
    let failures: u64 = hammers.into_iter().map(|h| h.join().unwrap()).sum();

    assert_eq!(failures, 0, "no query may error across the swap");
    assert!(issued.load(Ordering::Relaxed) > 0);
    let stats = engine.stats();
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.swaps, 1);
    assert_eq!(stats.epoch, 1);
    assert_eq!(stats.day, 1);

    // Post-swap queries must reflect the new day, not a stale cache
    // entry: the shortcut is now the route.
    let after = engine.query(ip(0), ip(far)).expect("routable");
    assert_eq!(after.fwd_clusters.len(), 2, "post-swap: the day-1 shortcut");
    let reference = PathPredictor::new(Arc::new(day1), ring_cfg());
    assert_same_path(&after, &reference.query(ip(0), ip(far)).unwrap());
}

#[test]
fn shutdown_under_load_loses_no_accepted_queries() {
    let n = 12u32;
    let engine = Arc::new(engine_over(ring_atlas(n, 0), 4));
    let pairs: Vec<(Ipv4, Ipv4)> = (0..n)
        .flat_map(|s| (0..n).filter(move |&d| d != s).map(move |d| (ip(s), ip(d))))
        .collect();

    // Hammer from several threads; partway through, the engine shuts
    // its pool down underneath them. Every accepted batch must still
    // come back complete and correct (post-shutdown batches serve
    // inline), so the totals must match exactly.
    let rounds = 30usize;
    let hammers: Vec<_> = (0..4)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let pairs = pairs.clone();
            thread::spawn(move || {
                let mut ok = 0u64;
                for _ in 0..rounds {
                    let results = engine.query_batch(&pairs);
                    assert_eq!(results.len(), pairs.len(), "batches never come back short");
                    ok += results.iter().filter(|r| r.is_ok()).count() as u64;
                }
                ok
            })
        })
        .collect();

    thread::sleep(Duration::from_millis(10));
    engine.shutdown();
    assert!(engine.is_shut_down());

    let ok: u64 = hammers.into_iter().map(|h| h.join().unwrap()).sum();
    let expected = 4 * rounds as u64 * pairs.len() as u64;
    assert_eq!(ok, expected, "every accepted query answered, none lost");

    // The engine still serves (inline) after shutdown, and shutdown
    // stays idempotent.
    engine.shutdown();
    engine
        .query(ip(0), ip(3))
        .expect("inline serving still works");
    let batch = engine.query_batch(&pairs);
    assert!(batch.iter().all(|r| r.is_ok()));
    let stats = engine.stats();
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.workers, 4, "stats report the configured pool size");
}

#[test]
fn serves_and_updates_through_the_swarm() {
    use inano_core::AtlasSource;
    use inano_swarm::{SwarmConfig, SwarmSource};
    let day0 = ring_atlas(8, 0);
    let mut day1 = ring_atlas(8, 1);
    day1.links.insert(
        (ClusterId::new(0), ClusterId::new(4)),
        LinkAnnotation {
            latency: Some(LatencyMs::new(0.5)),
            plane: Plane::TO_DST,
        },
    );
    let mut source = SwarmSource::new(
        &day0,
        &[day1],
        SwarmConfig {
            n_peers: 10,
            ..SwarmConfig::default()
        },
    );
    let cfg = ServiceConfig {
        workers: 4,
        predictor: ring_cfg(),
        ..ServiceConfig::default()
    };
    let engine = QueryEngine::bootstrap(&mut source, cfg).expect("bootstrap via swarm");
    assert_eq!(engine.day(), 0);
    engine.query(ip(1), ip(5)).expect("routable at day 0");
    assert_eq!(engine.update(&mut source).expect("update"), 1);
    assert_eq!(engine.day(), 1);
    assert_eq!(engine.epoch(), 1);
    // Both the full fetch and the delta fetch went through the swarm.
    assert_eq!(source.downloads().len(), 2);
    assert_eq!(source.total_fetches(), 2);
    assert!(source.fetch_delta(1).unwrap().is_none());
    let r = engine.query(ip(0), ip(4)).expect("routable at day 1");
    assert_eq!(r.fwd_clusters.len(), 2, "served from the day-1 atlas");
}

#[test]
fn replace_atlas_swaps_a_whole_generation_without_logging_a_delta() {
    let engine = QueryEngine::new(
        Arc::new(ring_atlas(8, 0)),
        ServiceConfig {
            workers: 2,
            predictor: ring_cfg(),
            ..ServiceConfig::default()
        },
    );
    let before_tag = engine.export().epoch_tag;
    engine.query(ip(0), ip(3)).expect("day-0 world serves");
    // A delta applied first is retained for downstream mirrors...
    engine
        .apply_delta(&AtlasDelta::between(&ring_atlas(8, 0), &ring_atlas(8, 1)))
        .expect("delta applies");
    assert!(engine.delta_blob(0).is_some());

    // A full replace models a monthly refresh or a mirror resync: the
    // new world may be days ahead with no bridging delta at all.
    let day = engine.replace_atlas(Arc::new(ring_atlas(12, 9)));
    assert_eq!(day, 9);
    assert_eq!(engine.day(), 9);
    assert_eq!(engine.epoch(), 2, "a replace bumps the epoch like a swap");
    assert_eq!(engine.stats().swaps, 2);
    // The export snapshot re-encodes the new generation...
    let snap = engine.export();
    assert_eq!(snap.day, 9);
    assert_ne!(snap.epoch_tag, before_tag);
    // ...queries land in the new (bigger) world...
    let r = engine.query(ip(0), ip(10)).expect("ring-12 pair routable");
    assert!(!r.fwd_clusters.is_empty());
    // ...and the delta log is emptied: the retained 0→1 delta belongs
    // to the abandoned chain, and serving it would walk a lagging
    // mirror down a dead generation instead of forcing a full resync.
    assert!(engine.delta_blob(0).is_none());
}
