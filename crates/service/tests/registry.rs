//! Integration tests for the shard registry: budget split, typed
//! unknown-shard errors, per-shard delta isolation (epoch *and*
//! cache), exact stats aggregation, and registry-wide shutdown.

use inano_atlas::{Atlas, AtlasDelta, LinkAnnotation, Plane};
use inano_core::PredictorConfig;
use inano_model::{Asn, ClusterId, Ipv4, LatencyMs, ModelError, Prefix, PrefixId};
use inano_service::{RegistryConfig, ShardId, ShardRegistry, ShardSpec};
use std::sync::Arc;

/// A bidirectional ring of `n` clusters, one AS and one /16 prefix per
/// cluster. Every pair is routable.
fn ring_atlas(n: u32, day: u32) -> Atlas {
    let mut a = Atlas {
        day,
        ..Atlas::default()
    };
    for i in 0..n {
        let j = (i + 1) % n;
        for (x, y) in [(i, j), (j, i)] {
            a.links.insert(
                (ClusterId::new(x), ClusterId::new(y)),
                LinkAnnotation {
                    latency: Some(LatencyMs::new(1.0 + x as f64 * 0.1)),
                    plane: Plane::TO_DST,
                },
            );
        }
        a.cluster_as.insert(ClusterId::new(i), Asn::new(i));
        a.as_degree.insert(Asn::new(i), 2);
        a.prefix_cluster.insert(PrefixId::new(i), ClusterId::new(i));
        a.prefix_as.insert(
            PrefixId::new(i),
            (Prefix::new(Ipv4(i << 16), 16), Asn::new(i)),
        );
    }
    a
}

fn ip(cluster: u32) -> Ipv4 {
    Ipv4((cluster << 16) | 7)
}

fn ring_cfg() -> PredictorConfig {
    let mut cfg = PredictorConfig::full();
    cfg.use_tuples = false;
    cfg.use_prefs = false;
    cfg.use_providers = false;
    cfg.use_from_src = false;
    cfg
}

/// The day-`day` → day-`day+1` delta adding a 0 ↔ n/2 shortcut.
fn shortcut_delta(n: u32, day: u32) -> AtlasDelta {
    let base = ring_atlas(n, day);
    let mut next = ring_atlas(n, day + 1);
    let far = n / 2;
    for (x, y) in [(0, far), (far, 0)] {
        next.links.insert(
            (ClusterId::new(x), ClusterId::new(y)),
            LinkAnnotation {
                latency: Some(LatencyMs::new(0.5)),
                plane: Plane::TO_DST,
            },
        );
    }
    AtlasDelta::between(&base, &next)
}

fn two_ring_registry(n: u32) -> ShardRegistry {
    let specs = [ShardId(0), ShardId(1)]
        .into_iter()
        .map(|id| ShardSpec {
            id,
            atlas: Arc::new(ring_atlas(n, 0)),
            predictor: ring_cfg(),
        })
        .collect();
    ShardRegistry::build(
        specs,
        RegistryConfig {
            total_workers: 4,
            total_cache_capacity: 2048,
            cache_shards: 4,
            chunk: 16,
        },
    )
    .expect("two-shard registry builds")
}

#[test]
fn build_splits_the_budget_and_serves_every_shard() {
    let specs = (0..3)
        .map(|i| ShardSpec {
            id: ShardId(i),
            atlas: Arc::new(ring_atlas(8 + i as u32 * 4, 0)),
            predictor: ring_cfg(),
        })
        .collect();
    let registry = ShardRegistry::build(
        specs,
        RegistryConfig {
            total_workers: 7,
            total_cache_capacity: 3000,
            cache_shards: 4,
            chunk: 16,
        },
    )
    .expect("registry builds");
    assert_eq!(registry.len(), 3);
    assert_eq!(
        registry.shard_ids(),
        vec![ShardId(0), ShardId(1), ShardId(2)]
    );
    for (k, (id, engine)) in registry.iter().enumerate() {
        // 7 workers over 3 shards: each gets floor(7/3) = 2.
        assert_eq!(engine.stats().workers, 2, "{id} worker split");
        // Each shard serves its own world: the 0 -> n/2 path length
        // tracks that shard's ring size.
        let n = 8 + k as u32 * 4;
        let path = engine.query(ip(0), ip(n / 2)).expect("routable");
        assert_eq!(path.fwd_clusters.len(), n as usize / 2 + 1);
    }
    registry.shutdown();
}

#[test]
fn empty_and_duplicate_specs_are_config_errors() {
    assert!(matches!(
        ShardRegistry::build(Vec::new(), RegistryConfig::default()),
        Err(ModelError::Config(_))
    ));
    let dup = |id| ShardSpec {
        id,
        atlas: Arc::new(ring_atlas(6, 0)),
        predictor: ring_cfg(),
    };
    assert!(matches!(
        ShardRegistry::build(
            vec![dup(ShardId(3)), dup(ShardId(3))],
            RegistryConfig::default()
        ),
        Err(ModelError::Config(_))
    ));
    assert!(matches!(
        ShardRegistry::from_engines(Vec::new()),
        Err(ModelError::Config(_))
    ));
}

#[test]
fn unknown_shard_is_a_typed_error_everywhere() {
    let registry = two_ring_registry(8);
    let missing = ShardId(9);
    assert!(matches!(
        registry.engine(missing),
        Err(ModelError::UnknownShard(9))
    ));
    assert!(matches!(
        registry.apply_delta(missing, &shortcut_delta(8, 0)),
        Err(ModelError::UnknownShard(9))
    ));
    assert!(matches!(
        registry.epoch(missing),
        Err(ModelError::UnknownShard(9))
    ));
    assert!(!registry.contains(missing));
    assert!(registry.contains(ShardId(1)));
    registry.shutdown();
}

#[test]
fn delta_on_one_shard_never_bumps_the_other_or_evicts_its_cache() {
    let n = 12;
    let far = n / 2;
    let registry = two_ring_registry(n);
    let a = ShardId(0);
    let b = ShardId(1);

    // Warm both caches: first query misses, second hits.
    for shard in [a, b] {
        let engine = registry.engine(shard).unwrap();
        engine.query(ip(0), ip(far)).expect("routable");
        engine.query(ip(0), ip(far)).expect("routable");
        let s = engine.stats();
        assert_eq!((s.cache_misses, s.cache_hits), (1, 1), "{shard} warmup");
    }

    let day = registry
        .apply_delta(a, &shortcut_delta(n, 0))
        .expect("delta applies to shard 0");
    assert_eq!(day, 1);

    // Shard A moved: new epoch, the epoch-keyed cache entry is stale
    // (a fresh miss), and the shortcut is the served route.
    assert_eq!(registry.epoch(a).unwrap(), (1, 1));
    let ea = registry.engine(a).unwrap();
    let path_a = ea.query(ip(0), ip(far)).expect("routable");
    assert_eq!(path_a.fwd_clusters.len(), 2, "shard 0 serves the shortcut");
    assert_eq!(ea.stats().cache_misses, 2, "old-epoch entry is dead");

    // Shard B did not move: same epoch, same route, and the warm
    // cache entry still hits — nothing was evicted.
    assert_eq!(registry.epoch(b).unwrap(), (0, 0));
    let eb = registry.engine(b).unwrap();
    let path_b = eb.query(ip(0), ip(far)).expect("routable");
    assert_eq!(
        path_b.fwd_clusters.len(),
        far as usize + 1,
        "shard 1 still serves the long way around"
    );
    let sb = eb.stats();
    assert_eq!(sb.cache_hits, 2, "shard 1's cache survived shard 0's swap");
    assert_eq!(sb.cache_misses, 1);
    assert_eq!(sb.cache_evictions, 0);
    assert_eq!(sb.swaps, 0);
    registry.shutdown();
}

#[test]
fn stats_aggregate_sums_counters_and_merges_histograms() {
    let registry = two_ring_registry(8);
    let ea = registry.engine(ShardId(0)).unwrap();
    let eb = registry.engine(ShardId(1)).unwrap();
    for _ in 0..5 {
        ea.query(ip(0), ip(3)).expect("routable");
    }
    for _ in 0..3 {
        eb.query(ip(1), ip(4)).expect("routable");
    }
    registry
        .apply_delta(ShardId(1), &shortcut_delta(8, 0))
        .expect("delta applies");

    let stats = registry.stats();
    assert_eq!(stats.shards.len(), 2);
    assert_eq!(stats.shards[0].0, ShardId(0));
    assert_eq!(stats.aggregate.queries, 8);
    assert_eq!(stats.aggregate.swaps, 1);
    assert_eq!(stats.aggregate.epoch, 1, "aggregate epoch is the max");
    assert_eq!(stats.aggregate.workers, 4, "worker budget sums back up");
    assert_eq!(
        stats.aggregate.latency_buckets.iter().sum::<u64>(),
        8,
        "merged histogram holds every query"
    );
    registry.shutdown();
}

#[test]
fn shutdown_drains_every_shard_and_stays_serving_inline() {
    let registry = two_ring_registry(8);
    registry.shutdown();
    for (id, engine) in registry.iter() {
        assert!(engine.is_shut_down(), "{id} drained");
        // Inline serving survives the pool.
        engine.query(ip(0), ip(2)).expect("inline after shutdown");
    }
    registry.shutdown(); // idempotent
}

#[test]
fn single_keeps_old_semantics_behind_shard_zero() {
    let engine = Arc::new(inano_service::QueryEngine::new(
        Arc::new(ring_atlas(6, 0)),
        inano_service::ServiceConfig {
            workers: 2,
            predictor: ring_cfg(),
            ..inano_service::ServiceConfig::default()
        },
    ));
    let registry = ShardRegistry::single(Arc::clone(&engine));
    assert_eq!(registry.shard_ids(), vec![ShardId::DEFAULT]);
    assert!(Arc::ptr_eq(
        registry.engine(ShardId::DEFAULT).unwrap(),
        &engine
    ));
    registry.shutdown();
}
