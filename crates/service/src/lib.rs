//! # inano-service
//!
//! The serving layer above `inano-core`: an embeddable, multi-threaded
//! query engine that turns the paper's single-threaded library
//! (§5 — "a library runnable at every peer") into something that serves
//! heavy traffic on a multicore host.
//!
//! Three pieces, separable and individually tested:
//!
//! * [`QueryEngine`] — a worker pool (std threads + channels, no
//!   external runtime) fanning [`QueryEngine::query_batch`] chunks
//!   across cores, with an inline fast path for single queries;
//! * [`ShardedCache`] — a sharded LRU over full bidirectional
//!   predictions keyed `(src_cluster, dst_cluster, epoch)`, riding the
//!   paper's observation that predictions are stable within a
//!   measurement day, with hit/miss/eviction counters;
//! * hot swap — the serving generation is an `Arc` behind a `RwLock`
//!   taken for writing only during the pointer store of a daily-delta
//!   apply ([`QueryEngine::apply_delta`] /
//!   [`QueryEngine::update`], fed by any [`inano_core::AtlasSource`],
//!   including the swarm's `SwarmSource`), so updates never stall
//!   in-flight queries.
//!
//! [`ShardRegistry`] composes engines into multi-atlas serving: a
//! [`ShardId`]-keyed set of fully independent engines (own cache,
//! epoch, worker pool, sized from one shared budget) behind a single
//! lookup, with per-shard delta application and exact aggregated
//! stats — the unit `inano-net` serves behind one listener.
//!
//! [`ServiceStats`] snapshots QPS, p50/p99 service latency (plus the
//! raw log₂ latency buckets, so aggregators merge histograms instead
//! of averaging percentiles) and cache hit rate; `inano-bench`'s
//! `svc_throughput` binary drives all of this under a zipf query mix
//! and emits the numbers as a BENCH JSON line.
//!
//! See DESIGN.md ("The service layer") for the full architecture
//! discussion: threading model, cache-key soundness argument, and the
//! swap protocol.

pub mod cache;
pub mod engine;
pub mod registry;
pub mod stats;

pub use cache::{CacheCounters, CacheKey, ShardedCache};
pub use engine::{AtlasSnapshot, DeltaBlob, Generation, QueryEngine, ServiceConfig, DELTA_LOG_CAP};
pub use registry::{RegistryConfig, RegistryStats, ShardId, ShardRegistry, ShardSpec};
pub use stats::{
    quantile_from_counts, LatencyHistogram, Metrics, MirrorMetrics, MirrorStats, ServiceStats,
};
