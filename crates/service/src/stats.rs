//! Service metrics: lock-free counters plus a log₂-bucketed latency
//! histogram, snapshotted into a [`ServiceStats`] value.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of power-of-two latency buckets: bucket `i` covers
/// `[2^i, 2^(i+1))` microseconds, so 40 buckets reach ~12 days.
const BUCKETS: usize = 40;

/// Lock-free latency histogram over microseconds.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    pub fn record_us(&self, us: u64) {
        let idx = (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// The quantile's bucket, reported as the bucket's geometric
    /// midpoint (`1.5 × 2^i` µs) — bucket-resolution, which is all a
    /// power-of-two histogram can honestly claim.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (1u64 << i) + (1u64 << i) / 2;
            }
        }
        (1u64 << (BUCKETS - 1)) * 3 / 2
    }

    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

/// The engine's live metric registers.
#[derive(Debug)]
pub struct Metrics {
    pub queries: AtomicU64,
    pub errors: AtomicU64,
    pub swaps: AtomicU64,
    pub latency: LatencyHistogram,
    started: Instant,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics {
            queries: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            latency: LatencyHistogram::default(),
            started: Instant::now(),
        }
    }
}

impl Metrics {
    pub fn record_query(&self, us: u64, ok: bool) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record_us(us);
    }

    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// A point-in-time view of the engine, cheap to take while serving.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServiceStats {
    /// Total queries answered (including errors).
    pub queries: u64,
    /// Queries that returned an error (unroutable address, no path...).
    pub errors: u64,
    /// Queries per second since the engine started.
    pub qps: f64,
    /// Median per-query service latency, microseconds (bucket resolution).
    pub p50_us: u64,
    /// 99th-percentile per-query service latency, microseconds.
    pub p99_us: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    /// hits / (hits + misses), 0 when idle.
    pub cache_hit_rate: f64,
    /// Atlas generations applied since start (delta swaps).
    pub swaps: u64,
    /// Current configuration epoch (bumped by every swap).
    pub epoch: u64,
    /// Day of the currently-served atlas.
    pub day: u32,
    /// Worker threads serving batches.
    pub workers: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let h = LatencyHistogram::default();
        for us in [10u64, 10, 10, 10, 10, 10, 10, 10, 10, 5000] {
            h.record_us(us);
        }
        let p50 = h.quantile_us(0.5);
        assert!((8..=16).contains(&p50), "p50 bucket ~10us, got {p50}");
        let p99 = h.quantile_us(0.99);
        assert!((4096..=8192).contains(&p99), "p99 bucket ~5ms, got {p99}");
        assert_eq!(h.count(), 10);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
    }

    #[test]
    fn metrics_record() {
        let m = Metrics::default();
        m.record_query(100, true);
        m.record_query(200, false);
        assert_eq!(m.queries.load(Ordering::Relaxed), 2);
        assert_eq!(m.errors.load(Ordering::Relaxed), 1);
        assert_eq!(m.latency.count(), 2);
    }
}
