//! Service metrics: lock-free counters plus a log₂-bucketed latency
//! histogram, snapshotted into a [`ServiceStats`] value.
//!
//! The histogram itself ([`LatencyHistogram`], [`BUCKETS`],
//! [`quantile_from_counts`]) lives in `inano-obs` since protocol v4 so
//! the unified metrics registry can treat it as a first-class metric
//! kind; the re-exports here keep every pre-v4 caller compiling
//! unchanged.

pub use inano_obs::{quantile_from_counts, LatencyHistogram, BUCKETS};

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The engine's live metric registers.
#[derive(Debug)]
pub struct Metrics {
    pub queries: AtomicU64,
    pub errors: AtomicU64,
    pub swaps: AtomicU64,
    pub latency: LatencyHistogram,
    started: Instant,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics {
            queries: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            latency: LatencyHistogram::default(),
            started: Instant::now(),
        }
    }
}

impl Metrics {
    pub fn record_query(&self, us: u64, ok: bool) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record_us(us);
    }

    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// Counters tracking how a mirror's engine follows its upstream: how
/// many deltas it applied, how often it fell back to a full resync,
/// how many fetch races it recovered from, and how far behind the
/// upstream head it last observed itself ([`MirrorStats::lag_days`]).
/// All zero on an origin that never calls `update`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MirrorStats {
    /// Deltas applied by `update` over this engine's lifetime.
    pub deltas_applied: u64,
    /// Full-atlas swaps via `replace_atlas` (broken delta chains).
    pub full_resyncs: u64,
    /// `VersionRaced`/`ChunkOutOfRange` restarts the fetch path
    /// recovered from.
    pub races_recovered: u64,
    /// Upstream head day minus local day at the last `update` — the
    /// convergence lag, ~0 on a healthy mirror.
    pub lag_days: u32,
    /// Upstream head day observed at the last `update`.
    pub upstream_day: u32,
}

/// The live registers behind [`MirrorStats`].
#[derive(Debug, Default)]
pub struct MirrorMetrics {
    pub deltas_applied: AtomicU64,
    pub full_resyncs: AtomicU64,
    pub races_recovered: AtomicU64,
    pub lag_days: AtomicU64,
    pub upstream_day: AtomicU64,
}

impl MirrorMetrics {
    pub fn snapshot(&self) -> MirrorStats {
        MirrorStats {
            deltas_applied: self.deltas_applied.load(Ordering::Relaxed),
            full_resyncs: self.full_resyncs.load(Ordering::Relaxed),
            races_recovered: self.races_recovered.load(Ordering::Relaxed),
            lag_days: self.lag_days.load(Ordering::Relaxed) as u32,
            upstream_day: self.upstream_day.load(Ordering::Relaxed) as u32,
        }
    }
}

/// A point-in-time view of the engine, cheap to take while serving.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServiceStats {
    /// Total queries answered (including errors).
    pub queries: u64,
    /// Queries that returned an error (unroutable address, no path...).
    pub errors: u64,
    /// Queries per second since the engine started.
    pub qps: f64,
    /// Median per-query service latency, microseconds (bucket resolution).
    pub p50_us: u64,
    /// 99th-percentile per-query service latency, microseconds.
    pub p99_us: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    /// hits / (hits + misses), 0 when idle.
    pub cache_hit_rate: f64,
    /// Atlas generations applied since start (delta swaps).
    pub swaps: u64,
    /// Current configuration epoch (bumped by every swap).
    pub epoch: u64,
    /// Day of the currently-served atlas.
    pub day: u32,
    /// Worker threads serving batches.
    pub workers: usize,
    /// Raw log₂ latency-bucket counts (bucket `i` covers
    /// `[2^i, 2^(i+1))` µs). Shipping the buckets, not just p50/p99,
    /// is what lets an aggregator merge stats from many engines
    /// exactly — see [`ServiceStats::aggregate`].
    pub latency_buckets: Vec<u64>,
}

impl ServiceStats {
    /// Merge snapshots from several engines (the shards of a registry,
    /// the members of a fleet) into one: counters sum, latency
    /// percentiles are recomputed from the element-wise sum of the
    /// bucket vectors (exact, where averaging per-engine percentiles
    /// would not be), and `epoch`/`day` take the per-shard maximum —
    /// they are per-atlas properties with no cross-shard meaning, so
    /// the aggregate reports the freshest.
    pub fn aggregate<'a>(parts: impl IntoIterator<Item = &'a ServiceStats>) -> ServiceStats {
        let mut out = ServiceStats {
            latency_buckets: vec![0; BUCKETS],
            ..ServiceStats::default()
        };
        let mut qps = 0.0;
        for s in parts {
            out.queries += s.queries;
            out.errors += s.errors;
            qps += s.qps;
            out.cache_hits += s.cache_hits;
            out.cache_misses += s.cache_misses;
            out.cache_evictions += s.cache_evictions;
            out.swaps += s.swaps;
            out.epoch = out.epoch.max(s.epoch);
            out.day = out.day.max(s.day);
            out.workers += s.workers;
            if out.latency_buckets.len() < s.latency_buckets.len() {
                out.latency_buckets.resize(s.latency_buckets.len(), 0);
            }
            for (acc, &c) in out.latency_buckets.iter_mut().zip(&s.latency_buckets) {
                *acc += c;
            }
        }
        out.qps = qps;
        out.p50_us = quantile_from_counts(&out.latency_buckets, 0.50);
        out.p99_us = quantile_from_counts(&out.latency_buckets, 0.99);
        let probed = out.cache_hits + out.cache_misses;
        out.cache_hit_rate = if probed == 0 {
            0.0
        } else {
            out.cache_hits as f64 / probed as f64
        };
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_merges_buckets_not_percentiles() {
        let fast = Metrics::default();
        let slow = Metrics::default();
        for _ in 0..90 {
            fast.record_query(10, true);
        }
        for _ in 0..10 {
            slow.record_query(5000, false);
        }
        let a = ServiceStats {
            queries: 90,
            p50_us: fast.latency.quantile_us(0.5),
            latency_buckets: fast.latency.snapshot(),
            ..ServiceStats::default()
        };
        let b = ServiceStats {
            queries: 10,
            errors: 10,
            p50_us: slow.latency.quantile_us(0.5),
            latency_buckets: slow.latency.snapshot(),
            ..ServiceStats::default()
        };
        let merged = ServiceStats::aggregate([&a, &b]);
        assert_eq!(merged.queries, 100);
        assert_eq!(merged.errors, 10);
        // The true p99 over the merged population is the slow bucket;
        // averaging the two per-part p99s could never say so.
        assert!((4096..=8192).contains(&merged.p99_us), "{}", merged.p99_us);
        assert!((8..=16).contains(&merged.p50_us), "{}", merged.p50_us);
        assert_eq!(merged.latency_buckets.iter().sum::<u64>(), 100);
    }

    #[test]
    fn metrics_record() {
        let m = Metrics::default();
        m.record_query(100, true);
        m.record_query(200, false);
        assert_eq!(m.queries.load(Ordering::Relaxed), 2);
        assert_eq!(m.errors.load(Ordering::Relaxed), 1);
        assert_eq!(m.latency.count(), 2);
    }

    #[test]
    fn mirror_metrics_snapshot() {
        let m = MirrorMetrics::default();
        m.deltas_applied.fetch_add(3, Ordering::Relaxed);
        m.lag_days.store(2, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(s.deltas_applied, 3);
        assert_eq!(s.lag_days, 2);
        assert_eq!(s.full_resyncs, 0);
    }
}
