//! Service metrics: lock-free counters plus a log₂-bucketed latency
//! histogram, snapshotted into a [`ServiceStats`] value.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of power-of-two latency buckets: bucket `i` covers
/// `[2^i, 2^(i+1))` microseconds, so 40 buckets reach ~12 days.
pub const BUCKETS: usize = 40;

/// The quantile's bucket over a raw log₂ count vector, reported as the
/// bucket's geometric midpoint (`1.5 × 2^i` µs) — bucket-resolution,
/// which is all a power-of-two histogram can honestly claim. Shared by
/// the live histogram and by aggregators merging snapshots from many
/// engines (shards, fleet members): summing bucket vectors element-wise
/// and calling this is exact, unlike averaging percentiles.
pub fn quantile_from_counts(counts: &[u64], q: f64) -> u64 {
    // A bucket index beyond u64's shift range can only come from a
    // malformed foreign histogram (ours has 40 buckets); saturate
    // rather than overflow the shift.
    let midpoint = |i: usize| {
        let base = 1u64 << i.min(63);
        base.saturating_add(base / 2)
    };
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((total as f64) * q).ceil().max(1.0) as u64;
    let mut seen = 0;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return midpoint(i);
        }
    }
    midpoint(counts.len().max(1) - 1)
}

/// Lock-free latency histogram over microseconds.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    pub fn record_us(&self, us: u64) {
        let idx = (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// See [`quantile_from_counts`].
    pub fn quantile_us(&self, q: f64) -> u64 {
        quantile_from_counts(&self.snapshot(), q)
    }

    /// A point-in-time copy of the raw bucket counts, in bucket order.
    pub fn snapshot(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

/// The engine's live metric registers.
#[derive(Debug)]
pub struct Metrics {
    pub queries: AtomicU64,
    pub errors: AtomicU64,
    pub swaps: AtomicU64,
    pub latency: LatencyHistogram,
    started: Instant,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics {
            queries: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            latency: LatencyHistogram::default(),
            started: Instant::now(),
        }
    }
}

impl Metrics {
    pub fn record_query(&self, us: u64, ok: bool) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record_us(us);
    }

    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// A point-in-time view of the engine, cheap to take while serving.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServiceStats {
    /// Total queries answered (including errors).
    pub queries: u64,
    /// Queries that returned an error (unroutable address, no path...).
    pub errors: u64,
    /// Queries per second since the engine started.
    pub qps: f64,
    /// Median per-query service latency, microseconds (bucket resolution).
    pub p50_us: u64,
    /// 99th-percentile per-query service latency, microseconds.
    pub p99_us: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    /// hits / (hits + misses), 0 when idle.
    pub cache_hit_rate: f64,
    /// Atlas generations applied since start (delta swaps).
    pub swaps: u64,
    /// Current configuration epoch (bumped by every swap).
    pub epoch: u64,
    /// Day of the currently-served atlas.
    pub day: u32,
    /// Worker threads serving batches.
    pub workers: usize,
    /// Raw log₂ latency-bucket counts (bucket `i` covers
    /// `[2^i, 2^(i+1))` µs). Shipping the buckets, not just p50/p99,
    /// is what lets an aggregator merge stats from many engines
    /// exactly — see [`ServiceStats::aggregate`].
    pub latency_buckets: Vec<u64>,
}

impl ServiceStats {
    /// Merge snapshots from several engines (the shards of a registry,
    /// the members of a fleet) into one: counters sum, latency
    /// percentiles are recomputed from the element-wise sum of the
    /// bucket vectors (exact, where averaging per-engine percentiles
    /// would not be), and `epoch`/`day` take the per-shard maximum —
    /// they are per-atlas properties with no cross-shard meaning, so
    /// the aggregate reports the freshest.
    pub fn aggregate<'a>(parts: impl IntoIterator<Item = &'a ServiceStats>) -> ServiceStats {
        let mut out = ServiceStats {
            latency_buckets: vec![0; BUCKETS],
            ..ServiceStats::default()
        };
        let mut qps = 0.0;
        for s in parts {
            out.queries += s.queries;
            out.errors += s.errors;
            qps += s.qps;
            out.cache_hits += s.cache_hits;
            out.cache_misses += s.cache_misses;
            out.cache_evictions += s.cache_evictions;
            out.swaps += s.swaps;
            out.epoch = out.epoch.max(s.epoch);
            out.day = out.day.max(s.day);
            out.workers += s.workers;
            if out.latency_buckets.len() < s.latency_buckets.len() {
                out.latency_buckets.resize(s.latency_buckets.len(), 0);
            }
            for (acc, &c) in out.latency_buckets.iter_mut().zip(&s.latency_buckets) {
                *acc += c;
            }
        }
        out.qps = qps;
        out.p50_us = quantile_from_counts(&out.latency_buckets, 0.50);
        out.p99_us = quantile_from_counts(&out.latency_buckets, 0.99);
        let probed = out.cache_hits + out.cache_misses;
        out.cache_hit_rate = if probed == 0 {
            0.0
        } else {
            out.cache_hits as f64 / probed as f64
        };
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let h = LatencyHistogram::default();
        for us in [10u64, 10, 10, 10, 10, 10, 10, 10, 10, 5000] {
            h.record_us(us);
        }
        let p50 = h.quantile_us(0.5);
        assert!((8..=16).contains(&p50), "p50 bucket ~10us, got {p50}");
        let p99 = h.quantile_us(0.99);
        assert!((4096..=8192).contains(&p99), "p99 bucket ~5ms, got {p99}");
        assert_eq!(h.count(), 10);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
    }

    #[test]
    fn aggregate_merges_buckets_not_percentiles() {
        let fast = Metrics::default();
        let slow = Metrics::default();
        for _ in 0..90 {
            fast.record_query(10, true);
        }
        for _ in 0..10 {
            slow.record_query(5000, false);
        }
        let a = ServiceStats {
            queries: 90,
            p50_us: fast.latency.quantile_us(0.5),
            latency_buckets: fast.latency.snapshot(),
            ..ServiceStats::default()
        };
        let b = ServiceStats {
            queries: 10,
            errors: 10,
            p50_us: slow.latency.quantile_us(0.5),
            latency_buckets: slow.latency.snapshot(),
            ..ServiceStats::default()
        };
        let merged = ServiceStats::aggregate([&a, &b]);
        assert_eq!(merged.queries, 100);
        assert_eq!(merged.errors, 10);
        // The true p99 over the merged population is the slow bucket;
        // averaging the two per-part p99s could never say so.
        assert!((4096..=8192).contains(&merged.p99_us), "{}", merged.p99_us);
        assert!((8..=16).contains(&merged.p50_us), "{}", merged.p50_us);
        assert_eq!(merged.latency_buckets.iter().sum::<u64>(), 100);
    }

    #[test]
    fn metrics_record() {
        let m = Metrics::default();
        m.record_query(100, true);
        m.record_query(200, false);
        assert_eq!(m.queries.load(Ordering::Relaxed), 2);
        assert_eq!(m.errors.load(Ordering::Relaxed), 1);
        assert_eq!(m.latency.count(), 2);
    }
}
