//! The sharded LRU result cache.
//!
//! Keyed on `(src_cluster, dst_cluster, epoch)`: the paper observes that
//! predictions are stable within a measurement day (§6.2.1 — path
//! stationarity is what makes a daily atlas useful at all), so a result
//! computed once for a cluster pair can be replayed for every (src, dst)
//! address pair attaching to those clusters until the next daily delta
//! bumps the epoch. Stale-epoch entries are never served (the epoch is
//! part of the key) and age out of the LRU naturally.
//!
//! Sharding: the key hash picks one of `shards` independent
//! mutex-protected LRU maps, so concurrent workers contend only when
//! they collide on a shard, not on a single global lock.

use inano_core::PredictedPath;
use inano_model::ClusterId;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// `(src_cluster, dst_cluster, config_epoch)`.
pub type CacheKey = (ClusterId, ClusterId, u64);

/// Monotone counters, updated lock-free by every worker.
#[derive(Debug, Default)]
pub struct CacheCounters {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub evictions: AtomicU64,
    pub inserts: AtomicU64,
}

/// One shard: an LRU map from key to shared result.
///
/// Recency is tracked with a monotone tick per entry plus a
/// `BTreeMap<tick, key>` recency index — O(log n) per touch, and the
/// eviction victim is simply the first index entry.
struct Shard {
    map: HashMap<CacheKey, (Arc<PredictedPath>, u64)>,
    recency: BTreeMap<u64, CacheKey>,
    tick: u64,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            map: HashMap::new(),
            recency: BTreeMap::new(),
            tick: 0,
        }
    }

    fn touch(&mut self, key: &CacheKey) -> Option<Arc<PredictedPath>> {
        self.tick += 1;
        let tick = self.tick;
        let (value, old_tick) = self.map.get_mut(key)?;
        let value = Arc::clone(value);
        let old = std::mem::replace(old_tick, tick);
        self.recency.remove(&old);
        self.recency.insert(tick, *key);
        Some(value)
    }

    /// Insert, evicting the least-recently-used entries past `capacity`.
    /// Returns how many entries were evicted.
    fn insert(&mut self, key: CacheKey, value: Arc<PredictedPath>, capacity: usize) -> u64 {
        self.tick += 1;
        let tick = self.tick;
        if let Some((_, old_tick)) = self.map.get(&key) {
            let old = *old_tick;
            self.recency.remove(&old);
        }
        self.map.insert(key, (value, tick));
        self.recency.insert(tick, key);
        let mut evicted = 0;
        while self.map.len() > capacity {
            let (&oldest, &victim) = self.recency.iter().next().expect("recency tracks map");
            self.recency.remove(&oldest);
            self.map.remove(&victim);
            evicted += 1;
        }
        evicted
    }
}

/// A sharded LRU cache of prediction results.
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard capacity (total capacity / shard count, at least 1).
    shard_capacity: usize,
    counters: CacheCounters,
}

impl ShardedCache {
    /// `capacity` is the total entry budget; `shards` is rounded up to a
    /// power of two.
    pub fn new(capacity: usize, shards: usize) -> ShardedCache {
        let shards = shards.max(1).next_power_of_two();
        let shard_capacity = (capacity / shards).max(1);
        ShardedCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            shard_capacity,
            counters: CacheCounters::default(),
        }
    }

    fn shard_of(&self, key: &CacheKey) -> &Mutex<Shard> {
        // Cheap avalanche over the three key words; shards.len() is a
        // power of two.
        let mut h = (key.0.raw() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (key.1.raw() as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9)
            ^ key.2.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 29;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 32;
        &self.shards[(h as usize) & (self.shards.len() - 1)]
    }

    pub fn get(&self, key: &CacheKey) -> Option<Arc<PredictedPath>> {
        let hit = self.shard_of(key).lock().touch(key);
        match &hit {
            Some(_) => self.counters.hits.fetch_add(1, Ordering::Relaxed),
            None => self.counters.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    pub fn insert(&self, key: CacheKey, value: Arc<PredictedPath>) {
        let evicted = self
            .shard_of(&key)
            .lock()
            .insert(key, value, self.shard_capacity);
        self.counters.inserts.fetch_add(1, Ordering::Relaxed);
        if evicted > 0 {
            self.counters
                .evictions
                .fetch_add(evicted, Ordering::Relaxed);
        }
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn counters(&self) -> &CacheCounters {
        &self.counters
    }

    /// (hits, misses, evictions, inserts) snapshot.
    pub fn counter_snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.counters.hits.load(Ordering::Relaxed),
            self.counters.misses.load(Ordering::Relaxed),
            self.counters.evictions.load(Ordering::Relaxed),
            self.counters.inserts.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_model::{AsPath, LatencyMs, LossRate};

    fn path(rtt: f64) -> Arc<PredictedPath> {
        Arc::new(PredictedPath {
            fwd_clusters: vec![],
            rev_clusters: vec![],
            fwd_as_path: AsPath::new(vec![]),
            rev_as_path: AsPath::new(vec![]),
            rtt: LatencyMs::new(rtt),
            loss: LossRate::new(0.0),
        })
    }

    fn key(s: u32, d: u32, e: u64) -> CacheKey {
        (ClusterId::new(s), ClusterId::new(d), e)
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let c = ShardedCache::new(16, 4);
        assert!(c.get(&key(1, 2, 0)).is_none());
        c.insert(key(1, 2, 0), path(1.0));
        let hit = c.get(&key(1, 2, 0)).expect("cached");
        assert!((hit.rtt.ms() - 1.0).abs() < 1e-12);
        let (h, m, _, _) = c.counter_snapshot();
        assert_eq!((h, m), (1, 1));
    }

    #[test]
    fn epoch_is_part_of_the_key() {
        let c = ShardedCache::new(16, 1);
        c.insert(key(1, 2, 0), path(1.0));
        assert!(c.get(&key(1, 2, 1)).is_none(), "next epoch never sees it");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let c = ShardedCache::new(2, 1);
        c.insert(key(1, 1, 0), path(1.0));
        c.insert(key(2, 2, 0), path(2.0));
        assert!(c.get(&key(1, 1, 0)).is_some(), "refresh 1");
        c.insert(key(3, 3, 0), path(3.0));
        assert!(c.get(&key(1, 1, 0)).is_some(), "recently used survives");
        assert!(c.get(&key(2, 2, 0)).is_none(), "LRU victim evicted");
        let (_, _, ev, _) = c.counter_snapshot();
        assert_eq!(ev, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_same_key_does_not_grow() {
        let c = ShardedCache::new(4, 1);
        for i in 0..10 {
            c.insert(key(1, 2, 0), path(i as f64));
        }
        assert_eq!(c.len(), 1);
        assert!((c.get(&key(1, 2, 0)).unwrap().rtt.ms() - 9.0).abs() < 1e-12);
    }
}
