//! The shard registry: one process, many independent atlas shards.
//!
//! The deployment story of §5 is many atlas generations/regions served
//! to millions of thin peers. One [`QueryEngine`] is one atlas; a
//! [`ShardRegistry`] is the step from "a server" toward "a serving
//! fleet": a [`ShardId`]-keyed set of engines, each with its own
//! cache, epoch and worker pool, behind one lookup. Nothing is shared
//! between shards except the process — a delta applied to shard A
//! cannot bump shard B's epoch or evict its cache, which is exactly
//! the isolation a fleet operator needs to roll atlas generations
//! shard by shard.
//!
//! ## Resource budget
//!
//! [`ShardRegistry::build`] sizes every shard from a *shared* budget
//! ([`RegistryConfig::total_workers`] /
//! [`RegistryConfig::total_cache_capacity`]): N shards on one host
//! should cost roughly what one big engine costs, not N times as much.
//! Each shard gets an equal split, floored at one worker and a small
//! cache so a crowded registry degrades instead of panicking.
//!
//! ## Stats
//!
//! [`ShardRegistry::stats`] snapshots every shard and the exact
//! aggregate: counters sum, and the merged latency percentiles are
//! recomputed from the element-wise sum of the per-shard log₂ bucket
//! vectors ([`ServiceStats::aggregate`]) — merging histograms, not
//! averaging percentiles.

use crate::engine::{QueryEngine, ServiceConfig};
use crate::stats::ServiceStats;
use inano_atlas::{Atlas, AtlasDelta};
use inano_core::{AtlasSource, PredictorConfig};
use inano_model::ModelError;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::thread;

/// Identifies one atlas shard within a registry. Part of the v2 wire
/// protocol (requests carry it as a `u16`); shard 0 is the default
/// every shard-unaware caller lands on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u16);

impl ShardId {
    /// The shard that keeps single-atlas semantics: requests that name
    /// no shard are served by shard 0.
    pub const DEFAULT: ShardId = ShardId(0);

    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// What one shard serves: an atlas plus the predictor settings for it
/// (a synthetic ring world and a measured atlas want different
/// refinements, and one registry may host both).
pub struct ShardSpec {
    pub id: ShardId,
    pub atlas: Arc<Atlas>,
    pub predictor: PredictorConfig,
}

/// Registry-wide tuning: one budget shared by every shard.
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Worker threads across *all* shards, split evenly (each shard
    /// gets at least one).
    pub total_workers: usize,
    /// Result-cache entries across all shards, split evenly.
    pub total_cache_capacity: usize,
    /// Cache shard count per engine (rounded up to a power of two).
    pub cache_shards: usize,
    /// Pairs per work item when fanning a batch across workers.
    pub chunk: usize,
}

impl Default for RegistryConfig {
    fn default() -> RegistryConfig {
        let d = ServiceConfig::default();
        RegistryConfig {
            total_workers: d.workers,
            total_cache_capacity: d.cache_capacity,
            cache_shards: d.cache_shards,
            chunk: d.chunk,
        }
    }
}

impl RegistryConfig {
    /// The per-shard engine configuration when `shards` shards split
    /// this budget.
    fn shard_config(&self, shards: usize, predictor: PredictorConfig) -> ServiceConfig {
        let n = shards.max(1);
        ServiceConfig {
            workers: (self.total_workers / n).max(1),
            cache_capacity: (self.total_cache_capacity / n).max(64),
            cache_shards: self.cache_shards,
            chunk: self.chunk,
            predictor,
        }
    }
}

/// Every shard's stats plus the registry-wide aggregate.
#[derive(Clone, Debug)]
pub struct RegistryStats {
    /// Per-shard snapshots, in shard-id order.
    pub shards: Vec<(ShardId, ServiceStats)>,
    /// The exact merge of the per-shard snapshots
    /// (see [`ServiceStats::aggregate`]).
    pub aggregate: ServiceStats,
}

/// At least one shard, and no more than the wire protocol's
/// `ShardsReply` can enumerate (its count register is a `u16`, so a
/// full 65536-id registry would silently drop one shard from every
/// listing).
fn check_shard_count(n: usize) -> Result<(), ModelError> {
    if n == 0 {
        return Err(ModelError::Config(
            "a shard registry needs at least one shard".into(),
        ));
    }
    if n > u16::MAX as usize {
        return Err(ModelError::Config(format!(
            "{n} shards exceed the wire-enumerable limit of {}",
            u16::MAX
        )));
    }
    Ok(())
}

/// A fixed set of independent [`QueryEngine`]s keyed by [`ShardId`].
///
/// The shard set is decided at construction (a serving process is
/// configured with its shards; re-sharding is a restart), so lookups
/// are lock-free reads of an immutable map — the hot path pays one
/// `BTreeMap` probe, never a lock.
pub struct ShardRegistry {
    shards: BTreeMap<ShardId, Arc<QueryEngine>>,
}

impl ShardRegistry {
    /// Build one engine per spec, splitting the registry budget evenly
    /// across them. Duplicate shard ids and an empty spec list are
    /// configuration errors.
    pub fn build(specs: Vec<ShardSpec>, cfg: RegistryConfig) -> Result<ShardRegistry, ModelError> {
        check_shard_count(specs.len())?;
        let n = specs.len();
        let mut shards = BTreeMap::new();
        for spec in specs {
            let engine = Arc::new(QueryEngine::new(
                spec.atlas,
                cfg.shard_config(n, spec.predictor),
            ));
            if shards.insert(spec.id, engine).is_some() {
                return Err(ModelError::Config(format!(
                    "duplicate {} in registry spec",
                    spec.id
                )));
            }
        }
        Ok(ShardRegistry { shards })
    }

    /// Wrap pre-built engines (each already sized by its owner). The
    /// loadgen and tests use this to control per-shard configuration
    /// exactly.
    pub fn from_engines(
        engines: Vec<(ShardId, Arc<QueryEngine>)>,
    ) -> Result<ShardRegistry, ModelError> {
        check_shard_count(engines.len())?;
        let mut shards = BTreeMap::new();
        for (id, engine) in engines {
            if shards.insert(id, engine).is_some() {
                return Err(ModelError::Config(format!("duplicate {id} in registry")));
            }
        }
        Ok(ShardRegistry { shards })
    }

    /// A single-shard registry over an existing engine: the upgrade
    /// path for every pre-sharding caller, byte-for-byte the old
    /// semantics behind shard 0.
    pub fn single(engine: Arc<QueryEngine>) -> ShardRegistry {
        ShardRegistry {
            shards: BTreeMap::from([(ShardId::DEFAULT, engine)]),
        }
    }

    /// The engine serving `shard`, or a typed [`ModelError::UnknownShard`].
    pub fn engine(&self, shard: ShardId) -> Result<&Arc<QueryEngine>, ModelError> {
        self.shards
            .get(&shard)
            .ok_or(ModelError::UnknownShard(shard.0))
    }

    pub fn contains(&self, shard: ShardId) -> bool {
        self.shards.contains_key(&shard)
    }

    /// Shard ids in ascending order.
    pub fn shard_ids(&self) -> Vec<ShardId> {
        self.shards.keys().copied().collect()
    }

    pub fn len(&self) -> usize {
        self.shards.len()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Iterate `(id, engine)` in shard-id order.
    pub fn iter(&self) -> impl Iterator<Item = (ShardId, &Arc<QueryEngine>)> {
        self.shards.iter().map(|(&id, e)| (id, e))
    }

    /// Apply one daily delta to `shard` only; every other shard's
    /// epoch and cache are untouched. Returns the shard's new day.
    pub fn apply_delta(&self, shard: ShardId, delta: &AtlasDelta) -> Result<u32, ModelError> {
        self.engine(shard)?.apply_delta(delta)
    }

    /// Run [`QueryEngine::update`] against `shard` only. Returns how
    /// many deltas were applied.
    pub fn update(
        &self,
        shard: ShardId,
        source: &mut dyn AtlasSource,
    ) -> Result<usize, ModelError> {
        self.engine(shard)?.update(source)
    }

    /// `(epoch, day)` of one shard's serving generation.
    pub fn epoch(&self, shard: ShardId) -> Result<(u64, u32), ModelError> {
        let generation = self.engine(shard)?.generation();
        Ok((generation.epoch, generation.day()))
    }

    /// Swap a whole new atlas into one shard (see
    /// [`QueryEngine::replace_atlas`]). Returns the shard's new day.
    pub fn replace_atlas(&self, shard: ShardId, atlas: Arc<Atlas>) -> Result<u32, ModelError> {
        Ok(self.engine(shard)?.replace_atlas(atlas))
    }

    /// One shard's dissemination snapshot (see [`QueryEngine::export`]).
    pub fn export(&self, shard: ShardId) -> Result<Arc<crate::engine::AtlasSnapshot>, ModelError> {
        Ok(self.engine(shard)?.export())
    }

    /// One shard's retained delta leaving `have_day`, if any.
    pub fn delta_blob(
        &self,
        shard: ShardId,
        have_day: u32,
    ) -> Result<Option<Arc<crate::engine::DeltaBlob>>, ModelError> {
        Ok(self.engine(shard)?.delta_blob(have_day))
    }

    /// Snapshot every shard plus the exact aggregate.
    pub fn stats(&self) -> RegistryStats {
        let shards: Vec<(ShardId, ServiceStats)> =
            self.shards.iter().map(|(&id, e)| (id, e.stats())).collect();
        let aggregate = ServiceStats::aggregate(shards.iter().map(|(_, s)| s));
        RegistryStats { shards, aggregate }
    }

    /// Drain and stop every shard's worker pool, in parallel (each
    /// shard's shutdown blocks until its accepted batches are answered
    /// and its workers joined, so a serial loop would pay the slowest
    /// shard N times). Idempotent, like the per-engine shutdown;
    /// engines keep answering inline afterwards.
    pub fn shutdown(&self) {
        thread::scope(|scope| {
            for engine in self.shards.values() {
                scope.spawn(move || engine.shutdown());
            }
        });
    }
}
