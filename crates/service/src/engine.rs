//! The query engine: a worker pool fanning batches across cores, a
//! sharded result cache, and a hot-swappable predictor generation.
//!
//! ## Threading model
//!
//! `QueryEngine::new` spawns `workers` OS threads which block on a
//! shared MPMC job queue (an `mpsc` channel behind a mutex — workers
//! contend only for the *pop*, not the work). [`QueryEngine::query_batch`]
//! splits the batch into chunks, enqueues them, and reassembles replies
//! in order; [`QueryEngine::query`] serves inline on the caller's
//! thread, sharing the same cache and generation.
//! [`QueryEngine::shutdown`] (also run on drop) closes the queue,
//! drains it, and joins the pool; batches accepted before the call are
//! fully answered and later ones serve inline, so no accepted query is
//! lost.
//!
//! ## Hot swap
//!
//! The current atlas generation lives behind
//! `RwLock<Arc<Generation>>`. Queries take the read lock just long
//! enough to clone the `Arc` — they never hold it while searching — so
//! a daily-delta swap (write lock held only for the pointer store)
//! neither stalls in-flight queries nor is starved by them. Queries
//! already running finish against the generation they snapshotted; every
//! query that starts after the swap sees the new day. The heavy work
//! (delta application, graph construction) happens *before* the write
//! lock is taken.

use crate::cache::ShardedCache;
use crate::stats::{Metrics, MirrorMetrics, MirrorStats, ServiceStats};
use inano_atlas::{codec, Atlas, AtlasDelta};
use inano_core::{
    chunk_span, content_tag, AtlasReader, AtlasSource, AtlasVersion, DeltaHandle, PathPredictor,
    PredictedPath, PredictorConfig,
};
use inano_model::{Ipv4, ModelError};
use inano_obs::{EventJournal, EventKind};
use parking_lot::{Mutex, RwLock};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Instant;

/// Tuning knobs for the engine.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads serving batched queries.
    pub workers: usize,
    /// Total result-cache entry budget across all shards.
    pub cache_capacity: usize,
    /// Cache shard count (rounded up to a power of two).
    pub cache_shards: usize,
    /// Pairs per work item when fanning a batch across workers.
    pub chunk: usize,
    /// Predictor configuration used for every generation.
    pub predictor: PredictorConfig,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        let cores = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ServiceConfig {
            workers: cores.max(4),
            cache_capacity: 65_536,
            cache_shards: 16,
            chunk: 64,
            predictor: PredictorConfig::full(),
        }
    }
}

/// One immutable atlas generation. Workers snapshot an `Arc` to it per
/// work item; swaps replace the pointer, never mutate.
pub struct Generation {
    /// Bumped on every applied delta; part of every cache key, so a
    /// swap implicitly invalidates the whole cache.
    pub epoch: u64,
    pub predictor: Arc<PathPredictor>,
}

impl Generation {
    pub fn day(&self) -> u32 {
        self.predictor.atlas().day
    }
}

/// Daily deltas retained for re-serving ([`QueryEngine::delta_blob`]).
/// A mirror that lags further than this refetches the full atlas; one
/// day per entry, so the cap is about a month of history.
pub const DELTA_LOG_CAP: usize = 32;

/// One generation's encoded bytes plus everything a dissemination head
/// needs: what [`QueryEngine::export`] snapshots so any server can act
/// as an atlas mirror.
pub struct AtlasSnapshot {
    /// Day of the encoded atlas.
    pub day: u32,
    /// Engine epoch the snapshot was cut at (the cache key for
    /// re-encoding; local to this engine).
    pub epoch: u64,
    /// Content tag of `bytes` ([`content_tag`]) — identical on every
    /// node of a mirror chain serving this generation, which is what
    /// makes end-to-end "same atlas?" checks one integer compare.
    pub epoch_tag: u64,
    /// The encoded atlas, shared — chunk serving never copies the body.
    pub bytes: Arc<[u8]>,
    /// Per-chunk checksums, computed lazily and keyed by the chunk
    /// size they were cut at (one server serves one chunk size) — so N
    /// mirrors fetching the body cost one hash of it, not N.
    chunk_crcs: Mutex<Option<(u32, Arc<[u64]>)>>,
}

impl AtlasSnapshot {
    /// Checksums of every `chunk_size` chunk of the body, in index
    /// order; cached after the first call per chunk size.
    pub fn chunk_crcs(&self, chunk_size: u32) -> Arc<[u64]> {
        let mut cached = self.chunk_crcs.lock();
        if let Some((cut, crcs)) = cached.as_ref() {
            if *cut == chunk_size {
                return Arc::clone(crcs);
            }
        }
        let len = self.bytes.len() as u64;
        let crcs: Arc<[u64]> = (0..inano_core::n_chunks(len, chunk_size))
            .map(|i| {
                let span = chunk_span(len, chunk_size, i).expect("index below n_chunks");
                content_tag(&self.bytes[span])
            })
            .collect();
        *cached = Some((chunk_size, Arc::clone(&crcs)));
        crcs
    }
    /// The wire-facing version descriptor for this snapshot, chunked at
    /// `chunk_size`.
    pub fn version(&self, chunk_size: u32) -> AtlasVersion {
        AtlasVersion {
            day: self.day,
            epoch_tag: self.epoch_tag,
            full_len: self.bytes.len() as u64,
            chunk_size,
        }
    }

    /// Chunk `idx` of the body at `chunk_size`, or a typed
    /// out-of-range error.
    pub fn chunk(&self, chunk_size: u32, idx: u32) -> Result<&[u8], ModelError> {
        let span = chunk_span(self.bytes.len() as u64, chunk_size, idx)?;
        Ok(&self.bytes[span])
    }
}

/// One applied daily delta, retained in encoded form so downstream
/// mirrors can fetch exactly the bytes this engine applied.
pub struct DeltaBlob {
    pub from_day: u32,
    pub to_day: u32,
    pub bytes: Arc<[u8]>,
}

impl DeltaBlob {
    /// The wire-facing handle for this delta, chunked at `chunk_size`.
    pub fn handle(&self, chunk_size: u32) -> DeltaHandle {
        DeltaHandle {
            from_day: self.from_day,
            to_day: self.to_day,
            len: self.bytes.len() as u64,
            chunk_size,
        }
    }

    /// Chunk `idx` of the delta body at `chunk_size`.
    pub fn chunk(&self, chunk_size: u32, idx: u32) -> Result<&[u8], ModelError> {
        let span = chunk_span(self.bytes.len() as u64, chunk_size, idx)?;
        Ok(&self.bytes[span])
    }
}

/// A chunk of a batch, dispatched to the worker pool.
struct Job {
    pairs: Vec<(Ipv4, Ipv4)>,
    offset: usize,
    reply: mpsc::Sender<(usize, Vec<Result<PredictedPath, ModelError>>)>,
}

/// The concurrent, hot-swappable query engine (§5 scaled up: the same
/// local-library semantics as [`inano_core::INanoClient`], behind a
/// thread pool and a result cache).
pub struct QueryEngine {
    current: Arc<RwLock<Arc<Generation>>>,
    cache: Arc<ShardedCache>,
    metrics: Arc<Metrics>,
    cfg: ServiceConfig,
    /// Serialises swap *builders*; never blocks readers.
    swap_lock: Mutex<()>,
    /// `None` once [`QueryEngine::shutdown`] has run; batch submission
    /// takes the read lock just long enough to clone the sender.
    job_tx: RwLock<Option<mpsc::Sender<Job>>>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
    /// Configured pool size (stable across shutdown, for stats).
    n_workers: usize,
    /// Cached encoding of the current generation, keyed by its epoch
    /// (re-encoding a ~7MB atlas per mirror request would be the real
    /// cost of serving as a mirror; this makes it once per swap).
    export: Mutex<Option<Arc<AtlasSnapshot>>>,
    /// Encoded deltas this engine applied, oldest first, capped at
    /// [`DELTA_LOG_CAP`] — what downstream mirrors fetch.
    delta_log: Mutex<VecDeque<Arc<DeltaBlob>>>,
    /// How this engine follows its upstream (all zero on an origin);
    /// see [`MirrorStats`].
    mirror: MirrorMetrics,
    /// Where swap/delta/resync events land once a serving layer
    /// attaches its journal ([`QueryEngine::set_journal`]); the label
    /// (usually `shardN`) prefixes every detail so one journal can
    /// carry many engines. `None` (an embedded engine) costs one
    /// uncontended lock per swap — nothing on the query path.
    journal: Mutex<Option<(Arc<EventJournal>, String)>>,
}

impl QueryEngine {
    /// Build an engine over an already-decoded atlas.
    pub fn new(atlas: Arc<Atlas>, cfg: ServiceConfig) -> QueryEngine {
        let predictor = Arc::new(PathPredictor::new(atlas, cfg.predictor.clone()));
        let generation = Arc::new(Generation {
            epoch: 0,
            predictor,
        });
        let current = Arc::new(RwLock::new(generation));
        let cache = Arc::new(ShardedCache::new(cfg.cache_capacity, cfg.cache_shards));
        let metrics = Arc::new(Metrics::default());

        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let n_workers = cfg.workers.max(1);
        let workers = (0..n_workers)
            .map(|i| {
                let rx = Arc::clone(&job_rx);
                let current = Arc::clone(&current);
                let cache = Arc::clone(&cache);
                let metrics = Arc::clone(&metrics);
                thread::Builder::new()
                    .name(format!("inano-svc-{i}"))
                    .spawn(move || loop {
                        // Pop under the mutex, then release it before
                        // doing any work.
                        let job = rx.lock().recv();
                        let Ok(job) = job else {
                            return; // channel closed: engine dropped
                        };
                        let generation = Arc::clone(&current.read());
                        let results = job
                            .pairs
                            .iter()
                            .map(|&(s, d)| serve_one(&generation, &cache, &metrics, s, d))
                            .collect();
                        // The batch caller may have given up (it never
                        // does today); a dead reply port is not an error.
                        let _ = job.reply.send((job.offset, results));
                    })
                    .expect("spawn service worker")
            })
            .collect();

        QueryEngine {
            current,
            cache,
            metrics,
            cfg,
            swap_lock: Mutex::new(()),
            job_tx: RwLock::new(Some(job_tx)),
            workers: Mutex::new(workers),
            n_workers,
            export: Mutex::new(None),
            delta_log: Mutex::new(VecDeque::new()),
            mirror: MirrorMetrics::default(),
            journal: Mutex::new(None),
        }
    }

    /// Attach an event journal: from now on every generation swap,
    /// delta application, full resync and recovered race is emitted
    /// with `label` leading the detail. The serving layer calls this
    /// at bind time; attaching again (a registry fronted by a second
    /// server) just redirects future events.
    pub fn set_journal(&self, journal: Arc<EventJournal>, label: impl Into<String>) {
        *self.journal.lock() = Some((journal, label.into()));
    }

    /// Emit `kind` onto the attached journal, if any. The detail
    /// closure only runs when a journal is attached.
    fn emit(&self, kind: EventKind, detail: impl FnOnce() -> String) {
        let guard = self.journal.lock();
        if let Some((journal, label)) = guard.as_ref() {
            journal.emit(kind, format!("{label} {}", detail()));
        }
    }

    /// Bootstrap from an [`AtlasSource`] (swarm, mirror, file, ...):
    /// the body arrives chunked and validated through [`AtlasReader`].
    pub fn bootstrap(
        source: &mut dyn AtlasSource,
        cfg: ServiceConfig,
    ) -> Result<QueryEngine, ModelError> {
        let (_, bytes) = AtlasReader::default().fetch_full(source)?;
        let atlas = codec::decode(&bytes)?;
        Ok(QueryEngine::new(Arc::new(atlas), cfg))
    }

    /// The generation queries are currently served from.
    pub fn generation(&self) -> Arc<Generation> {
        Arc::clone(&self.current.read())
    }

    /// Day of the currently-served atlas.
    pub fn day(&self) -> u32 {
        self.generation().day()
    }

    /// Current configuration epoch (one per applied delta).
    pub fn epoch(&self) -> u64 {
        self.generation().epoch
    }

    /// Serve one query inline on the caller's thread.
    pub fn query(&self, src: Ipv4, dst: Ipv4) -> Result<PredictedPath, ModelError> {
        let generation = self.generation();
        serve_one(&generation, &self.cache, &self.metrics, src, dst)
    }

    /// Serve a batch by fanning chunks across the worker pool; results
    /// come back in input order. Chunks snapshot the generation
    /// independently, so a swap mid-batch is visible from the first
    /// chunk that starts after it — exactly the freshness a client
    /// polling a daily delta would see.
    pub fn query_batch(&self, pairs: &[(Ipv4, Ipv4)]) -> Vec<Result<PredictedPath, ModelError>> {
        if pairs.is_empty() {
            return Vec::new();
        }
        // Small batches aren't worth a channel round-trip; after
        // shutdown every batch serves inline — accepted queries are
        // still answered, just without the pool.
        let tx = if pairs.len() <= self.cfg.chunk {
            None
        } else {
            self.job_tx.read().clone()
        };
        let Some(tx) = tx else {
            let generation = self.generation();
            return pairs
                .iter()
                .map(|&(s, d)| serve_one(&generation, &self.cache, &self.metrics, s, d))
                .collect();
        };
        let (reply_tx, reply_rx) = mpsc::channel();
        let mut jobs = 0usize;
        for (i, chunk) in pairs.chunks(self.cfg.chunk).enumerate() {
            tx.send(Job {
                pairs: chunk.to_vec(),
                offset: i * self.cfg.chunk,
                reply: reply_tx.clone(),
            })
            .expect("workers drain the queue before exiting");
            jobs += 1;
        }
        drop(reply_tx);
        // Let a concurrent `shutdown` finish as soon as our jobs are
        // queued: workers exit when every sender is gone.
        drop(tx);
        let mut out: Vec<Option<Result<PredictedPath, ModelError>>> =
            (0..pairs.len()).map(|_| None).collect();
        for _ in 0..jobs {
            let (offset, results) = reply_rx.recv().expect("worker reply");
            for (k, r) in results.into_iter().enumerate() {
                out[offset + k] = Some(r);
            }
        }
        out.into_iter()
            .map(|r| r.expect("every chunk replied"))
            .collect()
    }

    /// Apply one daily delta and swap the serving generation. All heavy
    /// work (delta application, graph construction) happens before the
    /// write lock; the lock is held only to store the new pointer.
    pub fn apply_delta(&self, delta: &AtlasDelta) -> Result<u32, ModelError> {
        let _builder = self.swap_lock.lock();
        self.swap_locked(delta, None)
    }

    /// The swap itself; caller must hold `swap_lock` so concurrent
    /// builders can't interleave between the generation read and the
    /// pointer store. `encoded` is the delta's wire form when the
    /// caller already has it (an `update` fetched it as bytes);
    /// otherwise it is re-encoded here for the delta log.
    fn swap_locked(&self, delta: &AtlasDelta, encoded: Option<Vec<u8>>) -> Result<u32, ModelError> {
        let base = self.generation();
        let next_atlas = Arc::new(delta.apply(base.predictor.atlas())?);
        let predictor = Arc::new(PathPredictor::new(next_atlas, self.cfg.predictor.clone()));
        let next = Arc::new(Generation {
            epoch: base.epoch + 1,
            predictor,
        });
        let day = next.day();
        let epoch = next.epoch;
        *self.current.write() = next;
        self.metrics.swaps.fetch_add(1, Ordering::Relaxed);
        self.emit(EventKind::GenerationSwap, || {
            format!("epoch={epoch} day={day}")
        });
        self.emit(EventKind::DeltaApplied, || {
            format!("from={} to={}", delta.from_day, delta.to_day)
        });
        // Retain the applied delta for downstream mirrors: the bytes a
        // peer fetching `delta(from_day)` from this engine receives are
        // exactly the bytes this engine applied.
        let bytes = encoded.unwrap_or_else(|| delta.encode().0);
        let mut log = self.delta_log.lock();
        if log.len() == DELTA_LOG_CAP {
            log.pop_front();
        }
        log.push_back(Arc::new(DeltaBlob {
            from_day: delta.from_day,
            to_day: delta.to_day,
            bytes: bytes.into(),
        }));
        Ok(day)
    }

    /// Snapshot the serving generation's encoded bytes + version for
    /// dissemination — what makes *any* engine an atlas origin. Cached
    /// per epoch: the first call after a swap re-encodes, later calls
    /// share the same `Arc`.
    pub fn export(&self) -> Arc<AtlasSnapshot> {
        let generation = self.generation();
        let mut cached = self.export.lock();
        if let Some(snap) = cached.as_ref() {
            if snap.epoch == generation.epoch {
                return Arc::clone(snap);
            }
        }
        let (bytes, _) = codec::encode(generation.predictor.atlas());
        let snap = Arc::new(AtlasSnapshot {
            day: generation.day(),
            epoch: generation.epoch,
            epoch_tag: content_tag(&bytes),
            bytes: bytes.into(),
            chunk_crcs: Mutex::new(None),
        });
        *cached = Some(Arc::clone(&snap));
        snap
    }

    /// The retained delta leaving `have_day`, if this engine applied
    /// one recently enough ([`DELTA_LOG_CAP`]).
    pub fn delta_blob(&self, have_day: u32) -> Option<Arc<DeltaBlob>> {
        self.delta_log
            .lock()
            .iter()
            .find(|b| b.from_day == have_day)
            .cloned()
    }

    /// Fetch and apply every delta the source has beyond the current
    /// day (the client-side daily update of §5, against the live
    /// engine). Returns how many deltas were applied.
    ///
    /// The builder lock is held across the whole chain: a concurrent
    /// `apply_delta`/`update` can't swap between this loop's day read
    /// and its apply, which would otherwise surface as a spurious
    /// wrong-base error from a delta that is simply already applied.
    /// That means the fetch itself runs under the lock — with a
    /// network-backed source (`NetClient`/`MirrorSource`), bound its
    /// I/O (`NetClient::set_io_timeout`) so a hung upstream stalls
    /// this updater with a typed error instead of wedging every
    /// builder forever. Queries are unaffected either way: they never
    /// take the builder lock.
    pub fn update(&self, source: &mut dyn AtlasSource) -> Result<usize, ModelError> {
        let _builder = self.swap_lock.lock();
        let reader = AtlasReader::default();
        let mut applied = 0;
        loop {
            let (fetched, races) = reader.fetch_delta_counted(source, self.day())?;
            if races > 0 {
                self.mirror
                    .races_recovered
                    .fetch_add(races as u64, Ordering::Relaxed);
                self.emit(EventKind::RaceRecovered, || format!("races={races}"));
            }
            let Some((_, bytes)) = fetched else { break };
            let delta = AtlasDelta::decode(&bytes)?;
            self.swap_locked(&delta, Some(bytes))?;
            applied += 1;
        }
        if applied > 0 {
            self.mirror
                .deltas_applied
                .fetch_add(applied as u64, Ordering::Relaxed);
        }
        // Best-effort convergence probe: where is the upstream head
        // relative to us now? A head the delta chain couldn't reach
        // (the chain is broken — the origin replaced its atlas) leaves
        // the lag gauge nonzero, which is the mirror-refresh loop's
        // cue to fall back to a full resync. A probe failure keeps the
        // applied deltas; the gauges just go stale until the next tick.
        if let Ok(head) = source.head() {
            self.mirror
                .upstream_day
                .store(head.day as u64, Ordering::Relaxed);
            self.mirror.lag_days.store(
                head.day.saturating_sub(self.day()) as u64,
                Ordering::Relaxed,
            );
        }
        Ok(applied)
    }

    /// Drain and stop the worker pool: every batch whose jobs were
    /// accepted before this call is still fully answered (workers only
    /// exit once the job queue is empty and closed), and every batch
    /// submitted afterwards serves inline on its caller's thread — no
    /// accepted query is ever lost. Idempotent; also run on drop.
    ///
    /// Blocks until in-flight batches have been answered and every
    /// worker thread has been joined.
    pub fn shutdown(&self) {
        let tx = self.job_tx.write().take();
        // Dropping the engine's sender closes the queue once in-flight
        // batches drop their clones; workers drain what's left, then
        // their `recv` errors and they exit.
        drop(tx);
        let mut workers = self.workers.lock();
        for w in workers.drain(..) {
            let _ = w.join();
        }
    }

    /// True once [`QueryEngine::shutdown`] has run (queries still
    /// work — they serve inline).
    pub fn is_shut_down(&self) -> bool {
        self.job_tx.read().is_none()
    }

    /// Swap in a whole new atlas generation: a monthly full refresh at
    /// an origin, or a mirror re-bootstrapping after falling off its
    /// upstream's retained delta chain. The epoch bumps like any delta
    /// swap — caches invalidate, the export snapshot re-encodes — but
    /// no delta is logged: there is no delta that produces this
    /// generation, so downstream mirrors bridge the discontinuity the
    /// same way, by refetching the full atlas. Returns the new day.
    pub fn replace_atlas(&self, atlas: Arc<Atlas>) -> u32 {
        let _builder = self.swap_lock.lock();
        let base = self.generation();
        let predictor = Arc::new(PathPredictor::new(atlas, self.cfg.predictor.clone()));
        let next = Arc::new(Generation {
            epoch: base.epoch + 1,
            predictor,
        });
        let day = next.day();
        let epoch = next.epoch;
        *self.current.write() = next;
        self.metrics.swaps.fetch_add(1, Ordering::Relaxed);
        self.mirror.full_resyncs.fetch_add(1, Ordering::Relaxed);
        self.emit(EventKind::GenerationSwap, || {
            format!("epoch={epoch} day={day}")
        });
        self.emit(EventKind::FullResync, || format!("day={day}"));
        // A full swap puts us at the new generation's day; any lag the
        // broken delta chain accumulated is paid off.
        self.mirror.lag_days.store(0, Ordering::Relaxed);
        // The retained deltas belong to the abandoned chain; serving
        // them on would walk lagging mirrors down a dead generation
        // instead of forcing the full resync this replace demands.
        self.delta_log.lock().clear();
        day
    }

    /// Snapshot the engine's counters.
    pub fn stats(&self) -> ServiceStats {
        let (hits, misses, evictions, _inserts) = self.cache.counter_snapshot();
        let generation = self.generation();
        let queries = self.metrics.queries.load(Ordering::Relaxed);
        let probed = hits + misses;
        // One histogram snapshot serves both the shipped buckets and
        // the percentiles, so they can never disagree about queries
        // recorded mid-call.
        let latency_buckets = self.metrics.latency.snapshot();
        ServiceStats {
            queries,
            errors: self.metrics.errors.load(Ordering::Relaxed),
            qps: queries as f64 / self.metrics.elapsed_secs().max(1e-9),
            p50_us: crate::stats::quantile_from_counts(&latency_buckets, 0.50),
            p99_us: crate::stats::quantile_from_counts(&latency_buckets, 0.99),
            cache_hits: hits,
            cache_misses: misses,
            cache_evictions: evictions,
            cache_hit_rate: if probed == 0 {
                0.0
            } else {
                hits as f64 / probed as f64
            },
            swaps: self.metrics.swaps.load(Ordering::Relaxed),
            epoch: generation.epoch,
            day: generation.day(),
            workers: self.n_workers,
            latency_buckets,
        }
    }

    /// The live mirror-follow registers (for callers, like the serve
    /// bin's resync path, that recover upstream races themselves).
    pub fn mirror_metrics(&self) -> &MirrorMetrics {
        &self.mirror
    }

    /// Snapshot of how this engine follows its upstream.
    pub fn mirror_stats(&self) -> MirrorStats {
        self.mirror.snapshot()
    }

    /// The result cache (for diagnostics and tests).
    pub fn cache(&self) -> &ShardedCache {
        &self.cache
    }
}

impl Drop for QueryEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve one (src, dst) query against a snapshotted generation: resolve
/// both endpoints, consult the cluster-keyed cache, fall back to the
/// predictor, and record latency.
fn serve_one(
    generation: &Generation,
    cache: &ShardedCache,
    metrics: &Metrics,
    src: Ipv4,
    dst: Ipv4,
) -> Result<PredictedPath, ModelError> {
    let start = Instant::now();
    let result = serve_inner(generation, cache, src, dst);
    metrics.record_query(start.elapsed().as_micros() as u64, result.is_ok());
    result
}

fn serve_inner(
    generation: &Generation,
    cache: &ShardedCache,
    src: Ipv4,
    dst: Ipv4,
) -> Result<PredictedPath, ModelError> {
    let p = &generation.predictor;
    let s = p.resolve(src)?;
    let d = p.resolve(dst)?;
    // Predictions are a pure function of the cluster pair only when both
    // prefixes agree with their cluster's AS (the overwhelmingly common
    // case); anomalous prefixes bypass the cache rather than poison it.
    let cacheable = s.canonical() && d.canonical();
    let key = (s.cluster, d.cluster, generation.epoch);
    if cacheable {
        if let Some(hit) = cache.get(&key) {
            return Ok((*hit).clone());
        }
    }
    let result = p.predict(s.prefix, d.prefix)?;
    if cacheable {
        cache.insert(key, Arc::new(result.clone()));
    }
    Ok(result)
}
