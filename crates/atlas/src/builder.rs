//! Distilling a measurement day into the compact atlas.
//!
//! This is the server-side aggregation of §5: traceroutes and BGP feeds
//! go in, the eight datasets come out. Everything here uses only
//! *measured* artefacts (hop IPs mapped through the clustering, feed AS
//! paths) — never the ground-truth policy tables, which is the entire
//! point of the reproduction.

use crate::datasets::{Atlas, Plane, Triple};
use inano_measure::{Clustering, MeasurementDay, Traceroute};
use inano_model::{AsPath, Asn, ClusterId, PrefixId};
use inano_topology::Internet;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Builder knobs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AtlasConfig {
    /// A preference (a, b > c) is kept only when observed at least this
    /// many times as often as its reverse (the paper uses 3×).
    pub pref_dominance: f64,
    /// ... and at least this many times in absolute terms (noise floor).
    pub pref_min_count: u32,
}

impl Default for AtlasConfig {
    fn default() -> Self {
        AtlasConfig {
            pref_dominance: 3.0,
            pref_min_count: 2,
        }
    }
}

/// Build the atlas for one measurement day.
pub fn build_atlas(
    net: &Internet,
    clustering: &Clustering,
    day: &MeasurementDay,
    cfg: &AtlasConfig,
) -> Atlas {
    let mut atlas = Atlas {
        day: day.day,
        ..Atlas::default()
    };

    // --- dataset 4: prefix → AS, from the BGP feeds ---
    for r in &day.bgp.routes {
        if let Some(origin) = r.path.last() {
            atlas
                .prefix_as
                .entry(r.prefix)
                .or_insert((net.prefix(r.prefix).prefix, origin));
        }
    }

    // --- dataset 1: links, from traceroute hop clusters ---
    let mut pfx_cluster_votes: HashMap<PrefixId, HashMap<ClusterId, u32>> = HashMap::new();
    // (dest prefix, AS path, plane, complete): `complete` means every
    // router hop responded, so consecutive ASes on the inferred path are
    // really adjacent — required for provider inference (a silent hop at
    // an AS boundary would fabricate an upstream).
    let mut as_paths: Vec<(PrefixId, AsPath, Plane, bool)> = Vec::new();

    let mut ingest = |tr: &Traceroute, plane: Plane, atlas: &mut Atlas| {
        let clusters = hop_clusters(net, clustering, tr);
        // Links between adjacent responsive hops only (a gap hides the
        // real link).
        for w in clusters.windows(2) {
            if let (Some(a), Some(b)) = (w[0], w[1]) {
                if a != b {
                    let e = atlas.links.entry((a, b)).or_default();
                    e.plane = e.plane.union(plane);
                    atlas
                        .cluster_as
                        .entry(a)
                        .or_insert(clustering.cluster_as[a.index()]);
                    atlas
                        .cluster_as
                        .entry(b)
                        .or_insert(clustering.cluster_as[b.index()]);
                }
            }
        }
        // Prefix-attachment vote: the last router cluster of a reached
        // traceroute.
        if tr.reached {
            if let Some(Some(last)) = clusters.last() {
                *pfx_cluster_votes
                    .entry(tr.dst_prefix)
                    .or_default()
                    .entry(*last)
                    .or_default() += 1;
            }
        }
        // AS path (known origin required to terminate the path).
        if tr.reached {
            if let Some(&(_, origin)) = atlas.prefix_as.get(&tr.dst_prefix) {
                let complete = clusters.iter().all(|c| c.is_some());
                let mut ases: Vec<Asn> = Vec::with_capacity(clusters.len() + 1);
                for c in clusters.iter().flatten() {
                    ases.push(clustering.cluster_as[c.index()]);
                }
                ases.push(origin);
                let path = AsPath::new(ases);
                if !path.has_loop() {
                    as_paths.push((tr.dst_prefix, path, plane, complete));
                }
            }
        }
    };

    for tr in &day.vp_traceroutes {
        ingest(tr, Plane::TO_DST, &mut atlas);
    }
    for tr in &day.agent_traceroutes {
        ingest(tr, Plane::FROM_SRC, &mut atlas);
    }

    // Latency annotations (dataset 1) and loss (dataset 2), intersected
    // with the links actually in the atlas.
    for (key, ann) in atlas.links.iter_mut() {
        if let Some(&lat) = day.link_latency.get(key) {
            ann.latency = Some(lat);
        }
    }
    for (key, &loss) in &day.link_loss {
        if atlas.links.contains_key(key) {
            atlas.loss.insert(*key, loss);
        }
    }

    // --- dataset 3: prefix → cluster by majority vote ---
    for (pfx, votes) in pfx_cluster_votes {
        if let Some((&cluster, _)) = votes.iter().max_by_key(|(c, &n)| (n, c.raw())) {
            atlas.prefix_cluster.insert(pfx, cluster);
        }
    }

    // --- dataset 5: AS degrees from links + feeds ---
    let mut adj: HashMap<Asn, BTreeSet<Asn>> = HashMap::new();
    for &(a, b) in atlas.links.keys() {
        let (aa, ab) = (
            clustering.cluster_as[a.index()],
            clustering.cluster_as[b.index()],
        );
        if aa != ab {
            adj.entry(aa).or_default().insert(ab);
            adj.entry(ab).or_default().insert(aa);
        }
    }
    for r in &day.bgp.routes {
        for w in r.path.as_slice().windows(2) {
            adj.entry(w[0]).or_default().insert(w[1]);
            adj.entry(w[1]).or_default().insert(w[0]);
        }
    }
    for (a, s) in &adj {
        atlas.as_degree.insert(*a, s.len() as u32);
    }

    // --- dataset 6: AS 3-tuples from traceroute AS paths + feeds ---
    for (_, path, _, _) in &as_paths {
        for (a, b, c) in path.triples() {
            atlas.tuples.insert(Triple::canonical(a, b, c));
        }
    }
    for r in &day.bgp.routes {
        for (a, b, c) in r.path.triples() {
            atlas.tuples.insert(Triple::canonical(a, b, c));
        }
    }

    // --- datasets 7 & 8: preferences and providers ---
    infer_preferences(&mut atlas, &as_paths, &day_feed_paths(day), &adj, cfg);
    infer_providers(&mut atlas, &as_paths, &day_feed_paths(day));

    // --- auxiliary: Gao relationship inference for the GRAPH baseline ---
    let complete_paths: Vec<&AsPath> = as_paths
        .iter()
        .filter(|(_, _, _, complete)| *complete)
        .map(|(_, p, _, _)| p)
        .chain(day.bgp.routes.iter().map(|r| &r.path))
        .collect();
    atlas.inferred_rels = crate::relinfer::infer_relationships(complete_paths, &atlas.as_degree);

    atlas
}

/// Feed routes as (prefix, path) pairs.
fn day_feed_paths(day: &MeasurementDay) -> Vec<(PrefixId, AsPath)> {
    day.bgp
        .routes
        .iter()
        .map(|r| (r.prefix, r.path.clone()))
        .collect()
}

/// Map traceroute hops to clusters: index 0 is the source's own cluster
/// (a host knows where it attaches), then one entry per *router* hop
/// (`None` for unresponsive hops); the destination-host hop is dropped.
fn hop_clusters(
    net: &Internet,
    clustering: &Clustering,
    tr: &Traceroute,
) -> Vec<Option<ClusterId>> {
    let src_pop = net.prefix(net.host(tr.src).prefix).home_pop;
    let mut out = vec![Some(clustering.cluster_of_pop(src_pop))];
    let n = tr.hops.len();
    for (i, hop) in tr.hops.iter().enumerate() {
        if tr.reached && i + 1 == n {
            break; // destination host reply, not a router
        }
        out.push(hop.ip.and_then(|ip| clustering.cluster_of_ip(net, ip)));
    }
    // Collapse immediate duplicates (several routers of one cluster).
    out.dedup_by(|a, b| a.is_some() && a == b);
    out
}

/// §4.3.3: relationship-agnostic preference inference. For each observed
/// route and each hop a→b toward destination d, any observed neighbor x of
/// a at the same observed distance to d as b is an equally-long
/// alternative a declined — evidence for (a, b > x). Preferences are kept
/// only with 3× dominance over their reverse, dropping the "wavering"
/// choices of load-balancing ASes.
fn infer_preferences(
    atlas: &mut Atlas,
    tr_paths: &[(PrefixId, AsPath, Plane, bool)],
    feed_paths: &[(PrefixId, AsPath)],
    adj: &HashMap<Asn, BTreeSet<Asn>>,
    cfg: &AtlasConfig,
) {
    // Group observed paths by destination prefix.
    let mut by_dest: HashMap<PrefixId, Vec<&AsPath>> = HashMap::new();
    for (p, path, _, _) in tr_paths {
        by_dest.entry(*p).or_default().push(path);
    }
    for (p, path) in feed_paths {
        by_dest.entry(*p).or_default().push(path);
    }

    let mut counts: HashMap<(Asn, Asn, Asn), u32> = HashMap::new();
    for paths in by_dest.values() {
        // Observed next hop and distance-to-destination per AS; BGP picks
        // one route per destination, so these are consistent per prefix.
        let mut next: HashMap<Asn, Asn> = HashMap::new();
        let mut dist: HashMap<Asn, u16> = HashMap::new();
        for path in paths {
            let s = path.as_slice();
            for (i, &a) in s.iter().enumerate() {
                let d = (s.len() - 1 - i) as u16;
                dist.entry(a).or_insert(d);
                if i + 1 < s.len() {
                    next.entry(a).or_insert(s[i + 1]);
                }
            }
        }
        for (&a, &b) in &next {
            let Some(&db) = dist.get(&b) else { continue };
            let Some(neighbors) = adj.get(&a) else {
                continue;
            };
            for &x in neighbors {
                if x != b && dist.get(&x) == Some(&db) {
                    *counts.entry((a, b, x)).or_default() += 1;
                }
            }
        }
    }

    // Dominance filter.
    let keys: Vec<(Asn, Asn, Asn)> = counts.keys().copied().collect();
    let mut done: HashSet<(Asn, Asn, Asn)> = HashSet::new();
    for (a, b, c) in keys {
        let canon = if b < c { (a, b, c) } else { (a, c, b) };
        if !done.insert(canon) {
            continue;
        }
        let fwd = counts.get(&(a, b, c)).copied().unwrap_or(0);
        let rev = counts.get(&(a, c, b)).copied().unwrap_or(0);
        let (hi, lo, win, alt) = if fwd >= rev {
            (fwd, rev, b, c)
        } else {
            (rev, fwd, c, b)
        };
        if hi >= cfg.pref_min_count && (hi as f64) >= cfg.pref_dominance * (lo as f64).max(1.0) {
            atlas.prefs.insert((a, win, alt));
        }
    }
}

/// §4.3.4: the set of ASes observed immediately upstream of an origin on
/// routes terminating at it — per AS, refined per prefix when a prefix's
/// set differs (traffic engineering).
fn infer_providers(
    atlas: &mut Atlas,
    tr_paths: &[(PrefixId, AsPath, Plane, bool)],
    feed_paths: &[(PrefixId, AsPath)],
) {
    let mut per_as: BTreeMap<Asn, BTreeSet<Asn>> = BTreeMap::new();
    let mut per_prefix: BTreeMap<PrefixId, BTreeSet<Asn>> = BTreeMap::new();
    let mut note = |prefix: PrefixId, path: &AsPath| {
        let s = path.as_slice();
        if s.len() < 2 {
            return;
        }
        let origin = s[s.len() - 1];
        let upstream = s[s.len() - 2];
        per_as.entry(origin).or_default().insert(upstream);
        per_prefix.entry(prefix).or_default().insert(upstream);
    };
    for (p, path, _, complete) in tr_paths {
        if *complete {
            note(*p, path);
        }
    }
    for (p, path) in feed_paths {
        note(*p, path);
    }

    // Keep per-prefix sets only where they refine the per-AS set.
    let origin_of: HashMap<PrefixId, Asn> =
        atlas.prefix_as.iter().map(|(&p, &(_, a))| (p, a)).collect();
    for (prefix, set) in per_prefix {
        if let Some(origin) = origin_of.get(&prefix) {
            if per_as.get(origin).map(|s| s != &set).unwrap_or(false) {
                atlas.prefix_providers.insert(prefix, set);
            }
        }
    }
    atlas.providers = per_as;
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_measure::{run_campaign, CampaignConfig, ClusteringConfig, VantagePoints};
    use inano_model::rng::rng_for;
    use inano_routing::RoutingOracle;
    use inano_topology::{build_internet, DayState, TopologyConfig};

    fn build(seed: u64) -> (Internet, Clustering, Atlas) {
        let net = build_internet(&TopologyConfig::tiny(seed)).unwrap();
        let clustering = Clustering::derive(&net, &ClusteringConfig::default());
        let vps = VantagePoints::choose(&net, 10, 12, &mut rng_for(seed, "vp"));
        let oracle = RoutingOracle::new(&net, DayState::default());
        let day = run_campaign(
            &oracle,
            &clustering,
            &vps,
            &CampaignConfig {
                traceroutes_per_agent: 15,
                ..CampaignConfig::default()
            },
        );
        let atlas = build_atlas(&net, &clustering, &day, &AtlasConfig::default());
        (net, clustering, atlas)
    }

    #[test]
    fn atlas_has_all_datasets() {
        let (_, _, atlas) = build(171);
        assert!(!atlas.links.is_empty(), "links");
        assert!(!atlas.prefix_cluster.is_empty(), "prefix->cluster");
        assert!(!atlas.prefix_as.is_empty(), "prefix->AS");
        assert!(!atlas.as_degree.is_empty(), "degrees");
        assert!(!atlas.tuples.is_empty(), "tuples");
        assert!(!atlas.providers.is_empty(), "providers");
        // Loss entries are a strict subset of links and all lossy.
        for (k, l) in &atlas.loss {
            assert!(atlas.links.contains_key(k));
            assert!(l.is_lossy());
        }
    }

    #[test]
    fn links_correspond_to_physical_adjacency() {
        let (net, clustering, atlas) = build(172);
        for (&(a, b), _) in atlas.links.iter().take(300) {
            let pa = clustering.cluster_pop[a.index()];
            let pb = clustering.cluster_pop[b.index()];
            if pa == pb {
                continue; // split cluster inside one PoP
            }
            let adjacent = net.pop_adj[pa.index()].iter().any(|&(_, o)| o == pb);
            assert!(adjacent, "atlas link {a}->{b} has no physical link");
        }
    }

    #[test]
    fn prefix_cluster_mostly_correct() {
        let (net, clustering, atlas) = build(173);
        let mut right = 0;
        let mut total = 0;
        for (&pfx, &cl) in &atlas.prefix_cluster {
            total += 1;
            let truth = clustering.cluster_of_pop(net.prefix(pfx).home_pop);
            // The voted cluster should be the home cluster or at least in
            // the same AS (last-hop router just before the edge).
            if cl == truth || clustering.cluster_as[cl.index()] == net.prefix(pfx).origin {
                right += 1;
            }
        }
        assert!(total > 10);
        assert!(
            right as f64 / total as f64 > 0.9,
            "{right}/{total} attachments plausible"
        );
    }

    #[test]
    fn degrees_match_observed_adjacency_shape() {
        let (net, _, atlas) = build(174);
        // Tier-1 ASes must have the highest observed degrees.
        let t1_deg: Vec<u32> = net
            .ases
            .iter()
            .filter(|a| a.tier == inano_topology::Tier::Tier1)
            .map(|a| atlas.degree(a.asn))
            .collect();
        let stub_deg: Vec<u32> = net
            .ases
            .iter()
            .filter(|a| a.tier == inano_topology::Tier::Stub)
            .map(|a| atlas.degree(a.asn))
            .collect();
        let avg = |v: &[u32]| v.iter().sum::<u32>() as f64 / v.len().max(1) as f64;
        assert!(avg(&t1_deg) > avg(&stub_deg) * 2.0);
    }

    #[test]
    fn tuples_reflect_observed_paths_only() {
        let (net, _, atlas) = build(175);
        // A (stub, stub, stub) triple should never exist: stubs don't
        // provide transit in ground truth, so no observed path crosses one.
        for t in &atlas.tuples {
            let mid_tier = net.as_info(t.1).tier;
            assert_ne!(
                mid_tier,
                inano_topology::Tier::Stub,
                "stub {} observed as transit in {:?}",
                t.1,
                t
            );
        }
    }

    #[test]
    fn providers_are_true_neighbors() {
        let (net, _, atlas) = build(176);
        for (origin, provs) in &atlas.providers {
            for p in provs {
                assert!(
                    net.as_info(*origin).rel_to(*p).is_some(),
                    "provider {p} of {origin} is not even adjacent"
                );
            }
        }
    }

    #[test]
    fn preferences_do_not_contradict() {
        let (_, _, atlas) = build(177);
        for &(a, b, c) in &atlas.prefs {
            assert!(
                !atlas.prefs.contains(&(a, c, b)),
                "contradictory preferences for {a}: {b} vs {c}"
            );
        }
    }

    #[test]
    fn builder_is_deterministic() {
        let (_, _, a1) = build(178);
        let (_, _, a2) = build(178);
        assert_eq!(a1.links.len(), a2.links.len());
        assert_eq!(a1.tuples, a2.tuples);
        assert_eq!(a1.prefs, a2.prefs);
    }
}
