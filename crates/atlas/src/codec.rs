//! Compact binary encoding of the atlas.
//!
//! The paper ships the atlas as compressed files (Table 2 reports
//! compressed sizes). We have no compression crate offline, so we encode
//! structurally instead: sorted tables, delta-encoded keys, LEB128
//! varints, and quantised metrics (0.1 ms latency, 1⁄1000 loss). This
//! captures the same redundancy gzip would (sortedness and small deltas)
//! and makes the Table-2 *ratios* — per-dataset shares, delta vs full —
//! meaningful; absolute bytes are upper bounds on a gzip deployment.
//!
//! Sections are length-prefixed so [`crate::stats`] can attribute bytes
//! per dataset.

use crate::datasets::{Atlas, LinkAnnotation, Plane, Triple};
use inano_model::{Asn, ClusterId, Ipv4, LatencyMs, LossRate, ModelError, Prefix, PrefixId};
use std::collections::{BTreeMap, BTreeSet};

const MAGIC: &[u8; 6] = b"INANO1";

/// Section identifiers, in encoding order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Section {
    Links = 0,
    Loss = 1,
    PrefixCluster = 2,
    PrefixAs = 3,
    AsDegrees = 4,
    Tuples = 5,
    Prefs = 6,
    Providers = 7,
}

/// Byte size of each encoded section.
#[derive(Clone, Debug, Default)]
pub struct SectionSizes {
    pub sizes: [usize; 8],
}

impl SectionSizes {
    pub fn total(&self) -> usize {
        self.sizes.iter().sum()
    }
}

// ---------- varint primitives ----------

pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

pub fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, ModelError> {
    let mut v: u64 = 0;
    let mut shift = 0;
    loop {
        let &byte = buf
            .get(*pos)
            .ok_or_else(|| ModelError::Decode("truncated varint".into()))?;
        *pos += 1;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(ModelError::Decode("varint overflow".into()));
        }
    }
}

fn quantise_latency(l: LatencyMs) -> u64 {
    (l.ms() * 10.0).round() as u64
}

fn unquantise_latency(v: u64) -> LatencyMs {
    LatencyMs::new(v as f64 / 10.0)
}

fn quantise_loss(l: LossRate) -> u64 {
    (l.rate() * 1000.0).round() as u64
}

fn unquantise_loss(v: u64) -> LossRate {
    LossRate::new(v as f64 / 1000.0)
}

// ---------- encode ----------

/// Encode the atlas; returns the bytes and per-section sizes.
pub fn encode(atlas: &Atlas) -> (Vec<u8>, SectionSizes) {
    let mut out = Vec::with_capacity(1 << 20);
    out.extend_from_slice(MAGIC);
    put_varint(&mut out, atlas.day as u64);
    let mut sizes = SectionSizes::default();

    let mut section = |out: &mut Vec<u8>, idx: usize, body: Vec<u8>| {
        put_varint(out, body.len() as u64);
        out.extend_from_slice(&body);
        sizes.sizes[idx] = body.len();
    };

    // Links: delta on `from`, raw `to`, plane bits, latency (+1, 0=None),
    // plus the cluster→AS table (clusters are meaningless without it).
    let mut body = Vec::new();
    put_varint(&mut body, atlas.links.len() as u64);
    let mut prev_from = 0u64;
    for (&(from, to), ann) in &atlas.links {
        let f = from.raw() as u64;
        put_varint(&mut body, f - prev_from);
        prev_from = f;
        put_varint(&mut body, to.raw() as u64);
        body.push(ann.plane.bits());
        match ann.latency {
            Some(l) => put_varint(&mut body, quantise_latency(l) + 1),
            None => put_varint(&mut body, 0),
        }
    }
    put_varint(&mut body, atlas.cluster_as.len() as u64);
    let mut prev_c = 0u64;
    for (&c, &a) in &atlas.cluster_as {
        put_varint(&mut body, c.raw() as u64 - prev_c);
        prev_c = c.raw() as u64;
        put_varint(&mut body, a.raw() as u64);
    }
    section(&mut out, Section::Links as usize, body);

    // Loss.
    let mut body = Vec::new();
    put_varint(&mut body, atlas.loss.len() as u64);
    let mut prev_from = 0u64;
    for (&(from, to), &loss) in &atlas.loss {
        let f = from.raw() as u64;
        put_varint(&mut body, f - prev_from);
        prev_from = f;
        put_varint(&mut body, to.raw() as u64);
        put_varint(&mut body, quantise_loss(loss));
    }
    section(&mut out, Section::Loss as usize, body);

    // Prefix → cluster.
    let mut body = Vec::new();
    put_varint(&mut body, atlas.prefix_cluster.len() as u64);
    let mut prev_p = 0u64;
    for (&p, &c) in &atlas.prefix_cluster {
        put_varint(&mut body, p.raw() as u64 - prev_p);
        prev_p = p.raw() as u64;
        put_varint(&mut body, c.raw() as u64);
    }
    section(&mut out, Section::PrefixCluster as usize, body);

    // Prefix → AS (with CIDR).
    let mut body = Vec::new();
    put_varint(&mut body, atlas.prefix_as.len() as u64);
    let mut prev_p = 0u64;
    let mut prev_addr = 0u64;
    for (&p, &(pfx, a)) in &atlas.prefix_as {
        put_varint(&mut body, p.raw() as u64 - prev_p);
        prev_p = p.raw() as u64;
        let addr = pfx.addr().raw() as u64;
        put_varint(&mut body, addr.wrapping_sub(prev_addr));
        prev_addr = addr;
        body.push(pfx.len());
        put_varint(&mut body, a.raw() as u64);
    }
    section(&mut out, Section::PrefixAs as usize, body);

    // AS degrees.
    let mut body = Vec::new();
    put_varint(&mut body, atlas.as_degree.len() as u64);
    let mut prev_a = 0u64;
    for (&a, &d) in &atlas.as_degree {
        put_varint(&mut body, a.raw() as u64 - prev_a);
        prev_a = a.raw() as u64;
        put_varint(&mut body, d as u64);
    }
    section(&mut out, Section::AsDegrees as usize, body);

    // Tuples: delta on the first AS.
    let mut body = Vec::new();
    put_varint(&mut body, atlas.tuples.len() as u64);
    let mut prev = 0u64;
    for &Triple(a, b, c) in &atlas.tuples {
        put_varint(&mut body, a.raw() as u64 - prev);
        prev = a.raw() as u64;
        put_varint(&mut body, b.raw() as u64);
        put_varint(&mut body, c.raw() as u64);
    }
    section(&mut out, Section::Tuples as usize, body);

    // Preferences.
    let mut body = Vec::new();
    put_varint(&mut body, atlas.prefs.len() as u64);
    let mut prev = 0u64;
    for &(a, b, c) in &atlas.prefs {
        put_varint(&mut body, a.raw() as u64 - prev);
        prev = a.raw() as u64;
        put_varint(&mut body, b.raw() as u64);
        put_varint(&mut body, c.raw() as u64);
    }
    section(&mut out, Section::Prefs as usize, body);

    // Providers (per-AS, then per-prefix).
    let mut body = Vec::new();
    put_varint(&mut body, atlas.providers.len() as u64);
    let mut prev = 0u64;
    for (&a, set) in &atlas.providers {
        put_varint(&mut body, a.raw() as u64 - prev);
        prev = a.raw() as u64;
        put_varint(&mut body, set.len() as u64);
        let mut prev_m = 0u64;
        for &m in set {
            put_varint(&mut body, (m.raw() as u64).wrapping_sub(prev_m));
            prev_m = m.raw() as u64;
        }
    }
    put_varint(&mut body, atlas.prefix_providers.len() as u64);
    let mut prev = 0u64;
    for (&p, set) in &atlas.prefix_providers {
        put_varint(&mut body, p.raw() as u64 - prev);
        prev = p.raw() as u64;
        put_varint(&mut body, set.len() as u64);
        let mut prev_m = 0u64;
        for &m in set {
            put_varint(&mut body, (m.raw() as u64).wrapping_sub(prev_m));
            prev_m = m.raw() as u64;
        }
    }
    section(&mut out, Section::Providers as usize, body);

    (out, sizes)
}

// ---------- decode ----------

/// Read just the day from an encoded atlas (magic + leading varint) —
/// what a dissemination head needs, without paying a full decode.
pub fn peek_day(bytes: &[u8]) -> Result<u32, ModelError> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(ModelError::Decode("bad magic".into()));
    }
    let mut pos = MAGIC.len();
    Ok(get_varint(bytes, &mut pos)? as u32)
}

/// Decode an atlas previously produced by [`encode`].
pub fn decode(bytes: &[u8]) -> Result<Atlas, ModelError> {
    let mut pos = 0usize;
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(ModelError::Decode("bad magic".into()));
    }
    pos += MAGIC.len();
    let day = get_varint(bytes, &mut pos)? as u32;
    let mut atlas = Atlas {
        day,
        ..Atlas::default()
    };

    let next_section = |pos: &mut usize| -> Result<(usize, usize), ModelError> {
        let len = get_varint(bytes, pos)? as usize;
        let start = *pos;
        if start + len > bytes.len() {
            return Err(ModelError::Decode("truncated section".into()));
        }
        *pos += len;
        Ok((start, start + len))
    };

    // Links.
    let (mut p, end) = next_section(&mut pos)?;
    let n = get_varint(bytes, &mut p)?;
    let mut prev_from = 0u64;
    for _ in 0..n {
        prev_from += get_varint(bytes, &mut p)?;
        let to = get_varint(bytes, &mut p)?;
        let plane = Plane::from_bits(
            *bytes
                .get(p)
                .ok_or_else(|| ModelError::Decode("truncated plane".into()))?,
        );
        p += 1;
        let lat = get_varint(bytes, &mut p)?;
        atlas.links.insert(
            (ClusterId::new(prev_from as u32), ClusterId::new(to as u32)),
            LinkAnnotation {
                latency: if lat == 0 {
                    None
                } else {
                    Some(unquantise_latency(lat - 1))
                },
                plane,
            },
        );
    }
    let n = get_varint(bytes, &mut p)?;
    let mut prev_c = 0u64;
    for _ in 0..n {
        prev_c += get_varint(bytes, &mut p)?;
        let a = get_varint(bytes, &mut p)?;
        atlas
            .cluster_as
            .insert(ClusterId::new(prev_c as u32), Asn::new(a as u32));
    }
    check_end(p, end)?;

    // Loss.
    let (mut p, end) = next_section(&mut pos)?;
    let n = get_varint(bytes, &mut p)?;
    let mut prev_from = 0u64;
    for _ in 0..n {
        prev_from += get_varint(bytes, &mut p)?;
        let to = get_varint(bytes, &mut p)?;
        let loss = get_varint(bytes, &mut p)?;
        atlas.loss.insert(
            (ClusterId::new(prev_from as u32), ClusterId::new(to as u32)),
            unquantise_loss(loss),
        );
    }
    check_end(p, end)?;

    // Prefix → cluster.
    let (mut p, end) = next_section(&mut pos)?;
    let n = get_varint(bytes, &mut p)?;
    let mut prev_p = 0u64;
    for _ in 0..n {
        prev_p += get_varint(bytes, &mut p)?;
        let c = get_varint(bytes, &mut p)?;
        atlas
            .prefix_cluster
            .insert(PrefixId::new(prev_p as u32), ClusterId::new(c as u32));
    }
    check_end(p, end)?;

    // Prefix → AS.
    let (mut p, end) = next_section(&mut pos)?;
    let n = get_varint(bytes, &mut p)?;
    let mut prev_pid = 0u64;
    let mut prev_addr = 0u64;
    for _ in 0..n {
        prev_pid += get_varint(bytes, &mut p)?;
        prev_addr = prev_addr.wrapping_add(get_varint(bytes, &mut p)?);
        let len = *bytes
            .get(p)
            .ok_or_else(|| ModelError::Decode("truncated prefix len".into()))?;
        p += 1;
        let a = get_varint(bytes, &mut p)?;
        atlas.prefix_as.insert(
            PrefixId::new(prev_pid as u32),
            (Prefix::new(Ipv4(prev_addr as u32), len), Asn::new(a as u32)),
        );
    }
    check_end(p, end)?;

    // AS degrees.
    let (mut p, end) = next_section(&mut pos)?;
    let n = get_varint(bytes, &mut p)?;
    let mut prev_a = 0u64;
    for _ in 0..n {
        prev_a += get_varint(bytes, &mut p)?;
        let d = get_varint(bytes, &mut p)?;
        atlas.as_degree.insert(Asn::new(prev_a as u32), d as u32);
    }
    check_end(p, end)?;

    // Tuples.
    let (mut p, end) = next_section(&mut pos)?;
    let n = get_varint(bytes, &mut p)?;
    let mut prev = 0u64;
    for _ in 0..n {
        prev += get_varint(bytes, &mut p)?;
        let b = get_varint(bytes, &mut p)?;
        let c = get_varint(bytes, &mut p)?;
        atlas.tuples.insert(Triple(
            Asn::new(prev as u32),
            Asn::new(b as u32),
            Asn::new(c as u32),
        ));
    }
    check_end(p, end)?;

    // Preferences.
    let (mut p, end) = next_section(&mut pos)?;
    let n = get_varint(bytes, &mut p)?;
    let mut prev = 0u64;
    for _ in 0..n {
        prev += get_varint(bytes, &mut p)?;
        let b = get_varint(bytes, &mut p)?;
        let c = get_varint(bytes, &mut p)?;
        atlas.prefs.insert((
            Asn::new(prev as u32),
            Asn::new(b as u32),
            Asn::new(c as u32),
        ));
    }
    check_end(p, end)?;

    // Providers.
    let (mut p, end) = next_section(&mut pos)?;
    let n = get_varint(bytes, &mut p)?;
    let mut prev = 0u64;
    for _ in 0..n {
        prev += get_varint(bytes, &mut p)?;
        let k = get_varint(bytes, &mut p)?;
        let mut set = BTreeSet::new();
        let mut prev_m = 0u64;
        for _ in 0..k {
            prev_m = prev_m.wrapping_add(get_varint(bytes, &mut p)?);
            set.insert(Asn::new(prev_m as u32));
        }
        atlas.providers.insert(Asn::new(prev as u32), set);
    }
    let n = get_varint(bytes, &mut p)?;
    let mut prev = 0u64;
    for _ in 0..n {
        prev += get_varint(bytes, &mut p)?;
        let k = get_varint(bytes, &mut p)?;
        let mut set = BTreeSet::new();
        let mut prev_m = 0u64;
        for _ in 0..k {
            prev_m = prev_m.wrapping_add(get_varint(bytes, &mut p)?);
            set.insert(Asn::new(prev_m as u32));
        }
        atlas
            .prefix_providers
            .insert(PrefixId::new(prev as u32), set);
    }
    check_end(p, end)?;

    Ok(atlas)
}

fn check_end(p: usize, end: usize) -> Result<(), ModelError> {
    if p != end {
        return Err(ModelError::Decode(format!(
            "section length mismatch: read to {p}, expected {end}"
        )));
    }
    Ok(())
}

/// Round an atlas's metrics to codec precision, so encode→decode is exact
/// on the result (used to normalise before equality comparisons in tests
/// and delta computation).
pub fn quantise(atlas: &Atlas) -> Atlas {
    let mut a = atlas.clone();
    let links: BTreeMap<_, _> = a
        .links
        .iter()
        .map(|(&k, ann)| {
            (
                k,
                LinkAnnotation {
                    latency: ann.latency.map(|l| unquantise_latency(quantise_latency(l))),
                    plane: ann.plane,
                },
            )
        })
        .collect();
    a.links = links;
    let loss: BTreeMap<_, _> = a
        .loss
        .iter()
        .map(|(&k, &l)| (k, unquantise_loss(quantise_loss(l))))
        .collect();
    a.loss = loss;
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_model::LatencyMs;

    fn sample_atlas() -> Atlas {
        let mut a = Atlas {
            day: 3,
            ..Atlas::default()
        };
        a.links.insert(
            (ClusterId::new(1), ClusterId::new(2)),
            LinkAnnotation {
                latency: Some(LatencyMs::new(4.2)),
                plane: Plane::TO_DST,
            },
        );
        a.links.insert(
            (ClusterId::new(2), ClusterId::new(7)),
            LinkAnnotation {
                latency: None,
                plane: Plane::TO_DST.union(Plane::FROM_SRC),
            },
        );
        a.cluster_as.insert(ClusterId::new(1), Asn::new(10));
        a.cluster_as.insert(ClusterId::new(2), Asn::new(11));
        a.cluster_as.insert(ClusterId::new(7), Asn::new(12));
        a.loss
            .insert((ClusterId::new(1), ClusterId::new(2)), LossRate::new(0.035));
        a.prefix_cluster.insert(PrefixId::new(5), ClusterId::new(2));
        a.prefix_as.insert(
            PrefixId::new(5),
            (
                Prefix::new(Ipv4::from_octets(10, 2, 3, 0), 24),
                Asn::new(11),
            ),
        );
        a.as_degree.insert(Asn::new(10), 7);
        a.tuples
            .insert(Triple::canonical(Asn::new(10), Asn::new(11), Asn::new(12)));
        a.prefs.insert((Asn::new(10), Asn::new(11), Asn::new(13)));
        a.providers.insert(
            Asn::new(12),
            [Asn::new(11), Asn::new(10)].into_iter().collect(),
        );
        a.prefix_providers
            .insert(PrefixId::new(5), [Asn::new(10)].into_iter().collect());
        a
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let vals = [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX];
        for &v in &vals {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &vals {
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_truncation_detected() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 1 << 20);
        buf.pop();
        let mut pos = 0;
        assert!(get_varint(&buf, &mut pos).is_err());
    }

    #[test]
    fn atlas_roundtrip_exact_after_quantise() {
        let a = quantise(&sample_atlas());
        let (bytes, sizes) = encode(&a);
        assert!(sizes.total() > 0);
        let b = decode(&bytes).unwrap();
        assert_eq!(a.day, b.day);
        assert_eq!(a.links, b.links);
        assert_eq!(a.loss, b.loss);
        assert_eq!(a.prefix_cluster, b.prefix_cluster);
        assert_eq!(a.prefix_as, b.prefix_as);
        assert_eq!(a.as_degree, b.as_degree);
        assert_eq!(a.tuples, b.tuples);
        assert_eq!(a.prefs, b.prefs);
        assert_eq!(a.providers, b.providers);
        assert_eq!(a.prefix_providers, b.prefix_providers);
        assert_eq!(a.cluster_as, b.cluster_as);
    }

    #[test]
    fn bad_magic_rejected() {
        let (mut bytes, _) = encode(&sample_atlas());
        bytes[0] = b'X';
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        let (bytes, _) = encode(&sample_atlas());
        for cut in [7, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn empty_atlas_roundtrips() {
        let a = Atlas::default();
        let (bytes, _) = encode(&a);
        let b = decode(&bytes).unwrap();
        assert_eq!(b.total_entries(), 0);
    }
}
