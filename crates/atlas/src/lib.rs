//! # inano-atlas
//!
//! The heart of iNano's compactness claim: instead of iPlane's multi-GB
//! atlas of measured *paths*, iNano ships an atlas of measured *links*
//! plus just enough policy evidence to re-derive paths — eight datasets
//! (Table 2 of the paper):
//!
//! 1. inter-cluster links annotated with latencies (two planes: `TO_DST`
//!    from vantage-point traceroutes, `FROM_SRC` from end-host ones),
//! 2. link loss rates (only lossy links are stored),
//! 3. prefix → cluster attachment,
//! 4. prefix → origin AS,
//! 5. AS degrees,
//! 6. AS 3-tuples (observed export behaviour),
//! 7. AS preferences (observed tie-break behaviour),
//! 8. provider mappings (per-AS, refined per-prefix).
//!
//! This crate owns the dataset types, the builder that distils a
//! [`inano_measure::MeasurementDay`] into an [`Atlas`], a compact binary
//! codec (varint + delta encoding over sorted tables — our stand-in for
//! the paper's gzip, documented in DESIGN.md), daily delta computation
//! and application, and the Table-2 size accounting.

pub mod builder;
pub mod codec;
pub mod datasets;
pub mod delta;
pub mod relinfer;
pub mod stats;

pub use builder::{build_atlas, AtlasConfig};
pub use datasets::{Atlas, LinkAnnotation, Plane, Triple};
pub use delta::AtlasDelta;
pub use relinfer::InferredRels;
pub use stats::{atlas_stats, delta_stats, DatasetStat};
