//! The atlas datasets and their in-memory representation.

use inano_model::{
    Asn, ClusterId, LatencyMs, LossRate, Prefix, PrefixId, PrefixTrie, Relationship,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Which measurement plane(s) a link was observed in (§4.3.1): `TO_DST`
/// holds links from the infrastructure vantage points' traceroutes,
/// `FROM_SRC` links contributed by end-hosts. Both may apply.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct Plane {
    pub to_dst: bool,
    pub from_src: bool,
}

impl Plane {
    pub const TO_DST: Plane = Plane {
        to_dst: true,
        from_src: false,
    };
    pub const FROM_SRC: Plane = Plane {
        to_dst: false,
        from_src: true,
    };

    #[must_use]
    pub fn union(self, other: Plane) -> Plane {
        Plane {
            to_dst: self.to_dst || other.to_dst,
            from_src: self.from_src || other.from_src,
        }
    }

    pub fn bits(self) -> u8 {
        u8::from(self.to_dst) | (u8::from(self.from_src) << 1)
    }

    pub fn from_bits(b: u8) -> Plane {
        Plane {
            to_dst: b & 1 != 0,
            from_src: b & 2 != 0,
        }
    }
}

/// Annotation of one directed inter-cluster link.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkAnnotation {
    /// Inferred one-way latency; `None` when never measured symmetrically.
    pub latency: Option<LatencyMs>,
    pub plane: Plane,
}

/// An AS triple as observed in routes (canonicalised: forward and reverse
/// are the same entry, per the paper's commutativity assumption).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Triple(pub Asn, pub Asn, pub Asn);

impl Triple {
    /// Canonical form: the lexicographically smaller of (a,b,c)/(c,b,a).
    pub fn canonical(a: Asn, b: Asn, c: Asn) -> Triple {
        if (a, c) <= (c, a) {
            Triple(a, b, c)
        } else {
            Triple(c, b, a)
        }
    }
}

/// The complete compact atlas.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Atlas {
    /// Day this atlas was built on.
    pub day: u32,
    /// Directed inter-cluster links with annotations (dataset 1).
    pub links: BTreeMap<(ClusterId, ClusterId), LinkAnnotation>,
    /// Measured loss of lossy links (dataset 2).
    pub loss: BTreeMap<(ClusterId, ClusterId), LossRate>,
    /// Prefix → attachment cluster (dataset 3).
    pub prefix_cluster: BTreeMap<PrefixId, ClusterId>,
    /// Prefix → origin AS, with the CIDR needed for IP lookup (dataset 4).
    pub prefix_as: BTreeMap<PrefixId, (Prefix, Asn)>,
    /// Observed AS degree (dataset 5).
    pub as_degree: BTreeMap<Asn, u32>,
    /// Observed AS 3-tuples, canonicalised (dataset 6).
    pub tuples: BTreeSet<Triple>,
    /// AS preferences: (a, b, c) means "a prefers next-hop b over c"
    /// (dataset 7). Directional, unlike tuples.
    pub prefs: BTreeSet<(Asn, Asn, Asn)>,
    /// Providers of each AS as destination (dataset 8a).
    pub providers: BTreeMap<Asn, BTreeSet<Asn>>,
    /// Per-prefix provider refinement (dataset 8b).
    pub prefix_providers: BTreeMap<PrefixId, BTreeSet<Asn>>,
    /// Owning AS per cluster (carried with the links dataset; clusters are
    /// meaningless without their AS).
    pub cluster_as: BTreeMap<ClusterId, Asn>,
    /// Gao-inferred AS relationships — auxiliary dataset used only by the
    /// `GRAPH` baseline; not shipped in the iNano atlas (and therefore not
    /// encoded by the codec or counted in Table 2). The final iNano
    /// predictor replaces this with 3-tuples + preferences (§4.3.2-4.3.3).
    pub inferred_rels: BTreeMap<(Asn, Asn), Relationship>,
}

impl Atlas {
    /// Longest-prefix-match an IP to its prefix using dataset 4.
    /// (Builds a trie lazily is avoided: call [`Atlas::build_trie`] once.)
    pub fn build_trie(&self) -> PrefixTrie {
        let mut t = PrefixTrie::new();
        for (&pid, &(pfx, _)) in &self.prefix_as {
            t.insert(pfx, pid);
        }
        t
    }

    /// The AS owning a cluster (if the cluster appears in the atlas).
    pub fn as_of_cluster(&self, c: ClusterId) -> Option<Asn> {
        self.cluster_as.get(&c).copied()
    }

    /// Degree of an AS, 0 when unobserved.
    pub fn degree(&self, a: Asn) -> u32 {
        self.as_degree.get(&a).copied().unwrap_or(0)
    }

    /// Is the (canonicalised) triple present?
    pub fn has_triple(&self, a: Asn, b: Asn, c: Asn) -> bool {
        self.tuples.contains(&Triple::canonical(a, b, c))
    }

    /// Does `a` prefer next-hop `b` over `c`?
    pub fn prefers(&self, a: Asn, b: Asn, c: Asn) -> bool {
        self.prefs.contains(&(a, b, c))
    }

    /// Provider set to use for a destination prefix: per-prefix when
    /// known, else per-AS, else `None` (no constraint).
    pub fn providers_for(&self, prefix: PrefixId, origin: Asn) -> Option<&BTreeSet<Asn>> {
        self.prefix_providers
            .get(&prefix)
            .or_else(|| self.providers.get(&origin))
    }

    /// Merge additional FROM_SRC links measured locally by a client
    /// (§5, "Client-side Measurements").
    pub fn add_from_src_links<I>(&mut self, links: I)
    where
        I: IntoIterator<Item = ((ClusterId, ClusterId), Option<LatencyMs>)>,
    {
        for ((from, to), latency) in links {
            let e = self.links.entry((from, to)).or_default();
            e.plane = e.plane.union(Plane::FROM_SRC);
            if e.latency.is_none() {
                e.latency = latency;
            }
        }
    }

    /// Total number of entries across all datasets (sanity metric).
    pub fn total_entries(&self) -> usize {
        self.links.len()
            + self.loss.len()
            + self.prefix_cluster.len()
            + self.prefix_as.len()
            + self.as_degree.len()
            + self.tuples.len()
            + self.prefs.len()
            + self.providers.len()
            + self.prefix_providers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_model::Ipv4;

    #[test]
    fn plane_union_and_bits() {
        let both = Plane::TO_DST.union(Plane::FROM_SRC);
        assert!(both.to_dst && both.from_src);
        assert_eq!(Plane::from_bits(both.bits()), both);
        assert_eq!(Plane::from_bits(Plane::TO_DST.bits()), Plane::TO_DST);
    }

    #[test]
    fn triple_canonicalisation() {
        let t1 = Triple::canonical(Asn::new(3), Asn::new(2), Asn::new(1));
        let t2 = Triple::canonical(Asn::new(1), Asn::new(2), Asn::new(3));
        assert_eq!(t1, t2);
        // Middle stays the middle.
        assert_eq!(t1.1, Asn::new(2));
    }

    #[test]
    fn has_triple_checks_both_directions() {
        let mut a = Atlas::default();
        a.tuples
            .insert(Triple::canonical(Asn::new(5), Asn::new(6), Asn::new(7)));
        assert!(a.has_triple(Asn::new(5), Asn::new(6), Asn::new(7)));
        assert!(a.has_triple(Asn::new(7), Asn::new(6), Asn::new(5)));
        assert!(!a.has_triple(Asn::new(5), Asn::new(7), Asn::new(6)));
    }

    #[test]
    fn providers_for_prefers_prefix_granularity() {
        let mut a = Atlas::default();
        let origin = Asn::new(9);
        a.providers
            .insert(origin, [Asn::new(1)].into_iter().collect());
        a.prefix_providers
            .insert(PrefixId::new(4), [Asn::new(2)].into_iter().collect());
        assert!(a
            .providers_for(PrefixId::new(4), origin)
            .unwrap()
            .contains(&Asn::new(2)));
        assert!(a
            .providers_for(PrefixId::new(5), origin)
            .unwrap()
            .contains(&Asn::new(1)));
        assert!(a.providers_for(PrefixId::new(5), Asn::new(8)).is_none());
    }

    #[test]
    fn from_src_augmentation_unions_planes() {
        let mut a = Atlas::default();
        let key = (ClusterId::new(1), ClusterId::new(2));
        a.links.insert(
            key,
            LinkAnnotation {
                latency: Some(LatencyMs::new(3.0)),
                plane: Plane::TO_DST,
            },
        );
        a.add_from_src_links([
            (key, None),
            (
                (ClusterId::new(2), ClusterId::new(3)),
                Some(LatencyMs::new(1.0)),
            ),
        ]);
        assert!(a.links[&key].plane.to_dst && a.links[&key].plane.from_src);
        assert_eq!(a.links[&key].latency, Some(LatencyMs::new(3.0)));
        let new = a.links[&(ClusterId::new(2), ClusterId::new(3))];
        assert!(new.plane.from_src && !new.plane.to_dst);
    }

    #[test]
    fn trie_built_from_prefix_as() {
        let mut a = Atlas::default();
        let p = Prefix::new(Ipv4::from_octets(10, 0, 0, 0), 8);
        a.prefix_as.insert(PrefixId::new(3), (p, Asn::new(7)));
        let trie = a.build_trie();
        assert_eq!(
            trie.lookup(Ipv4::from_octets(10, 1, 2, 3)),
            Some(PrefixId::new(3))
        );
    }
}
