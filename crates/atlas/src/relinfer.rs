//! Gao-style AS relationship inference from observed AS paths.
//!
//! This is *not* part of iNano's shipped atlas — the final system replaces
//! relationship inference with 3-tuples and observed preferences (§4.3.2:
//! "instead of explicitly distilling the AS relationships from the
//! observed routes..."). It exists for the `GRAPH` baseline, which needs
//! inferred relationships for its valley-free up/down construction, and
//! it is deliberately error-prone in the ways the paper describes (§4.3.3
//! notes Gao's algorithm infers implausibly many sibling relationships
//! among high-degree ASes).
//!
//! Method (Gao [19], simplified): on every observed path, the
//! highest-degree AS is assumed to be the "top of the hill"; edges before
//! it vote customer→provider, edges after vote provider→customer. Votes
//! are aggregated and classified with degree-based tie handling.

use inano_model::{AsPath, Asn, Relationship};
use std::collections::{BTreeMap, HashMap};

/// Inferred relationship table: `(a, b) → a's relationship to b`.
/// Symmetric entries are always stored for both orders.
pub type InferredRels = BTreeMap<(Asn, Asn), Relationship>;

/// Infer relationships from observed AS paths and observed degrees.
pub fn infer_relationships<'a, I>(paths: I, degree: &BTreeMap<Asn, u32>) -> InferredRels
where
    I: IntoIterator<Item = &'a AsPath>,
{
    // votes[(a,b)] = (a-customer-of-b count, a-provider-of-b count)
    let mut votes: HashMap<(Asn, Asn), (u32, u32)> = HashMap::new();
    let deg = |a: Asn| degree.get(&a).copied().unwrap_or(0);

    for path in paths {
        let s = path.as_slice();
        if s.len() < 2 {
            continue;
        }
        // Top of the hill: highest observed degree.
        let top = (0..s.len()).max_by_key(|&i| (deg(s[i]), i)).unwrap();
        for i in 0..s.len() - 1 {
            let (a, b) = (s[i], s[i + 1]);
            let e = votes.entry(ord(a, b)).or_default();
            let uphill = i < top;
            // Record from the perspective of the ordered pair.
            if (a < b) == uphill {
                e.0 += 1; // lower-ASN side is the customer
            } else {
                e.1 += 1;
            }
        }
    }

    let mut rels = InferredRels::new();
    for ((a, b), (cust_votes, prov_votes)) in votes {
        // Relationship of `a` (the lower ASN) to `b`.
        let rel_ab = classify(cust_votes, prov_votes, deg(a), deg(b));
        rels.insert((a, b), rel_ab);
        rels.insert((b, a), rel_ab.reverse());
    }
    rels
}

fn ord(a: Asn, b: Asn) -> (Asn, Asn) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Classify an edge given vote counts for "a is customer of b" vs
/// "a is provider of b" plus the two degrees. Returns a's relationship
/// to b (`Provider` meaning b is a's provider).
fn classify(cust: u32, prov: u32, deg_a: u32, deg_b: u32) -> Relationship {
    let total = cust + prov;
    if total == 0 {
        return Relationship::Peer;
    }
    let ratio = cust as f64 / total as f64;
    if ratio >= 0.8 {
        Relationship::Provider // b provides for a
    } else if ratio <= 0.2 {
        Relationship::Customer
    } else if cust.min(prov) >= 3 {
        // Strong conflicting evidence: Gao calls these siblings — famously
        // over-inferred between high-degree ASes.
        Relationship::Sibling
    } else if deg_a * 4 < deg_b {
        Relationship::Provider
    } else if deg_b * 4 < deg_a {
        Relationship::Customer
    } else {
        Relationship::Peer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(v: &[u32]) -> AsPath {
        AsPath::new(v.iter().map(|&x| Asn::new(x)))
    }

    fn degrees(pairs: &[(u32, u32)]) -> BTreeMap<Asn, u32> {
        pairs.iter().map(|&(a, d)| (Asn::new(a), d)).collect()
    }

    #[test]
    fn clean_hill_infers_customer_provider() {
        // 1 -> 2 -> 3 with 2 the high-degree top: 1 customer of 2,
        // 3 customer of 2.
        let paths = vec![path(&[1, 2, 3]); 5];
        let deg = degrees(&[(1, 2), (2, 50), (3, 2)]);
        let rels = infer_relationships(paths.iter(), &deg);
        assert_eq!(rels[&(Asn::new(1), Asn::new(2))], Relationship::Provider);
        assert_eq!(rels[&(Asn::new(2), Asn::new(1))], Relationship::Customer);
        assert_eq!(rels[&(Asn::new(2), Asn::new(3))], Relationship::Customer);
    }

    #[test]
    fn conflicting_votes_become_siblings() {
        // Edge 1-2 seen uphill in some paths, downhill in others.
        let mut paths = vec![path(&[1, 2, 9]); 4]; // top 9: 1->2 uphill
        paths.extend(vec![path(&[9, 1, 2]); 4]); // top 9 first: downhill
        let deg = degrees(&[(1, 5), (2, 5), (9, 80)]);
        let rels = infer_relationships(paths.iter(), &deg);
        assert_eq!(rels[&(Asn::new(1), Asn::new(2))], Relationship::Sibling);
    }

    #[test]
    fn sparse_similar_degree_defaults_to_peer() {
        let paths = [path(&[4, 5, 6])]; // single observation
        let deg = degrees(&[(4, 10), (5, 11), (6, 9)]);
        let rels = infer_relationships(paths.iter(), &deg);
        // 5 is top; edge 5-6 is downhill once: ratio 0 => customer of 5.
        assert_eq!(rels[&(Asn::new(5), Asn::new(6))], Relationship::Customer);
        // Edge 4-5: uphill once => provider relation.
        assert_eq!(rels[&(Asn::new(4), Asn::new(5))], Relationship::Provider);
    }

    #[test]
    fn reverse_entries_consistent() {
        let paths = vec![path(&[1, 2, 3, 4]); 3];
        let deg = degrees(&[(1, 1), (2, 20), (3, 30), (4, 1)]);
        let rels = infer_relationships(paths.iter(), &deg);
        for (&(a, b), &r) in &rels {
            assert_eq!(rels[&(b, a)], r.reverse());
        }
    }
}
