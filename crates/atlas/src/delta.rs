//! Daily atlas deltas (§5, "Keeping Atlas Up-to-date", and §6.2.3).
//!
//! The paper ships, for the three fast-changing datasets (links, loss
//! rates, 3-tuples), "the union of the old entries not present any more
//! and new entries added"; loss entries are also updated when the rate
//! changes. The remaining datasets change slowly and are refreshed in the
//! monthly full atlas, so a delta leaves them untouched.

use crate::codec::{get_varint, put_varint, quantise};
use crate::datasets::{Atlas, LinkAnnotation, Plane, Triple};
use inano_model::{Asn, ClusterId, LatencyMs, LossRate, ModelError};
use serde::{Deserialize, Serialize};

/// The day-over-day difference between two atlases.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AtlasDelta {
    pub from_day: u32,
    pub to_day: u32,
    /// New or re-annotated links (latency/plane changes ship the full
    /// entry; simpler and still small).
    pub links_upsert: Vec<((ClusterId, ClusterId), LinkAnnotation)>,
    pub links_removed: Vec<(ClusterId, ClusterId)>,
    /// New cluster→AS entries for clusters introduced by new links.
    pub cluster_as_added: Vec<(ClusterId, Asn)>,
    /// Loss entries set or changed.
    pub loss_upsert: Vec<((ClusterId, ClusterId), LossRate)>,
    pub loss_removed: Vec<(ClusterId, ClusterId)>,
    pub tuples_added: Vec<Triple>,
    pub tuples_removed: Vec<Triple>,
}

impl AtlasDelta {
    /// Compute the delta that turns `old` into `new` (for the datasets
    /// that are updated daily).
    pub fn between(old: &Atlas, new: &Atlas) -> AtlasDelta {
        let old = quantise(old);
        let new = quantise(new);
        let mut d = AtlasDelta {
            from_day: old.day,
            to_day: new.day,
            ..AtlasDelta::default()
        };
        for (k, ann) in &new.links {
            if old.links.get(k) != Some(ann) {
                d.links_upsert.push((*k, *ann));
            }
        }
        for k in old.links.keys() {
            if !new.links.contains_key(k) {
                d.links_removed.push(*k);
            }
        }
        for (c, a) in &new.cluster_as {
            if !old.cluster_as.contains_key(c) {
                d.cluster_as_added.push((*c, *a));
            }
        }
        for (k, l) in &new.loss {
            if old.loss.get(k) != Some(l) {
                d.loss_upsert.push((*k, *l));
            }
        }
        for k in old.loss.keys() {
            if !new.loss.contains_key(k) {
                d.loss_removed.push(*k);
            }
        }
        for t in &new.tuples {
            if !old.tuples.contains(t) {
                d.tuples_added.push(*t);
            }
        }
        for t in &old.tuples {
            if !new.tuples.contains(t) {
                d.tuples_removed.push(*t);
            }
        }
        d
    }

    /// Apply onto `base`, producing the next day's view of the daily
    /// datasets (slow datasets carried over unchanged).
    pub fn apply(&self, base: &Atlas) -> Result<Atlas, ModelError> {
        if base.day != self.from_day {
            return Err(ModelError::PatchMismatch(format!(
                "delta is {}→{} but base is day {}",
                self.from_day, self.to_day, base.day
            )));
        }
        let mut out = quantise(base);
        out.day = self.to_day;
        for (k, ann) in &self.links_upsert {
            out.links.insert(*k, *ann);
        }
        for k in &self.links_removed {
            out.links.remove(k);
        }
        for (c, a) in &self.cluster_as_added {
            out.cluster_as.insert(*c, *a);
        }
        for (k, l) in &self.loss_upsert {
            out.loss.insert(*k, *l);
        }
        for k in &self.loss_removed {
            out.loss.remove(k);
        }
        for t in &self.tuples_added {
            out.tuples.insert(*t);
        }
        for t in &self.tuples_removed {
            out.tuples.remove(t);
        }
        Ok(out)
    }

    /// Entry counts per updated dataset: (links, loss, tuples).
    pub fn entry_counts(&self) -> (usize, usize, usize) {
        (
            self.links_upsert.len() + self.links_removed.len(),
            self.loss_upsert.len() + self.loss_removed.len(),
            self.tuples_added.len() + self.tuples_removed.len(),
        )
    }

    /// Encode compactly (same varint scheme as the full atlas). Returns
    /// the bytes and the (links, loss, tuples) section sizes.
    pub fn encode(&self) -> (Vec<u8>, [usize; 3]) {
        let mut out = Vec::new();
        out.extend_from_slice(b"INDLT1");
        put_varint(&mut out, self.from_day as u64);
        put_varint(&mut out, self.to_day as u64);
        let mut sizes = [0usize; 3];

        let mut body = Vec::new();
        put_varint(&mut body, self.links_upsert.len() as u64);
        for ((f, t), ann) in &self.links_upsert {
            put_varint(&mut body, f.raw() as u64);
            put_varint(&mut body, t.raw() as u64);
            body.push(ann.plane.bits());
            match ann.latency {
                Some(l) => put_varint(&mut body, (l.ms() * 10.0).round() as u64 + 1),
                None => put_varint(&mut body, 0),
            }
        }
        put_varint(&mut body, self.links_removed.len() as u64);
        for (f, t) in &self.links_removed {
            put_varint(&mut body, f.raw() as u64);
            put_varint(&mut body, t.raw() as u64);
        }
        put_varint(&mut body, self.cluster_as_added.len() as u64);
        for (c, a) in &self.cluster_as_added {
            put_varint(&mut body, c.raw() as u64);
            put_varint(&mut body, a.raw() as u64);
        }
        sizes[0] = body.len();
        put_varint(&mut out, body.len() as u64);
        out.extend_from_slice(&body);

        let mut body = Vec::new();
        put_varint(&mut body, self.loss_upsert.len() as u64);
        for ((f, t), l) in &self.loss_upsert {
            put_varint(&mut body, f.raw() as u64);
            put_varint(&mut body, t.raw() as u64);
            put_varint(&mut body, (l.rate() * 1000.0).round() as u64);
        }
        put_varint(&mut body, self.loss_removed.len() as u64);
        for (f, t) in &self.loss_removed {
            put_varint(&mut body, f.raw() as u64);
            put_varint(&mut body, t.raw() as u64);
        }
        sizes[1] = body.len();
        put_varint(&mut out, body.len() as u64);
        out.extend_from_slice(&body);

        let mut body = Vec::new();
        put_varint(&mut body, self.tuples_added.len() as u64);
        for Triple(a, b, c) in &self.tuples_added {
            put_varint(&mut body, a.raw() as u64);
            put_varint(&mut body, b.raw() as u64);
            put_varint(&mut body, c.raw() as u64);
        }
        put_varint(&mut body, self.tuples_removed.len() as u64);
        for Triple(a, b, c) in &self.tuples_removed {
            put_varint(&mut body, a.raw() as u64);
            put_varint(&mut body, b.raw() as u64);
            put_varint(&mut body, c.raw() as u64);
        }
        sizes[2] = body.len();
        put_varint(&mut out, body.len() as u64);
        out.extend_from_slice(&body);

        (out, sizes)
    }

    /// Decode a delta produced by [`AtlasDelta::encode`].
    pub fn decode(bytes: &[u8]) -> Result<AtlasDelta, ModelError> {
        let mut pos = 0usize;
        if bytes.len() < 6 || &bytes[..6] != b"INDLT1" {
            return Err(ModelError::Decode("bad delta magic".into()));
        }
        pos += 6;
        let from_day = get_varint(bytes, &mut pos)? as u32;
        let to_day = get_varint(bytes, &mut pos)? as u32;
        let mut d = AtlasDelta {
            from_day,
            to_day,
            ..AtlasDelta::default()
        };

        let _len = get_varint(bytes, &mut pos)?;
        let n = get_varint(bytes, &mut pos)?;
        for _ in 0..n {
            let f = get_varint(bytes, &mut pos)? as u32;
            let t = get_varint(bytes, &mut pos)? as u32;
            let plane = Plane::from_bits(
                *bytes
                    .get(pos)
                    .ok_or_else(|| ModelError::Decode("truncated".into()))?,
            );
            pos += 1;
            let lat = get_varint(bytes, &mut pos)?;
            d.links_upsert.push((
                (ClusterId::new(f), ClusterId::new(t)),
                LinkAnnotation {
                    latency: if lat == 0 {
                        None
                    } else {
                        Some(LatencyMs::new((lat - 1) as f64 / 10.0))
                    },
                    plane,
                },
            ));
        }
        let n = get_varint(bytes, &mut pos)?;
        for _ in 0..n {
            let f = get_varint(bytes, &mut pos)? as u32;
            let t = get_varint(bytes, &mut pos)? as u32;
            d.links_removed.push((ClusterId::new(f), ClusterId::new(t)));
        }
        let n = get_varint(bytes, &mut pos)?;
        for _ in 0..n {
            let c = get_varint(bytes, &mut pos)? as u32;
            let a = get_varint(bytes, &mut pos)? as u32;
            d.cluster_as_added.push((ClusterId::new(c), Asn::new(a)));
        }

        let _len = get_varint(bytes, &mut pos)?;
        let n = get_varint(bytes, &mut pos)?;
        for _ in 0..n {
            let f = get_varint(bytes, &mut pos)? as u32;
            let t = get_varint(bytes, &mut pos)? as u32;
            let l = get_varint(bytes, &mut pos)?;
            d.loss_upsert.push((
                (ClusterId::new(f), ClusterId::new(t)),
                LossRate::new(l as f64 / 1000.0),
            ));
        }
        let n = get_varint(bytes, &mut pos)?;
        for _ in 0..n {
            let f = get_varint(bytes, &mut pos)? as u32;
            let t = get_varint(bytes, &mut pos)? as u32;
            d.loss_removed.push((ClusterId::new(f), ClusterId::new(t)));
        }

        let _len = get_varint(bytes, &mut pos)?;
        let n = get_varint(bytes, &mut pos)?;
        for _ in 0..n {
            let a = get_varint(bytes, &mut pos)? as u32;
            let b = get_varint(bytes, &mut pos)? as u32;
            let c = get_varint(bytes, &mut pos)? as u32;
            d.tuples_added
                .push(Triple(Asn::new(a), Asn::new(b), Asn::new(c)));
        }
        let n = get_varint(bytes, &mut pos)?;
        for _ in 0..n {
            let a = get_varint(bytes, &mut pos)? as u32;
            let b = get_varint(bytes, &mut pos)? as u32;
            let c = get_varint(bytes, &mut pos)? as u32;
            d.tuples_removed
                .push(Triple(Asn::new(a), Asn::new(b), Asn::new(c)));
        }
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atlas_with(day: u32, links: &[(u32, u32)], tuples: &[(u32, u32, u32)]) -> Atlas {
        let mut a = Atlas {
            day,
            ..Atlas::default()
        };
        for &(f, t) in links {
            a.links.insert(
                (ClusterId::new(f), ClusterId::new(t)),
                LinkAnnotation {
                    latency: Some(LatencyMs::new(f as f64 + 0.5)),
                    plane: Plane::TO_DST,
                },
            );
            a.cluster_as.insert(ClusterId::new(f), Asn::new(f));
            a.cluster_as.insert(ClusterId::new(t), Asn::new(t));
        }
        for &(x, y, z) in tuples {
            a.tuples
                .insert(Triple::canonical(Asn::new(x), Asn::new(y), Asn::new(z)));
        }
        a
    }

    #[test]
    fn delta_apply_reproduces_daily_datasets() {
        let old = atlas_with(0, &[(1, 2), (2, 3)], &[(1, 2, 3)]);
        let mut new = atlas_with(1, &[(1, 2), (3, 4)], &[(1, 2, 3), (2, 3, 4)]);
        new.loss
            .insert((ClusterId::new(1), ClusterId::new(2)), LossRate::new(0.05));
        let d = AtlasDelta::between(&old, &new);
        let rebuilt = d.apply(&old).unwrap();
        assert_eq!(rebuilt.links, quantise(&new).links);
        assert_eq!(rebuilt.loss, quantise(&new).loss);
        assert_eq!(rebuilt.tuples, new.tuples);
        assert_eq!(rebuilt.day, 1);
    }

    #[test]
    fn identical_atlases_have_empty_delta() {
        let a = atlas_with(0, &[(1, 2)], &[(1, 2, 3)]);
        let mut b = a.clone();
        b.day = 1;
        let d = AtlasDelta::between(&a, &b);
        let (l, s, t) = d.entry_counts();
        assert_eq!((l, s, t), (0, 0, 0));
    }

    #[test]
    fn apply_rejects_wrong_base() {
        let old = atlas_with(0, &[(1, 2)], &[]);
        let new = atlas_with(1, &[(1, 2)], &[]);
        let d = AtlasDelta::between(&old, &new);
        let wrong = atlas_with(7, &[(1, 2)], &[]);
        assert!(d.apply(&wrong).is_err());
    }

    #[test]
    fn delta_encode_roundtrip() {
        let old = atlas_with(0, &[(1, 2), (2, 3)], &[(1, 2, 3)]);
        let mut new = atlas_with(1, &[(2, 3), (9, 10)], &[(4, 5, 6)]);
        new.loss
            .insert((ClusterId::new(2), ClusterId::new(3)), LossRate::new(0.011));
        let d = AtlasDelta::between(&old, &new);
        let (bytes, sizes) = d.encode();
        assert!(sizes.iter().sum::<usize>() > 0);
        let d2 = AtlasDelta::decode(&bytes).unwrap();
        assert_eq!(d2.apply(&old).unwrap().links, d.apply(&old).unwrap().links);
        assert_eq!(d2.tuples_added, d.tuples_added);
        assert_eq!(d2.loss_upsert, d.loss_upsert);
    }

    #[test]
    fn latency_requantisation_does_not_inflate_delta() {
        // Quantisation must be idempotent: the same atlas re-quantised
        // produces an empty delta (guards against float drift).
        let a = atlas_with(0, &[(1, 2), (5, 9)], &[]);
        let qa = quantise(&a);
        let qb = quantise(&qa);
        let mut qb2 = qb.clone();
        qb2.day = 1;
        let d = AtlasDelta::between(&qa, &qb2);
        assert_eq!(d.entry_counts(), (0, 0, 0));
    }
}
