//! Table-2 accounting: entries and encoded bytes per dataset, for the
//! full atlas and for a daily delta.

use crate::codec::{encode, Section};
use crate::datasets::Atlas;
use crate::delta::AtlasDelta;
use serde::{Deserialize, Serialize};

/// One row of Table 2.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DatasetStat {
    pub name: &'static str,
    pub entries: usize,
    pub bytes: usize,
    pub delta_entries: usize,
    pub delta_bytes: usize,
}

/// Compute the full-atlas side of Table 2.
pub fn atlas_stats(atlas: &Atlas) -> Vec<DatasetStat> {
    let (_, sizes) = encode(atlas);
    let s = |sec: Section| sizes.sizes[sec as usize];
    vec![
        DatasetStat {
            name: "Inter-cluster links with latencies",
            entries: atlas.links.len(),
            bytes: s(Section::Links),
            delta_entries: 0,
            delta_bytes: 0,
        },
        DatasetStat {
            name: "Link loss rates",
            entries: atlas.loss.len(),
            bytes: s(Section::Loss),
            delta_entries: 0,
            delta_bytes: 0,
        },
        DatasetStat {
            name: "Prefix to cluster",
            entries: atlas.prefix_cluster.len(),
            bytes: s(Section::PrefixCluster),
            delta_entries: 0,
            delta_bytes: 0,
        },
        DatasetStat {
            name: "Prefix to AS",
            entries: atlas.prefix_as.len(),
            bytes: s(Section::PrefixAs),
            delta_entries: 0,
            delta_bytes: 0,
        },
        DatasetStat {
            name: "AS degrees",
            entries: atlas.as_degree.len(),
            bytes: s(Section::AsDegrees),
            delta_entries: 0,
            delta_bytes: 0,
        },
        DatasetStat {
            name: "AS three-tuples",
            entries: atlas.tuples.len(),
            bytes: s(Section::Tuples),
            delta_entries: 0,
            delta_bytes: 0,
        },
        DatasetStat {
            name: "AS preferences",
            entries: atlas.prefs.len(),
            bytes: s(Section::Prefs),
            delta_entries: 0,
            delta_bytes: 0,
        },
        DatasetStat {
            name: "Provider mappings",
            entries: atlas.providers.len() + atlas.prefix_providers.len(),
            bytes: s(Section::Providers),
            delta_entries: 0,
            delta_bytes: 0,
        },
    ]
}

/// Fill in the delta columns of Table 2 (only links, loss and tuples are
/// shipped daily; other datasets show 0, as in the paper).
pub fn delta_stats(stats: &mut [DatasetStat], delta: &AtlasDelta) {
    let (_, sizes) = delta.encode();
    let (le, se, te) = delta.entry_counts();
    for st in stats.iter_mut() {
        match st.name {
            "Inter-cluster links with latencies" => {
                st.delta_entries = le;
                st.delta_bytes = sizes[0];
            }
            "Link loss rates" => {
                st.delta_entries = se;
                st.delta_bytes = sizes[1];
            }
            "AS three-tuples" => {
                st.delta_entries = te;
                st.delta_bytes = sizes[2];
            }
            _ => {}
        }
    }
}

/// Render the stats as a Table-2-style text table.
pub fn render_table(stats: &[DatasetStat]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<38} {:>10} {:>12} {:>10} {:>12}\n",
        "Dataset", "Entries", "Bytes", "ΔEntries", "ΔBytes"
    ));
    let mut te = 0;
    let mut tb = 0;
    let mut tde = 0;
    let mut tdb = 0;
    for s in stats {
        out.push_str(&format!(
            "{:<38} {:>10} {:>12} {:>10} {:>12}\n",
            s.name, s.entries, s.bytes, s.delta_entries, s.delta_bytes
        ));
        te += s.entries;
        tb += s.bytes;
        tde += s.delta_entries;
        tdb += s.delta_bytes;
    }
    out.push_str(&format!(
        "{:<38} {:>10} {:>12} {:>10} {:>12}\n",
        "Total", te, tb, tde, tdb
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{LinkAnnotation, Plane};
    use inano_model::{Asn, ClusterId, LatencyMs};

    fn small_atlas(day: u32, n: u32) -> Atlas {
        let mut a = Atlas {
            day,
            ..Atlas::default()
        };
        for i in 0..n {
            a.links.insert(
                (ClusterId::new(i), ClusterId::new(i + 1)),
                LinkAnnotation {
                    latency: Some(LatencyMs::new(1.0)),
                    plane: Plane::TO_DST,
                },
            );
            a.cluster_as.insert(ClusterId::new(i), Asn::new(i / 2));
        }
        a
    }

    #[test]
    fn stats_count_entries_and_bytes() {
        let a = small_atlas(0, 50);
        let stats = atlas_stats(&a);
        assert_eq!(stats[0].entries, 50);
        assert!(stats[0].bytes > 50, "links need >1 byte each");
        // Empty datasets cost only their length header.
        assert!(stats[6].bytes <= 2);
    }

    #[test]
    fn delta_columns_filled() {
        let a = small_atlas(0, 20);
        let b = small_atlas(1, 25);
        let d = AtlasDelta::between(&a, &b);
        let mut stats = atlas_stats(&b);
        delta_stats(&mut stats, &d);
        assert!(stats[0].delta_entries > 0);
        assert!(stats[0].delta_bytes > 0);
        // Prefix datasets never appear in deltas.
        assert_eq!(stats[2].delta_bytes, 0);
    }

    #[test]
    fn render_contains_total() {
        let stats = atlas_stats(&small_atlas(0, 5));
        let table = render_table(&stats);
        assert!(table.contains("Total"));
        assert!(table.contains("AS three-tuples"));
    }

    #[test]
    fn delta_much_smaller_than_full_for_small_change() {
        let a = small_atlas(0, 500);
        let mut b = small_atlas(1, 500);
        // Change a handful of links only.
        b.links.insert(
            (ClusterId::new(1000), ClusterId::new(1001)),
            LinkAnnotation {
                latency: None,
                plane: Plane::FROM_SRC,
            },
        );
        let d = AtlasDelta::between(&a, &b);
        let (full, _) = crate::codec::encode(&b);
        let (dbytes, _) = d.encode();
        assert!(
            dbytes.len() * 5 < full.len(),
            "delta {} vs full {}",
            dbytes.len(),
            full.len()
        );
    }
}
