//! Detouring around failures (§7.3, Figure 11).
//!
//! When the direct path fails, the source retries through detour hosts.
//! iNano's policy ranks candidate detours by the *disjointness* of their
//! predicted paths from the predicted direct path: "We choose the
//! (k+1)-th detour node in this ranking to be the one that minimizes
//! first the number of PoPs and second the number of ASes in common with
//! the direct path and the k previously chosen detours."

use inano_core::PathPredictor;
use inano_model::{Asn, ClusterId, PrefixId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Outcome of a recovery attempt with a budget of N detours.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DetourOutcome {
    /// Detours tried (≤ the budget).
    pub tried: usize,
    /// Did any tried detour restore connectivity?
    pub recovered: bool,
}

/// The predicted footprint of a detour path (clusters and ASes on
/// src→detour→dst).
struct Footprint {
    prefix: PrefixId,
    clusters: HashSet<ClusterId>,
    ases: HashSet<Asn>,
}

/// Rank candidate detour prefixes by predicted disjointness from the
/// predicted direct path, greedily diversifying against already-chosen
/// detours. Returns up to `n` detour prefixes, best first.
pub fn rank_detours(
    predictor: &PathPredictor,
    src: PrefixId,
    dst: PrefixId,
    candidates: &[PrefixId],
    n: usize,
) -> Vec<PrefixId> {
    let direct = footprint_of_path(predictor, src, dst);

    let mut pool: Vec<Footprint> = candidates
        .iter()
        .filter_map(|&c| {
            let leg1 = predictor.predict_forward(src, c).ok()?;
            let leg2 = predictor.predict_forward(c, dst).ok()?;
            let mut clusters: HashSet<ClusterId> = leg1.iter().copied().collect();
            clusters.extend(leg2.iter().copied());
            let ases: HashSet<Asn> = clusters
                .iter()
                .filter_map(|cl| predictor.atlas().as_of_cluster(*cl))
                .collect();
            Some(Footprint {
                prefix: c,
                clusters,
                ases,
            })
        })
        .collect();

    // Accumulated comparison set: direct path ∪ chosen detours.
    let mut used_clusters: HashSet<ClusterId> = direct.0;
    let mut used_ases: HashSet<Asn> = direct.1;
    let mut chosen = Vec::with_capacity(n.min(pool.len()));
    while chosen.len() < n && !pool.is_empty() {
        let (idx, _) = pool
            .iter()
            .enumerate()
            .min_by_key(|(_, f)| {
                (
                    f.clusters.intersection(&used_clusters).count(),
                    f.ases.intersection(&used_ases).count(),
                    f.prefix,
                )
            })
            .expect("pool non-empty");
        let f = pool.swap_remove(idx);
        used_clusters.extend(f.clusters.iter().copied());
        used_ases.extend(f.ases.iter().copied());
        chosen.push(f.prefix);
    }
    chosen
}

/// The predicted direct path's footprint ((clusters, ases); empty when
/// unpredictable — ranking then just diversifies among detours).
fn footprint_of_path(
    predictor: &PathPredictor,
    src: PrefixId,
    dst: PrefixId,
) -> (HashSet<ClusterId>, HashSet<Asn>) {
    let Ok(path) = predictor.predict_forward(src, dst) else {
        return (HashSet::new(), HashSet::new());
    };
    let clusters: HashSet<ClusterId> = path.iter().copied().collect();
    let ases = clusters
        .iter()
        .filter_map(|c| predictor.atlas().as_of_cluster(*c))
        .collect();
    (clusters, ases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_atlas::{Atlas, LinkAnnotation, Plane};
    use inano_core::PredictorConfig;
    use inano_model::{Ipv4, LatencyMs, Prefix};
    use std::sync::Arc;

    /// Diamond topology: src cluster 0 → {1, 2, 3} → dst cluster 4, and a
    /// detour candidate prefix behind each middle cluster. Cluster 1 is on
    /// the direct path.
    fn predictor() -> PathPredictor {
        let mut a = Atlas::default();
        let cl = ClusterId::new;
        let link = |f: u32, t: u32, lat: f64, a: &mut Atlas| {
            a.links.insert(
                (cl(f), cl(t)),
                LinkAnnotation {
                    latency: Some(LatencyMs::new(lat)),
                    plane: Plane::TO_DST,
                },
            );
            a.links.insert(
                (cl(t), cl(f)),
                LinkAnnotation {
                    latency: Some(LatencyMs::new(lat)),
                    plane: Plane::TO_DST,
                },
            );
        };
        link(0, 1, 1.0, &mut a); // direct path goes via 1 (cheapest)
        link(1, 4, 1.0, &mut a);
        link(0, 2, 5.0, &mut a);
        link(2, 4, 5.0, &mut a);
        link(0, 3, 9.0, &mut a);
        link(3, 4, 9.0, &mut a);
        for c in 0..=4u32 {
            a.cluster_as.insert(cl(c), inano_model::Asn::new(c));
        }
        // Prefixes: 100 at src, 104 at dst, 101..103 at middles.
        for (p, c) in [(100u32, 0u32), (101, 1), (102, 2), (103, 3), (104, 4)] {
            a.prefix_cluster.insert(PrefixId::new(p), cl(c));
            a.prefix_as.insert(
                PrefixId::new(p),
                (
                    Prefix::new(Ipv4::from_octets(p as u8, 0, 0, 0), 24),
                    inano_model::Asn::new(c),
                ),
            );
        }
        let mut cfg = PredictorConfig::with_tuples();
        cfg.use_tuples = false;
        cfg.use_from_src = false;
        PathPredictor::new(Arc::new(a), cfg)
    }

    #[test]
    fn ranking_prefers_disjoint_detours() {
        let p = predictor();
        let candidates = [PrefixId::new(101), PrefixId::new(102), PrefixId::new(103)];
        let ranked = rank_detours(&p, PrefixId::new(100), PrefixId::new(104), &candidates, 3);
        assert_eq!(ranked.len(), 3);
        // Detour via prefix 101 shares cluster 1 with the direct path, so
        // it must NOT come first.
        assert_ne!(ranked[0], PrefixId::new(101));
    }

    #[test]
    fn greedy_diversifies_across_choices() {
        let p = predictor();
        let candidates = [PrefixId::new(102), PrefixId::new(103)];
        let ranked = rank_detours(&p, PrefixId::new(100), PrefixId::new(104), &candidates, 2);
        // Both are disjoint from the direct path; the second pick must
        // differ from the first.
        assert_eq!(ranked.len(), 2);
        assert_ne!(ranked[0], ranked[1]);
    }

    #[test]
    fn unpredictable_candidates_skipped() {
        let p = predictor();
        let candidates = [PrefixId::new(999), PrefixId::new(102)];
        let ranked = rank_detours(&p, PrefixId::new(100), PrefixId::new(104), &candidates, 2);
        assert_eq!(ranked, vec![PrefixId::new(102)]);
    }
}
