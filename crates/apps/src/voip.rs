//! VoIP relay selection (§7.2, Figure 10): NATed endpoints relay calls
//! through a third host; "picking the right relay is vital". iNano's
//! policy: take the 10 candidates with the lowest predicted end-to-end
//! loss, then the one with the lowest predicted latency among them.

use inano_core::PathPredictor;
use inano_measure::ping::ping_median;
use inano_measure::traceroute::ProbeNoise;
use inano_model::metrics::mean_opinion_score;
use inano_model::rng::DeterministicRng;
use inano_model::{HostId, LatencyMs, LossRate};
use inano_routing::RoutingOracle;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// The relay-selection strategies of Figure 10.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RelayStrategy {
    /// iNano: min predicted loss (top 10), then min predicted latency.
    INano,
    /// Relay with the lowest measured RTT to the source.
    ClosestToSrc,
    /// Relay with the lowest measured RTT to the destination.
    ClosestToDst,
    /// Random relay.
    Random,
}

impl RelayStrategy {
    pub fn all() -> [RelayStrategy; 4] {
        [
            RelayStrategy::INano,
            RelayStrategy::ClosestToSrc,
            RelayStrategy::ClosestToDst,
            RelayStrategy::Random,
        ]
    }

    pub fn name(&self) -> &'static str {
        match self {
            RelayStrategy::INano => "iNano",
            RelayStrategy::ClosestToSrc => "closest-to-src",
            RelayStrategy::ClosestToDst => "closest-to-dst",
            RelayStrategy::Random => "random",
        }
    }
}

/// The measured outcome of one relayed call.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VoipCall {
    pub src: HostId,
    pub dst: HostId,
    pub relay: HostId,
    /// Ground-truth one-way loss of the relayed stream (src→relay→dst).
    pub loss: LossRate,
    /// Ground-truth RTT over the relay.
    pub rtt: LatencyMs,
    /// Mean opinion score of the call.
    pub mos: f64,
}

/// Ground-truth quality of a relayed call.
pub fn call_quality(
    oracle: &RoutingOracle<'_>,
    src: HostId,
    relay: HostId,
    dst: HostId,
) -> Option<VoipCall> {
    let net = oracle.internet();
    let leg1 = oracle.host_to_prefix(src, net.host(relay).prefix)?;
    let leg2 = oracle.host_to_prefix(relay, net.host(dst).prefix)?;
    let loss = leg1.loss.compose(leg2.loss);
    let rtt = oracle.rtt(src, relay)? + oracle.rtt(relay, dst)?;
    Some(VoipCall {
        src,
        dst,
        relay,
        loss,
        rtt,
        mos: mean_opinion_score(rtt, loss),
    })
}

/// Select a relay under a strategy.
pub fn pick_relay(
    strategy: RelayStrategy,
    oracle: &RoutingOracle<'_>,
    predictor: &PathPredictor,
    src: HostId,
    dst: HostId,
    candidates: &[HostId],
    rng: &mut DeterministicRng,
) -> Option<HostId> {
    let net = oracle.internet();
    match strategy {
        RelayStrategy::INano => {
            let sp = net.host(src).prefix;
            let dp = net.host(dst).prefix;
            let mut scored: Vec<(HostId, f64, f64)> = candidates
                .iter()
                .copied()
                .filter_map(|r| {
                    let rp = net.host(r).prefix;
                    let leg1 = predictor.predict(sp, rp).ok()?;
                    let leg2 = predictor.predict(rp, dp).ok()?;
                    let loss = leg1.loss.compose(leg2.loss);
                    let rtt = leg1.rtt + leg2.rtt;
                    Some((r, loss.rate(), rtt.ms()))
                })
                .collect();
            // Lowest predicted loss first; keep ten, then lowest latency.
            scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            scored.truncate(10);
            scored
                .into_iter()
                .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
                .map(|(r, _, _)| r)
        }
        RelayStrategy::ClosestToSrc => closest_to(oracle, src, candidates, rng),
        RelayStrategy::ClosestToDst => closest_to(oracle, dst, candidates, rng),
        RelayStrategy::Random => candidates.choose(rng).copied(),
    }
}

fn closest_to(
    oracle: &RoutingOracle<'_>,
    anchor: HostId,
    candidates: &[HostId],
    rng: &mut DeterministicRng,
) -> Option<HostId> {
    candidates
        .iter()
        .copied()
        .filter_map(|r| {
            ping_median(oracle, anchor, r, 3, &ProbeNoise::default(), rng).map(|l| (r, l.ms()))
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .map(|(r, _)| r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_atlas::{build_atlas, AtlasConfig};
    use inano_core::PredictorConfig;
    use inano_measure::{
        run_campaign, CampaignConfig, Clustering, ClusteringConfig, VantagePoints,
    };
    use inano_model::rng::rng_for;
    use inano_topology::{build_internet, DayState, TopologyConfig};
    use std::sync::Arc;

    #[test]
    fn relay_selection_end_to_end() {
        let net = build_internet(&TopologyConfig::tiny(231)).unwrap();
        let clustering = Clustering::derive(&net, &ClusteringConfig::default());
        let vps = VantagePoints::choose(&net, 8, 25, &mut rng_for(231, "vp"));
        let oracle = RoutingOracle::new(&net, DayState::default());
        let day = run_campaign(
            &oracle,
            &clustering,
            &vps,
            &CampaignConfig {
                traceroutes_per_agent: 12,
                ..CampaignConfig::default()
            },
        );
        let atlas = Arc::new(build_atlas(
            &net,
            &clustering,
            &day,
            &AtlasConfig::default(),
        ));
        let predictor = PathPredictor::new(atlas, PredictorConfig::full());

        let hosts = &vps.agents;
        let (src, dst) = (hosts[0], hosts[1]);
        let candidates: Vec<HostId> = hosts[2..14].to_vec();
        let mut rng = rng_for(231, "relay");
        for strategy in RelayStrategy::all() {
            let r = pick_relay(
                strategy,
                &oracle,
                &predictor,
                src,
                dst,
                &candidates,
                &mut rng,
            );
            let relay = r.unwrap_or_else(|| panic!("{} found no relay", strategy.name()));
            let call = call_quality(&oracle, src, relay, dst).expect("relayed call works");
            assert!(call.rtt.ms() > 0.0);
            assert!(call.mos > 0.5 && call.mos < 5.0);
        }
    }

    #[test]
    fn mos_orders_with_quality() {
        // A lossless short call must out-MOS a lossy long one.
        let good = mean_opinion_score(LatencyMs::new(60.0), LossRate::ZERO);
        let bad = mean_opinion_score(LatencyMs::new(500.0), LossRate::new(0.15));
        assert!(good > bad + 0.5);
    }
}
