//! Client-based CDN replica selection (§7.1, Figure 9).
//!
//! Each client holds a set of candidate replicas and must pick one
//! locally. Strategies under test: ground-truth optimal, measured
//! latency, iNano (latency for short transfers; latency+loss through the
//! PFTK model for long ones), Vivaldi coordinates, OASIS-style
//! geo-anycast, and random. Downloads are then "performed" against the
//! ground-truth path properties through the TCP transfer-time model.

use crate::oasis::oasis_pick;
use crate::tcp_model::{pftk_throughput, transfer_time_secs};
use inano_coords::VivaldiSystem;
use inano_core::PathPredictor;
use inano_measure::ping::ping_median;
use inano_measure::traceroute::ProbeNoise;
use inano_model::rng::DeterministicRng;
use inano_model::{HostId, LatencyMs};
use inano_routing::RoutingOracle;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The replica-selection strategies of Figure 9.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ReplicaStrategy {
    /// Hindsight optimum: the replica with the smallest actual download
    /// time.
    Optimal,
    /// Lowest measured RTT (median of pings).
    MeasuredLatency,
    /// iNano predictions: latency for short files, PFTK(latency, loss)
    /// for long ones.
    INano,
    /// Vivaldi coordinate distance.
    Vivaldi,
    /// OASIS-style geo-closest.
    Oasis,
    /// Uniformly random replica.
    Random,
}

impl ReplicaStrategy {
    pub fn all() -> [ReplicaStrategy; 6] {
        [
            ReplicaStrategy::Optimal,
            ReplicaStrategy::MeasuredLatency,
            ReplicaStrategy::INano,
            ReplicaStrategy::Vivaldi,
            ReplicaStrategy::Oasis,
            ReplicaStrategy::Random,
        ]
    }

    pub fn name(&self) -> &'static str {
        match self {
            ReplicaStrategy::Optimal => "optimal",
            ReplicaStrategy::MeasuredLatency => "measured",
            ReplicaStrategy::INano => "iNano",
            ReplicaStrategy::Vivaldi => "Vivaldi",
            ReplicaStrategy::Oasis => "OASIS",
            ReplicaStrategy::Random => "random",
        }
    }
}

/// Everything a CDN selection needs to consult.
pub struct CdnExperiment<'a> {
    pub oracle: &'a RoutingOracle<'a>,
    pub predictor: &'a PathPredictor,
    /// Vivaldi system with its HostId → node-index mapping.
    pub vivaldi: &'a VivaldiSystem,
    pub vivaldi_index: &'a HashMap<HostId, usize>,
    /// File size under test, bytes.
    pub file_bytes: f64,
}

impl<'a> CdnExperiment<'a> {
    /// Actual download time from ground truth (`None` when unreachable).
    pub fn download_time(&self, client: HostId, replica: HostId) -> Option<f64> {
        let rtt = self.oracle.rtt(client, replica)?;
        let loss = self.oracle.round_trip_loss(client, replica)?;
        Some(transfer_time_secs(self.file_bytes, rtt, loss))
    }

    /// The replica a strategy picks among `candidates`.
    pub fn pick(
        &self,
        strategy: ReplicaStrategy,
        client: HostId,
        candidates: &[HostId],
        rng: &mut DeterministicRng,
    ) -> Option<HostId> {
        let net = self.oracle.internet();
        match strategy {
            ReplicaStrategy::Optimal => candidates
                .iter()
                .copied()
                .filter_map(|r| self.download_time(client, r).map(|t| (r, t)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .map(|(r, _)| r),
            ReplicaStrategy::MeasuredLatency => candidates
                .iter()
                .copied()
                .filter_map(|r| {
                    ping_median(self.oracle, client, r, 3, &ProbeNoise::default(), rng)
                        .map(|l| (r, l.ms()))
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .map(|(r, _)| r),
            ReplicaStrategy::INano => {
                let src_pfx = net.host(client).prefix;
                // Short transfers: latency only (paper, 30KB). Long
                // transfers: maximise PFTK throughput from predicted
                // latency + loss (paper, 1.5MB).
                let latency_only = self.file_bytes <= 100_000.0;
                candidates
                    .iter()
                    .copied()
                    .filter_map(|r| {
                        let p = self.predictor.predict(src_pfx, net.host(r).prefix).ok()?;
                        let score = if latency_only {
                            p.rtt.ms()
                        } else {
                            -pftk_throughput(p.rtt, p.loss)
                        };
                        Some((r, score))
                    })
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .map(|(r, _)| r)
            }
            ReplicaStrategy::Vivaldi => {
                let ci = *self.vivaldi_index.get(&client)?;
                candidates
                    .iter()
                    .copied()
                    .filter_map(|r| {
                        let ri = *self.vivaldi_index.get(&r)?;
                        Some((r, self.vivaldi.estimate(ci, ri)))
                    })
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .map(|(r, _)| r)
            }
            ReplicaStrategy::Oasis => oasis_pick(net, client, candidates, 500.0, rng),
            ReplicaStrategy::Random => candidates.choose(rng).copied(),
        }
    }
}

/// Latency helper exposed for reporting.
pub fn predicted_rtt(
    predictor: &PathPredictor,
    oracle: &RoutingOracle<'_>,
    a: HostId,
    b: HostId,
) -> Option<LatencyMs> {
    let net = oracle.internet();
    predictor
        .predict(net.host(a).prefix, net.host(b).prefix)
        .ok()
        .map(|p| p.rtt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_atlas::{build_atlas, AtlasConfig};
    use inano_coords::VivaldiConfig;
    use inano_core::PredictorConfig;
    use inano_measure::{
        run_campaign, CampaignConfig, Clustering, ClusteringConfig, VantagePoints,
    };
    use inano_model::rng::rng_for;
    use inano_topology::{build_internet, DayState, TopologyConfig};
    use std::sync::Arc;

    #[allow(clippy::type_complexity)]
    fn setup() -> (
        inano_topology::Internet,
        Vec<HostId>,
        Vec<HostId>,
        Arc<inano_atlas::Atlas>,
        VivaldiSystem,
        HashMap<HostId, usize>,
    ) {
        let net = build_internet(&TopologyConfig::tiny(221)).unwrap();
        let clustering = Clustering::derive(&net, &ClusteringConfig::default());
        let vps = VantagePoints::choose(&net, 8, 20, &mut rng_for(221, "vp"));
        let oracle = RoutingOracle::new(&net, DayState::default());
        let day = run_campaign(
            &oracle,
            &clustering,
            &vps,
            &CampaignConfig {
                traceroutes_per_agent: 12,
                ..CampaignConfig::default()
            },
        );
        let atlas = Arc::new(build_atlas(
            &net,
            &clustering,
            &day,
            &AtlasConfig::default(),
        ));

        let clients: Vec<HostId> = vps.agents.iter().take(8).copied().collect();
        let replicas: Vec<HostId> = vps.agents.iter().skip(8).take(6).copied().collect();
        let all: Vec<HostId> = clients.iter().chain(replicas.iter()).copied().collect();
        let index: HashMap<HostId, usize> = all.iter().enumerate().map(|(i, &h)| (h, i)).collect();
        let sys = VivaldiSystem::run(
            all.len(),
            &VivaldiConfig {
                rounds: 10,
                ..VivaldiConfig::default()
            },
            |i, j, rng| {
                inano_measure::ping::ping(&oracle, all[i], all[j], &ProbeNoise::default(), rng)
                    .map(|l| l.ms())
            },
        );
        (net, clients, replicas, atlas, sys, index)
    }

    #[test]
    fn all_strategies_pick_some_replica() {
        let (net, clients, replicas, atlas, sys, index) = setup();
        let oracle = RoutingOracle::new(&net, DayState::default());
        let predictor = PathPredictor::new(atlas, PredictorConfig::full());
        let exp = CdnExperiment {
            oracle: &oracle,
            predictor: &predictor,
            vivaldi: &sys,
            vivaldi_index: &index,
            file_bytes: 30_000.0,
        };
        let mut rng = rng_for(221, "pick");
        for strategy in ReplicaStrategy::all() {
            let mut picked = 0;
            for &c in &clients {
                if exp.pick(strategy, c, &replicas, &mut rng).is_some() {
                    picked += 1;
                }
            }
            assert!(
                picked >= clients.len() - 1,
                "{} picked only {picked}",
                strategy.name()
            );
        }
    }

    #[test]
    fn optimal_is_lower_bound() {
        let (net, clients, replicas, atlas, sys, index) = setup();
        let oracle = RoutingOracle::new(&net, DayState::default());
        let predictor = PathPredictor::new(atlas, PredictorConfig::full());
        let exp = CdnExperiment {
            oracle: &oracle,
            predictor: &predictor,
            vivaldi: &sys,
            vivaldi_index: &index,
            file_bytes: 1_500_000.0,
        };
        let mut rng = rng_for(222, "pick");
        for &c in &clients {
            let Some(opt) = exp.pick(ReplicaStrategy::Optimal, c, &replicas, &mut rng) else {
                continue;
            };
            let t_opt = exp.download_time(c, opt).unwrap();
            for strategy in ReplicaStrategy::all() {
                if let Some(r) = exp.pick(strategy, c, &replicas, &mut rng) {
                    if let Some(t) = exp.download_time(c, r) {
                        assert!(t_opt <= t + 1e-9, "optimal beaten by {}", strategy.name());
                    }
                }
            }
        }
    }
}
