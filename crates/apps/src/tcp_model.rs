//! TCP transfer-time model: Cardwell-style slow start for short flows
//! ("short TCP transfers are dominated by latency", §7.1 citing [8])
//! combined with the PFTK steady-state throughput model ([37]) that the
//! paper's CDN study uses to pick replicas for large files.

use inano_model::{LatencyMs, LossRate};

/// Maximum segment size in bytes.
pub const MSS: f64 = 1460.0;
/// Initial congestion window in segments.
pub const INIT_CWND: f64 = 4.0;
/// Receiver-window cap in segments.
pub const MAX_CWND: f64 = 64.0;
/// Delayed-ACK factor `b` in the PFTK formula.
const B_ACK: f64 = 2.0;

/// PFTK steady-state throughput in bytes/second for a path with round
/// trip `rtt` and loss rate `p` (equation from Padhye et al., simplified
/// full model; capped by the receiver window).
pub fn pftk_throughput(rtt: LatencyMs, loss: LossRate) -> f64 {
    let rtt_s = (rtt.ms() / 1000.0).max(1e-4);
    let p = loss.rate();
    if p <= 0.0 {
        return MAX_CWND * MSS / rtt_s;
    }
    let rto = (4.0 * rtt_s).max(0.2); // typical RTO floor of 200 ms
    let term1 = rtt_s * (2.0 * B_ACK * p / 3.0).sqrt();
    let term2 = rto * (3.0 * (3.0 * B_ACK * p / 8.0).sqrt()).min(1.0) * p * (1.0 + 32.0 * p * p);
    let rate = MSS / (term1 + term2);
    rate.min(MAX_CWND * MSS / rtt_s)
}

/// Expected transfer time in seconds for `bytes` over a path with RTT
/// `rtt` and loss `loss`:
///
/// * connection setup (one RTT);
/// * loss-free slow start from [`INIT_CWND`], doubling per round, until
///   either the transfer completes or the window reaches what the PFTK
///   rate sustains;
/// * the remainder at the PFTK steady-state rate.
pub fn transfer_time_secs(bytes: f64, rtt: LatencyMs, loss: LossRate) -> f64 {
    let rtt_s = (rtt.ms() / 1000.0).max(1e-4);
    let mut remaining = (bytes / MSS).ceil().max(1.0); // segments
    let mut time = rtt_s; // SYN/SYN-ACK

    let steady_rate = pftk_throughput(rtt, loss); // bytes/s
    let steady_cwnd = (steady_rate * rtt_s / MSS).max(1.0);

    // Slow start: each round sends cwnd segments and costs one RTT.
    let mut cwnd = INIT_CWND;
    while remaining > 0.0 && cwnd < steady_cwnd.min(MAX_CWND) {
        let sent = cwnd.min(remaining);
        remaining -= sent;
        time += rtt_s;
        cwnd *= 2.0;
    }
    if remaining > 0.0 {
        time += remaining * MSS / steady_rate;
    }
    time
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_flows_dominated_by_latency() {
        // A 30KB transfer: halving RTT should roughly halve the time,
        // regardless of (small) loss.
        let t_fast = transfer_time_secs(30_000.0, LatencyMs::new(20.0), LossRate::ZERO);
        let t_slow = transfer_time_secs(30_000.0, LatencyMs::new(200.0), LossRate::ZERO);
        assert!(t_slow > 5.0 * t_fast, "{t_slow} vs {t_fast}");
    }

    #[test]
    fn loss_hurts_large_flows_more_than_small() {
        let small_clean = transfer_time_secs(30_000.0, LatencyMs::new(50.0), LossRate::ZERO);
        let small_lossy = transfer_time_secs(30_000.0, LatencyMs::new(50.0), LossRate::new(0.02));
        let large_clean = transfer_time_secs(1_500_000.0, LatencyMs::new(50.0), LossRate::ZERO);
        let large_lossy =
            transfer_time_secs(1_500_000.0, LatencyMs::new(50.0), LossRate::new(0.02));
        let small_penalty = small_lossy / small_clean;
        let large_penalty = large_lossy / large_clean;
        assert!(
            large_penalty > small_penalty * 1.5,
            "large {large_penalty} vs small {small_penalty}"
        );
    }

    #[test]
    fn pftk_decreases_with_loss_and_rtt() {
        let base = pftk_throughput(LatencyMs::new(50.0), LossRate::new(0.01));
        assert!(pftk_throughput(LatencyMs::new(100.0), LossRate::new(0.01)) < base);
        assert!(pftk_throughput(LatencyMs::new(50.0), LossRate::new(0.05)) < base);
    }

    #[test]
    fn zero_loss_is_window_limited() {
        let rate = pftk_throughput(LatencyMs::new(100.0), LossRate::ZERO);
        assert!((rate - MAX_CWND * MSS / 0.1).abs() < 1.0);
    }

    #[test]
    fn transfer_time_is_monotone_in_size() {
        let rtt = LatencyMs::new(80.0);
        let loss = LossRate::new(0.01);
        let mut prev = 0.0;
        for kb in [1.0, 10.0, 100.0, 1000.0] {
            let t = transfer_time_secs(kb * 1000.0, rtt, loss);
            assert!(t > prev);
            prev = t;
        }
    }
}
