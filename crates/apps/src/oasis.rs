//! An OASIS-like server-selection baseline ([18]): OASIS maps clients to
//! replicas primarily by geographic coordinates (inferred once, coarsely)
//! with infrequent background latency probes. We model its essential
//! behaviour: geo-closest selection on *noisy, stale* position estimates
//! — good on average, blind to routing pathologies and loss.

use inano_model::rng::DeterministicRng;
use inano_model::HostId;
use inano_topology::Internet;
use rand::Rng;

/// Pick a replica for a client: geographically closest under noisy
/// coordinates (`noise_km` of position error models OASIS's coarse
/// geolocation; the paper found it clearly worse than measured latency).
pub fn oasis_pick(
    net: &Internet,
    client: HostId,
    replicas: &[HostId],
    noise_km: f64,
    rng: &mut DeterministicRng,
) -> Option<HostId> {
    let c = net.pop(net.host(client).pop).loc;
    replicas
        .iter()
        .copied()
        .map(|r| {
            let loc = net.pop(net.host(r).pop).loc;
            let jitter = rng.gen_range(-noise_km..noise_km);
            (r, c.distance_km(loc) + jitter)
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .map(|(r, _)| r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_model::rng::rng_for;
    use inano_topology::{build_internet, TopologyConfig};

    #[test]
    fn picks_geographically_close_replica_without_noise() {
        let net = build_internet(&TopologyConfig::tiny(211)).unwrap();
        let mut rng = rng_for(211, "oasis");
        let client = HostId::new(0);
        let replicas: Vec<HostId> = (1..20).map(HostId::new).collect();
        let pick = oasis_pick(&net, client, &replicas, 1e-6, &mut rng).unwrap();
        let c = net.pop(net.host(client).pop).loc;
        let picked_d = c.distance_km(net.pop(net.host(pick).pop).loc);
        for &r in &replicas {
            let d = c.distance_km(net.pop(net.host(r).pop).loc);
            assert!(picked_d <= d + 1e-6);
        }
    }

    #[test]
    fn noise_changes_some_picks() {
        let net = build_internet(&TopologyConfig::tiny(212)).unwrap();
        let replicas: Vec<HostId> = (1..15).map(HostId::new).collect();
        let mut changed = 0;
        for i in 0..30 {
            let client = HostId::new(i % net.hosts.len() as u32);
            let clean = oasis_pick(&net, client, &replicas, 1e-6, &mut rng_for(1, "a")).unwrap();
            let noisy =
                oasis_pick(&net, client, &replicas, 3000.0, &mut rng_for(i as u64, "b")).unwrap();
            if clean != noisy {
                changed += 1;
            }
        }
        assert!(changed > 0, "3000km of noise must change some selections");
    }
}
