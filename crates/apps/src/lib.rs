//! # inano-apps
//!
//! The three peer-to-peer application case studies of §7, built on the
//! iNano library:
//!
//! * [`cdn`] — client-side CDN replica selection (§7.1, Figure 9), with
//!   the PFTK/short-flow TCP transfer-time model of [`tcp_model`] and the
//!   OASIS-like geo-anycast baseline in [`oasis`];
//! * [`voip`] — VoIP relay selection minimising loss then latency
//!   (§7.2, Figure 10), scored by loss and MOS;
//! * [`detour`] — routing around failures by picking detour nodes whose
//!   predicted paths are maximally disjoint from the direct path
//!   (§7.3, Figure 11), against SOSR-style random detours.

pub mod cdn;
pub mod detour;
pub mod oasis;
pub mod tcp_model;
pub mod voip;

pub use cdn::{CdnExperiment, ReplicaStrategy};
pub use detour::{rank_detours, DetourOutcome};
pub use tcp_model::transfer_time_secs;
pub use voip::{RelayStrategy, VoipCall};
