//! Loss-rate measurement: the paper's methodology sends 100 ICMP probes of
//! size 1KB spaced 2 s apart and counts missing responses (§6.2.2). The
//! estimate therefore reflects *round-trip* loss and binomial sampling
//! noise; we reproduce both.

use inano_model::rng::DeterministicRng;
use inano_model::{HostId, LossRate, PopId, PrefixId};
use inano_routing::RoutingOracle;
use rand::Rng;

/// Number of probes per loss measurement, as in the paper.
pub const PROBES_PER_MEASUREMENT: usize = 100;

/// Estimate loss on the round-trip path host → prefix → host.
/// Returns `None` when the destination is unreachable.
pub fn measure_path_loss(
    oracle: &RoutingOracle<'_>,
    src: HostId,
    dst_prefix: PrefixId,
    n_probes: usize,
    rng: &mut DeterministicRng,
) -> Option<LossRate> {
    let fwd = oracle.host_to_prefix(src, dst_prefix)?;
    let dst_pop = *fwd.pops.last().unwrap();
    let reply = oracle.reply_loss(dst_pop, oracle.internet().host(src).prefix)?;
    let p = fwd.loss.compose(reply);
    Some(binomial_estimate(p, n_probes, rng))
}

/// Estimate the loss of a single directed PoP-level link, as the
/// vantage-point measurement machinery does for links assigned to it by
/// the frontier partition (TTL-limited probe trains bracketing the link).
/// The reply-path loss largely cancels between the near and far probes, so
/// the residual error is binomial.
pub fn measure_link_loss(
    oracle: &RoutingOracle<'_>,
    link: inano_topology::LinkId,
    from: PopId,
    n_probes: usize,
    rng: &mut DeterministicRng,
) -> LossRate {
    let p = oracle.internet().link(link).loss_from(from);
    binomial_estimate(p, n_probes, rng)
}

/// Binomially sample `n` probes at loss probability `p` and return the
/// observed loss fraction.
pub fn binomial_estimate(p: LossRate, n: usize, rng: &mut DeterministicRng) -> LossRate {
    if n == 0 {
        return LossRate::ZERO;
    }
    let lost = (0..n).filter(|_| rng.gen_bool(p.rate())).count();
    LossRate::new(lost as f64 / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_model::rng::rng_for;
    use inano_topology::{build_internet, DayState, TopologyConfig};

    #[test]
    fn binomial_estimate_is_unbiased_in_the_mean() {
        let mut rng = rng_for(1, "binom");
        let p = LossRate::new(0.1);
        let mean: f64 = (0..200)
            .map(|_| binomial_estimate(p, 100, &mut rng).rate())
            .sum::<f64>()
            / 200.0;
        assert!((mean - 0.1).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn zero_loss_measures_zero() {
        let mut rng = rng_for(2, "binom");
        assert_eq!(binomial_estimate(LossRate::ZERO, 100, &mut rng).rate(), 0.0);
    }

    #[test]
    fn path_loss_at_least_sometimes_positive() {
        let net = build_internet(&TopologyConfig::tiny(121)).unwrap();
        let oracle = RoutingOracle::new(&net, DayState::default());
        let mut rng = rng_for(121, "loss");
        let mut measured_positive = 0;
        for i in 0..60.min(net.hosts.len()) {
            let src = HostId::from_index(i);
            let dst = net.hosts[(i + 13) % net.hosts.len()].prefix;
            if let Some(l) = measure_path_loss(&oracle, src, dst, 100, &mut rng) {
                if l.is_lossy() {
                    measured_positive += 1;
                }
            }
        }
        // With ~4-12% of links lossy, some multi-hop paths must be lossy.
        assert!(measured_positive > 0);
    }

    #[test]
    fn link_loss_estimate_close_to_truth() {
        let net = build_internet(&TopologyConfig::tiny(122)).unwrap();
        let oracle = RoutingOracle::new(&net, DayState::default());
        let mut rng = rng_for(122, "loss");
        let lossy = net.links.iter().find(|l| l.loss_ab.is_lossy());
        let Some(l) = lossy else { return };
        let est: f64 = (0..50)
            .map(|_| measure_link_loss(&oracle, l.id, l.a, 100, &mut rng).rate())
            .sum::<f64>()
            / 50.0;
        assert!((est - l.loss_ab.rate()).abs() < 0.03);
    }
}
