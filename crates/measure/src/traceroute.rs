//! Traceroute simulation.
//!
//! A traceroute from host `s` to a destination prefix walks the oracle's
//! forward path hop by hop. The RTT reported for hop `k` is
//!
//! ```text
//!   fwd_latency(s .. hop_k)  +  reply_latency(hop_k → s's prefix)  + jitter
//! ```
//!
//! with the reply path routed independently by the oracle — so subtracting
//! consecutive hop RTTs does *not* in general give the link latency. This
//! is exactly the asymmetry headache the paper's link-latency techniques
//! ([28], §6.3.2) wrestle with, reproduced faithfully.

use inano_model::rng::DeterministicRng;
use inano_model::{HostId, Ipv4, PrefixId};
use inano_routing::RoutingOracle;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One traceroute hop.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Hop {
    /// Responding interface IP; `None` when the router didn't answer.
    pub ip: Option<Ipv4>,
    /// Measured RTT in ms (None when unresponsive).
    pub rtt_ms: Option<f64>,
}

/// A completed traceroute.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Traceroute {
    pub src: HostId,
    pub dst_prefix: PrefixId,
    /// The probed address inside the destination prefix.
    pub dst_ip: Ipv4,
    /// Router hops, source side first. Does not include the source itself;
    /// when the destination replies, the last hop is the destination.
    pub hops: Vec<Hop>,
    /// Did the probe reach the destination?
    pub reached: bool,
}

/// Measurement-noise knobs for traceroute/ping simulation.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ProbeNoise {
    /// Uniform per-response jitter bound in ms (queueing, scheduling).
    pub jitter_ms: f64,
    /// Probability any given router hop doesn't respond.
    pub p_unresponsive: f64,
}

impl Default for ProbeNoise {
    fn default() -> Self {
        ProbeNoise {
            jitter_ms: 0.5,
            p_unresponsive: 0.03,
        }
    }
}

impl ProbeNoise {
    /// No noise at all (for tests needing exact values).
    pub fn none() -> Self {
        ProbeNoise {
            jitter_ms: 0.0,
            p_unresponsive: 0.0,
        }
    }

    fn jitter(&self, rng: &mut DeterministicRng) -> f64 {
        if self.jitter_ms == 0.0 {
            0.0
        } else {
            rng.gen_range(0.0..self.jitter_ms)
        }
    }
}

/// Simulate a traceroute from `src` to (a host address inside) `dst_prefix`.
pub fn simulate_traceroute(
    oracle: &RoutingOracle<'_>,
    src: HostId,
    dst_prefix: PrefixId,
    noise: &ProbeNoise,
    rng: &mut DeterministicRng,
) -> Traceroute {
    let net = oracle.internet();
    let src_info = net.host(src);
    let dst_ip = net.prefix(dst_prefix).prefix.nth(10); // the probed host
    let mut tr = Traceroute {
        src,
        dst_prefix,
        dst_ip,
        hops: Vec::new(),
        reached: false,
    };

    let Some(path) = oracle.host_to_prefix(src, dst_prefix) else {
        return tr; // unreachable: empty, not reached
    };

    // Forward cumulative latency along the path; hop k is entered over
    // links[k] into pops[k+1].
    let mut fwd = 0.0;
    for (k, &lid) in path.links.iter().enumerate() {
        let link = net.link(lid);
        fwd += link.latency.ms();
        let hop_pop = path.pops[k + 1];
        let responds = !rng.gen_bool(noise.p_unresponsive);
        if !responds {
            tr.hops.push(Hop {
                ip: None,
                rtt_ms: None,
            });
            continue;
        }
        let iface = link.iface_at(hop_pop);
        let ip = net.ifaces[iface.index()].ip;
        let reply = oracle.reply_latency(hop_pop, src_info.prefix);
        let rtt = reply.map(|r| fwd + r.ms() + noise.jitter(rng));
        tr.hops.push(Hop {
            ip: Some(ip),
            // A hop whose reply path is broken looks unresponsive.
            rtt_ms: rtt,
        });
        if rtt.is_none() {
            tr.hops.last_mut().unwrap().ip = None;
        }
    }

    // Destination reply.
    let dst_pop = *path.pops.last().unwrap();
    if let Some(reply) = oracle.reply_latency(dst_pop, src_info.prefix) {
        tr.hops.push(Hop {
            ip: Some(dst_ip),
            rtt_ms: Some(fwd + reply.ms() + noise.jitter(rng)),
        });
        tr.reached = true;
    }
    tr
}

impl Traceroute {
    /// RTT to the destination (the last hop), if reached.
    pub fn dest_rtt_ms(&self) -> Option<f64> {
        if self.reached {
            self.hops.last().and_then(|h| h.rtt_ms)
        } else {
            None
        }
    }

    /// Responsive hop count (including the destination when reached).
    pub fn responsive_hops(&self) -> usize {
        self.hops.iter().filter(|h| h.ip.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_model::rng::rng_for;
    use inano_topology::{build_internet, DayState, TopologyConfig};

    #[test]
    fn traceroute_reaches_and_rtts_increase_noiselessly() {
        let net = build_internet(&TopologyConfig::tiny(101)).unwrap();
        let oracle = RoutingOracle::new(&net, DayState::default());
        let mut rng = rng_for(101, "tr");
        let src = HostId::new(0);
        let dst = net.hosts[25].prefix;
        let tr = simulate_traceroute(&oracle, src, dst, &ProbeNoise::none(), &mut rng);
        assert!(tr.reached, "expected to reach {dst:?}");
        assert!(tr.responsive_hops() >= 1);
        // Hop IPs resolve to interfaces or the destination.
        for h in &tr.hops[..tr.hops.len() - 1] {
            if let Some(ip) = h.ip {
                assert!(net.iface_by_ip.contains_key(&ip), "unknown hop ip {ip}");
            }
        }
        assert_eq!(tr.hops.last().unwrap().ip, Some(tr.dst_ip));
    }

    #[test]
    fn rtt_includes_reply_path_asymmetry() {
        // With zero noise, hop RTT must equal fwd+reply computed from the
        // oracle — validating against an independent reconstruction.
        let net = build_internet(&TopologyConfig::tiny(102)).unwrap();
        let oracle = RoutingOracle::new(&net, DayState::default());
        let mut rng = rng_for(102, "tr");
        let src = HostId::new(2);
        let dst = net.hosts[40].prefix;
        let tr = simulate_traceroute(&oracle, src, dst, &ProbeNoise::none(), &mut rng);
        if !tr.reached {
            return;
        }
        let path = oracle.host_to_prefix(src, dst).unwrap();
        let mut fwd = 0.0;
        for (k, &lid) in path.links.iter().enumerate() {
            fwd += net.link(lid).latency.ms();
            let reply = oracle
                .reply_latency(path.pops[k + 1], net.host(src).prefix)
                .unwrap();
            assert!((tr.hops[k].rtt_ms.unwrap() - (fwd + reply.ms())).abs() < 1e-9);
        }
    }

    #[test]
    fn unresponsive_hops_appear_with_noise() {
        let net = build_internet(&TopologyConfig::tiny(103)).unwrap();
        let oracle = RoutingOracle::new(&net, DayState::default());
        let mut rng = rng_for(103, "tr");
        let noise = ProbeNoise {
            jitter_ms: 0.5,
            p_unresponsive: 0.5,
        };
        let mut missing = 0;
        let mut total = 0;
        for i in 0..20 {
            let src = HostId::new(i);
            let dst = net.hosts[(i as usize + 30) % net.hosts.len()].prefix;
            let tr = simulate_traceroute(&oracle, src, dst, &noise, &mut rng);
            total += tr.hops.len();
            missing += tr.hops.iter().filter(|h| h.ip.is_none()).count();
        }
        assert!(total > 0);
        assert!(missing > 0, "expected unresponsive hops at p=0.5");
    }

    #[test]
    fn deterministic_given_seed() {
        let net = build_internet(&TopologyConfig::tiny(104)).unwrap();
        let oracle = RoutingOracle::new(&net, DayState::default());
        let t1 = simulate_traceroute(
            &oracle,
            HostId::new(1),
            net.hosts[7].prefix,
            &ProbeNoise::default(),
            &mut rng_for(5, "x"),
        );
        let t2 = simulate_traceroute(
            &oracle,
            HostId::new(1),
            net.hosts[7].prefix,
            &ProbeNoise::default(),
            &mut rng_for(5, "x"),
        );
        assert_eq!(t1.hops.len(), t2.hops.len());
        for (a, b) in t1.hops.iter().zip(&t2.hops) {
            assert_eq!(a.ip, b.ip);
            assert_eq!(a.rtt_ms, b.rtt_ms);
        }
    }
}
