//! Link-latency inference from traceroute RTTs.
//!
//! Subtracting consecutive hop RTTs gives `lat + (reply(k+1) − reply(k))`,
//! which equals `2·lat` only when the two reply paths share a route
//! through hop k (the symmetric case). The paper's techniques ([28])
//! identify symmetric traversals and propagate from them; we implement the
//! same idea statistically: across many traceroutes through a link, the
//! symmetric samples concentrate at `2·lat` while asymmetric ones scatter
//! (including below zero), so a trimmed median of the positive samples is
//! a robust estimate — good in the common case, imperfect in the tail,
//! matching Figure 6's observed behaviour.

use crate::cluster::Clustering;
use crate::traceroute::Traceroute;
use inano_model::{ClusterId, LatencyMs};
use inano_topology::Internet;
use std::collections::HashMap;

/// Accumulates RTT-difference samples per directed cluster link and
/// produces latency estimates.
#[derive(Clone, Debug, Default)]
pub struct LinkLatencyEstimator {
    samples: HashMap<(ClusterId, ClusterId), Vec<f64>>,
}

/// Floor for estimates: a link cannot be faster than its serialisation
/// cost (keeps estimates sane when asymmetric noise dominates).
const MIN_LATENCY_MS: f64 = 0.1;

impl LinkLatencyEstimator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Extract per-link RTT deltas from one traceroute.
    pub fn add_traceroute(&mut self, net: &Internet, clustering: &Clustering, tr: &Traceroute) {
        let hops = &tr.hops;
        for w in hops.windows(2) {
            let (Some(ip_a), Some(rtt_a)) = (w[0].ip, w[0].rtt_ms) else {
                continue;
            };
            let (Some(ip_b), Some(rtt_b)) = (w[1].ip, w[1].rtt_ms) else {
                continue;
            };
            let (Some(ca), Some(cb)) = (
                clustering.cluster_of_ip(net, ip_a),
                clustering.cluster_of_ip(net, ip_b),
            ) else {
                continue; // destination hop or unknown address
            };
            if ca == cb {
                continue;
            }
            self.samples
                .entry((ca, cb))
                .or_default()
                .push(rtt_b - rtt_a);
        }
    }

    /// Number of links with at least one sample.
    pub fn links_sampled(&self) -> usize {
        self.samples.len()
    }

    /// Produce per-link latency estimates.
    pub fn estimate(&self) -> HashMap<(ClusterId, ClusterId), LatencyMs> {
        let mut out = HashMap::with_capacity(self.samples.len());
        for (&link, deltas) in &self.samples {
            let mut pos: Vec<f64> = deltas.iter().copied().filter(|d| *d > 0.0).collect();
            if pos.is_empty() {
                // Only asymmetric negative samples: all we can say is the
                // link is fast.
                out.insert(link, LatencyMs::new(MIN_LATENCY_MS));
                continue;
            }
            pos.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let median = pos[pos.len() / 2];
            out.insert(link, LatencyMs::new((median / 2.0).max(MIN_LATENCY_MS)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusteringConfig;
    use crate::traceroute::{simulate_traceroute, ProbeNoise};
    use inano_model::rng::rng_for;
    use inano_model::HostId;
    use inano_routing::RoutingOracle;
    use inano_topology::{build_internet, DayState, TopologyConfig};

    #[test]
    fn estimates_are_positive_and_bounded() {
        let net = build_internet(&TopologyConfig::tiny(151)).unwrap();
        let oracle = RoutingOracle::new(&net, DayState::default());
        let clustering = Clustering::derive(&net, &ClusteringConfig::perfect(1));
        let mut rng = rng_for(151, "ll");
        let mut est = LinkLatencyEstimator::new();
        for i in 0..30.min(net.hosts.len()) {
            for j in 0..10 {
                let dst = net.hosts[(i * 7 + j * 13) % net.hosts.len()].prefix;
                let tr = simulate_traceroute(
                    &oracle,
                    HostId::from_index(i),
                    dst,
                    &ProbeNoise::none(),
                    &mut rng,
                );
                est.add_traceroute(&net, &clustering, &tr);
            }
        }
        assert!(est.links_sampled() > 10, "too few links sampled");
        let max_true = net
            .links
            .iter()
            .map(|l| l.latency.ms())
            .fold(0.0f64, f64::max);
        for (_, lat) in est.estimate() {
            assert!(lat.ms() >= MIN_LATENCY_MS);
            assert!(lat.ms() <= max_true * 2.0 + 5.0, "estimate {lat} too big");
        }
    }

    #[test]
    fn median_error_is_small_relative_to_truth() {
        // With enough coverage, most link estimates should be near truth.
        let net = build_internet(&TopologyConfig::tiny(152)).unwrap();
        let oracle = RoutingOracle::new(&net, DayState::default());
        let clustering = Clustering::derive(&net, &ClusteringConfig::perfect(2));
        let mut rng = rng_for(152, "ll");
        let mut est = LinkLatencyEstimator::new();
        for i in 0..net.hosts.len().min(60) {
            for j in 0..8 {
                let dst = net.hosts[(i * 11 + j * 29) % net.hosts.len()].prefix;
                let tr = simulate_traceroute(
                    &oracle,
                    HostId::from_index(i),
                    dst,
                    &ProbeNoise::none(),
                    &mut rng,
                );
                est.add_traceroute(&net, &clustering, &tr);
            }
        }
        let estimates = est.estimate();
        // Map cluster pairs back to true pop-level links for scoring.
        let mut errs: Vec<f64> = Vec::new();
        for (&(ca, cb), &lat) in &estimates {
            let pa = clustering.cluster_pop[ca.index()];
            let pb = clustering.cluster_pop[cb.index()];
            if let Some(&(lid, _)) = net.pop_adj[pa.index()]
                .iter()
                .find(|&&(_, other)| other == pb)
            {
                errs.push((lat.ms() - net.link(lid).latency.ms()).abs());
            }
        }
        assert!(errs.len() > 10);
        errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median_err = errs[errs.len() / 2];
        assert!(median_err < 3.0, "median link-latency error {median_err}ms");
    }

    #[test]
    fn skips_unresponsive_and_same_cluster() {
        let net = build_internet(&TopologyConfig::tiny(153)).unwrap();
        let clustering = Clustering::derive(&net, &ClusteringConfig::perfect(3));
        let mut est = LinkLatencyEstimator::new();
        let tr = Traceroute {
            src: HostId::new(0),
            dst_prefix: net.prefixes[0].id,
            dst_ip: net.hosts[0].ip,
            hops: vec![
                crate::traceroute::Hop {
                    ip: None,
                    rtt_ms: None,
                },
                crate::traceroute::Hop {
                    ip: Some(net.ifaces[0].ip),
                    rtt_ms: Some(5.0),
                },
            ],
            reached: false,
        };
        est.add_traceroute(&net, &clustering, &tr);
        assert_eq!(est.links_sampled(), 0);
    }
}
