//! BGP feed snapshots, standing in for RouteViews/RIPE RIS ([33, 47]).
//!
//! A feed is the full table of AS paths from one feed AS to every prefix.
//! iNano uses feeds for the prefix→origin-AS mapping, for AS 3-tuples,
//! and for the provider sets of §4.3.4.

use inano_model::rng::DeterministicRng;
use inano_model::{AsPath, Asn, PrefixId};
use inano_routing::RoutingOracle;
use inano_topology::Tier;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// One table entry: the AS path from a feed AS to a prefix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FeedRoute {
    pub feed: Asn,
    pub prefix: PrefixId,
    /// Path from the feed AS (first) to the origin AS (last).
    pub path: AsPath,
}

/// A set of BGP feeds collected on one day.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BgpFeedSet {
    pub feeds: Vec<Asn>,
    pub routes: Vec<FeedRoute>,
}

impl BgpFeedSet {
    /// Pick `n` feed ASes (transit tiers, where route collectors live) and
    /// dump their tables for every prefix.
    pub fn collect(oracle: &RoutingOracle<'_>, n: usize, rng: &mut DeterministicRng) -> Self {
        let net = oracle.internet();
        let mut candidates: Vec<Asn> = net
            .ases
            .iter()
            .filter(|a| matches!(a.tier, Tier::Tier1 | Tier::Tier2))
            .map(|a| a.asn)
            .collect();
        candidates.shuffle(rng);
        candidates.truncate(n);

        let mut routes = Vec::new();
        for &feed in &candidates {
            for p in &net.prefixes {
                if let Some(path) = oracle.as_path(feed, p.id) {
                    routes.push(FeedRoute {
                        feed,
                        prefix: p.id,
                        path,
                    });
                }
            }
        }
        BgpFeedSet {
            feeds: candidates,
            routes,
        }
    }

    /// The origin AS a feed set attributes to each prefix (last AS on the
    /// path). All feeds agree here because origins are unambiguous in the
    /// simulation, as they overwhelmingly are in practice.
    pub fn origin_of(&self, prefix: PrefixId) -> Option<Asn> {
        self.routes
            .iter()
            .find(|r| r.prefix == prefix)
            .and_then(|r| r.path.last())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_model::rng::rng_for;
    use inano_topology::{build_internet, DayState, TopologyConfig};

    #[test]
    fn feeds_cover_prefixes_with_correct_origins() {
        let net = build_internet(&TopologyConfig::tiny(141)).unwrap();
        let oracle = RoutingOracle::new(&net, DayState::default());
        let mut rng = rng_for(141, "bgp");
        let feeds = BgpFeedSet::collect(&oracle, 3, &mut rng);
        assert_eq!(feeds.feeds.len(), 3);
        assert!(!feeds.routes.is_empty());
        for r in feeds.routes.iter().take(100) {
            assert_eq!(r.path.first(), Some(r.feed));
            assert_eq!(r.path.last(), Some(net.prefix(r.prefix).origin));
            assert!(!r.path.has_loop());
        }
    }

    #[test]
    fn origin_lookup_matches_ground_truth() {
        let net = build_internet(&TopologyConfig::tiny(142)).unwrap();
        let oracle = RoutingOracle::new(&net, DayState::default());
        let mut rng = rng_for(142, "bgp");
        let feeds = BgpFeedSet::collect(&oracle, 2, &mut rng);
        let some_prefix = net.prefixes[3].id;
        if let Some(origin) = feeds.origin_of(some_prefix) {
            assert_eq!(origin, net.prefix(some_prefix).origin);
        }
    }

    #[test]
    fn feed_collection_deterministic() {
        let net = build_internet(&TopologyConfig::tiny(143)).unwrap();
        let oracle = RoutingOracle::new(&net, DayState::default());
        let a = BgpFeedSet::collect(&oracle, 2, &mut rng_for(9, "bgp"));
        let b = BgpFeedSet::collect(&oracle, 2, &mut rng_for(9, "bgp"));
        assert_eq!(a.feeds, b.feeds);
        assert_eq!(a.routes.len(), b.routes.len());
    }
}
