//! Frontier-search partition of link measurements across vantage points.
//!
//! iNano "uses the frontier search algorithm described in [30] to
//! partition the set of links across the PlanetLab vantage points, with
//! some redundancy" (§3). The essential property is that each link is
//! measured by a small number of VPs that can actually *reach* it on
//! their forward paths, and that load is balanced. We implement that
//! property directly: greedy balanced assignment of each observed link to
//! `redundancy` of the VPs that traversed it.

use inano_model::{ClusterId, HostId};
use std::collections::HashMap;

/// Which VPs measure which directed cluster-level link.
#[derive(Clone, Debug, Default)]
pub struct LinkAssignment {
    pub per_link: HashMap<(ClusterId, ClusterId), Vec<HostId>>,
}

impl LinkAssignment {
    /// Greedy balanced assignment. `observers[link]` is the set of VPs
    /// whose traceroutes traversed the link.
    pub fn assign(
        observers: &HashMap<(ClusterId, ClusterId), Vec<HostId>>,
        redundancy: usize,
    ) -> LinkAssignment {
        let mut load: HashMap<HostId, usize> = HashMap::new();
        let mut per_link = HashMap::with_capacity(observers.len());
        // Deterministic iteration order.
        let mut keys: Vec<&(ClusterId, ClusterId)> = observers.keys().collect();
        keys.sort();
        for key in keys {
            let mut cands = observers[key].clone();
            cands.sort();
            cands.dedup();
            // Take the `redundancy` least-loaded observers.
            cands.sort_by_key(|vp| (*load.get(vp).unwrap_or(&0), *vp));
            let chosen: Vec<HostId> = cands.into_iter().take(redundancy.max(1)).collect();
            for &vp in &chosen {
                *load.entry(vp).or_default() += 1;
            }
            per_link.insert(*key, chosen);
        }
        LinkAssignment { per_link }
    }

    /// Number of links assigned to a VP.
    pub fn load_of(&self, vp: HostId) -> usize {
        self.per_link
            .values()
            .filter(|vps| vps.contains(&vp))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(a: u32, b: u32) -> (ClusterId, ClusterId) {
        (ClusterId::new(a), ClusterId::new(b))
    }

    #[test]
    fn every_link_gets_a_measurer_from_its_observers() {
        let mut obs = HashMap::new();
        obs.insert(key(0, 1), vec![HostId::new(1), HostId::new(2)]);
        obs.insert(key(1, 2), vec![HostId::new(2)]);
        let a = LinkAssignment::assign(&obs, 2);
        assert_eq!(a.per_link[&key(0, 1)].len(), 2);
        assert_eq!(a.per_link[&key(1, 2)], vec![HostId::new(2)]);
        for (k, vps) in &a.per_link {
            for vp in vps {
                assert!(obs[k].contains(vp), "assigned non-observer");
            }
        }
    }

    #[test]
    fn load_is_balanced() {
        // 100 links all observed by the same 4 VPs: each should measure
        // about 25 at redundancy 1.
        let vps: Vec<HostId> = (0..4).map(HostId::new).collect();
        let mut obs = HashMap::new();
        for i in 0..100u32 {
            obs.insert(key(i, i + 1), vps.clone());
        }
        let a = LinkAssignment::assign(&obs, 1);
        for &vp in &vps {
            let l = a.load_of(vp);
            assert!((20..=30).contains(&l), "vp load {l} unbalanced");
        }
    }

    #[test]
    fn assignment_is_deterministic() {
        let mut obs = HashMap::new();
        for i in 0..20u32 {
            obs.insert(key(i, i + 1), vec![HostId::new(i % 3), HostId::new(5)]);
        }
        let a = LinkAssignment::assign(&obs, 1);
        let b = LinkAssignment::assign(&obs, 1);
        assert_eq!(a.per_link, b.per_link);
    }
}
