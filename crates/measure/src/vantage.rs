//! Vantage point selection: a PlanetLab-like set of infrastructure
//! vantage points (hosts in distinct, well-connected edge ASes —
//! universities and labs), and a DIMES-like population of volunteer
//! end-host agents used to study atlas growth (§6.1.2) and to fill the
//! `FROM_SRC` plane.

use inano_model::rng::DeterministicRng;
use inano_model::{Asn, HostId};
use inano_topology::Internet;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The measurement host population.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct VantagePoints {
    /// PlanetLab-like infrastructure vantage points, in distinct ASes.
    pub infra: Vec<HostId>,
    /// DIMES-like end-host agents.
    pub agents: Vec<HostId>,
}

impl VantagePoints {
    /// Choose `n_infra` infrastructure VPs (one per AS, spread across the
    /// topology) and `n_agents` end-host agents from the remaining hosts.
    pub fn choose(
        net: &Internet,
        n_infra: usize,
        n_agents: usize,
        rng: &mut DeterministicRng,
    ) -> VantagePoints {
        let mut hosts: Vec<HostId> = net.hosts.iter().map(|h| h.id).collect();
        hosts.shuffle(rng);

        let mut used_as: HashSet<Asn> = HashSet::new();
        let mut infra = Vec::with_capacity(n_infra.min(hosts.len()));
        for &h in &hosts {
            if infra.len() >= n_infra {
                break;
            }
            let asn = net.host(h).asn;
            if used_as.insert(asn) {
                infra.push(h);
            }
        }

        let infra_set: HashSet<HostId> = infra.iter().copied().collect();
        let agents: Vec<HostId> = hosts
            .iter()
            .copied()
            .filter(|h| !infra_set.contains(h))
            .take(n_agents)
            .collect();

        VantagePoints { infra, agents }
    }

    /// Every measurement host.
    pub fn all(&self) -> impl Iterator<Item = HostId> + '_ {
        self.infra.iter().chain(self.agents.iter()).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_model::rng::rng_for;
    use inano_topology::{build_internet, TopologyConfig};

    #[test]
    fn infra_vps_in_distinct_ases() {
        let net = build_internet(&TopologyConfig::tiny(131)).unwrap();
        let mut rng = rng_for(131, "vp");
        let vps = VantagePoints::choose(&net, 20, 30, &mut rng);
        assert_eq!(vps.infra.len(), 20);
        let ases: HashSet<Asn> = vps.infra.iter().map(|&h| net.host(h).asn).collect();
        assert_eq!(ases.len(), 20);
    }

    #[test]
    fn agents_disjoint_from_infra() {
        let net = build_internet(&TopologyConfig::tiny(132)).unwrap();
        let mut rng = rng_for(132, "vp");
        let vps = VantagePoints::choose(&net, 10, 40, &mut rng);
        let infra: HashSet<HostId> = vps.infra.iter().copied().collect();
        assert!(vps.agents.iter().all(|a| !infra.contains(a)));
        assert_eq!(vps.agents.len(), 40);
    }

    #[test]
    fn selection_is_deterministic() {
        let net = build_internet(&TopologyConfig::tiny(133)).unwrap();
        let a = VantagePoints::choose(&net, 10, 10, &mut rng_for(1, "vp"));
        let b = VantagePoints::choose(&net, 10, 10, &mut rng_for(1, "vp"));
        assert_eq!(a.infra, b.infra);
        assert_eq!(a.agents, b.agents);
    }

    #[test]
    fn caps_at_available_hosts() {
        let net = build_internet(&TopologyConfig::tiny(134)).unwrap();
        let mut rng = rng_for(134, "vp");
        let vps = VantagePoints::choose(&net, usize::MAX, usize::MAX, &mut rng);
        assert!(vps.infra.len() <= net.hosts.len());
        assert_eq!(vps.infra.len() + vps.agents.len(), net.hosts.len());
    }
}
