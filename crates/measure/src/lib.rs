//! # inano-measure
//!
//! The measurement side of iNano, simulated against the ground-truth
//! routing oracle: traceroutes with per-hop RTTs (whose reply paths are
//! routed by the oracle, so the asymmetric-subtraction error the paper
//! discusses in §6.3.2 is real here too), pings, 100-probe loss
//! measurements, alias resolution and PoP clustering, BGP feed snapshots,
//! the frontier-search partition of link measurements across vantage
//! points, link-latency inference, and the orchestration of a full
//! "measurement day" — the raw input from which `inano-atlas` builds the
//! compact atlas.

pub mod bgp_feed;
pub mod campaign;
pub mod cluster;
pub mod frontier;
pub mod linklat;
pub mod lossprobe;
pub mod ping;
pub mod traceroute;
pub mod vantage;

pub use bgp_feed::{BgpFeedSet, FeedRoute};
pub use campaign::{run_campaign, CampaignConfig, MeasurementDay};
pub use cluster::{Clustering, ClusteringConfig};
pub use traceroute::{simulate_traceroute, Hop, Traceroute};
pub use vantage::VantagePoints;
