//! A full measurement day: the orchestration the iNano *server side* runs
//! (§5) — traceroutes from every infrastructure VP to a destination in
//! every edge prefix, end-host agent traceroutes to random prefixes, BGP
//! feed collection, frontier assignment, and link loss/latency
//! measurement. The output is the raw material for the atlas builder.

use crate::bgp_feed::BgpFeedSet;
use crate::cluster::Clustering;
use crate::frontier::LinkAssignment;
use crate::linklat::LinkLatencyEstimator;
use crate::lossprobe;
use crate::traceroute::{simulate_traceroute, ProbeNoise, Traceroute};
use crate::vantage::VantagePoints;
use inano_model::rng::rng_for;
use inano_model::{ClusterId, HostId, LatencyMs, LossRate};
use inano_routing::RoutingOracle;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Knobs of a measurement day.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CampaignConfig {
    pub seed: u64,
    /// Traceroutes per end-host agent per day ("a few hundred prefixes,
    /// chosen at random", §5 — we default lower to match our scale).
    pub traceroutes_per_agent: usize,
    /// Number of BGP feed ASes.
    pub n_feeds: usize,
    /// Probes per loss measurement.
    pub loss_probes: usize,
    /// Frontier-assignment redundancy.
    pub redundancy: usize,
    pub noise: ProbeNoise,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 1,
            traceroutes_per_agent: 60,
            n_feeds: 6,
            loss_probes: lossprobe::PROBES_PER_MEASUREMENT,
            redundancy: 2,
            noise: ProbeNoise::default(),
        }
    }
}

/// Everything measured in one day.
#[derive(Clone, Debug)]
pub struct MeasurementDay {
    pub day: u32,
    pub vp_traceroutes: Vec<Traceroute>,
    pub agent_traceroutes: Vec<Traceroute>,
    pub bgp: BgpFeedSet,
    /// Inferred latency per directed cluster link.
    pub link_latency: HashMap<(ClusterId, ClusterId), LatencyMs>,
    /// Measured loss per directed cluster link; only lossy links are
    /// recorded (lossless links are implicit zeros, as in the paper where
    /// the loss dataset is ~1/7 the size of the link dataset).
    pub link_loss: HashMap<(ClusterId, ClusterId), LossRate>,
}

/// Run the full measurement day against an oracle bound to that day.
pub fn run_campaign(
    oracle: &RoutingOracle<'_>,
    clustering: &Clustering,
    vps: &VantagePoints,
    cfg: &CampaignConfig,
) -> MeasurementDay {
    let net = oracle.internet();
    let day = oracle.day().day;
    let mut rng = rng_for(cfg.seed, &format!("campaign-day-{day}"));

    // --- VP traceroutes: every infra VP to every edge prefix ---
    let edge_prefixes: Vec<_> = net.edge_prefixes().map(|p| p.id).collect();
    let mut vp_traceroutes = Vec::with_capacity(vps.infra.len() * edge_prefixes.len());
    for &vp in &vps.infra {
        for &p in &edge_prefixes {
            if net.host(vp).prefix == p {
                continue;
            }
            vp_traceroutes.push(simulate_traceroute(oracle, vp, p, &cfg.noise, &mut rng));
        }
    }

    // --- agent traceroutes: each agent to random prefixes ---
    let mut agent_traceroutes = Vec::new();
    for &agent in &vps.agents {
        let mut dests = edge_prefixes.clone();
        dests.shuffle(&mut rng);
        for &p in dests.iter().take(cfg.traceroutes_per_agent) {
            if net.host(agent).prefix == p {
                continue;
            }
            agent_traceroutes.push(simulate_traceroute(oracle, agent, p, &cfg.noise, &mut rng));
        }
    }

    // --- BGP feeds ---
    let bgp = BgpFeedSet::collect(oracle, cfg.n_feeds, &mut rng);

    // --- link latency inference from all traceroutes ---
    let mut estimator = LinkLatencyEstimator::new();
    for tr in vp_traceroutes.iter().chain(agent_traceroutes.iter()) {
        estimator.add_traceroute(net, clustering, tr);
    }
    let link_latency = estimator.estimate();

    // --- loss measurement over the frontier assignment ---
    // Observers per directed cluster link, plus the underlying pop-level
    // direction needed to probe it.
    let mut observers: HashMap<(ClusterId, ClusterId), Vec<HostId>> = HashMap::new();
    let mut phys: HashMap<(ClusterId, ClusterId), (inano_topology::LinkId, inano_model::PopId)> =
        HashMap::new();
    for tr in vp_traceroutes.iter().chain(agent_traceroutes.iter()) {
        for w in tr.hops.windows(2) {
            let (Some(ip_a), Some(ip_b)) = (w[0].ip, w[1].ip) else {
                continue;
            };
            let (Some(ca), Some(cb)) = (
                clustering.cluster_of_ip(net, ip_a),
                clustering.cluster_of_ip(net, ip_b),
            ) else {
                continue;
            };
            if ca == cb {
                continue;
            }
            observers.entry((ca, cb)).or_default().push(tr.src);
            if let Some(&ifc) = net.iface_by_ip.get(&ip_b) {
                let link = net.ifaces[ifc.index()].link;
                let to_pop = net.routers[net.ifaces[ifc.index()].router.index()].pop;
                let from_pop = net.link(link).other(to_pop);
                phys.entry((ca, cb)).or_insert((link, from_pop));
            }
        }
    }
    let assignment = LinkAssignment::assign(&observers, cfg.redundancy);
    let mut link_loss = HashMap::new();
    for (key, measurers) in &assignment.per_link {
        let Some(&(link, from_pop)) = phys.get(key) else {
            continue;
        };
        // Each assigned VP measures; the aggregator keeps the median
        // (robustness to "measurement noise", §3).
        let mut samples: Vec<f64> = measurers
            .iter()
            .map(|_| {
                lossprobe::measure_link_loss(oracle, link, from_pop, cfg.loss_probes, &mut rng)
                    .rate()
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = LossRate::new(samples[samples.len() / 2]);
        if median.is_lossy() {
            link_loss.insert(*key, median);
        }
    }

    MeasurementDay {
        day,
        vp_traceroutes,
        agent_traceroutes,
        bgp,
        link_latency,
        link_loss,
    }
}

impl MeasurementDay {
    /// All traceroutes, VP first.
    pub fn all_traceroutes(&self) -> impl Iterator<Item = &Traceroute> {
        self.vp_traceroutes
            .iter()
            .chain(self.agent_traceroutes.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusteringConfig;
    use inano_model::rng::rng_for as rf;
    use inano_topology::{build_internet, DayState, TopologyConfig};

    fn campaign(seed: u64) -> (inano_topology::Internet, Clustering, MeasurementDay) {
        let net = build_internet(&TopologyConfig::tiny(seed)).unwrap();
        let clustering = Clustering::derive(&net, &ClusteringConfig::default());
        let vps = VantagePoints::choose(&net, 8, 10, &mut rf(seed, "vp"));
        let oracle = RoutingOracle::new(&net, DayState::default());
        let day = run_campaign(
            &oracle,
            &clustering,
            &vps,
            &CampaignConfig {
                traceroutes_per_agent: 10,
                ..CampaignConfig::default()
            },
        );
        (net, clustering, day)
    }

    #[test]
    fn campaign_produces_all_datasets() {
        let (_, _, day) = campaign(161);
        assert!(!day.vp_traceroutes.is_empty());
        assert!(!day.agent_traceroutes.is_empty());
        assert!(!day.bgp.routes.is_empty());
        assert!(!day.link_latency.is_empty());
        // Loss dataset much smaller than latency dataset (paper Table 2:
        // 47K loss entries vs 309K link entries).
        assert!(day.link_loss.len() < day.link_latency.len());
    }

    #[test]
    fn most_vp_traceroutes_reach() {
        let (_, _, day) = campaign(162);
        let reached = day.vp_traceroutes.iter().filter(|t| t.reached).count();
        let frac = reached as f64 / day.vp_traceroutes.len() as f64;
        assert!(frac > 0.95, "only {frac} of traceroutes reached");
    }

    #[test]
    fn loss_entries_are_lossy() {
        let (_, _, day) = campaign(163);
        for l in day.link_loss.values() {
            assert!(l.is_lossy());
        }
    }
}
