//! Ping (RTT) measurement between hosts, used by the Vivaldi baseline and
//! the "measured latency" strategies in the application studies.

use crate::traceroute::ProbeNoise;
use inano_model::rng::DeterministicRng;
use inano_model::{HostId, LatencyMs};
use inano_routing::RoutingOracle;
use rand::Rng;

/// A single ping: ground-truth RTT plus jitter, or `None` if unreachable
/// (either direction) or if the probe happened to be lost.
pub fn ping(
    oracle: &RoutingOracle<'_>,
    a: HostId,
    b: HostId,
    noise: &ProbeNoise,
    rng: &mut DeterministicRng,
) -> Option<LatencyMs> {
    let rtt = oracle.rtt(a, b)?;
    // Probe loss: round-trip loss applies to a single ping.
    if let Some(loss) = oracle.round_trip_loss(a, b) {
        if loss.rate() > 0.0 && rng.gen_bool(loss.rate().min(1.0)) {
            return None;
        }
    }
    let j = if noise.jitter_ms > 0.0 {
        rng.gen_range(0.0..noise.jitter_ms) + rng.gen_range(0.0..noise.jitter_ms)
    } else {
        0.0
    };
    Some(LatencyMs::new(rtt.ms() + j))
}

/// Median-of-n ping (how latencies are measured in practice to strip
/// jitter): returns `None` when every probe was lost.
pub fn ping_median(
    oracle: &RoutingOracle<'_>,
    a: HostId,
    b: HostId,
    n: usize,
    noise: &ProbeNoise,
    rng: &mut DeterministicRng,
) -> Option<LatencyMs> {
    let mut samples: Vec<f64> = (0..n)
        .filter_map(|_| ping(oracle, a, b, noise, rng).map(|l| l.ms()))
        .collect();
    if samples.is_empty() {
        return None;
    }
    samples.sort_by(|x, y| x.partial_cmp(y).unwrap());
    Some(LatencyMs::new(samples[samples.len() / 2]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_model::rng::rng_for;
    use inano_topology::{build_internet, DayState, TopologyConfig};

    #[test]
    fn ping_tracks_ground_truth() {
        let net = build_internet(&TopologyConfig::tiny(111)).unwrap();
        let oracle = RoutingOracle::new(&net, DayState::default());
        let mut rng = rng_for(111, "ping");
        let (a, b) = (HostId::new(0), HostId::new(9));
        let truth = oracle.rtt(a, b).unwrap();
        let measured = ping_median(&oracle, a, b, 5, &ProbeNoise::default(), &mut rng).unwrap();
        assert!(measured.ms() >= truth.ms());
        assert!(measured.ms() <= truth.ms() + 2.0, "jitter bound exceeded");
    }

    #[test]
    fn noiseless_ping_is_exact() {
        let net = build_internet(&TopologyConfig::tiny(112)).unwrap();
        let oracle = RoutingOracle::new(&net, DayState::default());
        let mut rng = rng_for(112, "ping");
        let (a, b) = (HostId::new(3), HostId::new(14));
        let truth = oracle.rtt(a, b).unwrap();
        let measured = ping(&oracle, a, b, &ProbeNoise::none(), &mut rng);
        // Might be lost (real loss), but when it answers it is exact.
        if let Some(m) = measured {
            assert!((m.ms() - truth.ms()).abs() < 1e-9);
        }
    }
}
