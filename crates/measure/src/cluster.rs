//! Alias resolution and PoP clustering.
//!
//! iNano clusters router interfaces such that interfaces in the same PoP
//! of an AS fall in one cluster (§3), using alias resolution, DNS-derived
//! locations and reverse-path-length similarity. We simulate the *outcome*
//! of that pipeline: interfaces are grouped by their true router and PoP,
//! with two configurable error modes observed in real clustering —
//! failed alias resolution (an interface ends up in a singleton cluster)
//! and PoP splits (one router's interfaces separate from its PoP).
//!
//! Cluster ids are stable across days: cluster `k < n_pops` is PoP `k`'s
//! primary cluster, and error clusters get ids `>= n_pops`. This stability
//! is what makes daily atlas deltas small.

use inano_model::rng::rng_for;
use inano_model::{Asn, ClusterId, IfaceId, Ipv4, PopId};
use inano_topology::Internet;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Error knobs for the clustering pipeline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusteringConfig {
    /// Probability an interface's alias resolution fails, leaving it in a
    /// singleton cluster.
    pub p_alias_failure: f64,
    /// Probability a PoP is split: one of its routers becomes a separate
    /// cluster.
    pub p_pop_split: f64,
    pub seed: u64,
}

impl Default for ClusteringConfig {
    fn default() -> Self {
        ClusteringConfig {
            p_alias_failure: 0.02,
            p_pop_split: 0.02,
            seed: 1,
        }
    }
}

impl ClusteringConfig {
    /// Perfect clustering (for ablations isolating clustering error).
    pub fn perfect(seed: u64) -> Self {
        ClusteringConfig {
            p_alias_failure: 0.0,
            p_pop_split: 0.0,
            seed,
        }
    }
}

/// The derived interface → cluster mapping.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Clustering {
    /// Cluster of each interface, indexed by `IfaceId`.
    pub iface_cluster: Vec<ClusterId>,
    /// Owning AS of each cluster, indexed by `ClusterId`.
    pub cluster_as: Vec<Asn>,
    /// The PoP each cluster lives in (error clusters point at their true
    /// PoP too — they are spurious subdivisions, not mislocations).
    pub cluster_pop: Vec<PopId>,
    /// Number of PoPs (= number of primary clusters).
    pub n_pops: usize,
}

impl Clustering {
    /// Derive a clustering for an Internet.
    pub fn derive(net: &Internet, cfg: &ClusteringConfig) -> Clustering {
        let mut rng = rng_for(cfg.seed, "clustering");
        let n_pops = net.pops.len();
        let mut cluster_as: Vec<Asn> = net.pops.iter().map(|p| p.asn).collect();
        let mut cluster_pop: Vec<PopId> = net.pops.iter().map(|p| p.id).collect();

        // Split PoPs: victim router of a split PoP maps to a fresh cluster.
        let mut router_cluster: Vec<Option<ClusterId>> = vec![None; net.routers.len()];
        for pop in &net.pops {
            if pop.routers.len() >= 2 && rng.gen_bool(cfg.p_pop_split) {
                let victim = pop.routers[rng.gen_range(0..pop.routers.len())];
                let cid = ClusterId::from_index(cluster_as.len());
                cluster_as.push(pop.asn);
                cluster_pop.push(pop.id);
                router_cluster[victim.index()] = Some(cid);
            }
        }

        let mut iface_cluster: Vec<ClusterId> = Vec::with_capacity(net.ifaces.len());
        for ifc in &net.ifaces {
            let pop = net.routers[ifc.router.index()].pop;
            let cid = if rng.gen_bool(cfg.p_alias_failure) {
                // Alias failure: singleton cluster.
                let cid = ClusterId::from_index(cluster_as.len());
                cluster_as.push(net.pops[pop.index()].asn);
                cluster_pop.push(pop);
                cid
            } else if let Some(split) = router_cluster[ifc.router.index()] {
                split
            } else {
                ClusterId::new(pop.raw())
            };
            iface_cluster.push(cid);
        }

        Clustering {
            iface_cluster,
            cluster_as,
            cluster_pop,
            n_pops,
        }
    }

    pub fn n_clusters(&self) -> usize {
        self.cluster_as.len()
    }

    /// The primary cluster of a PoP (where its prefixes attach).
    pub fn cluster_of_pop(&self, pop: PopId) -> ClusterId {
        ClusterId::new(pop.raw())
    }

    /// Cluster of an interface.
    pub fn cluster_of_iface(&self, iface: IfaceId) -> ClusterId {
        self.iface_cluster[iface.index()]
    }

    /// Cluster owning an IP, if it is a known router interface.
    pub fn cluster_of_ip(&self, net: &Internet, ip: Ipv4) -> Option<ClusterId> {
        net.iface_by_ip
            .get(&ip)
            .map(|&ifc| self.cluster_of_iface(ifc))
    }

    /// Map a ground-truth PoP path to the cluster-level view used by both
    /// the atlas and the evaluation.
    pub fn pops_to_clusters(&self, pops: &[PopId]) -> Vec<ClusterId> {
        let mut out: Vec<ClusterId> = pops.iter().map(|&p| self.cluster_of_pop(p)).collect();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_topology::{build_internet, TopologyConfig};

    fn net(seed: u64) -> Internet {
        build_internet(&TopologyConfig::tiny(seed)).unwrap()
    }

    #[test]
    fn perfect_clustering_equals_pops() {
        let n = net(91);
        let c = Clustering::derive(&n, &ClusteringConfig::perfect(1));
        assert_eq!(c.n_clusters(), n.pops.len());
        for ifc in &n.ifaces {
            let pop = n.routers[ifc.router.index()].pop;
            assert_eq!(c.cluster_of_iface(ifc.id), ClusterId::new(pop.raw()));
        }
    }

    #[test]
    fn erroneous_clustering_only_adds_clusters() {
        let n = net(92);
        let c = Clustering::derive(&n, &ClusteringConfig::default());
        assert!(c.n_clusters() >= n.pops.len());
        // Every cluster still belongs to the right AS.
        for (i, ifc) in n.ifaces.iter().enumerate() {
            let cid = c.iface_cluster[i];
            let pop = n.routers[ifc.router.index()].pop;
            assert_eq!(c.cluster_as[cid.index()], n.pops[pop.index()].asn);
            assert_eq!(c.cluster_pop[cid.index()], pop);
        }
    }

    #[test]
    fn derivation_is_deterministic() {
        let n = net(93);
        let a = Clustering::derive(&n, &ClusteringConfig::default());
        let b = Clustering::derive(&n, &ClusteringConfig::default());
        assert_eq!(a.iface_cluster, b.iface_cluster);
    }

    #[test]
    fn ip_lookup_roundtrip() {
        let n = net(94);
        let c = Clustering::derive(&n, &ClusteringConfig::perfect(2));
        let ifc = &n.ifaces[5];
        assert_eq!(
            c.cluster_of_ip(&n, ifc.ip),
            Some(c.cluster_of_iface(ifc.id))
        );
        // A host IP is not a router interface.
        assert_eq!(c.cluster_of_ip(&n, n.hosts[0].ip), None);
    }

    #[test]
    fn pops_to_clusters_dedups() {
        let n = net(95);
        let c = Clustering::derive(&n, &ClusteringConfig::perfect(3));
        let p0 = n.pops[0].id;
        let p1 = n.pops[1].id;
        let v = c.pops_to_clusters(&[p0, p0, p1]);
        assert_eq!(v.len(), 2);
    }
}
