//! Vivaldi: decentralized network coordinates (Dabek et al., SIGCOMM'04).
//!
//! Implementation notes:
//! * 2-D + height vectors, the configuration the paper found best for
//!   the wide area: heights absorb the access-link delay that Euclidean
//!   coordinates cannot express;
//! * adaptive timestep: each node tracks a confidence (`error`) and moves
//!   proportionally to its own uncertainty relative to its neighbor's —
//!   new nodes move fast, converged nodes barely drift;
//! * the simulation driver feeds RTT samples through a closure, so this
//!   crate stays independent of how RTTs are produced (the bench harness
//!   wires it to simulated pings over the routing oracle).

use inano_model::rng::DeterministicRng;
use inano_model::LatencyMs;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A Vivaldi coordinate: 2-D position plus non-negative height.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Coordinate {
    pub x: f64,
    pub y: f64,
    pub height: f64,
    /// Relative confidence in `[0, 1]`-ish; lower is more certain.
    pub error: f64,
}

impl Coordinate {
    /// Predicted RTT between two coordinates: Euclidean part plus both
    /// heights (packets "descend" from one node and "climb" to the other).
    pub fn distance(&self, other: &Coordinate) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt() + self.height + other.height
    }
}

/// Tuning constants (the values from the Vivaldi paper).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VivaldiConfig {
    /// Error-moving-average constant (c_e).
    pub ce: f64,
    /// Timestep constant (c_c).
    pub cc: f64,
    /// Neighbors sampled per node.
    pub neighbors: usize,
    /// Update rounds (each round: every node pings every neighbor once).
    pub rounds: usize,
    pub seed: u64,
}

impl Default for VivaldiConfig {
    fn default() -> Self {
        VivaldiConfig {
            ce: 0.25,
            cc: 0.25,
            neighbors: 16,
            rounds: 60,
            seed: 1,
        }
    }
}

/// A converged (or converging) Vivaldi system over `n` nodes.
#[derive(Clone, Debug)]
pub struct VivaldiSystem {
    coords: Vec<Coordinate>,
}

impl VivaldiSystem {
    /// Run Vivaldi over `n` nodes. `rtt(i, j)` returns a fresh RTT sample
    /// in ms between nodes `i` and `j`, or `None` if unreachable/lost.
    pub fn run<F>(n: usize, cfg: &VivaldiConfig, mut rtt: F) -> VivaldiSystem
    where
        F: FnMut(usize, usize, &mut DeterministicRng) -> Option<f64>,
    {
        let mut rng = inano_model::rng::rng_for(cfg.seed, "vivaldi");
        let mut coords: Vec<Coordinate> = (0..n)
            .map(|_| Coordinate {
                // Small random placement breaks symmetry.
                x: rng.gen_range(-1.0..1.0),
                y: rng.gen_range(-1.0..1.0),
                height: rng.gen_range(0.0..1.0),
                error: 1.0,
            })
            .collect();

        // Fixed random neighbor sets, as deployed Vivaldi does.
        let mut neighbor_sets: Vec<Vec<usize>> = Vec::with_capacity(n);
        let all: Vec<usize> = (0..n).collect();
        for i in 0..n {
            let mut others: Vec<usize> = all.iter().copied().filter(|&j| j != i).collect();
            others.shuffle(&mut rng);
            others.truncate(cfg.neighbors);
            neighbor_sets.push(others);
        }

        for _round in 0..cfg.rounds {
            for (i, neighbors) in neighbor_sets.iter().enumerate() {
                for &j in neighbors {
                    let Some(sample) = rtt(i, j, &mut rng) else {
                        continue;
                    };
                    update(&mut coords, i, j, sample, cfg, &mut rng);
                }
            }
        }
        VivaldiSystem { coords }
    }

    /// Estimated RTT between nodes `i` and `j`.
    pub fn estimate(&self, i: usize, j: usize) -> LatencyMs {
        LatencyMs::new(self.coords[i].distance(&self.coords[j]))
    }

    pub fn coordinate(&self, i: usize) -> &Coordinate {
        &self.coords[i]
    }

    pub fn len(&self) -> usize {
        self.coords.len()
    }

    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }
}

/// One Vivaldi spring update of node `i` against neighbor `j`.
fn update(
    coords: &mut [Coordinate],
    i: usize,
    j: usize,
    rtt: f64,
    cfg: &VivaldiConfig,
    rng: &mut DeterministicRng,
) {
    let (ci, cj) = (coords[i], coords[j]);
    let dist = ci.distance(&cj);
    let rtt = rtt.max(0.01);

    // Confidence-weighted sample weight.
    let w = if ci.error + cj.error > 0.0 {
        ci.error / (ci.error + cj.error)
    } else {
        0.5
    };
    // Relative error of this sample; update our confidence.
    let es = (dist - rtt).abs() / rtt;
    let new_error = es * cfg.ce * w + ci.error * (1.0 - cfg.ce * w);

    // Unit vector from j toward i (random direction when colocated, so
    // coincident nodes can repel).
    let (mut ux, mut uy) = (ci.x - cj.x, ci.y - cj.y);
    let norm = (ux * ux + uy * uy).sqrt();
    if norm < 1e-9 {
        let angle: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        ux = angle.cos();
        uy = angle.sin();
    } else {
        ux /= norm;
        uy /= norm;
    }

    let delta = cfg.cc * w;
    let force = delta * (rtt - dist);
    let c = &mut coords[i];
    c.x += force * ux;
    c.y += force * uy;
    // Height springs: positive heights only.
    c.height = (c.height + force * 0.1).max(0.0);
    c.error = new_error.clamp(0.0, 2.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ground truth: nodes on a line, RTT = |i - j| * 10 ms + 4 ms access.
    fn line_rtt(i: usize, j: usize, _rng: &mut DeterministicRng) -> Option<f64> {
        Some((i as f64 - j as f64).abs() * 10.0 + 4.0)
    }

    #[test]
    fn converges_on_embeddable_metric() {
        let cfg = VivaldiConfig {
            neighbors: 15,
            rounds: 120,
            ..VivaldiConfig::default()
        };
        let sys = VivaldiSystem::run(16, &cfg, line_rtt);
        let mut rel_errs = Vec::new();
        for i in 0..16 {
            for j in 0..16 {
                if i == j {
                    continue;
                }
                let truth = line_rtt(i, j, &mut inano_model::rng::rng_for(0, "x")).unwrap();
                let est = sys.estimate(i, j).ms();
                rel_errs.push((est - truth).abs() / truth);
            }
        }
        rel_errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = rel_errs[rel_errs.len() / 2];
        assert!(median < 0.25, "median relative error {median}");
    }

    #[test]
    fn estimates_are_symmetric() {
        let sys = VivaldiSystem::run(8, &VivaldiConfig::default(), line_rtt);
        for i in 0..8 {
            for j in 0..8 {
                assert!((sys.estimate(i, j).ms() - sys.estimate(j, i).ms()).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn triangle_inequality_holds_in_estimates() {
        // Coordinates are a metric space (modulo heights): estimates obey
        // the triangle inequality even when real RTTs violate it — the
        // structural weakness §8.1 calls out.
        let sys = VivaldiSystem::run(6, &VivaldiConfig::default(), line_rtt);
        for a in 0..6 {
            for b in 0..6 {
                for c in 0..6 {
                    let ab = sys.estimate(a, b).ms();
                    let ac = sys.estimate(a, c).ms();
                    let cb = sys.estimate(c, b).ms();
                    // Height terms add to both sides; allow their slack.
                    let slack = 2.0 * sys.coordinate(c).height + 1e-9;
                    assert!(ab <= ac + cb + slack);
                }
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = VivaldiSystem::run(10, &VivaldiConfig::default(), line_rtt);
        let b = VivaldiSystem::run(10, &VivaldiConfig::default(), line_rtt);
        for i in 0..10 {
            assert_eq!(a.coordinate(i).x, b.coordinate(i).x);
            assert_eq!(a.coordinate(i).height, b.coordinate(i).height);
        }
    }

    #[test]
    fn unreachable_samples_are_skipped() {
        let sys = VivaldiSystem::run(4, &VivaldiConfig::default(), |_, _, _| None);
        // No samples: coordinates stay near their tiny random init.
        for i in 0..4 {
            assert!(sys.coordinate(i).x.abs() < 1.5);
            assert_eq!(sys.coordinate(i).error, 1.0);
        }
    }

    #[test]
    fn heights_stay_non_negative() {
        let sys = VivaldiSystem::run(12, &VivaldiConfig::default(), line_rtt);
        for i in 0..12 {
            assert!(sys.coordinate(i).height >= 0.0);
        }
    }
}
