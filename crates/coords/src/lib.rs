//! # inano-coords
//!
//! The Vivaldi network-coordinate baseline ([13] in the paper): each node
//! holds a 2-D Euclidean coordinate plus a height (modelling the access
//! link), refined by adaptive spring relaxation against measured RTTs.
//! The RTT between two nodes is then estimated as the coordinate
//! distance.
//!
//! This is design alternative **A1** of Table 1: fully decentralised and
//! tiny, but latency-only, symmetric by construction, and blind to
//! structure — exactly the properties Figures 6, 7 and 9 contrast iNano
//! against.

pub mod vivaldi;

pub use vivaldi::{Coordinate, VivaldiConfig, VivaldiSystem};
