//! Predictor configuration: each of iNano's techniques can be switched
//! independently, giving the ablation ladder of Figure 5.

use serde::{Deserialize, Serialize};

/// Which model the predictor runs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Use the `FROM_SRC` plane of end-host-observed links with one-way
    /// cross edges into `TO_DST` (§4.3.1, "Addressing asymmetry").
    pub use_from_src: bool,
    /// Use the valley-free up/down construction from inferred AS
    /// relationships, searched in three preference phases (§4.2 — the
    /// GRAPH baseline). Mutually exclusive with `use_tuples` in spirit:
    /// the 3-tuple check *replaces* the valley-free check (§4.3.2).
    pub use_rel_graph: bool,
    /// Enforce the observed AS 3-tuple check on every AS triple whose
    /// middle AS has degree above `tuple_min_degree` (§4.3.2).
    pub use_tuples: bool,
    /// Break equal-length ties with observed AS preferences (§4.3.3).
    pub use_prefs: bool,
    /// Require the final AS before the destination AS to be one of the
    /// destination's observed providers (§4.3.4).
    pub use_providers: bool,
    /// Degree threshold for the 3-tuple check (5 in the paper).
    pub tuple_min_degree: u32,
    /// Allow traversing links against their observed direction (needed to
    /// answer reverse queries out of unmeasured stubs; reversed hops are
    /// deprioritised and tuple-checked without the low-degree exemption).
    pub allow_reversed_links: bool,
    /// Latency assumed for links whose latency was never inferred, in ms.
    pub default_link_latency_ms: f64,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig::full()
    }
}

impl PredictorConfig {
    /// The GRAPH baseline of §4.2: textbook routing over inferred
    /// relationships, no asymmetry planes.
    pub fn graph() -> Self {
        PredictorConfig {
            use_from_src: false,
            use_rel_graph: true,
            use_tuples: false,
            use_prefs: false,
            use_providers: false,
            tuple_min_degree: 5,
            allow_reversed_links: true,
            default_link_latency_ms: 1.0,
        }
    }

    /// GRAPH + the FROM_SRC plane (first rung of the §4.3 ladder).
    pub fn graph_asym() -> Self {
        PredictorConfig {
            use_from_src: true,
            ..PredictorConfig::graph()
        }
    }

    /// Asymmetry + 3-tuple check replacing the valley-free construction.
    pub fn with_tuples() -> Self {
        PredictorConfig {
            use_from_src: true,
            use_rel_graph: false,
            use_tuples: true,
            use_prefs: false,
            use_providers: false,
            tuple_min_degree: 5,
            allow_reversed_links: true,
            default_link_latency_ms: 1.0,
        }
    }

    /// ... + observed AS preferences.
    pub fn with_prefs() -> Self {
        PredictorConfig {
            use_prefs: true,
            ..PredictorConfig::with_tuples()
        }
    }

    /// The full iNano model: asymmetry + tuples + preferences + providers.
    pub fn full() -> Self {
        PredictorConfig {
            use_providers: true,
            ..PredictorConfig::with_prefs()
        }
    }

    /// The Figure-5 ablation ladder, in order, with display names.
    pub fn ladder() -> Vec<(&'static str, PredictorConfig)> {
        vec![
            ("GRAPH", PredictorConfig::graph()),
            ("+asymmetry", PredictorConfig::graph_asym()),
            ("+3-tuples", PredictorConfig::with_tuples()),
            ("+preferences", PredictorConfig::with_prefs()),
            ("+providers (iNano)", PredictorConfig::full()),
        ]
    }

    /// Number of plane layers (1 or 2).
    pub fn n_planes(&self) -> usize {
        if self.use_from_src {
            2
        } else {
            1
        }
    }

    /// Number of up/down side layers (1 or 2).
    pub fn n_sides(&self) -> usize {
        if self.use_rel_graph {
            2
        } else {
            1
        }
    }

    /// Number of search phases.
    pub fn n_phases(&self) -> u8 {
        if self.use_rel_graph {
            3
        } else {
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotone_in_features() {
        let l = PredictorConfig::ladder();
        assert_eq!(l.len(), 5);
        assert!(l[0].1.use_rel_graph && !l[0].1.use_from_src);
        assert!(l[1].1.use_from_src && l[1].1.use_rel_graph);
        assert!(l[2].1.use_tuples && !l[2].1.use_rel_graph);
        assert!(l[3].1.use_prefs);
        assert!(l[4].1.use_providers);
    }

    #[test]
    fn layer_counts() {
        assert_eq!(PredictorConfig::graph().n_planes(), 1);
        assert_eq!(PredictorConfig::graph().n_sides(), 2);
        assert_eq!(PredictorConfig::graph().n_phases(), 3);
        assert_eq!(PredictorConfig::full().n_planes(), 2);
        assert_eq!(PredictorConfig::full().n_sides(), 1);
        assert_eq!(PredictorConfig::full().n_phases(), 1);
    }

    #[test]
    fn default_is_full() {
        assert_eq!(PredictorConfig::default(), PredictorConfig::full());
    }
}
