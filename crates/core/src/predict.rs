//! The query layer: (source, destination) pairs in, predicted PoP-level
//! paths with latency and loss estimates out.
//!
//! Searches are destination-rooted, so one search answers queries from
//! *every* source to that destination; results are cached per destination
//! prefix, which is exactly the access pattern of the application studies
//! (many clients evaluating one replica, one client evaluating many
//! relays, ...).

use crate::config::PredictorConfig;
use crate::graph::PredictionGraph;
use crate::search::{search, SearchResult};
use inano_atlas::Atlas;
use inano_model::{
    AsPath, Asn, ClusterId, Ipv4, LatencyMs, LossRate, ModelError, PrefixId, PrefixTrie,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A full bidirectional prediction.
#[derive(Clone, Debug)]
pub struct PredictedPath {
    pub fwd_clusters: Vec<ClusterId>,
    pub rev_clusters: Vec<ClusterId>,
    pub fwd_as_path: AsPath,
    pub rev_as_path: AsPath,
    /// Estimated round-trip time (forward + reverse composition).
    pub rtt: LatencyMs,
    /// Estimated round-trip loss rate.
    pub loss: LossRate,
}

/// Maximum cached destination searches before the cache is cleared.
const CACHE_CAP: usize = 512;

/// Where an IP address attaches to the atlas — enough to compute a
/// result-cache key without running the search itself. Produced by
/// [`PathPredictor::resolve`]; consumed by the serving layer
/// (`inano-service`), whose cache is keyed on cluster pairs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Resolution {
    /// The atlas prefix covering the address.
    pub prefix: PrefixId,
    /// The cluster that prefix attaches to.
    pub cluster: ClusterId,
    /// The prefix's origin AS, if the atlas records one.
    pub origin_as: Option<Asn>,
    /// The AS of the attachment cluster, if the atlas records one.
    pub cluster_as: Option<Asn>,
    /// True when the atlas carries a *per-prefix* provider refinement
    /// for this prefix (Table 2's eighth dataset): the provider
    /// constraint then depends on the prefix, not just its cluster.
    pub refined_providers: bool,
}

impl Resolution {
    /// True when a prediction toward (or from) this endpoint is a pure
    /// function of its cluster, so it may safely be served from a
    /// cluster-keyed cache. Requires both that the prefix's origin AS
    /// agrees with its cluster's AS (the origin feeds the provider
    /// check and the AS-path suffix) and that the prefix has no
    /// per-prefix provider refinement (which would make two prefixes on
    /// the same cluster search differently). Non-canonical prefixes
    /// must bypass such a cache rather than poison it.
    pub fn canonical(&self) -> bool {
        if self.refined_providers {
            return false;
        }
        match (self.origin_as, self.cluster_as) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }
}

/// The iNano path predictor.
///
/// Holds two graphs: a *strict* one using links only in their observed
/// direction, and (when [`PredictorConfig::allow_reversed_links`] is on)
/// a *relaxed* one that also traverses links backwards. Queries try the
/// strict graph first and fall back to the relaxed one — the same
/// philosophy as §4.3.1's FROM_SRC → TO_DST fallback: prefer the
/// best-evidenced route, but still answer.
pub struct PathPredictor {
    atlas: Arc<Atlas>,
    cfg: PredictorConfig,
    graph: PredictionGraph,
    /// Fallback graph with reversed links (None in GRAPH mode or when
    /// reversed links are disabled).
    relaxed: Option<PredictionGraph>,
    trie: PrefixTrie,
    cache: Mutex<HashMap<(ClusterId, PrefixId, bool), Arc<SearchResult>>>,
}

impl PathPredictor {
    /// Build a predictor over an atlas. Graph construction is the only
    /// heavy step (linear in the atlas size).
    pub fn new(atlas: Arc<Atlas>, cfg: PredictorConfig) -> PathPredictor {
        let mut strict_cfg = cfg.clone();
        strict_cfg.allow_reversed_links = false;
        let graph = PredictionGraph::build(&atlas, &strict_cfg);
        let relaxed = if cfg.allow_reversed_links && !cfg.use_rel_graph {
            Some(PredictionGraph::build(&atlas, &cfg))
        } else {
            None
        };
        let trie = atlas.build_trie();
        PathPredictor {
            atlas,
            cfg,
            graph,
            relaxed,
            trie,
            cache: Mutex::new(HashMap::new()),
        }
    }

    pub fn atlas(&self) -> &Atlas {
        &self.atlas
    }

    pub fn config(&self) -> &PredictorConfig {
        &self.cfg
    }

    /// Map an IP address to its atlas prefix.
    pub fn prefix_of(&self, ip: Ipv4) -> Result<PrefixId, ModelError> {
        self.trie
            .lookup(ip)
            .ok_or_else(|| ModelError::UnroutableAddress(ip.to_string()))
    }

    /// Map an IP address to the cluster it attaches to.
    pub fn cluster_of(&self, ip: Ipv4) -> Result<ClusterId, ModelError> {
        Ok(self.resolve(ip)?.cluster)
    }

    /// Resolve an IP address to its atlas attachment point (prefix,
    /// cluster, origin/cluster AS) without running a search.
    pub fn resolve(&self, ip: Ipv4) -> Result<Resolution, ModelError> {
        let prefix = self.prefix_of(ip)?;
        let cluster = *self
            .atlas
            .prefix_cluster
            .get(&prefix)
            .ok_or_else(|| ModelError::NoPath(format!("{prefix} has no known cluster")))?;
        Ok(Resolution {
            prefix,
            cluster,
            origin_as: self.atlas.prefix_as.get(&prefix).map(|&(_, asn)| asn),
            cluster_as: self.atlas.as_of_cluster(cluster),
            refined_providers: self.atlas.prefix_providers.contains_key(&prefix),
        })
    }

    /// The (cached) destination-rooted search toward a prefix, over the
    /// strict or relaxed graph.
    fn search_to(
        &self,
        dst_prefix: PrefixId,
        relaxed: bool,
    ) -> Result<Arc<SearchResult>, ModelError> {
        let graph = if relaxed {
            self.relaxed.as_ref().expect("relaxed graph exists")
        } else {
            &self.graph
        };
        let dst_cluster = *self
            .atlas
            .prefix_cluster
            .get(&dst_prefix)
            .ok_or_else(|| ModelError::NoPath(format!("{dst_prefix} has no known cluster")))?;
        let key = (dst_cluster, dst_prefix, relaxed);
        if let Some(r) = self.cache.lock().get(&key) {
            return Ok(Arc::clone(r));
        }
        let (_, dst_as) = *self
            .atlas
            .prefix_as
            .get(&dst_prefix)
            .ok_or_else(|| ModelError::NoPath(format!("{dst_prefix} has no origin AS")))?;
        let result = search(
            graph,
            &self.atlas,
            &self.cfg,
            dst_cluster,
            dst_prefix,
            dst_as,
        )
        .ok_or_else(|| ModelError::NoPath(format!("{dst_prefix}: destination not in graph")))?;
        let result = Arc::new(result);
        let mut cache = self.cache.lock();
        if cache.len() >= CACHE_CAP {
            cache.clear();
        }
        cache.insert(key, Arc::clone(&result));
        Ok(result)
    }

    /// Predict the one-way cluster-level path between two prefixes:
    /// observed-direction graph first, reversed-link fallback second.
    pub fn predict_forward(
        &self,
        src_prefix: PrefixId,
        dst_prefix: PrefixId,
    ) -> Result<Vec<ClusterId>, ModelError> {
        let src_cluster = *self
            .atlas
            .prefix_cluster
            .get(&src_prefix)
            .ok_or_else(|| ModelError::NoPath(format!("{src_prefix} has no known cluster")))?;
        let result = self.search_to(dst_prefix, false)?;
        for node in self.graph.source_nodes(src_cluster) {
            if let Some(path) = result.cluster_path(&self.graph, node) {
                return Ok(path);
            }
        }
        if let Some(relaxed) = &self.relaxed {
            let result = self.search_to(dst_prefix, true)?;
            for node in relaxed.source_nodes(src_cluster) {
                if let Some(path) = result.cluster_path(relaxed, node) {
                    return Ok(path);
                }
            }
        }
        Err(ModelError::NoPath(format!(
            "no route {src_prefix} → {dst_prefix}"
        )))
    }

    /// The AS-level view of a predicted cluster path, terminated at the
    /// destination prefix's origin AS.
    pub fn as_path_of(&self, clusters: &[ClusterId], dst_prefix: PrefixId) -> AsPath {
        let mut ases: Vec<Asn> = clusters
            .iter()
            .filter_map(|c| self.atlas.as_of_cluster(*c))
            .collect();
        if let Some(&(_, origin)) = self.atlas.prefix_as.get(&dst_prefix) {
            ases.push(origin);
        }
        AsPath::new(ases)
    }

    /// One-way latency estimate: composed link latencies (§3).
    pub fn latency_of(&self, clusters: &[ClusterId]) -> LatencyMs {
        let mut total = 0.0;
        for w in clusters.windows(2) {
            total += self.link_latency(w[0], w[1]);
        }
        LatencyMs::new(total)
    }

    fn link_latency(&self, a: ClusterId, b: ClusterId) -> f64 {
        let get = |x, y| {
            self.atlas
                .links
                .get(&(x, y))
                .and_then(|ann| ann.latency.map(|l| l.ms()))
        };
        get(a, b)
            .or_else(|| get(b, a))
            .unwrap_or(self.cfg.default_link_latency_ms)
    }

    /// One-way loss estimate: composed link loss rates.
    pub fn loss_of(&self, clusters: &[ClusterId]) -> LossRate {
        LossRate::compose_all(clusters.windows(2).map(|w| {
            self.atlas
                .loss
                .get(&(w[0], w[1]))
                .copied()
                .unwrap_or(LossRate::ZERO)
        }))
    }

    /// Full bidirectional prediction between two prefixes: forward and
    /// reverse paths predicted independently (§4.3.1), properties
    /// composed over both.
    pub fn predict(
        &self,
        src_prefix: PrefixId,
        dst_prefix: PrefixId,
    ) -> Result<PredictedPath, ModelError> {
        let fwd = self.predict_forward(src_prefix, dst_prefix)?;
        let rev = self.predict_forward(dst_prefix, src_prefix)?;
        let rtt = self.latency_of(&fwd) + self.latency_of(&rev);
        let loss = self.loss_of(&fwd).compose(self.loss_of(&rev));
        Ok(PredictedPath {
            fwd_as_path: self.as_path_of(&fwd, dst_prefix),
            rev_as_path: self.as_path_of(&rev, src_prefix),
            fwd_clusters: fwd,
            rev_clusters: rev,
            rtt,
            loss,
        })
    }

    /// Predict between two IP addresses (the library API of §5: queries
    /// are (src, dst) IP pairs).
    pub fn query(&self, src: Ipv4, dst: Ipv4) -> Result<PredictedPath, ModelError> {
        let s = self.prefix_of(src)?;
        let d = self.prefix_of(dst)?;
        self.predict(s, d)
    }

    /// Batched queries ("batches of arbitrary sizes", §5).
    pub fn query_batch(&self, pairs: &[(Ipv4, Ipv4)]) -> Vec<Result<PredictedPath, ModelError>> {
        pairs.iter().map(|&(s, d)| self.query(s, d)).collect()
    }

    /// Graph diagnostics: (nodes, edges).
    pub fn graph_size(&self) -> (usize, usize) {
        (self.graph.n_nodes(), self.graph.n_edges())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_atlas::{LinkAnnotation, Plane};
    use inano_model::Prefix;

    /// Tiny atlas: prefixes P10 at cluster 1 (AS1), P20 at cluster 3
    /// (AS3); chain 1→2→3 forward, 3→2→1 reverse, with loss on 2→3.
    fn toy() -> Arc<Atlas> {
        let mut a = Atlas::default();
        let cl = ClusterId::new;
        for (f, t, lat) in [(1u32, 2u32, 2.0), (2, 3, 3.0), (3, 2, 3.0), (2, 1, 2.0)] {
            a.links.insert(
                (cl(f), cl(t)),
                LinkAnnotation {
                    latency: Some(LatencyMs::new(lat)),
                    plane: Plane::TO_DST,
                },
            );
        }
        for (c, asn) in [(1u32, 1u32), (2, 2), (3, 3)] {
            a.cluster_as.insert(cl(c), Asn::new(asn));
        }
        a.loss.insert((cl(2), cl(3)), LossRate::new(0.1));
        a.prefix_cluster.insert(PrefixId::new(10), cl(1));
        a.prefix_cluster.insert(PrefixId::new(20), cl(3));
        a.prefix_as.insert(
            PrefixId::new(10),
            (Prefix::new(Ipv4::from_octets(10, 0, 0, 0), 24), Asn::new(1)),
        );
        a.prefix_as.insert(
            PrefixId::new(20),
            (Prefix::new(Ipv4::from_octets(20, 0, 0, 0), 24), Asn::new(3)),
        );
        Arc::new(a)
    }

    fn predictor() -> PathPredictor {
        let mut cfg = PredictorConfig::with_tuples();
        cfg.use_tuples = false;
        cfg.use_from_src = false;
        PathPredictor::new(toy(), cfg)
    }

    #[test]
    fn predicts_path_latency_and_loss() {
        let p = predictor();
        let r = p.predict(PrefixId::new(10), PrefixId::new(20)).unwrap();
        assert_eq!(
            r.fwd_clusters,
            vec![ClusterId::new(1), ClusterId::new(2), ClusterId::new(3)]
        );
        assert_eq!(r.rev_clusters.len(), 3);
        // RTT: fwd 2+3 plus rev 3+2 = 10ms.
        assert!((r.rtt.ms() - 10.0).abs() < 1e-9);
        // Loss: only 2→3 lossy at 10%.
        assert!((r.loss.rate() - 0.1).abs() < 1e-9);
        assert_eq!(r.fwd_as_path.as_slice().len(), 3);
    }

    #[test]
    fn query_by_ip_uses_trie() {
        let p = predictor();
        let r = p
            .query(
                Ipv4::from_octets(10, 0, 0, 5),
                Ipv4::from_octets(20, 0, 0, 9),
            )
            .unwrap();
        assert_eq!(r.fwd_clusters.len(), 3);
        let err = p.query(
            Ipv4::from_octets(99, 0, 0, 1),
            Ipv4::from_octets(20, 0, 0, 9),
        );
        assert!(matches!(err, Err(ModelError::UnroutableAddress(_))));
    }

    #[test]
    fn resolution_reports_attachment_and_canonicality() {
        let p = predictor();
        let r = p.resolve(Ipv4::from_octets(10, 0, 0, 1)).unwrap();
        assert_eq!(r.prefix, PrefixId::new(10));
        assert_eq!(r.cluster, ClusterId::new(1));
        assert_eq!(r.origin_as, Some(Asn::new(1)));
        assert_eq!(r.cluster_as, Some(Asn::new(1)));
        assert!(!r.refined_providers);
        assert!(r.canonical());
        assert_eq!(
            p.cluster_of(Ipv4::from_octets(20, 0, 0, 9)).unwrap(),
            ClusterId::new(3)
        );
    }

    #[test]
    fn refined_provider_prefixes_are_not_canonical() {
        // A per-prefix provider refinement makes the search depend on
        // the prefix, not just its cluster — cluster-keyed caches must
        // not serve it.
        let mut atlas = (*toy()).clone();
        atlas
            .prefix_providers
            .insert(PrefixId::new(10), [Asn::new(2)].into_iter().collect());
        let mut cfg = PredictorConfig::with_tuples();
        cfg.use_tuples = false;
        cfg.use_from_src = false;
        let p = PathPredictor::new(Arc::new(atlas), cfg);
        let r = p.resolve(Ipv4::from_octets(10, 0, 0, 1)).unwrap();
        assert!(r.refined_providers);
        assert!(!r.canonical());
        // The sibling prefix without a refinement stays canonical.
        assert!(p
            .resolve(Ipv4::from_octets(20, 0, 0, 1))
            .unwrap()
            .canonical());
    }

    #[test]
    fn cache_hits_are_consistent() {
        let p = predictor();
        let a = p.predict(PrefixId::new(10), PrefixId::new(20)).unwrap();
        let b = p.predict(PrefixId::new(10), PrefixId::new(20)).unwrap();
        assert_eq!(a.fwd_clusters, b.fwd_clusters);
        assert!((a.rtt.ms() - b.rtt.ms()).abs() < 1e-12);
    }

    #[test]
    fn unknown_prefix_is_no_path() {
        let p = predictor();
        let r = p.predict(PrefixId::new(10), PrefixId::new(99));
        assert!(matches!(r, Err(ModelError::NoPath(_))));
    }

    #[test]
    fn missing_latency_uses_default() {
        let mut atlas = (*toy()).clone();
        // Clear both directions: the predictor falls back to the reverse
        // direction's latency before resorting to the default.
        atlas
            .links
            .get_mut(&(ClusterId::new(1), ClusterId::new(2)))
            .unwrap()
            .latency = None;
        atlas
            .links
            .get_mut(&(ClusterId::new(2), ClusterId::new(1)))
            .unwrap()
            .latency = None;
        let mut cfg = PredictorConfig::with_tuples();
        cfg.use_tuples = false;
        cfg.use_from_src = false;
        cfg.default_link_latency_ms = 7.0;
        let p = PathPredictor::new(Arc::new(atlas), cfg);
        let fwd = p
            .predict_forward(PrefixId::new(10), PrefixId::new(20))
            .unwrap();
        // 7 (default) + 3.
        assert!((p.latency_of(&fwd).ms() - 10.0).abs() < 1e-9);
    }
}
