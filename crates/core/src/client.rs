//! The client-side library of §5: fetch the atlas (from any swarm or
//! mirror — abstracted behind [`AtlasSource`]), augment it with local
//! measurements, serve queries locally, and keep it up to date with the
//! daily delta.

use crate::config::PredictorConfig;
use crate::predict::{PathPredictor, PredictedPath};
use crate::source::{AtlasReader, AtlasSource, BlobFetch};
use inano_atlas::{codec, Atlas, AtlasDelta};
use inano_model::{ClusterId, Ipv4, LatencyMs, ModelError};
use std::sync::Arc;

/// An in-memory blob source, for tests and local files; wrap it in
/// [`crate::source::BlobSource`] to feed the chunked [`AtlasSource`]
/// consumers.
pub struct StaticSource {
    pub full: Vec<u8>,
    pub deltas: Vec<Vec<u8>>,
}

impl BlobFetch for StaticSource {
    fn fetch_full(&mut self) -> Result<Vec<u8>, ModelError> {
        Ok(self.full.clone())
    }

    fn fetch_delta(&mut self, have_day: u32) -> Result<Option<Vec<u8>>, ModelError> {
        for d in &self.deltas {
            let parsed = AtlasDelta::decode(d)?;
            if parsed.from_day == have_day {
                return Ok(Some(d.clone()));
            }
        }
        Ok(None)
    }
}

/// The iNano client library.
pub struct INanoClient {
    atlas: Arc<Atlas>,
    cfg: PredictorConfig,
    /// `None` only transiently inside mutating methods, so the atlas
    /// `Arc` can be mutated in place instead of cloned (see
    /// [`INanoClient::add_local_links`]).
    predictor: Option<PathPredictor>,
    /// Local FROM_SRC links contributed by this client's own traceroutes,
    /// re-applied after every update.
    local_links: Vec<((ClusterId, ClusterId), Option<LatencyMs>)>,
}

impl INanoClient {
    /// Bootstrap: fetch (chunked, validated, resumable — see
    /// [`AtlasReader`]) and decode the full atlas.
    pub fn bootstrap(
        source: &mut dyn AtlasSource,
        cfg: PredictorConfig,
    ) -> Result<INanoClient, ModelError> {
        let (_, bytes) = AtlasReader::default().fetch_full(source)?;
        let atlas = codec::decode(&bytes)?;
        let atlas = Arc::new(atlas);
        let predictor = PathPredictor::new(Arc::clone(&atlas), cfg.clone());
        Ok(INanoClient {
            atlas,
            cfg,
            predictor: Some(predictor),
            local_links: Vec::new(),
        })
    }

    /// The day of the loaded atlas.
    pub fn day(&self) -> u32 {
        self.atlas.day
    }

    /// Apply all available daily deltas; returns how many were applied.
    ///
    /// Deltas are staged off to the side and committed once at the end
    /// (one local-link re-application for the whole chain). If the
    /// chain fails partway — a fetch or decode error, a wrong-base
    /// delta — the days that did apply are committed, the error is
    /// returned, and the client keeps serving queries either way.
    pub fn update(&mut self, source: &mut dyn AtlasSource) -> Result<usize, ModelError> {
        let reader = AtlasReader::default();
        let mut staged: Option<Atlas> = None;
        let mut applied = 0usize;
        let outcome = loop {
            let base = staged.as_ref().unwrap_or(&self.atlas);
            match reader.fetch_delta(source, base.day) {
                Ok(Some((_, bytes))) => {
                    match AtlasDelta::decode(&bytes).and_then(|d| d.apply(base)) {
                        Ok(next) => {
                            staged = Some(next);
                            applied += 1;
                        }
                        Err(e) => break Err(e),
                    }
                }
                Ok(None) => break Ok(applied),
                Err(e) => break Err(e),
            }
        };
        if let Some(atlas) = staged {
            self.predictor = None;
            self.atlas = Arc::new(atlas);
            // One in-place re-application of every local link for the
            // whole update, however many deltas were chained.
            self.apply_links_and_rebuild(|local| local.clone());
        }
        outcome
    }

    /// Contribute links from a local traceroute (already mapped to
    /// clusters by the measurement toolkit). They land in the FROM_SRC
    /// plane and survive daily updates.
    ///
    /// Only the links passed here are applied to the live atlas — the
    /// atlas `Arc` is mutated in place (no clone) because the client
    /// holds the only reference once the predictor is dropped. The old
    /// behaviour cloned the entire atlas and re-applied *every*
    /// accumulated local link on each call.
    pub fn add_local_links<I>(&mut self, links: I)
    where
        I: IntoIterator<Item = ((ClusterId, ClusterId), Option<LatencyMs>)>,
    {
        let new: Vec<((ClusterId, ClusterId), Option<LatencyMs>)> = links.into_iter().collect();
        if new.is_empty() {
            return;
        }
        self.local_links.extend(new.iter().cloned());
        self.apply_links_and_rebuild(move |_| new);
    }

    /// Apply a batch of FROM_SRC links to the atlas — in place when the
    /// client holds the only `Arc` (the common case) — then rebuild the
    /// predictor once.
    fn apply_links_and_rebuild<F>(&mut self, links: F)
    where
        F: FnOnce(
            &Vec<((ClusterId, ClusterId), Option<LatencyMs>)>,
        ) -> Vec<((ClusterId, ClusterId), Option<LatencyMs>)>,
    {
        // Drop the predictor's Arc first so make_mut can avoid cloning.
        self.predictor = None;
        let mut atlas = std::mem::replace(&mut self.atlas, Arc::new(Atlas::default()));
        Arc::make_mut(&mut atlas).add_from_src_links(links(&self.local_links));
        self.atlas = atlas;
        self.predictor = Some(PathPredictor::new(
            Arc::clone(&self.atlas),
            self.cfg.clone(),
        ));
    }

    /// Query path information between two IPs.
    pub fn query(&self, src: Ipv4, dst: Ipv4) -> Result<PredictedPath, ModelError> {
        self.predictor().query(src, dst)
    }

    /// Batched queries.
    pub fn query_batch(&self, pairs: &[(Ipv4, Ipv4)]) -> Vec<Result<PredictedPath, ModelError>> {
        self.predictor().query_batch(pairs)
    }

    /// Direct access to the predictor (ranking helpers etc.).
    pub fn predictor(&self) -> &PathPredictor {
        self.predictor
            .as_ref()
            .expect("predictor is initialised outside mutating methods")
    }

    /// Direct access to the loaded atlas.
    pub fn atlas(&self) -> &Atlas {
        &self.atlas
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::BlobSource;
    use inano_atlas::{LinkAnnotation, Plane};
    use inano_model::{Asn, Prefix, PrefixId};

    fn base_atlas(day: u32) -> Atlas {
        let mut a = Atlas {
            day,
            ..Atlas::default()
        };
        let cl = ClusterId::new;
        for (f, t) in [(1u32, 2u32), (2, 3), (3, 2), (2, 1)] {
            a.links.insert(
                (cl(f), cl(t)),
                LinkAnnotation {
                    latency: Some(LatencyMs::new(2.0)),
                    plane: Plane::TO_DST,
                },
            );
        }
        for (c, asn) in [(1u32, 1u32), (2, 2), (3, 3)] {
            a.cluster_as.insert(cl(c), Asn::new(asn));
        }
        a.prefix_cluster.insert(PrefixId::new(1), cl(1));
        a.prefix_cluster.insert(PrefixId::new(2), cl(3));
        a.prefix_as.insert(
            PrefixId::new(1),
            (Prefix::new(Ipv4::from_octets(10, 0, 0, 0), 24), Asn::new(1)),
        );
        a.prefix_as.insert(
            PrefixId::new(2),
            (Prefix::new(Ipv4::from_octets(20, 0, 0, 0), 24), Asn::new(3)),
        );
        a
    }

    fn client_cfg() -> PredictorConfig {
        let mut cfg = PredictorConfig::with_tuples();
        cfg.use_tuples = false;
        cfg
    }

    #[test]
    fn bootstrap_and_query() {
        let (bytes, _) = codec::encode(&base_atlas(0));
        let mut src = BlobSource::new(StaticSource {
            full: bytes,
            deltas: vec![],
        });
        let client = INanoClient::bootstrap(&mut src, client_cfg()).unwrap();
        assert_eq!(client.day(), 0);
        let r = client
            .query(
                Ipv4::from_octets(10, 0, 0, 1),
                Ipv4::from_octets(20, 0, 0, 1),
            )
            .unwrap();
        assert_eq!(r.fwd_clusters.len(), 3);
    }

    #[test]
    fn daily_update_applies_deltas_in_order() {
        let day0 = base_atlas(0);
        let mut day1 = base_atlas(1);
        day1.links.insert(
            (ClusterId::new(1), ClusterId::new(3)),
            LinkAnnotation {
                latency: Some(LatencyMs::new(1.0)),
                plane: Plane::TO_DST,
            },
        );
        let mut day2 = day1.clone();
        day2.day = 2;
        day2.links.remove(&(ClusterId::new(1), ClusterId::new(2)));

        let (full, _) = codec::encode(&day0);
        let d01 = AtlasDelta::between(&day0, &day1).encode().0;
        let d12 = AtlasDelta::between(&day1, &day2).encode().0;
        let mut src = BlobSource::new(StaticSource {
            full,
            deltas: vec![d01, d12],
        });
        let mut client = INanoClient::bootstrap(&mut src, client_cfg()).unwrap();
        assert_eq!(client.update(&mut src).unwrap(), 2);
        assert_eq!(client.day(), 2);
        // The new direct link is now the predicted route.
        let r = client
            .query(
                Ipv4::from_octets(10, 0, 0, 1),
                Ipv4::from_octets(20, 0, 0, 1),
            )
            .unwrap();
        assert_eq!(r.fwd_clusters.len(), 2, "uses the day-1 shortcut");
    }

    /// Serves one delta, then fails every further fetch.
    struct FlakyAfterOne {
        inner: StaticSource,
        served: usize,
    }

    impl BlobFetch for FlakyAfterOne {
        fn fetch_full(&mut self) -> Result<Vec<u8>, ModelError> {
            self.inner.fetch_full()
        }

        fn fetch_delta(&mut self, have_day: u32) -> Result<Option<Vec<u8>>, ModelError> {
            if self.served >= 1 {
                return Err(ModelError::Decode("source died mid-update".into()));
            }
            let r = self.inner.fetch_delta(have_day);
            if let Ok(Some(_)) = &r {
                self.served += 1;
            }
            r
        }
    }

    #[test]
    fn update_failing_midway_keeps_the_client_serving() {
        let day0 = base_atlas(0);
        let mut day1 = base_atlas(1);
        day1.links.insert(
            (ClusterId::new(1), ClusterId::new(3)),
            LinkAnnotation {
                latency: Some(LatencyMs::new(1.0)),
                plane: Plane::TO_DST,
            },
        );
        let (full, _) = codec::encode(&day0);
        let d01 = AtlasDelta::between(&day0, &day1).encode().0;
        let mut src = BlobSource::new(FlakyAfterOne {
            inner: StaticSource {
                full,
                deltas: vec![d01],
            },
            served: 0,
        });
        let mut client = INanoClient::bootstrap(&mut src, client_cfg()).unwrap();
        assert!(
            client.update(&mut src).is_err(),
            "the source error surfaces"
        );
        // The delta that did apply is committed, and — regression — the
        // client must keep answering queries instead of panicking on a
        // torn-down predictor.
        assert_eq!(client.day(), 1);
        let r = client
            .query(
                Ipv4::from_octets(10, 0, 0, 1),
                Ipv4::from_octets(20, 0, 0, 1),
            )
            .unwrap();
        assert_eq!(r.fwd_clusters.len(), 2, "day-1 shortcut is live");
    }

    #[test]
    fn add_local_links_applies_in_place_without_cloning() {
        let (bytes, _) = codec::encode(&base_atlas(0));
        let mut src = BlobSource::new(StaticSource {
            full: bytes,
            deltas: vec![],
        });
        let mut client = INanoClient::bootstrap(&mut src, client_cfg()).unwrap();
        client.add_local_links([(
            (ClusterId::new(1), ClusterId::new(3)),
            Some(LatencyMs::new(0.5)),
        )]);
        let before = client.atlas() as *const Atlas;
        client.add_local_links([(
            (ClusterId::new(3), ClusterId::new(1)),
            Some(LatencyMs::new(0.5)),
        )]);
        // Regression: each add_local_links call used to clone the whole
        // atlas; the batch is now applied to the same allocation.
        assert_eq!(
            before,
            client.atlas() as *const Atlas,
            "atlas must be augmented in place, not cloned per call"
        );
        // Both incrementally-added links are live.
        let r = client
            .query(
                Ipv4::from_octets(10, 0, 0, 1),
                Ipv4::from_octets(20, 0, 0, 1),
            )
            .unwrap();
        assert_eq!(r.fwd_clusters.len(), 2, "first local link used");
        assert_eq!(r.rev_clusters.len(), 2, "second local link used");
    }

    #[test]
    fn incremental_adds_match_one_batched_add() {
        let (bytes, _) = codec::encode(&base_atlas(0));
        let links = [
            (
                (ClusterId::new(1), ClusterId::new(3)),
                Some(LatencyMs::new(0.5)),
            ),
            (
                (ClusterId::new(3), ClusterId::new(1)),
                Some(LatencyMs::new(0.4)),
            ),
        ];
        let mut src = BlobSource::new(StaticSource {
            full: bytes.clone(),
            deltas: vec![],
        });
        let mut one = INanoClient::bootstrap(&mut src, client_cfg()).unwrap();
        one.add_local_links(links);
        let mut src2 = BlobSource::new(StaticSource {
            full: bytes,
            deltas: vec![],
        });
        let mut two = INanoClient::bootstrap(&mut src2, client_cfg()).unwrap();
        for l in links {
            two.add_local_links([l]);
        }
        let q = (
            Ipv4::from_octets(10, 0, 0, 1),
            Ipv4::from_octets(20, 0, 0, 1),
        );
        let a = one.query(q.0, q.1).unwrap();
        let b = two.query(q.0, q.1).unwrap();
        assert_eq!(a.fwd_clusters, b.fwd_clusters);
        assert_eq!(a.rev_clusters, b.rev_clusters);
        assert!((a.rtt.ms() - b.rtt.ms()).abs() < 1e-12);
    }

    #[test]
    fn local_links_survive_updates() {
        let day0 = base_atlas(0);
        let mut day1 = base_atlas(1);
        day1.tuples.insert(inano_atlas::Triple::canonical(
            Asn::new(9),
            Asn::new(8),
            Asn::new(7),
        ));
        let (full, _) = codec::encode(&day0);
        let d01 = AtlasDelta::between(&day0, &day1).encode().0;
        let mut src = BlobSource::new(StaticSource {
            full,
            deltas: vec![d01],
        });
        let mut client = INanoClient::bootstrap(&mut src, client_cfg()).unwrap();
        client.add_local_links([(
            (ClusterId::new(1), ClusterId::new(3)),
            Some(LatencyMs::new(0.5)),
        )]);
        let before = client
            .query(
                Ipv4::from_octets(10, 0, 0, 1),
                Ipv4::from_octets(20, 0, 0, 1),
            )
            .unwrap();
        assert_eq!(before.fwd_clusters.len(), 2, "local FROM_SRC link used");
        client.update(&mut src).unwrap();
        let after = client
            .query(
                Ipv4::from_octets(10, 0, 0, 1),
                Ipv4::from_octets(20, 0, 0, 1),
            )
            .unwrap();
        assert_eq!(after.fwd_clusters.len(), 2, "local link survives update");
    }
}
