//! Atlas acquisition, v2: a versioned, chunk-oriented [`AtlasSource`]
//! plus the [`AtlasReader`] driver that assembles and validates bodies.
//!
//! The paper's §5 dissemination story is peers fetching the ~7MB atlas
//! (and then small daily deltas) *from each other*. The original
//! `AtlasSource` was a two-method blob API (`fetch_full() -> Vec<u8>`)
//! that only worked in-process; this redesign makes the unit of
//! transfer a *chunk* of a *named version*, which is what lets the same
//! trait sit in front of an in-memory test vector, the swarm
//! simulation, or a remote `inano-serve` over the wire:
//!
//! * [`AtlasSource::head`] names the newest version —
//!   [`AtlasVersion`]: day, content tag, body length, chunk size — so a
//!   fetcher knows exactly what it is about to assemble;
//! * [`AtlasSource::fetch_full_chunk`] returns one bounded,
//!   checksummed [`AtlasChunk`] of that body, so a transfer survives a
//!   lost chunk by re-fetching *that chunk*, not the whole body, and a
//!   wire frame never has to carry more than one chunk;
//! * [`AtlasSource::fetch_delta`] returns a [`DeltaHandle`] describing
//!   the day-over-day delta body, fetched with the same chunk
//!   machinery via [`AtlasSource::fetch_delta_chunk`].
//!
//! [`AtlasReader`] drives a source: it validates every chunk (length
//! and checksum), retries failed chunks, verifies the assembled body
//! against the head's `epoch_tag`, and — when the source reports
//! [`ModelError::VersionRaced`] because the origin swapped generations
//! mid-fetch — restarts at the new head. `INanoClient::bootstrap` and
//! the service engine both feed on it.
//!
//! [`BlobSource`] adapts the legacy blob shape ([`BlobFetch`]) onto the
//! new trait, so in-memory sources like `StaticSource` migrate
//! mechanically.

use inano_atlas::{codec, AtlasDelta};
use inano_model::ModelError;

/// Default chunk size for in-process sources: large enough that a ~7MB
/// atlas is a few dozen chunks, small enough that one chunk always fits
/// the default wire frame limit with room for framing.
pub const DEFAULT_CHUNK_SIZE: u32 = 256 << 10;

/// FNV-1a 64-bit over `bytes`: the workspace-wide content tag. Used
/// both as the per-chunk checksum and as [`AtlasVersion::epoch_tag`]
/// over the whole encoded body, so "the same atlas" has the same tag on
/// every node of a mirror chain, however it got there.
pub fn content_tag(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Number of `chunk_size` chunks covering a `len`-byte body.
pub fn n_chunks(len: u64, chunk_size: u32) -> u32 {
    if len == 0 {
        return 0;
    }
    ((len - 1) / chunk_size.max(1) as u64 + 1).min(u32::MAX as u64) as u32
}

/// Byte range of chunk `idx` in a `len`-byte body cut into `chunk_size`
/// chunks, or a typed [`ModelError::ChunkOutOfRange`].
pub fn chunk_span(
    len: u64,
    chunk_size: u32,
    idx: u32,
) -> Result<std::ops::Range<usize>, ModelError> {
    let chunks = n_chunks(len, chunk_size);
    if idx >= chunks {
        return Err(ModelError::ChunkOutOfRange(format!(
            "chunk {idx} of a {chunks}-chunk body"
        )));
    }
    let start = idx as u64 * chunk_size as u64;
    let end = (start + chunk_size as u64).min(len);
    Ok(start as usize..end as usize)
}

/// What a source's newest full atlas looks like, before any bytes move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AtlasVersion {
    /// Measurement day of the full body.
    pub day: u32,
    /// Content tag of the encoded body ([`content_tag`]); equal on
    /// every mirror serving the same generation, whatever its local
    /// swap epoch says.
    pub epoch_tag: u64,
    /// Encoded body length in bytes.
    pub full_len: u64,
    /// Chunk size this source serves the body in.
    pub chunk_size: u32,
}

impl AtlasVersion {
    pub fn n_chunks(&self) -> u32 {
        n_chunks(self.full_len, self.chunk_size)
    }
}

/// A daily delta a source offers, before its body moves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaHandle {
    pub from_day: u32,
    pub to_day: u32,
    /// Encoded delta body length in bytes.
    pub len: u64,
    /// Chunk size the delta body is served in.
    pub chunk_size: u32,
}

impl DeltaHandle {
    pub fn n_chunks(&self) -> u32 {
        n_chunks(self.len, self.chunk_size)
    }
}

/// A fully fetched delta: the handle that advertised it plus its
/// validated, reassembled body.
pub type FetchedDelta = (DeltaHandle, Vec<u8>);

/// One checksummed chunk of an atlas or delta body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AtlasChunk {
    pub bytes: Vec<u8>,
    /// [`content_tag`] of `bytes`, computed at the origin — so a relay
    /// that corrupts a chunk is caught by the reader, not by a failed
    /// atlas decode megabytes later.
    pub crc: u64,
}

impl AtlasChunk {
    /// Wrap `bytes` with their freshly-computed checksum.
    pub fn of(bytes: Vec<u8>) -> AtlasChunk {
        let crc = content_tag(&bytes);
        AtlasChunk { bytes, crc }
    }

    /// True when the carried checksum matches the carried bytes.
    pub fn verify(&self) -> bool {
        content_tag(&self.bytes) == self.crc
    }
}

/// Where atlas bytes come from: the swarm simulation, a test vector, a
/// remote `inano-serve` acting as a mirror... The library is
/// "sufficiently modular that any peer-to-peer filesharing protocol can
/// be plugged in" (§5) — the unit of exchange is a checksummed chunk of
/// a named version.
///
/// ## Contract
///
/// * `head()` snapshots the newest full version; subsequent
///   `fetch_full_chunk` calls serve *that* version's body. If the
///   source moves on mid-fetch (a mirror applied a delta), it returns
///   [`ModelError::VersionRaced`] and the fetcher restarts at the new
///   head — it must not silently splice bodies from two generations.
/// * `fetch_delta(have_day)` offers the delta leaving `have_day`, if
///   one exists; its body is served by `fetch_delta_chunk(from_day, _)`
///   with the same race rule.
/// * A chunk index at or beyond the body's chunk count is a typed
///   [`ModelError::ChunkOutOfRange`].
pub trait AtlasSource {
    /// The newest available full-atlas version.
    fn head(&mut self) -> Result<AtlasVersion, ModelError>;
    /// Chunk `idx` of the full body last named by [`AtlasSource::head`].
    fn fetch_full_chunk(&mut self, idx: u32) -> Result<AtlasChunk, ModelError>;
    /// The delta from `have_day` to the next day, if one is available.
    fn fetch_delta(&mut self, have_day: u32) -> Result<Option<DeltaHandle>, ModelError>;
    /// Chunk `idx` of the delta body leaving `from_day`.
    fn fetch_delta_chunk(&mut self, from_day: u32, idx: u32) -> Result<AtlasChunk, ModelError>;
}

/// Drives an [`AtlasSource`]: assembles chunked bodies, validates
/// length and checksum per chunk, retries failed chunks in place, and
/// restarts from a fresh `head()` when the version races mid-fetch.
#[derive(Clone, Copy, Debug)]
pub struct AtlasReader {
    /// Whole-body restarts tolerated (version races, tag mismatches).
    pub max_restarts: u32,
    /// Per-chunk retries before the fetch fails (resume-in-place: a bad
    /// chunk re-fetches that chunk, never the whole body).
    pub chunk_retries: u32,
    /// Largest body this reader will assemble; a hostile head claiming
    /// more fails typed instead of allocating it.
    pub max_body_bytes: u64,
}

impl Default for AtlasReader {
    fn default() -> AtlasReader {
        AtlasReader {
            max_restarts: 3,
            chunk_retries: 2,
            max_body_bytes: 1 << 30,
        }
    }
}

impl AtlasReader {
    /// Download and validate the newest full body. Returns the version
    /// it ended up with (restarts may land on a newer one than the
    /// first `head()` named) and the assembled bytes, whose
    /// [`content_tag`] is guaranteed to equal `version.epoch_tag`.
    pub fn fetch_full(
        &self,
        source: &mut dyn AtlasSource,
    ) -> Result<(AtlasVersion, Vec<u8>), ModelError> {
        self.fetch_full_counted(source).map(|(v, b, _)| (v, b))
    }

    /// [`AtlasReader::fetch_full`], additionally reporting how many
    /// whole-body restarts (version races, tag mismatches) the fetch
    /// recovered from — the feed for a mirror's `races_recovered`
    /// metric.
    pub fn fetch_full_counted(
        &self,
        source: &mut dyn AtlasSource,
    ) -> Result<(AtlasVersion, Vec<u8>, u32), ModelError> {
        let mut restarts = 0;
        loop {
            let head = source.head()?;
            self.check_body(head.full_len, head.chunk_size)?;
            match self.body(head.full_len, head.chunk_size, &mut |i| {
                source.fetch_full_chunk(i)
            }) {
                Ok(body) if content_tag(&body) == head.epoch_tag => {
                    return Ok((head, body, restarts))
                }
                // An assembled body whose tag disagrees with its head
                // means the source changed under us without saying so;
                // treat it like a declared race.
                Ok(_) => {}
                Err(e) if is_race(&e) => {}
                Err(e) => return Err(e),
            }
            restarts += 1;
            if restarts > self.max_restarts {
                return Err(ModelError::VersionRaced(format!(
                    "full fetch restarted {restarts} times without completing"
                )));
            }
        }
    }

    /// Download and validate the delta leaving `have_day`, if the
    /// source has one.
    pub fn fetch_delta(
        &self,
        source: &mut dyn AtlasSource,
        have_day: u32,
    ) -> Result<Option<FetchedDelta>, ModelError> {
        self.fetch_delta_counted(source, have_day).map(|(r, _)| r)
    }

    /// [`AtlasReader::fetch_delta`], additionally reporting recovered
    /// restarts (see [`AtlasReader::fetch_full_counted`]).
    pub fn fetch_delta_counted(
        &self,
        source: &mut dyn AtlasSource,
        have_day: u32,
    ) -> Result<(Option<FetchedDelta>, u32), ModelError> {
        let mut restarts = 0;
        loop {
            let Some(handle) = source.fetch_delta(have_day)? else {
                return Ok((None, restarts));
            };
            if handle.from_day != have_day {
                return Err(ModelError::Decode(format!(
                    "asked for the delta leaving day {have_day}, offered {}→{}",
                    handle.from_day, handle.to_day
                )));
            }
            self.check_body(handle.len, handle.chunk_size)?;
            match self.body(handle.len, handle.chunk_size, &mut |i| {
                source.fetch_delta_chunk(handle.from_day, i)
            }) {
                Ok(body) => return Ok((Some((handle, body)), restarts)),
                Err(e) if is_race(&e) => {}
                Err(e) => return Err(e),
            }
            restarts += 1;
            if restarts > self.max_restarts {
                return Err(ModelError::VersionRaced(format!(
                    "delta fetch from day {have_day} restarted {restarts} times"
                )));
            }
        }
    }

    fn check_body(&self, len: u64, chunk_size: u32) -> Result<(), ModelError> {
        if chunk_size == 0 {
            return Err(ModelError::Decode("source declared chunk size 0".into()));
        }
        if len > self.max_body_bytes {
            return Err(ModelError::Decode(format!(
                "declared body of {len} bytes exceeds reader limit {}",
                self.max_body_bytes
            )));
        }
        Ok(())
    }

    /// Assemble one body chunk by chunk, retrying each failed chunk in
    /// place up to `chunk_retries` times.
    fn body(
        &self,
        len: u64,
        chunk_size: u32,
        fetch: &mut dyn FnMut(u32) -> Result<AtlasChunk, ModelError>,
    ) -> Result<Vec<u8>, ModelError> {
        let mut out = Vec::new();
        for idx in 0..n_chunks(len, chunk_size) {
            let want = chunk_span(len, chunk_size, idx)?.len();
            let mut attempts = 0;
            let chunk = loop {
                let outcome = match fetch(idx) {
                    Ok(c) if !c.verify() => Err(ModelError::Decode(format!(
                        "chunk {idx} failed its checksum"
                    ))),
                    Ok(c) if c.bytes.len() != want => Err(ModelError::Decode(format!(
                        "chunk {idx} is {} bytes, want {want}",
                        c.bytes.len()
                    ))),
                    other => other,
                };
                match outcome {
                    Ok(c) => break c,
                    // A race aborts the body immediately — retrying the
                    // same index against a new generation cannot help.
                    Err(e) if is_race(&e) => return Err(e),
                    Err(e) => {
                        attempts += 1;
                        if attempts > self.chunk_retries {
                            return Err(e);
                        }
                    }
                }
            };
            out.extend_from_slice(&chunk.bytes);
        }
        Ok(out)
    }
}

fn is_race(e: &ModelError) -> bool {
    matches!(
        e,
        ModelError::VersionRaced(_) | ModelError::ChunkOutOfRange(_)
    )
}

/// The legacy blob shape: one full body, one delta body per day.
/// In-memory sources (test vectors, files) keep implementing this and
/// ride behind [`BlobSource`].
pub trait BlobFetch {
    /// The full atlas for the newest available day.
    fn fetch_full(&mut self) -> Result<Vec<u8>, ModelError>;
    /// The delta from `have_day` to the next day, if one is available.
    fn fetch_delta(&mut self, have_day: u32) -> Result<Option<Vec<u8>>, ModelError>;
}

/// Adapts a [`BlobFetch`] onto the chunked [`AtlasSource`]: fetches the
/// blob once per `head()`/`fetch_delta()` and serves chunks from the
/// cached copy.
pub struct BlobSource<S> {
    inner: S,
    chunk_size: u32,
    full: Option<(AtlasVersion, Vec<u8>)>,
    delta: Option<(DeltaHandle, Vec<u8>)>,
}

impl<S: BlobFetch> BlobSource<S> {
    pub fn new(inner: S) -> BlobSource<S> {
        BlobSource::with_chunk_size(inner, DEFAULT_CHUNK_SIZE)
    }

    /// Mostly for tests: tiny chunks force multi-chunk transfers.
    pub fn with_chunk_size(inner: S, chunk_size: u32) -> BlobSource<S> {
        BlobSource {
            inner,
            chunk_size: chunk_size.max(1),
            full: None,
            delta: None,
        }
    }

    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    pub fn into_inner(self) -> S {
        self.inner
    }

    fn ensure_full(&mut self) -> Result<&(AtlasVersion, Vec<u8>), ModelError> {
        if self.full.is_none() {
            let bytes = self.inner.fetch_full()?;
            // Peek, don't decode: the consumer decodes the assembled
            // body itself, and a second full decode just for the day
            // would double the bootstrap cost.
            let day = codec::peek_day(&bytes)?;
            let version = AtlasVersion {
                day,
                epoch_tag: content_tag(&bytes),
                full_len: bytes.len() as u64,
                chunk_size: self.chunk_size,
            };
            self.full = Some((version, bytes));
        }
        Ok(self.full.as_ref().expect("populated above"))
    }

    fn ensure_delta(
        &mut self,
        from_day: u32,
    ) -> Result<Option<&(DeltaHandle, Vec<u8>)>, ModelError> {
        let cached = matches!(&self.delta, Some((h, _)) if h.from_day == from_day);
        if !cached {
            let Some(bytes) = self.inner.fetch_delta(from_day)? else {
                return Ok(None);
            };
            let parsed = AtlasDelta::decode(&bytes)?;
            let handle = DeltaHandle {
                from_day: parsed.from_day,
                to_day: parsed.to_day,
                len: bytes.len() as u64,
                chunk_size: self.chunk_size,
            };
            self.delta = Some((handle, bytes));
        }
        Ok(self.delta.as_ref())
    }
}

impl<S: BlobFetch> AtlasSource for BlobSource<S> {
    fn head(&mut self) -> Result<AtlasVersion, ModelError> {
        // Refresh the cached blob: head() is the start of a new fetch.
        self.full = None;
        Ok(self.ensure_full()?.0)
    }

    fn fetch_full_chunk(&mut self, idx: u32) -> Result<AtlasChunk, ModelError> {
        let (version, bytes) = self.ensure_full()?;
        let span = chunk_span(version.full_len, version.chunk_size, idx)?;
        Ok(AtlasChunk::of(bytes[span].to_vec()))
    }

    fn fetch_delta(&mut self, have_day: u32) -> Result<Option<DeltaHandle>, ModelError> {
        Ok(self.ensure_delta(have_day)?.map(|(h, _)| *h))
    }

    fn fetch_delta_chunk(&mut self, from_day: u32, idx: u32) -> Result<AtlasChunk, ModelError> {
        let Some((handle, bytes)) = self.ensure_delta(from_day)? else {
            return Err(ModelError::VersionRaced(format!(
                "no delta leaving day {from_day} is available any more"
            )));
        };
        let span = chunk_span(handle.len, handle.chunk_size, idx)?;
        Ok(AtlasChunk::of(bytes[span].to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A blob source over fixed bytes (no atlas decode involved — these
    /// tests drive the chunk machinery, not the codec).
    struct RawBlobs {
        full: Vec<u8>,
        delta: Option<Vec<u8>>,
    }

    /// An AtlasSource serving `body` directly, with fault injection.
    struct FaultySource {
        day: u32,
        body: Vec<u8>,
        chunk_size: u32,
        /// Chunk indexes that fail (once each) with a transient error.
        flaky: Vec<u32>,
        /// Corrupt this chunk's checksum once.
        corrupt_once: Option<u32>,
        /// After this many total chunk fetches, swap to `next_body`.
        race_after: Option<usize>,
        next_body: Vec<u8>,
        fetches: usize,
    }

    impl FaultySource {
        fn new(body: Vec<u8>, chunk_size: u32) -> FaultySource {
            FaultySource {
                day: 0,
                body,
                chunk_size,
                flaky: vec![],
                corrupt_once: None,
                race_after: None,
                next_body: vec![],
                fetches: 0,
            }
        }

        fn version(&self) -> AtlasVersion {
            AtlasVersion {
                day: self.day,
                epoch_tag: content_tag(&self.body),
                full_len: self.body.len() as u64,
                chunk_size: self.chunk_size,
            }
        }
    }

    impl AtlasSource for FaultySource {
        fn head(&mut self) -> Result<AtlasVersion, ModelError> {
            Ok(self.version())
        }

        fn fetch_full_chunk(&mut self, idx: u32) -> Result<AtlasChunk, ModelError> {
            self.fetches += 1;
            if let Some(after) = self.race_after {
                if self.fetches > after {
                    self.race_after = None;
                    self.body = std::mem::take(&mut self.next_body);
                    self.day += 1;
                    return Err(ModelError::VersionRaced("origin swapped".into()));
                }
            }
            if let Some(pos) = self.flaky.iter().position(|&i| i == idx) {
                self.flaky.remove(pos);
                return Err(ModelError::Decode("transient fetch failure".into()));
            }
            let span = chunk_span(self.body.len() as u64, self.chunk_size, idx)?;
            let mut chunk = AtlasChunk::of(self.body[span].to_vec());
            if self.corrupt_once == Some(idx) {
                self.corrupt_once = None;
                chunk.crc ^= 1;
            }
            Ok(chunk)
        }

        fn fetch_delta(&mut self, _have_day: u32) -> Result<Option<DeltaHandle>, ModelError> {
            Ok(None)
        }

        fn fetch_delta_chunk(
            &mut self,
            _from_day: u32,
            _idx: u32,
        ) -> Result<AtlasChunk, ModelError> {
            Err(ModelError::Decode("no deltas here".into()))
        }
    }

    fn body(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn chunk_spans_tile_the_body_exactly() {
        for (len, cs) in [(0u64, 4u32), (1, 4), (4, 4), (5, 4), (1000, 7)] {
            let chunks = n_chunks(len, cs);
            let mut covered = 0u64;
            for i in 0..chunks {
                let span = chunk_span(len, cs, i).expect("in range");
                assert_eq!(span.start as u64, covered);
                assert!(!span.is_empty());
                covered = span.end as u64;
            }
            assert_eq!(covered, len, "len {len} chunk {cs}");
            assert!(matches!(
                chunk_span(len, cs, chunks),
                Err(ModelError::ChunkOutOfRange(_))
            ));
        }
    }

    #[test]
    fn reader_assembles_multi_chunk_bodies() {
        let b = body(1000);
        let mut src = FaultySource::new(b.clone(), 64);
        let (version, got) = AtlasReader::default()
            .fetch_full(&mut src)
            .expect("fetches");
        assert_eq!(got, b);
        assert_eq!(version.n_chunks(), 16);
        assert_eq!(version.epoch_tag, content_tag(&b));
    }

    #[test]
    fn reader_retries_failed_and_corrupt_chunks_in_place() {
        let b = body(300);
        let mut src = FaultySource::new(b.clone(), 100);
        src.flaky = vec![1];
        src.corrupt_once = Some(2);
        let (_, got) = AtlasReader::default()
            .fetch_full(&mut src)
            .expect("resumes");
        assert_eq!(got, b);
        // 3 chunks + 1 flaky retry + 1 corrupt retry; no full restart.
        assert_eq!(src.fetches, 5);
    }

    #[test]
    fn reader_gives_up_after_chunk_retries() {
        let b = body(300);
        let mut src = FaultySource::new(b, 100);
        src.flaky = vec![1, 1, 1, 1, 1, 1, 1, 1];
        let err = AtlasReader::default().fetch_full(&mut src).unwrap_err();
        assert!(matches!(err, ModelError::Decode(_)), "{err}");
    }

    #[test]
    fn reader_restarts_at_the_new_head_when_the_version_races() {
        let old = body(400);
        let new = body(640);
        let mut src = FaultySource::new(old, 128);
        src.next_body = new.clone();
        src.race_after = Some(2);
        let (version, got) = AtlasReader::default()
            .fetch_full(&mut src)
            .expect("restarts");
        assert_eq!(got, new, "the fetch lands on the post-race body");
        assert_eq!(version.day, 1);
        assert_eq!(version.epoch_tag, content_tag(&new));
    }

    #[test]
    fn reader_refuses_hostile_heads() {
        struct Hostile(u64, u32);
        impl AtlasSource for Hostile {
            fn head(&mut self) -> Result<AtlasVersion, ModelError> {
                Ok(AtlasVersion {
                    day: 0,
                    epoch_tag: 0,
                    full_len: self.0,
                    chunk_size: self.1,
                })
            }
            fn fetch_full_chunk(&mut self, _: u32) -> Result<AtlasChunk, ModelError> {
                panic!("must refuse at the head");
            }
            fn fetch_delta(&mut self, _: u32) -> Result<Option<DeltaHandle>, ModelError> {
                Ok(None)
            }
            fn fetch_delta_chunk(&mut self, _: u32, _: u32) -> Result<AtlasChunk, ModelError> {
                unreachable!()
            }
        }
        let r = AtlasReader::default();
        assert!(r.fetch_full(&mut Hostile(u64::MAX, 1024)).is_err());
        assert!(r.fetch_full(&mut Hostile(1024, 0)).is_err());
    }

    impl BlobFetch for RawBlobs {
        fn fetch_full(&mut self) -> Result<Vec<u8>, ModelError> {
            Ok(self.full.clone())
        }
        fn fetch_delta(&mut self, _have_day: u32) -> Result<Option<Vec<u8>>, ModelError> {
            Ok(self.delta.clone())
        }
    }

    #[test]
    fn blob_source_serves_real_atlas_bytes_chunked() {
        use inano_atlas::Atlas;
        let atlas = Atlas {
            day: 3,
            ..Atlas::default()
        };
        let (bytes, _) = codec::encode(&atlas);
        let mut src = BlobSource::with_chunk_size(
            RawBlobs {
                full: bytes.clone(),
                delta: None,
            },
            8,
        );
        let head = src.head().expect("head");
        assert_eq!(head.day, 3);
        assert_eq!(head.full_len, bytes.len() as u64);
        assert!(head.n_chunks() > 1, "tiny chunks force a multi-chunk body");
        let (version, got) = AtlasReader::default().fetch_full(&mut src).expect("fetch");
        assert_eq!(got, bytes);
        assert_eq!(version, head);
        assert!(src.fetch_delta(3).expect("no delta").is_none());
    }
}
