//! Destination ranking helpers: "applications such as peer selection and
//! detour routing benefit from the ability to discern which destinations
//! have low latency from a source" (§6.3.2, Figure 7).

use crate::predict::PathPredictor;
use inano_model::{LatencyMs, LossRate, PrefixId};

/// Rank candidate destination prefixes by predicted RTT from `src`,
/// ascending. Unpredictable candidates are dropped.
pub fn rank_by_rtt(
    predictor: &PathPredictor,
    src: PrefixId,
    candidates: &[PrefixId],
) -> Vec<(PrefixId, LatencyMs)> {
    let mut out: Vec<(PrefixId, LatencyMs)> = candidates
        .iter()
        .filter_map(|&d| predictor.predict(src, d).ok().map(|p| (d, p.rtt)))
        .collect();
    out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    out
}

/// Rank candidates by predicted loss first, RTT second — the VoIP relay
/// policy of §7.2 ("pick the 10 relays that minimize the predicted loss
/// rate and then choose the one amongst these that minimizes end-to-end
/// latency" — callers take the prefix of this ranking).
pub fn rank_by_loss_then_rtt(
    predictor: &PathPredictor,
    src: PrefixId,
    candidates: &[PrefixId],
) -> Vec<(PrefixId, LossRate, LatencyMs)> {
    let mut out: Vec<(PrefixId, LossRate, LatencyMs)> = candidates
        .iter()
        .filter_map(|&d| predictor.predict(src, d).ok().map(|p| (d, p.loss, p.rtt)))
        .collect();
    out.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .unwrap()
            .then(a.2.partial_cmp(&b.2).unwrap())
            .then(a.0.cmp(&b.0))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PredictorConfig;
    use inano_atlas::{Atlas, LinkAnnotation, Plane};
    use inano_model::{Asn, ClusterId, Ipv4, Prefix};
    use std::sync::Arc;

    /// Star: src cluster 0 connected to clusters 1..=3 with rising
    /// latencies; prefix i+10 lives at cluster i.
    fn star() -> PathPredictor {
        let mut a = Atlas::default();
        let cl = ClusterId::new;
        for i in 1u32..=3 {
            a.links.insert(
                (cl(0), cl(i)),
                LinkAnnotation {
                    latency: Some(LatencyMs::new(i as f64 * 10.0)),
                    plane: Plane::TO_DST,
                },
            );
            a.links.insert(
                (cl(i), cl(0)),
                LinkAnnotation {
                    latency: Some(LatencyMs::new(i as f64 * 10.0)),
                    plane: Plane::TO_DST,
                },
            );
        }
        for i in 0u32..=3 {
            a.cluster_as.insert(cl(i), Asn::new(i));
            a.prefix_cluster.insert(PrefixId::new(10 + i), cl(i));
            a.prefix_as.insert(
                PrefixId::new(10 + i),
                (
                    Prefix::new(Ipv4::from_octets(10 + i as u8, 0, 0, 0), 24),
                    Asn::new(i),
                ),
            );
        }
        // Loss on the middle candidate.
        a.loss.insert((cl(0), cl(2)), LossRate::new(0.2));
        let mut cfg = PredictorConfig::with_tuples();
        cfg.use_tuples = false;
        cfg.use_from_src = false;
        PathPredictor::new(Arc::new(a), cfg)
    }

    #[test]
    fn rtt_ranking_is_ascending() {
        let p = star();
        let cands: Vec<PrefixId> = (11..=13).map(PrefixId::new).collect();
        let ranked = rank_by_rtt(&p, PrefixId::new(10), &cands);
        assert_eq!(ranked.len(), 3);
        assert_eq!(ranked[0].0, PrefixId::new(11));
        assert_eq!(ranked[2].0, PrefixId::new(13));
        assert!(ranked[0].1 < ranked[2].1);
    }

    #[test]
    fn loss_ranking_demotes_lossy_candidate() {
        let p = star();
        let cands: Vec<PrefixId> = (11..=13).map(PrefixId::new).collect();
        let ranked = rank_by_loss_then_rtt(&p, PrefixId::new(10), &cands);
        // Prefix 12 (cluster 2) is lossy: must rank last even though its
        // RTT beats prefix 13's.
        assert_eq!(ranked[2].0, PrefixId::new(12));
    }

    #[test]
    fn unpredictable_candidates_dropped() {
        let p = star();
        let cands = vec![PrefixId::new(11), PrefixId::new(99)];
        let ranked = rank_by_rtt(&p, PrefixId::new(10), &cands);
        assert_eq!(ranked.len(), 1);
    }
}
