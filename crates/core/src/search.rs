//! The destination-rooted route search (Figure 1 of the paper, plus the
//! §4.3 refinements).
//!
//! Dijkstra-like label setting from the destination's down/`TO_DST` node
//! over reverse edges. The label kept per node is
//! `[AS hops, exit latency]` (lexicographic, as in §4.2.1: hops dominate,
//! the exit component accumulates intra-AS latency and resets to zero at
//! AS boundaries). GRAPH mode runs three phases over the up/down graph so
//! customer routes beat peer routes beat provider routes; labels settled
//! in an earlier phase are frozen.
//!
//! Refinement hooks, applied during relaxation of an inter-AS edge
//! `v(A) → w(B)`:
//! * **3-tuple check**: the AS triple `(A, B, C)` — `C` being the first
//!   AS after `B` on `w`'s chosen path — must have been observed, unless
//!   `B`'s degree is at most the threshold (§4.3.2);
//! * **provider check**: when `B` is the destination AS and `w`'s path
//!   never leaves it, `A` must be an observed provider (ingress) for the
//!   destination prefix (§4.3.4);
//! * **preferences**: equal-hop candidates at `v` are compared by the
//!   observed preference of `A` between the two next ASes, ahead of the
//!   exit-latency comparison (§4.3.3).

use crate::config::PredictorConfig;
use crate::graph::PredictionGraph;
use inano_atlas::Atlas;
use inano_model::{Asn, ClusterId, PrefixId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-node route label.
#[derive(Clone, Copy, Debug)]
pub struct Label {
    pub hops: u16,
    pub exit: f64,
    /// Inter-AS hops taken over reversed (unobserved-direction) edges;
    /// fewer is better at equal AS-hop count.
    pub rev_hops: u16,
    /// The forward successor node (toward the destination).
    pub succ: u32,
    /// First two distinct ASes after this node's AS on the path
    /// (`None` when the path stays in this AS to the end).
    pub next2: (Option<Asn>, Option<Asn>),
    /// Phase in which the label was last improved; labels from earlier,
    /// already-closed phases are frozen.
    pub phase: u8,
}

/// The result of one destination-rooted search: labels for every node.
pub struct SearchResult {
    pub dest_cluster: ClusterId,
    labels: Vec<Option<Label>>,
}

impl SearchResult {
    /// Label of a node.
    pub fn label(&self, node: u32) -> Option<&Label> {
        self.labels[node as usize].as_ref()
    }

    /// Reconstruct the forward cluster path from a node, collapsing
    /// layer transitions within a cluster.
    pub fn cluster_path(&self, g: &PredictionGraph, from: u32) -> Option<Vec<ClusterId>> {
        self.labels[from as usize]?;
        let mut out: Vec<ClusterId> = Vec::with_capacity(16);
        let mut cur = from;
        for _ in 0..4 * self.labels.len() {
            let c = g.node_cluster(cur);
            if out.last() != Some(&c) {
                out.push(c);
            }
            let l = self.labels[cur as usize]?;
            if l.succ == cur {
                return Some(out); // reached the destination node
            }
            cur = l.succ;
        }
        None // defensive: cycle in successor chain
    }
}

/// Run the search toward `dest_cluster` (the home of `dst_prefix`,
/// owned by `dst_as`).
pub fn search(
    g: &PredictionGraph,
    atlas: &Atlas,
    cfg: &PredictorConfig,
    dest_cluster: ClusterId,
    dst_prefix: PrefixId,
    dst_as: Asn,
) -> Option<SearchResult> {
    let dest_node = g.dest_node(dest_cluster)?;
    let mut labels: Vec<Option<Label>> = vec![None; g.n_nodes()];
    labels[dest_node as usize] = Some(Label {
        hops: 0,
        exit: 0.0,
        rev_hops: 0,
        succ: dest_node,
        next2: (None, None),
        phase: 1,
    });

    // Providers constraint set, resolved once.
    let providers = if cfg.use_providers {
        atlas.providers_for(dst_prefix, dst_as).cloned()
    } else {
        None
    };

    let max_phase = cfg.n_phases();
    for phase in 1..=max_phase {
        // (Re-)seed the heap with every labelled node so newly enabled
        // edge classes get relaxed.
        let mut heap: BinaryHeap<Reverse<(u16, u64, u32)>> = BinaryHeap::new();
        for (idx, l) in labels.iter().enumerate() {
            if let Some(l) = l {
                heap.push(Reverse((l.hops, quant(l.exit), idx as u32)));
            }
        }
        while let Some(Reverse((hops, exitq, node))) = heap.pop() {
            let Some(cur) = labels[node as usize] else {
                continue;
            };
            if cur.hops != hops || quant(cur.exit) != exitq {
                continue; // stale heap entry
            }
            let node_as = g.node_as(node);
            for e in &g.in_edges[node as usize] {
                if e.phase > phase {
                    continue;
                }
                let u = e.src;
                let u_as = g.node_as(u);
                // Frozen labels from closed phases are immutable.
                if let Some(ul) = &labels[u as usize] {
                    if ul.phase < phase {
                        continue;
                    }
                }

                let cand = if e.inter && u_as != node_as {
                    // Crossing from AS u_as into node_as.
                    if cfg.use_tuples {
                        if let Some(c_after) = first_as_after(&cur, node_as) {
                            // Low-degree middle ASes are exempt (their
                            // exports are under-observed, §4.3.2) — but
                            // only on observed-direction edges. A
                            // reversed edge has no observational support
                            // of its own, so it must be licensed by an
                            // observed triple (commutativity makes
                            // inbound observations license outbound
                            // reverse traversal); otherwise reversed
                            // shortcuts through stubs would fabricate
                            // transit the Internet never provides.
                            let exempt =
                                !e.reversed && atlas.degree(node_as) <= cfg.tuple_min_degree;
                            if !exempt && !atlas.has_triple(u_as, node_as, c_after) {
                                continue;
                            }
                        }
                    }
                    if let Some(provs) = &providers {
                        // Final entry into the destination AS.
                        if node_as == dst_as
                            && first_as_after(&cur, node_as).is_none()
                            && !provs.contains(&u_as)
                        {
                            continue;
                        }
                    }
                    Label {
                        hops: cur.hops + 1,
                        exit: 0.0,
                        rev_hops: cur.rev_hops + u16::from(e.reversed),
                        succ: node,
                        next2: (Some(node_as), first_as_after(&cur, node_as)),
                        phase,
                    }
                } else {
                    // Intra-AS, plane-cross or self edge.
                    Label {
                        hops: cur.hops,
                        exit: cur.exit + e.latency,
                        rev_hops: cur.rev_hops + u16::from(e.reversed),
                        succ: node,
                        next2: cur.next2,
                        phase,
                    }
                };

                if better(&cand, &labels[u as usize], u_as, atlas, cfg) {
                    heap.push(Reverse((cand.hops, quant(cand.exit), u)));
                    labels[u as usize] = Some(cand);
                }
            }
        }
    }

    Some(SearchResult {
        dest_cluster,
        labels,
    })
}

/// First AS after `asn` on the path a label describes.
fn first_as_after(l: &Label, asn: Asn) -> Option<Asn> {
    match l.next2 {
        (Some(a), _) if a != asn => Some(a),
        (Some(_), b) => b,
        (None, _) => None,
    }
}

/// Quantised exit cost for heap ordering (0.01 ms resolution keeps the
/// ordering total and deterministic).
fn quant(exit: f64) -> u64 {
    (exit * 100.0).round() as u64
}

/// Is `cand` a better label for a node in AS `a` than `cur`?
fn better(cand: &Label, cur: &Option<Label>, a: Asn, atlas: &Atlas, cfg: &PredictorConfig) -> bool {
    let Some(cur) = cur else { return true };
    if cand.hops != cur.hops {
        return cand.hops < cur.hops;
    }
    if cand.rev_hops != cur.rev_hops {
        // Paths sticking to observed link directions win: physical
        // observation is stronger evidence than inferred preference.
        return cand.rev_hops < cur.rev_hops;
    }
    if cfg.use_prefs {
        // Preference between the next ASes, when both are known and
        // differ (§4.3.3: applies to routes of the same length).
        if let (Some(b1), Some(b2)) = (first_as_after(cand, a), first_as_after(cur, a)) {
            if b1 != b2 {
                if atlas.prefers(a, b1, b2) {
                    return true;
                }
                if atlas.prefers(a, b2, b1) {
                    return false;
                }
            }
        }
    }
    if quant(cand.exit) != quant(cur.exit) {
        return cand.exit < cur.exit;
    }
    // Deterministic final tie-break.
    cand.succ < cur.succ
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_atlas::{LinkAnnotation, Plane, Triple};
    use inano_model::LatencyMs;

    /// Line topology 1→2→3→4 plus shortcut 1→5→4; each cluster its own AS.
    fn atlas_line() -> Atlas {
        let mut a = Atlas::default();
        let cl = ClusterId::new;
        for (f, t, lat) in [
            (1u32, 2u32, 1.0),
            (2, 3, 1.0),
            (3, 4, 1.0),
            (1, 5, 1.0),
            (5, 4, 1.0),
        ] {
            a.links.insert(
                (cl(f), cl(t)),
                LinkAnnotation {
                    latency: Some(LatencyMs::new(lat)),
                    plane: Plane::TO_DST,
                },
            );
        }
        for c in 1..=5u32 {
            a.cluster_as.insert(cl(c), Asn::new(c));
            a.as_degree.insert(Asn::new(c), 10); // above tuple threshold
        }
        a
    }

    fn run(atlas: &Atlas, cfg: &PredictorConfig) -> (PredictionGraph, SearchResult) {
        let g = PredictionGraph::build(atlas, cfg);
        let r = search(
            &g,
            atlas,
            cfg,
            ClusterId::new(4),
            PrefixId::new(0),
            Asn::new(4),
        )
        .unwrap();
        (g, r)
    }

    fn path_of(g: &PredictionGraph, r: &SearchResult, src: u32) -> Vec<u32> {
        r.cluster_path(g, src)
            .unwrap()
            .iter()
            .map(|c| c.raw())
            .collect()
    }

    fn src_node(g: &PredictionGraph, c: u32) -> u32 {
        *g.source_nodes(ClusterId::new(c)).last().unwrap()
    }

    #[test]
    fn shortest_as_path_wins_without_tuples() {
        let atlas = atlas_line();
        let mut cfg = PredictorConfig::with_tuples();
        cfg.use_tuples = false;
        cfg.use_from_src = false;
        let (g, r) = run(&atlas, &cfg);
        // 1→5→4 (3 ASes) beats 1→2→3→4 (4 ASes).
        assert_eq!(path_of(&g, &r, src_node(&g, 1)), vec![1, 5, 4]);
    }

    #[test]
    fn tuple_check_blocks_unobserved_transit() {
        let mut atlas = atlas_line();
        // Only the long path's triples are observed.
        for (a, b, c) in [(1u32, 2u32, 3u32), (2, 3, 4)] {
            atlas
                .tuples
                .insert(Triple::canonical(Asn::new(a), Asn::new(b), Asn::new(c)));
        }
        let mut cfg = PredictorConfig::with_tuples();
        cfg.use_from_src = false;
        let (g, r) = run(&atlas, &cfg);
        // (1,5,4) unobserved and AS5's degree is 10 > 5 ⇒ blocked.
        assert_eq!(path_of(&g, &r, src_node(&g, 1)), vec![1, 2, 3, 4]);
    }

    #[test]
    fn low_degree_middle_as_is_exempt() {
        let mut atlas = atlas_line();
        for (a, b, c) in [(1u32, 2u32, 3u32), (2, 3, 4)] {
            atlas
                .tuples
                .insert(Triple::canonical(Asn::new(a), Asn::new(b), Asn::new(c)));
        }
        // Drop AS5's degree to the threshold: check skipped (§4.3.2,
        // "visibility into ASes at the edge is limited").
        atlas.as_degree.insert(Asn::new(5), 3);
        let mut cfg = PredictorConfig::with_tuples();
        cfg.use_from_src = false;
        let (g, r) = run(&atlas, &cfg);
        assert_eq!(path_of(&g, &r, src_node(&g, 1)), vec![1, 5, 4]);
    }

    #[test]
    fn provider_check_blocks_non_provider_entry() {
        let mut atlas = atlas_line();
        // Destination AS4's only observed provider is AS3 (not AS5).
        atlas
            .providers
            .insert(Asn::new(4), [Asn::new(3)].into_iter().collect());
        let mut cfg = PredictorConfig::full();
        cfg.use_from_src = false;
        cfg.use_tuples = false;
        cfg.use_prefs = false;
        let (g, r) = run(&atlas, &cfg);
        // Figure 3's example: 1-5-4 is shorter but 5 is not a provider
        // for 4.
        assert_eq!(path_of(&g, &r, src_node(&g, 1)), vec![1, 2, 3, 4]);
    }

    #[test]
    fn preferences_break_equal_length_ties() {
        // Two equal-length routes: 1→2→4... build 1→2→4 and 1→5→4 (both
        // 3 ASes) and make AS1 prefer 2 over 5.
        let mut atlas = Atlas::default();
        let cl = ClusterId::new;
        for (f, t, lat) in [(1u32, 2u32, 9.0), (2, 4, 9.0), (1, 5, 1.0), (5, 4, 1.0)] {
            atlas.links.insert(
                (cl(f), cl(t)),
                LinkAnnotation {
                    latency: Some(LatencyMs::new(lat)),
                    plane: Plane::TO_DST,
                },
            );
        }
        for c in [1u32, 2, 4, 5] {
            atlas.cluster_as.insert(cl(c), Asn::new(c));
            atlas.as_degree.insert(Asn::new(c), 10);
        }
        atlas.prefs.insert((Asn::new(1), Asn::new(5), Asn::new(2)));
        let mut cfg = PredictorConfig::with_prefs();
        cfg.use_tuples = false;
        cfg.use_from_src = false;
        // Without preferences the deterministic tie-break picks the route
        // via AS2 (inter-AS latencies do not enter the cost metric — the
        // GRAPH cost charges [1, 0] per AS crossing, §4.2.1).
        let mut cfg2 = cfg.clone();
        cfg2.use_prefs = false;
        let (g2, r2) = run(&atlas, &cfg2);
        assert_eq!(path_of(&g2, &r2, src_node(&g2, 1)), vec![1, 2, 4]);
        // The observed preference (1: 5 > 2) flips the equal-length tie
        // (Figure 3's mechanism).
        let (g, r) = run(&atlas, &cfg);
        assert_eq!(path_of(&g, &r, src_node(&g, 1)), vec![1, 5, 4]);
    }

    #[test]
    fn from_src_plane_is_used_first() {
        // FROM_SRC has a direct src link 1→4 that TO_DST lacks.
        let mut atlas = Atlas::default();
        let cl = ClusterId::new;
        atlas.links.insert(
            (cl(1), cl(2)),
            LinkAnnotation {
                latency: Some(LatencyMs::new(1.0)),
                plane: Plane::TO_DST,
            },
        );
        atlas.links.insert(
            (cl(2), cl(4)),
            LinkAnnotation {
                latency: Some(LatencyMs::new(1.0)),
                plane: Plane::TO_DST,
            },
        );
        atlas.links.insert(
            (cl(1), cl(4)),
            LinkAnnotation {
                latency: Some(LatencyMs::new(1.0)),
                plane: Plane::FROM_SRC,
            },
        );
        for c in [1u32, 2, 4] {
            atlas.cluster_as.insert(cl(c), Asn::new(c));
        }
        let mut cfg = PredictorConfig::with_tuples();
        cfg.use_tuples = false;
        let g = PredictionGraph::build(&atlas, &cfg);
        let r = search(&g, &atlas, &cfg, cl(4), PrefixId::new(0), Asn::new(4)).unwrap();
        // The FROM_SRC source node sees the direct path.
        let srcs = g.source_nodes(cl(1));
        let direct = r.cluster_path(&g, srcs[0]).unwrap();
        assert_eq!(direct.len(), 2, "FROM_SRC direct link: {direct:?}");
        // The TO_DST fallback sees the two-hop path.
        let fallback = r.cluster_path(&g, srcs[1]).unwrap();
        assert_eq!(fallback.len(), 3);
    }

    #[test]
    fn unreachable_source_has_no_label() {
        let atlas = atlas_line();
        let mut cfg = PredictorConfig::with_tuples();
        cfg.use_tuples = false;
        cfg.use_from_src = false;
        let (g, r) = run(&atlas, &cfg);
        // Cluster 4 is the destination; path from it to itself is trivial,
        // but nothing routes *to* cluster 1 (no in-edges toward 1 exist
        // in the reversed direction from 4)... source 4 should have a
        // label, cluster 1 reaches it, but a fresh sink-only cluster is
        // unreachable. Use node of cluster 3: it must have a label.
        assert!(r.label(src_node(&g, 3)).is_some());
        // All labelled paths terminate at the destination.
        for n in 0..g.n_nodes() as u32 {
            if r.label(n).is_some() {
                let p = r.cluster_path(&g, n).unwrap();
                assert_eq!(*p.last().unwrap(), ClusterId::new(4));
            }
        }
    }

    #[test]
    fn graph_mode_prefers_customer_routes() {
        // Valley-free up/down with phases: source 1 has a 2-hop route via
        // its provider 2 and a 2-hop route via its customer 5; customer
        // route must win even though its exit latency is higher.
        let mut atlas = Atlas::default();
        let cl = ClusterId::new;
        for (f, t, lat) in [(1u32, 2u32, 1.0), (2, 4, 1.0), (1, 5, 9.0), (5, 4, 9.0)] {
            atlas.links.insert(
                (cl(f), cl(t)),
                LinkAnnotation {
                    latency: Some(LatencyMs::new(lat)),
                    plane: Plane::TO_DST,
                },
            );
        }
        for c in [1u32, 2, 4, 5] {
            atlas.cluster_as.insert(cl(c), Asn::new(c));
        }
        use inano_model::Relationship::*;
        let rels = [
            ((1u32, 2u32), Provider), // 2 is 1's provider
            ((2, 1), Customer),
            ((1, 5), Customer), // 5 is 1's customer
            ((5, 1), Provider),
            ((2, 4), Customer),
            ((4, 2), Provider),
            ((5, 4), Customer), // 4 is 5's customer: 5→4 goes down
            ((4, 5), Provider),
        ];
        for ((a, b), r) in rels {
            atlas.inferred_rels.insert((Asn::new(a), Asn::new(b)), r);
        }
        let cfg = PredictorConfig::graph();
        let g = PredictionGraph::build(&atlas, &cfg);
        let r = search(&g, &atlas, &cfg, cl(4), PrefixId::new(0), Asn::new(4)).unwrap();
        let src = g.source_nodes(cl(1))[0];
        let path: Vec<u32> = r
            .cluster_path(&g, src)
            .unwrap()
            .iter()
            .map(|c| c.raw())
            .collect();
        // Customer route 1→5→4 (via customer 5, then peering into 4)
        // wins over provider route 1→2→4 despite 9ms vs 1ms exits.
        assert_eq!(path, vec![1, 5, 4]);
    }
}
