//! # inano-core
//!
//! The paper's primary contribution: a route/latency/loss predictor for
//! arbitrary end-host pairs, driven entirely by the compact link-level
//! atlas of `inano-atlas`.
//!
//! The prediction algorithm is a destination-rooted ("backtracking")
//! Dijkstra over a layered cluster graph:
//!
//! * **GRAPH mode** (§4.2, the baseline): links are symmetrised and
//!   rebuilt into the valley-free up/down construction from *inferred* AS
//!   relationships, searched in three phases that encode the
//!   customer < peer < provider preference, with a
//!   `[AS hops, exit latency]` lexicographic cost (early-exit).
//! * **iNano mode** (§4.3, the contribution): observed *directed* links
//!   in two planes (`TO_DST` from vantage points, `FROM_SRC` from
//!   end-hosts, crossable once toward `TO_DST`), with the valley-free
//!   check replaced by the observed AS 3-tuple check, observed AS
//!   preferences as the equal-length tie-break, and the provider
//!   constraint on the final edge into the destination AS.
//!
//! Each refinement can be toggled independently ([`PredictorConfig`]),
//! which is how Figure 5's accuracy ladder is regenerated.

pub mod client;
pub mod config;
pub mod graph;
pub mod predict;
pub mod rank;
pub mod search;
pub mod source;

pub use client::{INanoClient, StaticSource};
pub use config::PredictorConfig;
pub use predict::{PathPredictor, PredictedPath, Resolution};
pub use rank::rank_by_rtt;
pub use source::{
    chunk_span, content_tag, n_chunks, AtlasChunk, AtlasReader, AtlasSource, AtlasVersion,
    BlobFetch, BlobSource, DeltaHandle, DEFAULT_CHUNK_SIZE,
};
