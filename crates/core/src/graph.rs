//! The layered prediction graph built from the atlas.
//!
//! Node space: `(cluster, plane, side)` flattened to a dense `u32`.
//! Planes model asymmetry (§4.3.1): plane 0 is `TO_DST`, plane 1 is
//! `FROM_SRC`; a forward path may cross from `FROM_SRC` into `TO_DST`
//! exactly once (edges only exist in that direction). Sides implement the
//! valley-free up/down construction of §4.2.3 in GRAPH mode: side 0 is
//! "up", side 1 is "down".
//!
//! Edges are stored as *incoming-forward* adjacency: for a forward edge
//! `u → v`, `in_edges[v]` holds `u`, because the search backtracks from
//! the destination (settling `v` relaxes `u`).

use crate::config::PredictorConfig;
use inano_atlas::Atlas;
use inano_model::{Asn, ClusterId, Relationship};
use std::collections::HashMap;

/// One reverse-stored edge.
#[derive(Clone, Copy, Debug)]
pub struct InEdge {
    /// The forward-source node (relaxed when the edge's target settles).
    pub src: u32,
    /// Link latency in ms (the configured default when unannotated).
    pub latency: f64,
    /// Crosses an AS boundary.
    pub inter: bool,
    /// Minimum search phase that may traverse this edge (GRAPH mode).
    pub phase: u8,
    /// The link was only observed in the opposite direction; traversing
    /// it this way is a fallback and is deprioritised by the search.
    pub reversed: bool,
}

/// The prediction graph.
pub struct PredictionGraph {
    pub n_planes: usize,
    pub n_sides: usize,
    /// Dense index per cluster.
    pub cluster_idx: HashMap<ClusterId, u32>,
    /// ClusterId per dense index.
    pub clusters: Vec<ClusterId>,
    /// Owning AS per dense cluster index.
    pub cluster_as: Vec<Asn>,
    /// Incoming-forward adjacency per node.
    pub in_edges: Vec<Vec<InEdge>>,
}

impl PredictionGraph {
    pub fn n_nodes(&self) -> usize {
        self.clusters.len() * self.n_planes * self.n_sides
    }

    /// Flatten (cluster, plane, side) to a node id.
    pub fn node(&self, cluster_dense: u32, plane: usize, side: usize) -> u32 {
        ((cluster_dense as usize * self.n_planes + plane) * self.n_sides + side) as u32
    }

    /// The cluster of a node.
    pub fn node_cluster(&self, node: u32) -> ClusterId {
        self.clusters[node as usize / (self.n_planes * self.n_sides)]
    }

    /// The AS of a node.
    pub fn node_as(&self, node: u32) -> Asn {
        self.cluster_as[node as usize / (self.n_planes * self.n_sides)]
    }

    /// Destination entry node for a cluster: `TO_DST` plane, down side.
    pub fn dest_node(&self, cluster: ClusterId) -> Option<u32> {
        let &c = self.cluster_idx.get(&cluster)?;
        Some(self.node(c, 0, self.n_sides - 1))
    }

    /// Source nodes to try, in order: `FROM_SRC` up node first when the
    /// plane exists, then the `TO_DST` up node (§4.3.1's fallback).
    pub fn source_nodes(&self, cluster: ClusterId) -> Vec<u32> {
        let Some(&c) = self.cluster_idx.get(&cluster) else {
            return Vec::new();
        };
        let mut v = Vec::with_capacity(2);
        if self.n_planes == 2 {
            v.push(self.node(c, 1, 0));
        }
        v.push(self.node(c, 0, 0));
        v
    }

    /// Build the graph for a config.
    pub fn build(atlas: &Atlas, cfg: &PredictorConfig) -> PredictionGraph {
        // Dense-index every cluster that appears in the link set.
        let mut cluster_idx: HashMap<ClusterId, u32> = HashMap::new();
        let mut clusters: Vec<ClusterId> = Vec::new();
        let mut cluster_as: Vec<Asn> = Vec::new();
        let intern = |c: ClusterId,
                      clusters: &mut Vec<ClusterId>,
                      cluster_as: &mut Vec<Asn>,
                      cluster_idx: &mut HashMap<ClusterId, u32>,
                      atlas: &Atlas| {
            *cluster_idx.entry(c).or_insert_with(|| {
                clusters.push(c);
                cluster_as.push(atlas.as_of_cluster(c).unwrap_or_default());
                (clusters.len() - 1) as u32
            })
        };
        for &(a, b) in atlas.links.keys() {
            intern(a, &mut clusters, &mut cluster_as, &mut cluster_idx, atlas);
            intern(b, &mut clusters, &mut cluster_as, &mut cluster_idx, atlas);
        }
        // Clusters referenced only by prefix attachments still need nodes.
        for &c in atlas.prefix_cluster.values() {
            intern(c, &mut clusters, &mut cluster_as, &mut cluster_idx, atlas);
        }

        let mut g = PredictionGraph {
            n_planes: cfg.n_planes(),
            n_sides: cfg.n_sides(),
            cluster_idx,
            clusters,
            cluster_as,
            in_edges: Vec::new(),
        };
        g.in_edges = vec![Vec::new(); g.n_nodes()];

        if cfg.use_rel_graph {
            g.build_rel_edges(atlas, cfg);
        } else {
            g.build_directed_edges(atlas, cfg);
        }
        g.build_plane_cross_edges();
        g
    }

    fn add_forward_edge(&mut self, u: u32, v: u32, latency: f64, inter: bool, phase: u8) {
        self.add_edge_full(u, v, latency, inter, phase, false);
    }

    fn add_edge_full(
        &mut self,
        u: u32,
        v: u32,
        latency: f64,
        inter: bool,
        phase: u8,
        reversed: bool,
    ) {
        self.in_edges[v as usize].push(InEdge {
            src: u,
            latency,
            inter,
            phase,
            reversed,
        });
    }

    /// iNano mode: observed links, per plane.
    ///
    /// Links are stored with their observed direction but traversable in
    /// both: predictions must also *leave* clusters that measurements only
    /// ever entered (an arbitrary destination's stub is only seen inbound
    /// by the vantage points, yet reverse paths out of it must still be
    /// predicted — §4.3.1 composes forward *and* reverse paths for every
    /// pair). The 3-tuple, preference and provider checks carry the
    /// export-policy directionality that raw direction encoded.
    fn build_directed_edges(&mut self, atlas: &Atlas, cfg: &PredictorConfig) {
        // First pass: the directions actually observed, per plane.
        let mut observed: std::collections::HashSet<(u32, u32, u8)> =
            std::collections::HashSet::new();
        for (&(from, to), ann) in &atlas.links {
            let (cf, ct) = (self.cluster_idx[&from], self.cluster_idx[&to]);
            for (plane, present) in [(0u8, ann.plane.to_dst), (1, ann.plane.from_src)] {
                if present && (plane as usize) < self.n_planes {
                    observed.insert((cf, ct, plane));
                }
            }
        }
        // Second pass: add both directions, marking the unobserved one.
        let mut added: std::collections::HashSet<(u32, u32, u8)> = std::collections::HashSet::new();
        for (&(from, to), ann) in &atlas.links {
            let (cf, ct) = (self.cluster_idx[&from], self.cluster_idx[&to]);
            let inter = self.cluster_as[cf as usize] != self.cluster_as[ct as usize];
            let lat = ann
                .latency
                .map(|l| l.ms())
                .unwrap_or(cfg.default_link_latency_ms);
            for (plane, present) in [(0u8, ann.plane.to_dst), (1, ann.plane.from_src)] {
                if !present || (plane as usize) >= self.n_planes {
                    continue;
                }
                for (a, b) in [(cf, ct), (ct, cf)] {
                    let reversed = !observed.contains(&(a, b, plane));
                    if reversed && !cfg.allow_reversed_links {
                        continue;
                    }
                    if added.insert((a, b, plane)) {
                        let (u, v) = (
                            self.node(a, plane as usize, 0),
                            self.node(b, plane as usize, 0),
                        );
                        self.add_edge_full(u, v, lat, inter, 1, reversed);
                    }
                }
            }
        }
    }

    /// GRAPH mode: the valley-free up/down construction from inferred
    /// relationships (§4.2.3).
    ///
    /// Without the asymmetry refinement, links are symmetrised — GRAPH
    /// treats the atlas as "a graph capturing the Internet's physical
    /// topology" (§4). With `use_from_src`, §4.3.1's directionality kicks
    /// in: each plane only gets edges whose *forward traffic direction*
    /// was actually observed in that plane, which is what kills the
    /// "non-existent routes" GRAPH otherwise invents.
    fn build_rel_edges(&mut self, atlas: &Atlas, cfg: &PredictorConfig) {
        // Per unordered cluster pair: latency plus which directions were
        // observed in which plane. Index 0 = (lo → hi), 1 = (hi → lo).
        #[derive(Clone, Copy, Default)]
        struct PairInfo {
            lat: Option<f64>,
            to_dst: [bool; 2],
            from_src: [bool; 2],
        }
        let mut pairs: HashMap<(u32, u32), PairInfo> = HashMap::new();
        for (&(from, to), ann) in &atlas.links {
            let (cf, ct) = (self.cluster_idx[&from], self.cluster_idx[&to]);
            let key = (cf.min(ct), cf.max(ct));
            let dir = usize::from(cf > ct);
            let e = pairs.entry(key).or_default();
            if let Some(l) = ann.latency {
                e.lat = Some(e.lat.map_or(l.ms(), |x: f64| x.min(l.ms())));
            }
            e.to_dst[dir] |= ann.plane.to_dst;
            e.from_src[dir] |= ann.plane.from_src;
        }

        // Directionality only applies once the asymmetry refinement is on.
        let directional = self.n_planes == 2;
        let planes: Vec<usize> = (0..self.n_planes).collect();
        for (&(ci, cj), info) in &pairs {
            let (ai, aj) = (self.cluster_as[ci as usize], self.cluster_as[cj as usize]);
            let lat = info.lat.unwrap_or(cfg.default_link_latency_ms);
            let rel = if ai == aj {
                None // intra-AS
            } else {
                Some(
                    atlas
                        .inferred_rels
                        .get(&(ai, aj))
                        .copied()
                        .unwrap_or(Relationship::Peer),
                )
            };
            for &p in &planes {
                // Was the (ci → cj) / (cj → ci) direction observed in
                // this plane? Without directionality, any observation of
                // the pair enables both.
                let obs = match p {
                    0 => info.to_dst,
                    _ => info.from_src,
                };
                let any = obs[0] || obs[1];
                let fwd_ij = if directional { obs[0] } else { any };
                let fwd_ji = if directional { obs[1] } else { any };
                if !fwd_ij && !fwd_ji {
                    continue;
                }
                let up = |g: &PredictionGraph, c| g.node(c, p, 0);
                let down = |g: &PredictionGraph, c| g.node(c, p, 1);
                match rel {
                    None | Some(Relationship::Sibling) => {
                        let inter = ai != aj;
                        for ((x, y), seen) in [((ci, cj), fwd_ij), ((cj, ci), fwd_ji)] {
                            if !seen {
                                continue;
                            }
                            let (ux, uy) = (up(self, x), up(self, y));
                            self.add_forward_edge(ux, uy, lat, inter, 1);
                            let (dx, dy) = (down(self, x), down(self, y));
                            self.add_forward_edge(dx, dy, lat, inter, 1);
                        }
                    }
                    Some(Relationship::Provider) => {
                        // aj is ai's provider: up_i→up_j carries i→j
                        // traffic (phase 3), down_j→down_i carries j→i
                        // (phase 1).
                        if fwd_ij {
                            self.add_forward_edge(up(self, ci), up(self, cj), lat, true, 3);
                        }
                        if fwd_ji {
                            self.add_forward_edge(down(self, cj), down(self, ci), lat, true, 1);
                        }
                    }
                    Some(Relationship::Customer) => {
                        if fwd_ji {
                            self.add_forward_edge(up(self, cj), up(self, ci), lat, true, 3);
                        }
                        if fwd_ij {
                            self.add_forward_edge(down(self, ci), down(self, cj), lat, true, 1);
                        }
                    }
                    Some(Relationship::Peer) => {
                        if fwd_ij {
                            self.add_forward_edge(up(self, ci), down(self, cj), lat, true, 2);
                        }
                        if fwd_ji {
                            self.add_forward_edge(up(self, cj), down(self, ci), lat, true, 2);
                        }
                    }
                }
            }
        }

        // Self edges up_i → down_i: the "turn downhill here" transition,
        // phase 1 so pure customer routes settle first.
        for c in 0..self.clusters.len() as u32 {
            for p in 0..self.n_planes {
                let u = self.node(c, p, 0);
                let d = self.node(c, p, 1);
                self.add_forward_edge(u, d, 0.0, false, 1);
            }
        }
    }

    /// One-way plane crossing: (c, FROM_SRC, s) → (c, TO_DST, s).
    fn build_plane_cross_edges(&mut self) {
        if self.n_planes < 2 {
            return;
        }
        for c in 0..self.clusters.len() as u32 {
            for s in 0..self.n_sides {
                let u = self.node(c, 1, s);
                let v = self.node(c, 0, s);
                self.add_forward_edge(u, v, 0.0, false, 1);
            }
        }
    }

    /// Total edge count (diagnostics).
    pub fn n_edges(&self) -> usize {
        self.in_edges.iter().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_atlas::{LinkAnnotation, Plane};
    use inano_model::LatencyMs;

    /// A hand-built 4-cluster atlas: AS1(c1) -> AS2(c2) -> AS3(c3), plus
    /// c4 in AS2 (intra link with c2).
    fn toy_atlas() -> Atlas {
        let mut a = Atlas::default();
        let cl = ClusterId::new;
        for (f, t, lat, plane) in [
            (1, 2, 5.0, Plane::TO_DST),
            (2, 3, 7.0, Plane::TO_DST),
            (2, 4, 1.0, Plane::TO_DST),
            (1, 2, 5.0, Plane::FROM_SRC),
        ] {
            let e = a.links.entry((cl(f), cl(t))).or_insert(LinkAnnotation {
                latency: Some(LatencyMs::new(lat)),
                plane,
            });
            e.plane = e.plane.union(plane);
        }
        for (c, asn) in [(1, 1), (2, 2), (3, 3), (4, 2)] {
            a.cluster_as.insert(cl(c), Asn::new(asn));
        }
        a
    }

    #[test]
    fn directed_mode_counts() {
        let atlas = toy_atlas();
        let g = PredictionGraph::build(&atlas, &PredictorConfig::with_tuples());
        // 4 clusters × 2 planes × 1 side.
        assert_eq!(g.n_nodes(), 8);
        // TO_DST: 3 links × both directions; FROM_SRC: 1 × both; cross: 4.
        assert_eq!(g.n_edges(), 12);
        // Exactly half of the link edges are reversed-direction fallbacks.
        let rev = g.in_edges.iter().flatten().filter(|e| e.reversed).count();
        assert_eq!(rev, 4);
    }

    #[test]
    fn single_plane_when_from_src_disabled() {
        let atlas = toy_atlas();
        let mut cfg = PredictorConfig::with_tuples();
        cfg.use_from_src = false;
        let g = PredictionGraph::build(&atlas, &cfg);
        assert_eq!(g.n_nodes(), 4);
        assert_eq!(g.n_edges(), 6); // 3 links, both directions
    }

    #[test]
    fn rel_graph_builds_up_down() {
        let mut atlas = toy_atlas();
        // AS1 customer of AS2; AS2 provider relationship to AS3 unknown →
        // default peer.
        atlas
            .inferred_rels
            .insert((Asn::new(1), Asn::new(2)), Relationship::Provider);
        atlas
            .inferred_rels
            .insert((Asn::new(2), Asn::new(1)), Relationship::Customer);
        let g = PredictionGraph::build(&atlas, &PredictorConfig::graph());
        // 4 clusters × 1 plane × 2 sides.
        assert_eq!(g.n_nodes(), 8);
        // Edges: pair (1,2): up1→up2 (ph3) + down2→down1 (ph1) = 2;
        // pair (2,3) peer: up2→down3, up3→down2 = 2;
        // pair (2,4) intra: 4 (two dirs × two layers);
        // self edges: 4. Total 12.
        assert_eq!(g.n_edges(), 12);
        let phases: Vec<u8> = g.in_edges.iter().flatten().map(|e| e.phase).collect();
        assert!(phases.contains(&3));
        assert!(phases.contains(&2));
    }

    #[test]
    fn node_round_trips() {
        let atlas = toy_atlas();
        let g = PredictionGraph::build(&atlas, &PredictorConfig::full());
        for c in 0..g.clusters.len() as u32 {
            for p in 0..g.n_planes {
                for s in 0..g.n_sides {
                    let n = g.node(c, p, s);
                    assert_eq!(g.node_cluster(n), g.clusters[c as usize]);
                }
            }
        }
    }

    #[test]
    fn source_and_dest_nodes() {
        let atlas = toy_atlas();
        let g = PredictionGraph::build(&atlas, &PredictorConfig::full());
        let srcs = g.source_nodes(ClusterId::new(1));
        assert_eq!(srcs.len(), 2, "FROM_SRC first, TO_DST fallback");
        assert!(g.dest_node(ClusterId::new(3)).is_some());
        assert!(g.dest_node(ClusterId::new(99)).is_none());
    }
}
