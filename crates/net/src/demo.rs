//! A tiny self-contained demo topology: a bidirectional ring of
//! clusters, one AS and one /16 prefix per cluster, so every pair of
//! addresses is routable.
//!
//! `inano-serve --ring N` serves one of these, the loadgen's
//! `--connect` mode generates load against one, and the integration
//! tests use them as a deterministic world where the correct answer
//! (shortest way around the ring) is obvious by construction. Real
//! deployments load a measured atlas instead (`inano-serve --atlas`).

use inano_atlas::{Atlas, AtlasDelta, LinkAnnotation, Plane};
use inano_core::PredictorConfig;
use inano_model::{Asn, ClusterId, Ipv4, LatencyMs, Prefix, PrefixId};

/// A bidirectional ring of `n` clusters stamped with `day`.
pub fn ring_atlas(n: u32, day: u32) -> Atlas {
    assert!(n >= 3, "a ring needs at least 3 clusters");
    let mut a = Atlas {
        day,
        ..Atlas::default()
    };
    for i in 0..n {
        let j = (i + 1) % n;
        for (x, y) in [(i, j), (j, i)] {
            a.links.insert(
                (ClusterId::new(x), ClusterId::new(y)),
                LinkAnnotation {
                    latency: Some(LatencyMs::new(1.0 + x as f64 * 0.1)),
                    plane: Plane::TO_DST,
                },
            );
        }
        a.cluster_as.insert(ClusterId::new(i), Asn::new(i));
        a.as_degree.insert(Asn::new(i), 2);
        a.prefix_cluster.insert(PrefixId::new(i), ClusterId::new(i));
        a.prefix_as.insert(
            PrefixId::new(i),
            (Prefix::new(Ipv4(i << 16), 16), Asn::new(i)),
        );
    }
    a
}

/// An address inside ring cluster `cluster`'s /16.
pub fn ring_ip(cluster: u32) -> Ipv4 {
    Ipv4((cluster << 16) | 7)
}

/// Predictor settings matching what a ring atlas records: no AS-policy
/// refinements (the synthetic world has no policy evidence) and no
/// FROM_SRC plane.
pub fn ring_predictor_config() -> PredictorConfig {
    let mut cfg = PredictorConfig::full();
    cfg.use_tuples = false;
    cfg.use_prefs = false;
    cfg.use_providers = false;
    cfg.use_from_src = false;
    cfg
}

/// The delta from the day-`day` ring to a day-`day+1` ring with an
/// added 0 ↔ n/2 shortcut (latency 0.5ms each way): applying it halves
/// the 0 → n/2 path, which makes swap visibility easy to assert.
pub fn ring_shortcut_delta(n: u32, day: u32) -> AtlasDelta {
    let base = ring_atlas(n, day);
    let mut next = ring_atlas(n, day + 1);
    let far = n / 2;
    for (x, y) in [(0, far), (far, 0)] {
        next.links.insert(
            (ClusterId::new(x), ClusterId::new(y)),
            LinkAnnotation {
                latency: Some(LatencyMs::new(0.5)),
                plane: Plane::TO_DST,
            },
        );
    }
    AtlasDelta::between(&base, &next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inano_core::PathPredictor;
    use std::sync::Arc;

    #[test]
    fn every_ring_pair_is_routable() {
        let n = 8;
        let p = PathPredictor::new(Arc::new(ring_atlas(n, 0)), ring_predictor_config());
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    p.query(ring_ip(s), ring_ip(d)).expect("ring pair routable");
                }
            }
        }
    }

    #[test]
    fn shortcut_delta_halves_the_far_path() {
        let n = 8;
        let base = ring_atlas(n, 0);
        let next = ring_shortcut_delta(n, 0).apply(&base).expect("applies");
        assert_eq!(next.day, 1);
        let p = PathPredictor::new(Arc::new(next), ring_predictor_config());
        let path = p.query(ring_ip(0), ring_ip(n / 2)).expect("routable");
        assert_eq!(path.fwd_clusters.len(), 2, "shortcut is the new route");
    }
}
